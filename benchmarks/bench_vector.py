"""Macrobenchmark: vectorized vs scalar execution on the Q3 join chain.

The fused vector kernels (:mod:`repro.db.exec.vector`) must make the
trace-accurate engines *benchmark-viable* on multi-way joins without
changing a single answer or charged cycle. Three measurements:

1. **Headline**: TPC-H Q3 (lineitem ⋈ orders ⋈ customer + group-by +
   order-by) through the RM engine in trace mode, vector vs volcano
   exec mode. Acceptance: >=10x at 1M rows, with bit-identical rows,
   cycles, cost-ledger buckets, and memory-hierarchy counters.
2. **Cross-check**: Q3 through all three engines at a reduced row count,
   asserting the same identities per engine.
3. **Code cache**: the same query twice through a vector engine with a
   :class:`~repro.db.plan.codecache.CodeFragmentCache` — the warm run
   must skip plan compilation (plan_compile bucket = 0) and be faster.

Run as a script (writes the artifact consumed by CI)::

    PYTHONPATH=src python benchmarks/bench_vector.py \
        --rows 1000000 --json BENCH_vector.json --min-speedup 10

or under pytest-benchmark (reduced rows)::

    pytest benchmarks/bench_vector.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from typing import Dict

from repro.core.ledger import CostLedger
from repro.db.engines import all_engines
from repro.db.plan.codecache import CodeFragmentCache
from repro.workloads.tpch_analytics import Q3, generate_tpch_analytics

ENGINES = ("row", "column", "rm")


def _hierarchy_snapshot(hierarchy) -> Dict[str, object]:
    return {
        "access": asdict(hierarchy.stats),
        "l1": asdict(hierarchy.l1.stats),
        "l2": asdict(hierarchy.l2.stats),
        "dram": asdict(hierarchy.dram.stats),
        "prefetch_covered": hierarchy.prefetcher.covered,
        "prefetch_uncovered": hierarchy.prefetcher.uncovered,
    }


def _run_one(catalog, name: str, exec_mode: str) -> Dict[str, object]:
    engine = all_engines(catalog, memory_model="trace", exec_mode=exec_mode)[name]
    t0 = time.perf_counter()
    result = engine.execute(Q3)
    return {
        "seconds": time.perf_counter() - t0,
        "cycles": result.cycles,
        "buckets": dict(result.ledger.buckets),
        "rows": [tuple(map(float, r)) for r in result.result.rows()],
        "hierarchy": _hierarchy_snapshot(engine.memory.hierarchy),
    }


def _identical(vec: Dict[str, object], vol: Dict[str, object], label: str) -> list:
    mismatches = []
    for field in ("cycles", "buckets", "rows", "hierarchy"):
        if vec[field] != vol[field]:
            mismatches.append(f"{label}.{field}: vector != volcano")
    return mismatches


def run_headline(nrows: int, engine: str = "rm") -> Dict[str, object]:
    """Q3 at full size, one engine, both exec modes."""
    catalog, *_ = generate_tpch_analytics(nrows)
    vec = _run_one(catalog, engine, "vector")
    vol = _run_one(catalog, engine, "volcano")
    mismatches = _identical(vec, vol, engine)
    return {
        "rows": nrows,
        "engine": engine,
        "vector_seconds": vec["seconds"],
        "volcano_seconds": vol["seconds"],
        "speedup": vol["seconds"] / vec["seconds"],
        "cycles": vec["cycles"],
        "result_rows": len(vec["rows"]),
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }


def run_cross_check(nrows: int) -> Dict[str, object]:
    """Q3 through all three engines, vector vs volcano per engine."""
    catalog, *_ = generate_tpch_analytics(nrows)
    out: Dict[str, object] = {"rows": nrows, "engines": {}, "mismatches": []}
    for name in ENGINES:
        vec = _run_one(catalog, name, "vector")
        vol = _run_one(catalog, name, "volcano")
        out["mismatches"].extend(_identical(vec, vol, name))
        out["engines"][name] = {
            "vector_seconds": vec["seconds"],
            "volcano_seconds": vol["seconds"],
            "speedup": vol["seconds"] / vec["seconds"],
            "cycles": vec["cycles"],
        }
    out["bit_identical"] = not out["mismatches"]
    return out


def run_codecache(nrows: int, engine: str = "rm") -> Dict[str, object]:
    """Cold vs warm execution through a shared fragment cache."""
    catalog, *_ = generate_tpch_analytics(nrows)
    cache = CodeFragmentCache()
    eng = all_engines(catalog, codecache=cache)[engine]
    t0 = time.perf_counter()
    cold = eng.execute(Q3)
    cold_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = eng.execute(Q3)
    warm_seconds = time.perf_counter() - t0
    cold_compile = cold.ledger.get(CostLedger.PLAN_COMPILE)
    warm_compile = warm.ledger.get(CostLedger.PLAN_COMPILE)
    return {
        "rows": nrows,
        "engine": engine,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "codecache_cold_compile_cycles": cold_compile,
        "codecache_warm_compile_cycles": warm_compile,
        "codecache_hits": cache.stats.hits,
        "codecache_misses": cache.stats.misses,
        "warm_skips_compile": warm_compile == 0.0 and cold_compile > 0,
        "answers_match": cold.result.rows() == warm.result.rows(),
    }


def compare(rows: int, check_rows: int) -> Dict[str, object]:
    headline = run_headline(rows)
    cross = run_cross_check(check_rows)
    cache = run_codecache(check_rows)
    return {
        "headline": headline,
        "cross_check": cross,
        "codecache": cache,
        "speedup": headline["speedup"],
        "bit_identical": (
            headline["bit_identical"]
            and cross["bit_identical"]
            and cache["warm_skips_compile"]
            and cache["answers_match"]
        ),
        "mismatches": headline["mismatches"] + cross["mismatches"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="vectorized vs scalar Q3 execution benchmark"
    )
    parser.add_argument(
        "--rows", type=int, default=1_000_000, help="headline lineitem rows"
    )
    parser.add_argument(
        "--check-rows",
        type=int,
        default=60_000,
        help="rows for the three-engine cross-check and codecache runs",
    )
    parser.add_argument("--json", type=str, default="", help="write report here")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit nonzero below this vector-vs-volcano headline speedup",
    )
    args = parser.parse_args(argv)

    report = compare(args.rows, args.check_rows)
    h = report["headline"]
    print(
        f"Q3 {h['engine']}, {h['rows']} lineitem rows: "
        f"volcano {h['volcano_seconds']:.3f}s   vector {h['vector_seconds']:.3f}s   "
        f"speedup {h['speedup']:.1f}x"
    )
    print(f"Q3 cross-check, {report['cross_check']['rows']} rows:")
    for name, e in report["cross_check"]["engines"].items():
        print(
            f"  {name:>6}: volcano {e['volcano_seconds']:8.3f}s   "
            f"vector {e['vector_seconds']:8.3f}s   ({e['speedup']:5.1f}x)"
        )
    c = report["codecache"]
    print(
        f"codecache: cold {c['cold_seconds']:.3f}s "
        f"(compile {c['codecache_cold_compile_cycles']:.0f} cyc)   "
        f"warm {c['warm_seconds']:.3f}s "
        f"(compile {c['codecache_warm_compile_cycles']:.0f} cyc)"
    )
    print(f"bit-identical rows/cycles/counters: {report['bit_identical']}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.json}")
    if not report["bit_identical"]:
        print("FAIL: vector and volcano results diverged", file=sys.stderr)
        for m in report["mismatches"]:
            print(f"  {m}", file=sys.stderr)
        return 1
    if args.min_speedup and report["speedup"] < args.min_speedup:
        print(
            f"FAIL: headline speedup {report['speedup']:.1f}x < required "
            f"{args.min_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry point (reduced rows for CI bench runs).
# ----------------------------------------------------------------------
def test_vector_speedup(benchmark, save_result):
    report = benchmark.pedantic(compare, args=(60_000, 20_000), rounds=1, iterations=1)
    h = report["headline"]
    lines = [
        "vector-exec-speedup",
        "===================",
        f"headline rows: {h['rows']}",
        f"volcano: {h['volcano_seconds']:.3f}s",
        f"vector: {h['vector_seconds']:.3f}s",
        f"speedup: {h['speedup']:.1f}x",
        f"bit_identical: {report['bit_identical']}",
    ]
    save_result("vector_exec", "\n".join(lines))
    assert report["bit_identical"], report["mismatches"]
    assert report["speedup"] > 2.0
    assert report["codecache"]["warm_skips_compile"]


if __name__ == "__main__":
    sys.exit(main())
