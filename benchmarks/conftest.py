"""Benchmark plumbing: every figure bench writes its reproduced table to
``benchmarks/results/`` so EXPERIMENTS.md can cite the measured numbers.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    def _save(name: str, text: str) -> None:
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as f:
            f.write(text + "\n")

    return _save
