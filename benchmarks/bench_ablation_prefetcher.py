"""Ablation: does the COL/RM crossover track the prefetcher stream limit?

Paper Figure 5 attributes COL's degradation beyond four columns to the
prefetcher "efficiently support[ing] up to four parallel sequential
accesses". Sweeping the stream limit tests that mechanism directly: a
smaller table should pull the crossover earlier, a bigger one later.

Run: pytest benchmarks/bench_ablation_prefetcher.py --benchmark-only
"""

from repro.bench import run_prefetcher_ablation

NROWS = 80_000
LIMITS = (2, 4, 8)


def _crossover(exp) -> int:
    ratios = exp.ratio("column", "rm")
    for i, c in enumerate(ratios):
        if c >= 1.0:
            return i + 1
    return len(ratios) + 1


def test_prefetcher_stream_limit(benchmark, save_result):
    results = benchmark.pedantic(
        lambda: run_prefetcher_ablation(nrows=NROWS, stream_limits=LIMITS),
        rounds=1,
        iterations=1,
    )
    crossings = {limit: _crossover(exp) for limit, exp in results.items()}
    text = ["COL/RM crossover projectivity by prefetcher stream limit:"]
    for limit in LIMITS:
        text.append(f"  max_streams={limit:2d} -> crossover at k={crossings[limit]}")
    for limit, exp in results.items():
        text.append("")
        text.append(exp.to_table())
    save_result("ablation_prefetcher", "\n".join(text))

    assert crossings[2] <= crossings[4] <= crossings[8]
    assert crossings[2] < crossings[8]
