"""Microbenchmark: batched vs scalar trace-mode simulation on TPC-H Q6.

The batch kernel (:mod:`repro.hw.batch`) must make the event-accurate
memory model *benchmark-viable*. Two measurements:

1. **Scan** (the headline number): the Q6 lineitem table scan — the
   rowstore fetch path, a sequential trace over ``nrows * row_stride``
   bytes — with the batched kernel vs the scalar per-line reference.
   Acceptance: >=20x at 1M rows, with bit-identical AccessStats,
   per-level CacheStats, DRAM stats, and prefetcher counters.
2. **End-to-end**: full Q6 through all three engines in trace mode,
   cross-checking that cycles, answers, and every hierarchy counter
   agree between the two kernels (at a reduced row count, since the
   query-side pandas work is identical in both and only dilutes the
   ratio).

Run as a script (writes the speedup artifact consumed by CI)::

    PYTHONPATH=src python benchmarks/bench_trace_batch.py \
        --rows 1000000 --json BENCH_trace.json --min-speedup 20

or under pytest-benchmark (reduced rows)::

    pytest benchmarks/bench_trace_batch.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from typing import Dict

from repro.db.engines import all_engines
from repro.hw.analytic import TraceMemoryModel
from repro.hw.config import default_platform
from repro.workloads.tpch import Q6, generate_lineitem

ENGINES = ("row", "column", "rm")


def _hierarchy_snapshot(hierarchy) -> Dict[str, object]:
    return {
        "access": asdict(hierarchy.stats),
        "l1": asdict(hierarchy.l1.stats),
        "l2": asdict(hierarchy.l2.stats),
        "dram": asdict(hierarchy.dram.stats),
        "prefetch_covered": hierarchy.prefetcher.covered,
        "prefetch_uncovered": hierarchy.prefetcher.uncovered,
    }


def run_scan(nrows: int) -> Dict[str, object]:
    """Time the Q6 table scan (rowstore fetch path) batch vs scalar."""
    catalog, _ = generate_lineitem(nrows=16)  # only the schema is needed
    row_stride = catalog.table("lineitem").schema.row_stride
    nbytes = nrows * row_stride
    out: Dict[str, object] = {"rows": nrows, "bytes": nbytes}
    for label, use_batch in (("batch", True), ("scalar", False)):
        model = TraceMemoryModel(default_platform(), use_batch=use_batch)
        base = model.region(("rows", "lineitem"), nbytes)
        t0 = time.perf_counter()
        mem = model.sequential(nbytes, base_addr=base)
        out[f"{label}_seconds"] = time.perf_counter() - t0
        out[f"{label}_cycles"] = (mem.covered, mem.exposed)
        out[f"{label}_hierarchy"] = _hierarchy_snapshot(model.hierarchy)
    out["speedup"] = out["scalar_seconds"] / out["batch_seconds"]
    out["bit_identical"] = (
        out["batch_cycles"] == out["scalar_cycles"]
        and out["batch_hierarchy"] == out["scalar_hierarchy"]
    )
    return out


def run_q6_engines(nrows: int, use_batch: bool) -> Dict[str, object]:
    """Execute Q6 on fresh trace-mode engines; returns timings + stats."""
    catalog, _ = generate_lineitem(nrows=nrows)
    engines = all_engines(catalog, memory_model="trace")
    out: Dict[str, object] = {"engines": {}}
    total = 0.0
    for name in ENGINES:
        engine = engines[name]
        engine.memory.use_batch = use_batch
        t0 = time.perf_counter()
        result = engine.execute(Q6)
        elapsed = time.perf_counter() - t0
        total += elapsed
        out["engines"][name] = {
            "seconds": elapsed,
            "cycles": result.cycles,
            "answer": float(result.result.scalar()),
            "hierarchy": _hierarchy_snapshot(engine.memory.hierarchy),
        }
    out["seconds"] = total
    return out


def compare(scan_rows: int, engine_rows: int) -> Dict[str, object]:
    scan = run_scan(scan_rows)
    batch = run_q6_engines(engine_rows, use_batch=True)
    scalar = run_q6_engines(engine_rows, use_batch=False)
    mismatches = []
    if not scan["bit_identical"]:
        mismatches.append("scan: batch/scalar hierarchy state diverged")
    for name in ENGINES:
        b, s = batch["engines"][name], scalar["engines"][name]
        for field in ("cycles", "answer", "hierarchy"):
            if b[field] != s[field]:
                mismatches.append(f"{name}.{field}: batch={b[field]} scalar={s[field]}")
    return {
        "scan": {
            "rows": scan["rows"],
            "bytes": scan["bytes"],
            "batch_seconds": scan["batch_seconds"],
            "scalar_seconds": scan["scalar_seconds"],
            "speedup": scan["speedup"],
            "cycles": scan["batch_cycles"],
        },
        "speedup": scan["speedup"],
        "bit_identical": not mismatches,
        "mismatches": mismatches,
        "q6_end_to_end": {
            "rows": engine_rows,
            "batch_seconds": batch["seconds"],
            "scalar_seconds": scalar["seconds"],
            "speedup": scalar["seconds"] / batch["seconds"],
            "engines": {
                name: {
                    "batch_seconds": batch["engines"][name]["seconds"],
                    "scalar_seconds": scalar["engines"][name]["seconds"],
                    "cycles": batch["engines"][name]["cycles"],
                }
                for name in ENGINES
            },
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="batched vs scalar trace-mode Q6 benchmark"
    )
    parser.add_argument("--rows", type=int, default=1_000_000, help="scan rows")
    parser.add_argument(
        "--engine-rows",
        type=int,
        default=60_000,
        help="rows for the end-to-end three-engine cross-check",
    )
    parser.add_argument("--json", type=str, default="", help="write report here")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit nonzero below this batch-vs-scalar scan speedup",
    )
    args = parser.parse_args(argv)

    report = compare(args.rows, args.engine_rows)
    scan = report["scan"]
    print(
        f"Q6 scan, {scan['rows']} rows ({scan['bytes'] / 1e6:.0f} MB): "
        f"scalar {scan['scalar_seconds']:.3f}s   batch {scan['batch_seconds']:.3f}s   "
        f"speedup {scan['speedup']:.1f}x"
    )
    e2e = report["q6_end_to_end"]
    print(f"Q6 end-to-end, {e2e['rows']} rows:")
    for name, e in e2e["engines"].items():
        print(
            f"  {name:>6}: scalar {e['scalar_seconds']:8.3f}s   "
            f"batch {e['batch_seconds']:8.3f}s   "
            f"({e['scalar_seconds'] / e['batch_seconds']:6.1f}x)"
        )
    print(f"bit-identical stats/cycles: {report['bit_identical']}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.json}")
    if not report["bit_identical"]:
        print("FAIL: batch and scalar trace results diverged", file=sys.stderr)
        for m in report["mismatches"]:
            print(f"  {m}", file=sys.stderr)
        return 1
    if args.min_speedup and report["speedup"] < args.min_speedup:
        print(
            f"FAIL: scan speedup {report['speedup']:.1f}x < required "
            f"{args.min_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry point (reduced rows for CI bench runs).
# ----------------------------------------------------------------------
def test_trace_batch_speedup(benchmark, save_result):
    report = benchmark.pedantic(
        compare, args=(200_000, 20_000), rounds=1, iterations=1
    )
    scan = report["scan"]
    lines = [
        "trace-batch-speedup",
        "===================",
        f"scan rows: {scan['rows']}",
        f"scan scalar: {scan['scalar_seconds']:.3f}s",
        f"scan batch: {scan['batch_seconds']:.3f}s",
        f"scan speedup: {scan['speedup']:.1f}x",
        f"bit_identical: {report['bit_identical']}",
    ]
    save_result("trace_batch", "\n".join(lines))
    assert report["bit_identical"], report["mismatches"]
    assert report["speedup"] > 10.0


if __name__ == "__main__":
    sys.exit(main())
