"""Macrobenchmark: scatter-gather scaling and shard-kill recovery.

Two measurements over :mod:`repro.dist`:

1. **Scaling** — TPC-H Q1 and Q6 over a bench-mode lineitem cluster at
   1, 2, 4, and 8 shards (fork-inherited tables, one worker process per
   shard). Wall time is reported but *not* gated (CI runners share
   cores); what gates is the determinism contract: every shard count
   must produce a payload byte-identical to unsharded serial execution
   and charge exactly the same ledger cycles — sharding buys
   parallelism, never a different answer or a different bill.
2. **Recovery** — a durable 4-shard orders cluster absorbs a seeded
   write mix, then every shard in turn is SIGKILLed and the next query
   timed: the coordinator restarts the fault domain, replays its WAL,
   and must return the exact serial answer. Recovered WAL bytes and
   restart counts are deterministic per seed and gate tightly.

Run as a script (writes the artifact consumed by CI)::

    PYTHONPATH=src python benchmarks/bench_shard.py \
        --rows 10000000 --txns 400 --json BENCH_shard.json

CI runs a reduced ``--rows 2000000`` and also writes the sampled
``dist_*`` metrics time series (``--metrics-json``) for
``scripts/check_trace_schema.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

from repro.core.selection import CompareOp
from repro.dist import (
    AggSpec,
    AggTerm,
    DistConfig,
    DistPlan,
    DistPredicate,
    ShardCluster,
    execute_plan,
    q1_plan,
    q6_plan,
)
from repro.db.sharding import ShardedTable
from repro.obs import MetricsRegistry
from repro.workloads.tpch import generate_lineitem

#: Ledger buckets the distributed path charges; reported per query.
DIST_BUCKETS = ("dist_scan", "dist_filter", "dist_agg", "dist_gather")


def _shard_lineitem(lineitem, nshards: int) -> ShardedTable:
    keys = lineitem.column("l_orderkey")
    qs = np.linspace(0, 1, nshards + 1)[1:-1]
    bounds = sorted({int(np.quantile(keys, q)) for q in qs})
    sharded = ShardedTable(lineitem.schema, "l_orderkey", bounds)
    sharded.bulk_load(
        {
            c.name: (
                lineitem.column(c.name).view(f"S{c.dtype.width}").reshape(-1)
                if c.dtype.np_dtype is None
                else lineitem.column(c.name)
            )
            for c in lineitem.schema.user_columns
        }
    )
    return sharded


def run_scaling(
    rows: int,
    shard_counts,
    seed: int,
    metrics: MetricsRegistry = None,
) -> Dict[str, object]:
    _, lineitem = generate_lineitem(rows, seed=seed)
    plans = {"q1": q1_plan(), "q6": q6_plan()}
    serial: Dict[str, object] = {}
    report: Dict[str, object] = {"rows": rows, "per_shards": {}}
    for name, plan in plans.items():
        t0 = time.perf_counter()
        serial[name] = execute_plan(lineitem, plan)
        report[f"{name}_serial_seconds"] = time.perf_counter() - t0

    clusters: List[ShardCluster] = []
    for n in shard_counts:
        sharded = _shard_lineitem(lineitem, n)
        cluster = ShardCluster(
            sharded, DistConfig(deadline_s=600.0, boot_deadline_s=600.0)
        )
        cluster.start()
        clusters.append(cluster)
        if metrics is not None:
            cluster.attach_metrics(metrics, shards=str(n))
        entry: Dict[str, object] = {"shards": len(sharded.shards)}
        for name, plan in plans.items():
            t0 = time.perf_counter()
            res = cluster.query(plan, metrics=metrics)
            entry[f"{name}_seconds"] = time.perf_counter() - t0
            ref = serial[name]
            entry[f"{name}_bit_identical"] = res.to_bytes() == ref.to_bytes()
            entry[f"{name}_ledger_bit_identical"] = (
                res.ledger.buckets == ref.ledger.buckets
            )
            for bucket in DIST_BUCKETS:
                entry[f"{name}_{bucket}_cycles"] = res.ledger.buckets.get(
                    bucket, 0
                )
        cluster.close()
        report["per_shards"][str(n)] = entry
    report["all_bit_identical"] = all(
        e[k]
        for e in report["per_shards"].values()
        for k in e
        if "identical" in k
    )
    return report


def _orders_plan() -> DistPlan:
    return DistPlan(
        table="orders",
        key_column="o_id",
        predicates=(DistPredicate("o_customer", CompareOp.LE, 40),),
        group_by=("o_status",),
        aggregates=(
            AggSpec("sum_amount", "sum", (AggTerm("o_amount"),)),
            AggSpec("n", "count"),
        ),
    )


def run_recovery(
    txns: int, seed: int, metrics: MetricsRegistry = None
) -> Dict[str, object]:
    from repro.workloads.htap import orders_schema

    rng = np.random.default_rng(seed)
    cluster = ShardCluster(
        ShardedTable(orders_schema(), "o_id", [100, 200, 300]),
        DistConfig(deadline_s=30.0),
        durable=True,
    )
    cluster.start()
    if metrics is not None:
        cluster.attach_metrics(metrics, phase="recovery")
    for _ in range(txns):
        cluster.insert(
            {
                "o_id": int(rng.integers(0, 400)),
                "o_customer": int(rng.integers(1, 50)),
                "o_amount": float(rng.integers(1, 20_000)) / 100.0,
                "o_status": int(rng.integers(0, 3)),
            }
        )
    plan = _orders_plan()
    serial = cluster.run_serial(plan)

    t0 = time.perf_counter()
    baseline = cluster.query(plan, metrics=metrics)
    baseline_s = time.perf_counter() - t0
    identical = [baseline.to_bytes() == serial.to_bytes()]

    kill_seconds = []
    nshards = len(cluster.sharded.shards)
    for i in range(nshards):
        cluster.kill_shard(i)
        t0 = time.perf_counter()
        res = cluster.query(plan, metrics=metrics)
        kill_seconds.append(time.perf_counter() - t0)
        identical.append(res.to_bytes() == serial.to_bytes())
    stats = cluster.stats
    report = {
        "txns": txns,
        "shards": nshards,
        "rows": cluster.sharded.nrows,
        "baseline_query_seconds": baseline_s,
        "recovery_seconds_mean": sum(kill_seconds) / len(kill_seconds),
        "recovery_seconds_max": max(kill_seconds),
        "kills": stats.kills_total,
        "restarts": stats.restarts_total,
        "recoveries": stats.recoveries_total,
        "recovered_wal_bytes": stats.recovered_bytes_total,
        "replicated_wal_bytes": stats.replicated_bytes_total,
        "all_bit_identical": all(identical),
    }
    cluster.close()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="scatter-gather scaling + shard-kill recovery bench"
    )
    parser.add_argument("--rows", type=int, default=10_000_000)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8]
    )
    parser.add_argument("--txns", type=int, default=400)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default="")
    parser.add_argument(
        "--metrics-json",
        type=str,
        default="",
        help="also write the sampled dist_* metrics time series here",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=5_000_000.0
    )
    args = parser.parse_args(argv)

    metrics = sampler = None
    if args.metrics_json:
        metrics = MetricsRegistry()
        sampler = metrics.attach_sampler(
            interval_cycles=args.metrics_interval
        )

    scaling = run_scaling(args.rows, args.shards, args.seed, metrics=metrics)
    recovery = run_recovery(args.txns, args.seed, metrics=metrics)
    if sampler is not None:
        sampler.sample_now()

    report = {"scaling": scaling, "recovery": recovery}
    for n, entry in scaling["per_shards"].items():
        print(
            f"{entry['shards']} shard(s): "
            f"q1 {entry['q1_seconds']:.3f}s q6 {entry['q6_seconds']:.3f}s "
            f"(serial q1 {scaling['q1_serial_seconds']:.3f}s, "
            f"q6 {scaling['q6_serial_seconds']:.3f}s) "
            f"identical={entry['q1_bit_identical'] and entry['q6_bit_identical']}"
        )
    print(
        f"recovery: {recovery['kills']} kills, mean "
        f"{recovery['recovery_seconds_mean']:.3f}s, max "
        f"{recovery['recovery_seconds_max']:.3f}s, "
        f"{recovery['recovered_wal_bytes']} WAL bytes replayed, "
        f"identical={recovery['all_bit_identical']}"
    )

    ok = scaling["all_bit_identical"] and recovery["all_bit_identical"]
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.json}")
    if args.metrics_json:
        with open(args.metrics_json, "w") as f:
            f.write(sampler.series.to_json(indent=2))
        print(f"metrics time series -> {args.metrics_json}")
    if not ok:
        print("FAIL: distributed answers not bit-identical", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
