"""Chaos smoke: TPC-H Q6 under a 1% fabric-fault plan.

Runs the same Q6 workload twice through the RM engine — once clean, once
with every memory-fabric site faulting at 1% per consultation — and
reports the degraded-mode overhead. The contract checked here is the
paper's transparency claim under failure: every faulted run still
returns exactly the clean answer (the rowstore copy is always there to
fall back on), and the ledger prices the detour instead of hiding it.

Run: pytest benchmarks/bench_faults.py --benchmark-only
"""

import numpy as np

from repro import FaultInjector, FaultPlan, RelationalMemoryEngine, RowStoreEngine
from repro.core.ledger import CostLedger
from repro.workloads.tpch import Q6, generate_lineitem

NROWS = 30_000
QUERIES = 50
FAULT_RATE = 0.01


def _run_chaos():
    catalog, _ = generate_lineitem(nrows=NROWS)
    reference = RowStoreEngine(catalog).execute(Q6)

    clean_engine = RelationalMemoryEngine(catalog)
    clean_cycles = sum(clean_engine.execute(Q6).cycles for _ in range(QUERIES))

    chaos = RelationalMemoryEngine(
        catalog,
        fault_injector=FaultInjector(FaultPlan.uniform(FAULT_RATE, seed=1234)),
    )
    chaos_cycles = 0.0
    retry_cycles = 0.0
    degraded_cycles = 0.0
    wrong = 0
    for _ in range(QUERIES):
        res = chaos.execute(Q6)
        chaos_cycles += res.cycles
        retry_cycles += res.ledger.get(CostLedger.RETRY)
        degraded_cycles += res.ledger.get(CostLedger.DEGRADED)
        if not np.array_equal(
            res.result.columns["revenue"], reference.result.columns["revenue"]
        ):
            wrong += 1
    return {
        "clean_cycles": clean_cycles,
        "chaos_cycles": chaos_cycles,
        "overhead": chaos_cycles / clean_cycles,
        "faults_seen": chaos.faults_seen,
        "fallbacks": chaos.fallbacks,
        "breaker_opened": chaos.breaker.times_opened,
        "retry_cycles": retry_cycles,
        "degraded_cycles": degraded_cycles,
        "wrong_answers": wrong,
    }


def test_q6_under_one_percent_faults(benchmark, save_result):
    stats = benchmark.pedantic(_run_chaos, rounds=1, iterations=1)
    lines = [
        f"TPC-H Q6, {QUERIES} runs, {NROWS} rows, fabric fault rate {FAULT_RATE:.0%}",
        f"clean cycles     : {stats['clean_cycles']:.3e}",
        f"chaos cycles     : {stats['chaos_cycles']:.3e}",
        f"overhead         : {stats['overhead']:.3f}x",
        f"faults injected  : {stats['faults_seen']}",
        f"fallback queries : {stats['fallbacks']}",
        f"breaker opened   : {stats['breaker_opened']}",
        f"retry cycles     : {stats['retry_cycles']:.3e}",
        f"degraded cycles  : {stats['degraded_cycles']:.3e}",
        f"wrong answers    : {stats['wrong_answers']}",
    ]
    save_result("bench_faults_q6", "\n".join(lines))

    # Transparency: not one wrong or missing answer under chaos.
    assert stats["wrong_answers"] == 0
    # The plan did inject faults, and the engine survived every one.
    assert stats["faults_seen"] > 0
    # Degradation is priced, never free — but bounded: retries plus the
    # occasional rowstore detour, not a collapse.
    assert stats["overhead"] >= 1.0
    assert stats["overhead"] < 5.0
    assert stats["retry_cycles"] + stats["degraded_cycles"] > 0
