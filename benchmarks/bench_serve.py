"""Serving front-door benchmark: tenant isolation under overload.

Two seeded, fully simulated runs of the canonical multi-tenant scenario
(the same config the overload chaos harness attacks, minus fault
injection):

* **quiet** — the three protected OLTP tenants alone, at their steady
  offered load;
* **storm** — the same protected load plus the hostile analytics tenant
  bursting to ~10x its cycle quota.

The figure of merit is the *interference ratio*: each protected tenant's
OLTP p99 in the storm over its quiet p99. Admission control + weighted
fair queueing + per-tenant concurrency caps is exactly the machinery
that keeps this ratio near 1; remove any piece and it explodes. Every
number is simulated cycles from a seeded run, so the regression gate
(``scripts/bench_compare.py``) holds per-tenant p99s to the committed
baseline with the ``lower_is_better`` cycle rules.

Run as a script (writes the artifact consumed by CI)::

    PYTHONPATH=src python benchmarks/bench_serve.py --json BENCH_serve.json

Add ``--chart`` for the side-by-side per-tenant latency panels (the
interference-over-time view), or run under pytest-benchmark::

    pytest benchmarks/bench_serve.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional

from repro.chaos import overload_config, overload_specs
from repro.obs import MetricsRegistry
from repro.serve import ServeOracle, ServeScheduler, submit_open_loop, synthetic_executor

SEED = 17
HORIZON_CYCLES = 40_000_000.0
#: Sampling cadence of the --chart run, in simulated cycles.
SAMPLE_INTERVAL_CYCLES = 1_000_000.0
PROTECTED = ("app1", "app2", "app3")


def run_scenario(
    hostile: bool,
    seed: int = SEED,
    horizon: float = HORIZON_CYCLES,
    metrics: Optional[MetricsRegistry] = None,
    slo=None,
):
    """One drained front-door run; ``hostile`` adds the analytics tenant's
    offered load (its quota stays configured either way)."""
    config = overload_config()
    specs = [
        s for s in overload_specs() if hostile or s.tenant_id != "analytics"
    ]
    scheduler = ServeScheduler(
        config, synthetic_executor(seed=seed), metrics=metrics, slo=slo
    )
    submit_open_loop(scheduler, specs, horizon, seed=seed)
    report = scheduler.run_until_drained()
    violations = ServeOracle(config).verify(report.events)
    return report, violations


def run_all(seed: int = SEED, horizon: float = HORIZON_CYCLES) -> Dict[str, object]:
    t0 = time.perf_counter()
    quiet, quiet_bad = run_scenario(False, seed, horizon)
    storm, storm_bad = run_scenario(True, seed, horizon)
    ratios = {}
    for tenant in PROTECTED:
        q = quiet.lane(tenant, "oltp").percentile(99)
        s = storm.lane(tenant, "oltp").percentile(99)
        ratios[tenant] = s / q if q else 0.0
    return {
        "quiet": quiet.to_dict(),
        "storm": storm.to_dict(),
        "interference": {
            # p99(storm)/p99(quiet) per protected tenant — the isolation
            # headline. Dimensionless, deterministic, near 1.0 by design.
            "oltp_p99_ratio": ratios,
            "worst_oltp_p99_ratio": max(ratios.values()),
        },
        "oracle_violations": len(quiet_bad) + len(storm_bad),
        "seconds": time.perf_counter() - t0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-tenant serving isolation benchmark"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--horizon", type=float, default=HORIZON_CYCLES)
    parser.add_argument("--json", type=str, default="", help="write report here")
    parser.add_argument(
        "--chart", action="store_true",
        help="print per-tenant latency panels side by side (storm run)",
    )
    args = parser.parse_args(argv)

    report = run_all(args.seed, args.horizon)
    for scenario in ("quiet", "storm"):
        d = report[scenario]
        print(
            f"{scenario:>5}: {d['requests']} requests, "
            f"OLTP p99 {d['oltp_p99_cycles']:.0f} cycles, "
            f"utilization {d['utilization']:.2f}, "
            f"{d['degraded_mode_entries']} degraded-mode entries"
        )
    for tenant, ratio in report["interference"]["oltp_p99_ratio"].items():
        print(f"  {tenant}: storm/quiet OLTP p99 ratio {ratio:.2f}")
    print(f"oracle violations: {report['oracle_violations']}")

    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.json}")

    if args.chart:
        from repro.bench.chart import (
            metrics_chart,
            slo_burn_panels,
            tenant_latency_panels,
        )
        from repro.obs import SloMonitor, SloObjective

        metrics = MetricsRegistry()
        sampler = metrics.attach_sampler(interval_cycles=SAMPLE_INTERVAL_CYCLES)
        slo = SloMonitor(
            [
                SloObjective(tenant=t, objective="latency")
                for t in PROTECTED
            ]
            + [
                SloObjective(tenant=t, objective="availability")
                for t in PROTECTED
            ]
        )
        run_scenario(True, args.seed, args.horizon, metrics=metrics, slo=slo)
        sampler.sample_now()
        panels = tenant_latency_panels(sampler.series) + slo_burn_panels(
            sampler.series
        )
        print()
        print(metrics_chart(sampler.series, panels=panels,
                            width=40, height=10))
        for state in slo.states.values():
            print(
                f"  slo {state.objective.tenant}/{state.objective.objective}: "
                f"{state.breaches_total} breaches, "
                f"burn fast={state.burn_fast:.2f} slow={state.burn_slow:.2f}"
            )
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry point (reduced horizon for CI bench runs).
# ----------------------------------------------------------------------
def test_serve_isolation_benchmark(benchmark, save_result):
    report = benchmark.pedantic(
        run_all, args=(SEED, 10_000_000.0), rounds=1, iterations=1
    )
    lines = ["serve-isolation", "==============="]
    for tenant, ratio in report["interference"]["oltp_p99_ratio"].items():
        lines.append(f"{tenant} storm/quiet OLTP p99 ratio: {ratio:.2f}")
    lines.append(f"storm OLTP p99: {report['storm']['oltp_p99_cycles']:.0f} cycles")
    save_result("serve", "\n".join(lines))
    # The front door holds: the brute-force oracle found nothing...
    assert report["oracle_violations"] == 0
    # ...the hostile tenant was genuinely limited...
    hostile = report["storm"]["tenants"]["analytics"]["olap"]
    assert hostile["throttled"] + hostile["shed"] > 0
    # ...and protected tenants barely feel the storm (p99 within 3x of
    # quiet — without isolation this ratio lands in the tens).
    assert report["interference"]["worst_oltp_p99_ratio"] < 3.0


if __name__ == "__main__":
    sys.exit(main())
