"""Compression x fabric bench (§III-D): ratios and scattered-access cost.

Measures, per codec: the compression ratio on three TPC-H-ish column
shapes, and the *bytes a range decode must touch* — the executable form
of the paper's compatibility analysis (delta/dictionary/Huffman decode a
column-group range locally; RLE and LZ force a full decompression).

Run: pytest benchmarks/bench_compression.py --benchmark-only
"""

import numpy as np

from repro.bench.harness import Experiment
from repro.db.compression import all_codecs
from repro.workloads.tpch import generate_lineitem

RANGE = (40_000, 41_000)
NROWS = 80_000


def _columns():
    _, table = generate_lineitem(NROWS)
    return {
        "l_discount (tiny domain)": table.column("l_discount"),
        "l_orderkey (sorted)": table.column("l_orderkey"),
        "l_extendedprice (wide)": table.column("l_extendedprice"),
    }


def _range_touch_bytes(codec, enc) -> int:
    """Payload bytes a range decode inspects: positional for dictionary,
    block-local for the blocked codecs, the whole payload otherwise."""
    if not codec.fabric_compatible:
        return enc.nbytes
    if codec.name == "dictionary":
        import numpy as np

        width = np.dtype(enc.meta["code_dtype"]).itemsize
        return (RANGE[1] - RANGE[0]) * width + len(enc.meta["domain"])
    bs = enc.meta["block_size"]
    offsets = enc.meta["block_offsets"]
    first, last = RANGE[0] // bs, (RANGE[1] - 1) // bs
    end = offsets[last + 1] if last + 1 < len(offsets) else enc.nbytes
    return end - offsets[first]


def _run() -> Experiment:
    exp = Experiment(
        name="compression-x-fabric",
        x_label="codec",
        y_label="ratio / bytes",
        notes=f"lineitem columns, {NROWS} rows; range={RANGE}",
    )
    columns = _columns()
    for name, codec in all_codecs().items():
        for col_label, values in columns.items():
            enc = codec.encode(values)
            ratio = enc.ratio(values.astype(np.int64).nbytes)
            exp.add_point(name, f"ratio:{col_label}", ratio)
            # Correctness of the range decode, always.
            got = codec.decode_range(enc, *RANGE)
            assert np.array_equal(got, values.astype(np.int64)[RANGE[0] : RANGE[1]])
        enc = codec.encode(columns["l_discount (tiny domain)"])
        exp.add_point(name, "range_touch_bytes", _range_touch_bytes(codec, enc))
    return exp


def test_compression_fabric_compatibility(benchmark, save_result):
    exp = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("compression", exp.to_table())
    touch = dict(zip(exp.x_values, exp.series["range_touch_bytes"].values))
    # Fabric-compatible codecs touch a small, range-proportional slice;
    # RLE/LZ touch everything.
    assert touch["dictionary"] < touch["rle"]
    assert touch["delta"] < touch["lz77"]
    assert touch["huffman"] < touch["rle"]
    ratios = dict(zip(exp.x_values, exp.series["ratio:l_discount (tiny domain)"].values))
    assert ratios["dictionary"] > 4  # tiny domains compress hard
