"""Ablation: code-fragment reuse with and without the fabric (§III-B).

An ad-hoc dashboard workload fires structurally similar queries over
varying column subsets. On the row layout every subset compiles its own
fragment (offsets are baked in); through the fabric the packed layout
makes them one fragment. The bench reports hit rates and total
compilation cycles for both.

Run: pytest benchmarks/bench_codecache.py --benchmark-only
"""

from repro.bench.harness import Experiment
from repro.db.plan import bind
from repro.db.plan.codecache import CodeFragmentCache
from repro.db.sql import parse
from repro.workloads.synthetic import make_wide_table

N_QUERIES = 120


def _workload(catalog):
    """Ad-hoc two-column sums with one range predicate, columns rotating."""
    for i in range(N_QUERIES):
        a = i % 14
        b = (i + 1) % 14
        c = (i + 5) % 16
        yield bind(
            parse(f"SELECT sum(c{a} + c{b}) AS s FROM wide WHERE c{c} < 42"),
            catalog,
        )


def _run() -> Experiment:
    catalog, _ = make_wide_table(nrows=64)
    row_cache = CodeFragmentCache(capacity=32)
    eph_cache = CodeFragmentCache(capacity=32)
    for bound in _workload(catalog):
        row_cache.lookup(bound, "row")
        eph_cache.lookup(bound, "ephemeral")
    exp = Experiment(
        name="codecache-fabric-vs-row",
        x_label="layout",
        y_label="rate / cycles",
        notes=f"{N_QUERIES} ad-hoc queries, cache capacity 32",
    )
    for label, cache in (("row", row_cache), ("ephemeral", eph_cache)):
        exp.add_point(label, "hit_rate", cache.stats.hit_rate)
        exp.add_point(label, "compile_cycles", cache.stats.compile_cycles)
        exp.add_point(label, "resident_fragments", cache.resident)
    return exp


def test_codecache_reuse(benchmark, save_result):
    exp = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("ablation_codecache", exp.to_table())
    hit = dict(zip(exp.x_values, exp.series["hit_rate"].values))
    compile_cycles = dict(zip(exp.x_values, exp.series["compile_cycles"].values))
    assert hit["ephemeral"] > 0.9
    assert hit["row"] < 0.5
    assert compile_cycles["ephemeral"] < compile_cycles["row"] / 5
