"""Durability cost/recovery benchmark for the WAL subsystem.

Three questions, all with numbers the ledger can defend:

1. **What does durability cost?** The same seeded order-ledger write mix
   with ``wal=None`` vs a WAL on simulated flash: wall-clock txn/s plus
   the simulated cycles the ledger booked to ``wal_append`` (NAND program
   time dominates — commits are flush barriers).
2. **What does recovery cost as the log grows?** Crash after N txns and
   time :func:`repro.db.wal.recover` across a sweep of log lengths.
3. **What does checkpointing buy?** Sweep checkpoint cadence: checkpoint
   cycles paid up front vs log bytes/records left to replay at the crash.

Run as a script (writes the artifact consumed by CI)::

    PYTHONPATH=src python benchmarks/bench_recovery.py --json BENCH_recovery.json

or under pytest-benchmark (reduced sizes)::

    pytest benchmarks/bench_recovery.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.ledger import CostLedger
from repro.db.mvcc import TransactionManager
from repro.db.table import Table
from repro.db.wal import Checkpointer, WriteAheadLog, recover
from repro.errors import WriteConflictError
from repro.storage.ssd import SsdLog
from repro.workloads.htap import orders_schema


def run_mix(
    n_txns: int,
    seed: int = 0,
    with_wal: bool = False,
    checkpoint_every: Optional[int] = None,
    initial_rows: int = 100,
):
    """Drive the order-ledger write mix.

    Returns ``(manager, table, wal, seconds, last_checkpoint)`` where
    ``last_checkpoint`` is the most recent periodic checkpoint (never
    taken on the final round, so a redo tail always remains) or None.
    """
    rng = np.random.default_rng(seed)
    schema = orders_schema()
    table = Table(schema)
    wal = WriteAheadLog(device=SsdLog()) if with_wal else None
    manager = TransactionManager(wal=wal)
    checkpointer = Checkpointer(wal) if (wal and checkpoint_every) else None

    next_order = 0

    def new_order() -> dict:
        nonlocal next_order
        next_order += 1
        return {
            "o_id": next_order,
            "o_customer": int(rng.integers(1, 100)),
            "o_amount": float(rng.uniform(1, 200)),
            "o_status": 0,
        }

    seed_txn = manager.begin()
    for _ in range(initial_rows):
        seed_txn.insert(table, new_order())
    manager.commit(seed_txn)

    last_cp = None
    t0 = time.perf_counter()
    for i in range(n_txns):
        txn = manager.begin()
        try:
            txn.insert(table, new_order())
            never = np.iinfo(np.int64).max
            live = np.flatnonzero(
                (table.end_ts == never) & (table.begin_ts != never)
            )
            for old in rng.choice(live, size=min(2, len(live)), replace=False):
                txn.update(table, int(old), {"o_status": 1})
            manager.commit(txn)
        except WriteConflictError:  # pragma: no cover - sequential mix
            pass
        if (
            checkpointer is not None
            and (i + 1) % checkpoint_every == 0
            and i + 1 < n_txns
        ):
            last_cp = checkpointer.checkpoint(manager, [table])
    seconds = time.perf_counter() - t0
    return manager, table, wal, seconds, last_cp


def bench_wal_overhead(n_txns: int, seed: int = 0) -> Dict[str, object]:
    """Txn throughput and simulated cycles, WAL off vs on."""
    _, _, _, base_s, _ = run_mix(n_txns, seed, with_wal=False)
    manager, _, wal, wal_s, _ = run_mix(n_txns, seed, with_wal=True)
    return {
        "txns": n_txns,
        "no_wal_seconds": base_s,
        "no_wal_txns_per_sec": n_txns / base_s,
        "wal_seconds": wal_s,
        "wal_txns_per_sec": n_txns / wal_s,
        "wall_overhead_x": wal_s / base_s,
        "committed": manager.stats.committed,
        "log_bytes": wal.durable_bytes,
        "log_records": wal.stats.records,
        "flushes": wal.stats.flushes,
        "wal_append_cycles": wal.ledger.get(CostLedger.WAL_APPEND),
        "cycles_per_commit": wal.ledger.get(CostLedger.WAL_APPEND)
        / max(manager.stats.committed, 1),
    }


def bench_recovery_vs_log_length(
    lengths: List[int], seed: int = 0
) -> List[Dict[str, object]]:
    """Crash after N txns, recover, report time/cycles per log length."""
    out = []
    for n in lengths:
        _, table, wal, _, _ = run_mix(n, seed, with_wal=True)
        schema = table.schema
        ledger_before = wal.ledger.get(CostLedger.WAL_RECOVERY)
        t0 = time.perf_counter()
        res = recover(wal, schemas={schema.name: schema})
        seconds = time.perf_counter() - t0
        out.append(
            {
                "txns": n,
                "log_bytes": wal.durable_bytes,
                "records": res.report.records_scanned,
                "committed_redone": res.report.committed_redone,
                "recover_seconds": seconds,
                "wal_recovery_cycles": wal.ledger.get(CostLedger.WAL_RECOVERY)
                - ledger_before,
            }
        )
    return out


def bench_checkpoint_cadence(
    n_txns: int, cadences: List[Optional[int]], seed: int = 0
) -> List[Dict[str, object]]:
    """Checkpoint cost paid during the run vs redo left at the crash."""
    out = []
    for every in cadences:
        manager, table, wal, _, cp = run_mix(
            n_txns, seed, with_wal=True, checkpoint_every=every
        )
        schema = table.schema
        # Crash at the end of the run: recovery loads the last periodic
        # checkpoint (if any) and replays only the log tail behind it.
        t0 = time.perf_counter()
        res = recover(wal, checkpoint=cp, schemas={schema.name: schema})
        seconds = time.perf_counter() - t0
        out.append(
            {
                "checkpoint_every": every or 0,
                "log_bytes_at_crash": wal.durable_bytes,
                "records_replayed": res.report.records_scanned,
                "recover_seconds": seconds,
                "wal_checkpoint_cycles": wal.ledger.get(CostLedger.WAL_CHECKPOINT),
                "wal_recovery_cycles": wal.ledger.get(CostLedger.WAL_RECOVERY),
            }
        )
    return out


def run_all(n_txns: int, lengths: List[int]) -> Dict[str, object]:
    return {
        "overhead": bench_wal_overhead(n_txns),
        "recovery_vs_log_length": bench_recovery_vs_log_length(lengths),
        "checkpoint_cadence": bench_checkpoint_cadence(
            n_txns, [None, n_txns // 2, n_txns // 8]
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="WAL overhead + recovery benchmark")
    parser.add_argument("--txns", type=int, default=400)
    parser.add_argument(
        "--lengths",
        type=int,
        nargs="+",
        default=[100, 400, 1600],
        help="log lengths (in txns) for the recovery sweep",
    )
    parser.add_argument("--json", type=str, default="", help="write report here")
    args = parser.parse_args(argv)

    report = run_all(args.txns, args.lengths)
    o = report["overhead"]
    print(
        f"write mix, {o['txns']} txns: no-WAL {o['no_wal_txns_per_sec']:.0f} txn/s, "
        f"WAL {o['wal_txns_per_sec']:.0f} txn/s ({o['wall_overhead_x']:.2f}x wall), "
        f"{o['log_bytes']} log bytes, "
        f"{o['cycles_per_commit']:.0f} simulated cycles/commit in wal_append"
    )
    for r in report["recovery_vs_log_length"]:
        print(
            f"recovery after {r['txns']:>5} txns: {r['log_bytes']:>8} bytes, "
            f"{r['records']:>5} records -> {r['recover_seconds'] * 1e3:7.1f} ms, "
            f"{r['wal_recovery_cycles']:.0f} cycles"
        )
    for c in report["checkpoint_cadence"]:
        label = c["checkpoint_every"] or "never"
        print(
            f"checkpoint every {label!s:>5}: {c['records_replayed']:>5} records "
            f"to replay, checkpoint cost {c['wal_checkpoint_cycles']:.0f} cycles, "
            f"recovery {c['wal_recovery_cycles']:.0f} cycles"
        )
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.json}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry point (reduced sizes for CI bench runs).
# ----------------------------------------------------------------------
def test_recovery_benchmark(benchmark, save_result):
    report = benchmark.pedantic(
        run_all, args=(100, [50, 200]), rounds=1, iterations=1
    )
    o = report["overhead"]
    sweep = report["recovery_vs_log_length"]
    lines = [
        "wal-recovery",
        "============",
        f"txns: {o['txns']}",
        f"no-wal txn/s: {o['no_wal_txns_per_sec']:.0f}",
        f"wal txn/s: {o['wal_txns_per_sec']:.0f}",
        f"log bytes: {o['log_bytes']}",
        f"wal_append cycles/commit: {o['cycles_per_commit']:.0f}",
        f"recovery ms at {sweep[-1]['txns']} txns: "
        f"{sweep[-1]['recover_seconds'] * 1e3:.1f}",
    ]
    save_result("recovery", "\n".join(lines))
    # Durability must cost something and be visible in the right bucket...
    assert o["wal_append_cycles"] > 0
    assert o["log_bytes"] > 0
    # ...and recovery work must scale with the log, not be constant.
    assert sweep[-1]["records"] > sweep[0]["records"]
    assert sweep[-1]["wal_recovery_cycles"] > sweep[0]["wal_recovery_cycles"]


if __name__ == "__main__":
    sys.exit(main())
