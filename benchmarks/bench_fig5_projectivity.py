"""Figure 5: normalized execution time vs projectivity (ROW/COL/RM).

Regenerates the paper's projectivity sweep — 1 to 11 four-byte columns
out of a 64-byte row — and asserts the published shape: RM beats ROW
everywhere, COL wins below four columns, RM wins above.

Run: pytest benchmarks/bench_fig5_projectivity.py --benchmark-only
"""

from repro.bench import run_fig5

NROWS = 150_000


def test_fig5_projectivity_sweep(benchmark, save_result):
    exp = benchmark.pedantic(
        lambda: run_fig5(nrows=NROWS), rounds=1, iterations=1
    )
    save_result("fig5_projectivity", _render(exp))

    row_vs_rm = exp.ratio("row", "rm")
    col_vs_rm = exp.ratio("column", "rm")
    # Shape claims of the paper's Figure 5.
    assert all(r > 1.0 for r in row_vs_rm), "RM must beat ROW at every projectivity"
    assert all(c < 1.0 for c in col_vs_rm[:3]), "COL must win below 4 columns"
    assert all(c > 1.0 for c in col_vs_rm[5:]), "RM must win above 5 columns"
    crossover = next(i + 1 for i, c in enumerate(col_vs_rm) if c >= 1.0)
    assert 4 <= crossover <= 6, f"COL/RM crossover at {crossover}, paper says 4"


def _render(exp) -> str:
    lines = [exp.to_table(), ""]
    lines.append(
        "speedup rm-vs-row per projectivity: "
        + " ".join(f"{r:.2f}" for r in exp.ratio("row", "rm"))
    )
    lines.append(
        "col/rm ratio per projectivity   : "
        + " ".join(f"{r:.2f}" for r in exp.ratio("column", "rm"))
    )
    return "\n".join(lines)
