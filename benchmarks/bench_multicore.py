"""Multicore scaling on the paper's 4-core testbed.

Sweeps intra-query parallelism 1-4 threads on TPC-H Q6 and reports where
each design stops scaling:

* **ROW** saturates the DDR channel early — it moves every byte of every
  row, so two streaming cores already hit the bandwidth wall;
* **RM (FPGA)** scales until the single 100 MHz fabric engine becomes the
  producer bottleneck — one soft-logic engine cannot feed four cores;
* **RMC** (§IV-C, the engine integrated into the memory controller at
  the controller clock) moves that wall out and keeps scaling.

None of this is in the paper's evaluation; it quantifies the §IV-C
motivation ("pushing RM into the memory controller maximizes its
benefits") on the multicore axis.

Run: pytest benchmarks/bench_multicore.py --benchmark-only
"""

from repro.bench.harness import Experiment
from repro.db.engines import (
    ColumnStoreEngine,
    RelationalMemoryEngine,
    RowStoreEngine,
)
from repro.hw.config import ZYNQ_RMC, ZYNQ_ULTRASCALE
from repro.workloads.tpch import Q6, generate_lineitem

NROWS = 100_000
THREADS = (1, 2, 4)


def _run() -> Experiment:
    catalog, _ = generate_lineitem(NROWS)
    exp = Experiment(
        name="multicore-q6",
        x_label="threads",
        y_label="simulated cycles",
        notes=f"lineitem {NROWS} rows; rm=100MHz fabric, rmc=integrated",
    )
    for t in THREADS:
        exp.add_point(t, "row", RowStoreEngine(catalog, threads=t).execute(Q6).cycles)
        exp.add_point(
            t, "column", ColumnStoreEngine(catalog, threads=t).execute(Q6).cycles
        )
        exp.add_point(
            t,
            "rm",
            RelationalMemoryEngine(catalog, ZYNQ_ULTRASCALE, threads=t)
            .execute(Q6)
            .cycles,
        )
        exp.add_point(
            t,
            "rmc",
            RelationalMemoryEngine(catalog, ZYNQ_RMC, threads=t).execute(Q6).cycles,
        )
    return exp


def _speedup(exp, label):
    series = exp.series[label].values
    return series[0] / series[-1]


def test_multicore_scaling(benchmark, save_result):
    exp = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [exp.to_table(), ""]
    for label in ("row", "column", "rm", "rmc"):
        lines.append(f"speedup 1->4 threads {label:7}: {_speedup(exp, label):.2f}x")
    save_result("multicore", "\n".join(lines))

    # Everyone benefits from a second core.
    for label in ("row", "column", "rm", "rmc"):
        series = exp.series[label].values
        assert series[1] < series[0]
        assert all(b <= a * 1.001 for a, b in zip(series, series[1:]))
    # ROW hits the bandwidth wall before 4x.
    assert _speedup(exp, "row") < 3.0
    # The integrated controller out-scales the 100 MHz fabric.
    assert _speedup(exp, "rmc") > _speedup(exp, "rm")
    assert exp.series["rmc"].values[-1] <= exp.series["rm"].values[-1]
    # At full parallelism the fabric designs still beat ROW.
    assert exp.series["rmc"].values[-1] < exp.series["row"].values[-1]
