"""HTAP bench: the paper's headline single-layout claim, quantified.

Runs the mixed OLTP+analytics driver and compares the *true* analytic
cost per engine — including the layout conversions the column store must
run to stay current — plus the freshness lag each analytic round
observes. The fabric's promise (§I, §III-A): fresh data, one layout, no
conversion bookkeeping.

Run: pytest benchmarks/bench_htap.py --benchmark-only
"""

from repro.bench.harness import Experiment
from repro.workloads.htap import HtapDriver

ROUNDS = 5
TXNS_PER_ROUND = 120


def _run():
    driver = HtapDriver(initial_rows=20_000, seed=31)
    stats = driver.run_mixed(rounds=ROUNDS, txns_per_round=TXNS_PER_ROUND)

    exp = Experiment(
        name="htap-freshness-and-cost",
        x_label="engine",
        y_label="cycles / rows",
        notes=(
            f"{ROUNDS} rounds x {TXNS_PER_ROUND} txns; "
            f"{stats.commits} commits, {stats.aborts} aborts"
        ),
    )
    for name, cycles in stats.engine_cycles.items():
        exp.add_point(name, "query_cycles", cycles)
    exp.add_point("column", "conversion_cycles", stats.conversion_cycles)
    exp.add_point("column", "mean_freshness_lag_rows", stats.mean_freshness_lag)
    exp.add_point("rm", "conversion_cycles", 0.0)
    exp.add_point("rm", "mean_freshness_lag_rows", 0.0)
    return exp, stats


def test_htap_single_layout_wins(benchmark, save_result):
    exp, stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("htap", exp.to_table())
    q = dict(zip(exp.x_values, exp.series["query_cycles"].values))

    # The fabric answers analytics cheaper than the row baseline...
    assert q["rm"] < q["row"]
    # ...and beats the column store once conversions are included.
    col_total = q["column"] + stats.conversion_cycles
    assert q["rm"] < col_total
    # The column replica is stale at every analytic round; the fabric
    # reads the base data and never is.
    assert stats.mean_freshness_lag > 0
    assert stats.commits > 0
