"""HTAP bench: the paper's headline single-layout claim, quantified.

Runs the mixed OLTP+analytics driver and compares the *true* analytic
cost per engine — including the layout conversions the column store must
run to stay current — plus the freshness lag each analytic round
observes. The fabric's promise (§I, §III-A): fresh data, one layout, no
conversion bookkeeping.

Run: pytest benchmarks/bench_htap.py --benchmark-only

Run standalone to also emit the metrics time series (interference over
simulated time — the steady-state figure the paper motivates)::

    PYTHONPATH=src python benchmarks/bench_htap.py \\
        --json METRICS_htap.json --chart
"""

import argparse
import sys

from repro.bench.harness import Experiment
from repro.obs import MetricsRegistry
from repro.workloads.htap import HtapDriver

ROUNDS = 5
TXNS_PER_ROUND = 120
#: Sampling cadence of the standalone metrics run, in simulated cycles.
SAMPLE_INTERVAL_CYCLES = 2_000_000

#: The series the standalone chart shows: MVCC churn vs the column
#: store's conversion pressure vs the engines' scan volume.
CHART_SERIES = [
    "mvcc_versions_created",
    "mvcc_chain_len_max",
    'engine_rows_scanned{engine="column"}',
    'engine_rows_scanned{engine="rm"}',
]


def _run(metrics=None, rounds=ROUNDS, txns_per_round=TXNS_PER_ROUND,
         initial_rows=20_000, seed=31):
    driver = HtapDriver(initial_rows=initial_rows, seed=seed, metrics=metrics)
    stats = driver.run_mixed(rounds=rounds, txns_per_round=txns_per_round)

    exp = Experiment(
        name="htap-freshness-and-cost",
        x_label="engine",
        y_label="cycles / rows",
        notes=(
            f"{rounds} rounds x {txns_per_round} txns; "
            f"{stats.commits} commits, {stats.aborts} aborts"
        ),
    )
    for name, cycles in stats.engine_cycles.items():
        exp.add_point(name, "query_cycles", cycles)
    exp.add_point("column", "conversion_cycles", stats.conversion_cycles)
    exp.add_point("column", "mean_freshness_lag_rows", stats.mean_freshness_lag)
    exp.add_point("rm", "conversion_cycles", 0.0)
    exp.add_point("rm", "mean_freshness_lag_rows", 0.0)
    return exp, stats


def test_htap_single_layout_wins(benchmark, save_result):
    exp, stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("htap", exp.to_table())
    q = dict(zip(exp.x_values, exp.series["query_cycles"].values))

    # The fabric answers analytics cheaper than the row baseline...
    assert q["rm"] < q["row"]
    # ...and beats the column store once conversions are included.
    col_total = q["column"] + stats.conversion_cycles
    assert q["rm"] < col_total
    # The column replica is stale at every analytic round; the fabric
    # reads the base data and never is.
    assert stats.mean_freshness_lag > 0
    assert stats.commits > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="HTAP run with a sampled metrics time series."
    )
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--txns", type=int, default=TXNS_PER_ROUND)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=31)
    parser.add_argument(
        "--interval", type=float, default=SAMPLE_INTERVAL_CYCLES,
        help="sampling interval in simulated cycles",
    )
    parser.add_argument(
        "--json", default=None, help="write the metrics time series here"
    )
    parser.add_argument(
        "--prometheus", default=None,
        help="write the end-of-run Prometheus exposition here",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="print the interference-over-time ASCII chart",
    )
    args = parser.parse_args(argv)

    metrics = MetricsRegistry()
    sampler = metrics.attach_sampler(interval_cycles=args.interval)
    exp, stats = _run(
        metrics=metrics,
        rounds=args.rounds,
        txns_per_round=args.txns,
        initial_rows=args.rows,
        seed=args.seed,
    )
    sampler.sample_now()  # final flush so the series covers the whole run

    print(exp.to_table())
    print(
        f"samples: {len(sampler.series)} every {args.interval:g} cycles "
        f"({metrics.cycles:,.0f} simulated cycles total)"
    )
    if args.json:
        with open(args.json, "w") as f:
            f.write(sampler.series.to_json(indent=2))
        print(f"metrics time series -> {args.json}")
    if args.prometheus:
        with open(args.prometheus, "w") as f:
            f.write(metrics.to_prometheus())
        print(f"prometheus exposition -> {args.prometheus}")
    if args.chart:
        from repro.bench.chart import metrics_chart

        print()
        print(metrics_chart(sampler.series, CHART_SERIES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
