"""Ablation: MVCC timestamp filtering in hardware vs on the CPU (§III-C).

The paper's claim: "A key advantage of this approach is that the
timestamp comparison can be implemented in hardware, making this
implementation simple and performant." The RM engine evaluates
visibility in the fabric; the ROW and COL baselines pay two extracted
fields and two comparisons per row slot on the CPU. This bench measures
that gap directly on a version-heavy table.

Run: pytest benchmarks/bench_ablation_mvcc.py --benchmark-only
"""

from repro.bench.harness import Experiment
from repro.db.engines import all_engines
from repro.workloads.htap import HtapDriver


def _run() -> Experiment:
    driver = HtapDriver(initial_rows=30_000, seed=13)
    driver.run_oltp_burst(400, updates_per_txn=3)  # grow version chains
    snapshot = driver.manager.now
    exp = Experiment(
        name="ablation-mvcc-hardware-visibility",
        x_label="engine",
        y_label="simulated cycles",
        notes="orders table with version chains; snapshot scan",
    )
    sql = "SELECT sum(o_amount) AS s FROM orders"
    for name, engine in driver.engines.items():
        res = engine.execute(sql, snapshot_ts=snapshot)
        exp.add_point(name, "cycles", res.cycles)
        exp.add_point(name, "cpu_bucket", res.ledger.get("cpu"))
    # Sanity: all engines agree on the snapshot answer.
    answers = {
        name: engine.execute(sql, snapshot_ts=snapshot).result.scalar()
        for name, engine in driver.engines.items()
    }
    assert len({round(a, 4) for a in answers.values()}) == 1
    return exp


def test_mvcc_visibility_in_fabric(benchmark, save_result):
    exp = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("ablation_mvcc", exp.to_table())
    cycles = dict(zip(exp.x_values, exp.series["cycles"].values))
    # The fabric-filtered engine beats the CPU-filtered row baseline.
    assert cycles["rm"] < cycles["row"]
