"""Figures 6a/6b: RM speedup heatmaps over projection x selection grids.

Regenerates both 10x10 heatmaps (RM vs ROW, RM vs COL) and asserts the
published shape: 6a all above 1 in a moderate band; 6b below 1 in the
lower-left corner and well above 1 at high column counts.

Run: pytest benchmarks/bench_fig6_heatmaps.py --benchmark-only
"""

from repro.bench import run_fig6

NROWS = 60_000


def test_fig6_heatmaps(benchmark, save_result):
    vs_row, vs_col = benchmark.pedantic(
        lambda: run_fig6(nrows=NROWS), rounds=1, iterations=1
    )
    save_result("fig6a_rm_vs_row", vs_row.to_table())
    save_result("fig6b_rm_vs_col", vs_col.to_table())

    # Figure 6a: "RM consistently outperforms the direct row-wise access
    # by 1.3-1.5x" — we assert >1 everywhere in a moderate band.
    a_values = list(vs_row.values.values())
    assert min(a_values) > 1.0
    assert max(a_values) < 2.5

    # Figure 6b: COL wins when the total number of columns is small;
    # RM dominates as it grows (paper: crossover around 4, max ~2.2x).
    assert vs_col.region_mean(lambda s: s <= 2, lambda p: p <= 2) < 1.0
    assert vs_col.region_mean(lambda s: s >= 6, lambda p: p >= 6) > 1.0
    assert vs_col.get(1, 1) < 0.95
    assert max(vs_col.values.values()) > 1.4
