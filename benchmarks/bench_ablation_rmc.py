"""Ablation: FPGA-prototype RM vs the integrated RMC (§IV-C).

The paper argues that integrating the transform engine into the memory
controller "maximizes its benefits". This bench runs the Figure 5 sweep
on both platforms and reports where the integration pays: configure
latency (ISA vs MMIO), production throughput (controller clock vs soft
logic), and the end-to-end engine ordering (which must not change — RMC
is a faster fabric, not a different design).

Run: pytest benchmarks/bench_ablation_rmc.py --benchmark-only
"""

from repro.bench.harness import Experiment
from repro.bench.figures import run_fig5
from repro.db.engines import RelationalMemoryEngine
from repro.hw.config import ZYNQ_RMC, ZYNQ_ULTRASCALE
from repro.workloads.synthetic import make_wide_table, projectivity_query

NROWS = 100_000


def _run():
    fpga = run_fig5(nrows=NROWS, platform=ZYNQ_ULTRASCALE)
    rmc = run_fig5(nrows=NROWS, platform=ZYNQ_RMC)

    exp = Experiment(
        name="ablation-rm-vs-rmc",
        x_label="projectivity",
        y_label="rm cycles",
        notes=f"nrows={NROWS}; fpga = 100 MHz soft logic, rmc = integrated",
    )
    for i, k in enumerate(fpga.x_values):
        exp.add_point(k, "rm_fpga", fpga.series["rm_cycles"].values[i])
        exp.add_point(k, "rm_rmc", rmc.series["rm_cycles"].values[i])
        exp.add_point(k, "row", fpga.series["row_cycles"].values[i])

    # Configure-cost microbenchmark: a tiny table makes the one-off
    # configuration visible.
    catalog, _ = make_wide_table(nrows=64, name="tiny")
    sql = projectivity_query(2, name="tiny")
    fpga_small = RelationalMemoryEngine(catalog, ZYNQ_ULTRASCALE).execute(sql)
    rmc_small = RelationalMemoryEngine(catalog, ZYNQ_RMC).execute(sql)
    exp.add_point("configure", "rm_fpga", fpga_small.ledger.get("fabric_configure"))
    exp.add_point("configure", "rm_rmc", rmc_small.ledger.get("fabric_configure"))
    return exp


def test_rmc_integration(benchmark, save_result):
    exp = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("ablation_rmc", exp.to_table())
    fpga = exp.series["rm_fpga"].values[:-1]
    rmc = exp.series["rm_rmc"].values[:-1]
    row = exp.series["row"].values
    # The integrated engine is never slower, and still beats ROW.
    assert all(b <= a * 1.001 for a, b in zip(fpga, rmc))
    assert all(r < x for r, x in zip(rmc, row))
    # The ISA configure path is an order of magnitude cheaper than MMIO.
    cfg_fpga = exp.series["rm_fpga"].values[-1]
    cfg_rmc = exp.series["rm_rmc"].values[-1]
    assert cfg_rmc < cfg_fpga / 10
