"""Figures 7a/7b: TPC-H Q1 and Q6 execution time vs data size.

Regenerates both size sweeps (proportionally scaled — see DESIGN.md) and
asserts the published shape: Q1 compute-bound and similar across engines,
Q6 movement-bound with RM fastest at every size. The multi-way-join
shapes (Q3: lineitem ⋈ orders ⋈ customer, Q14: lineitem ⋈ part) run the
same sweep through all three engines — not a paper figure, but the same
proportional-scaling methodology applied to the vectorized join chain.

Run: pytest benchmarks/bench_fig7_tpch.py --benchmark-only
"""

import pytest

from repro.bench import run_fig7

SCALE = 1 / 16
SIZES = (2, 4, 8, 16, 32, 64, 128)
#: Join sweeps regenerate a four-table star per point; keep them smaller.
JOIN_SIZES = (2, 4, 8, 16)


def test_fig7a_q1(benchmark, save_result):
    exp = benchmark.pedantic(
        lambda: run_fig7(query="Q1", target_mbs=SIZES, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    save_result("fig7a_tpch_q1", exp.to_table())
    row_vs_rm = exp.ratio("row", "rm")
    col_vs_rm = exp.ratio("column", "rm")
    assert all(r >= 1.0 for r in row_vs_rm)
    assert all(c >= 0.98 for c in col_vs_rm)
    # "the execution time is similar for all layouts": within ~1.5x.
    assert max(row_vs_rm) < 1.55 and max(col_vs_rm) < 1.55


def test_fig7b_q6(benchmark, save_result):
    exp = benchmark.pedantic(
        lambda: run_fig7(query="Q6", target_mbs=SIZES, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    save_result("fig7b_tpch_q6", exp.to_table())
    row_vs_rm = exp.ratio("row", "rm")
    col_vs_rm = exp.ratio("column", "rm")
    # "RM accelerates the execution time by offering the optimal layout".
    assert all(r > 1.3 for r in row_vs_rm)
    assert all(c >= 0.99 for c in col_vs_rm)
    # Time scales linearly with data size for every engine.
    for name in ("row", "column", "rm"):
        series = exp.series[name].values
        assert series[-1] / series[0] == pytest.approx(64, rel=0.25)


def test_fig7_q3_joins(benchmark, save_result):
    """Q3-class three-way join + group-by + order-by through all engines."""
    exp = benchmark.pedantic(
        lambda: run_fig7(query="Q3", target_mbs=JOIN_SIZES, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    save_result("fig7_tpch_q3", exp.to_table())
    row_vs_rm = exp.ratio("row", "rm")
    col_vs_rm = exp.ratio("column", "rm")
    # The row engine pays full-stride tuple traffic on the fact scan; the
    # narrow layouts (column streams, fabric group) stay ahead.
    assert all(r > 1.15 for r in row_vs_rm)
    assert all(c >= 0.9 for c in col_vs_rm)
    # Join time scales linearly with fact-table size for every engine.
    for name in ("row", "column", "rm"):
        series = exp.series[name].values
        assert series[-1] / series[0] == pytest.approx(8, rel=0.25)


def test_fig7_q14_joins(benchmark, save_result):
    """Q14-class join + conditional aggregate through all engines."""
    exp = benchmark.pedantic(
        lambda: run_fig7(query="Q14", target_mbs=JOIN_SIZES, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    save_result("fig7_tpch_q14", exp.to_table())
    row_vs_rm = exp.ratio("row", "rm")
    col_vs_rm = exp.ratio("column", "rm")
    # Q14 touches 4 of 16 lineitem columns: the movement-bound regime,
    # where the fabric's packed layout wins clearly over full rows.
    assert all(r > 1.4 for r in row_vs_rm)
    assert all(c >= 0.8 for c in col_vs_rm)
    for name in ("row", "column", "rm"):
        series = exp.series[name].values
        assert series[-1] / series[0] == pytest.approx(8, rel=0.25)
