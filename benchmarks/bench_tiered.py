"""The tiered fabric bench (§VII Q3): compressed columns at rest, rows in
memory, ephemeral groups at the CPU.

Measures the cold-load path (device pages, decompression, link traffic)
against an uncompressed row image on flash, then the warm ephemeral
access on top — the full storage+memory composition the paper sketches.

Run: pytest benchmarks/bench_tiered.py --benchmark-only
"""

from repro.bench.harness import Experiment
from repro.storage import ColumnArchive, TieredFabric
from repro.workloads.tpch import generate_lineitem

NROWS = 60_000


def _run() -> Experiment:
    _, lineitem = generate_lineitem(NROWS)
    archive = ColumnArchive.from_table(lineitem)
    tiered = TieredFabric(archive)
    warm, report = tiered.materialize_rows()
    group = tiered.ephemeral(warm, ["l_extendedprice", "l_discount"])

    exp = Experiment(
        name="tiered-fabric",
        x_label="metric",
        y_label="value",
        notes=f"lineitem {NROWS} rows; archive ratio "
        f"{archive.compression_ratio:.2f}",
    )
    exp.add_point("cold_load", "pages_read", report.pages_read)
    exp.add_point("cold_load", "baseline_pages", report.baseline_pages)
    exp.add_point("cold_load", "total_us", report.total_us)
    exp.add_point("cold_load", "baseline_us", report.baseline_us)
    exp.add_point("warm_access", "packed_bytes", group.report.out_bytes)
    exp.add_point("warm_access", "produce_cycles", group.report.produce_cycles)
    return exp, archive, warm, lineitem


def test_tiered_fabric(benchmark, save_result):
    exp, archive, warm, lineitem = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("tiered_fabric", exp.to_table())
    import numpy as np

    # Correctness through both tiers.
    assert warm.nrows == lineitem.nrows
    assert np.array_equal(
        warm.column("l_discount"), lineitem.column("l_discount")
    )
    # Compression must reduce device reads; the cold load never loses.
    pages = dict(zip(["pages_read", "baseline_pages"],
                     [exp.series["pages_read"].values[0],
                      exp.series["baseline_pages"].values[0]]))
    assert pages["pages_read"] < pages["baseline_pages"]
    assert (
        exp.series["total_us"].values[0]
        <= exp.series["baseline_us"].values[0] * 1.001
    )
    assert archive.compression_ratio > 1.2
