"""Bench target: trace one TPC-H Q6 run and export it.

Produces the two observability artifacts of the tracing spine:

1. the EXPLAIN ANALYZE table (per-operator cycles, rows, DRAM bytes and
   cache hit rates) printed to stdout for every engine;
2. ``TRACE_q6.json`` — the Chrome trace-event export of one engine's
   run, loadable in Perfetto / ``chrome://tracing`` and schema-checked
   in CI by ``scripts/check_trace_schema.py``.

Before exporting, the script re-verifies the spine's core invariant on
each run: replaying the trace's charge events rebuilds the flat cost
ledger bit for bit.

``--dist N`` switches to the cross-process mode: Q6 scattered over an
N-shard :class:`~repro.dist.ShardCluster` of real worker processes, each
shipping its span batch back over the RPC pipe — the export then renders
one Perfetto track per shard (``--json TRACE_dist.json``).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_trace_export.py \
        --rows 20000 --engine rm --json TRACE_q6.json
    PYTHONPATH=src python benchmarks/bench_trace_export.py \
        --rows 20000 --dist 4 --json TRACE_dist.json
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import write_trace
from repro.db.engines import all_engines
from repro.obs import Trace, Tracer
from repro.workloads.tpch import Q6, generate_lineitem

ENGINES = ("row", "column", "rm")


def run_dist(nrows: int, nshards: int) -> Trace:
    """Q6 over a process-per-shard cluster, span batches grafted."""
    import numpy as np

    from repro.db.sharding import ShardedTable
    from repro.dist import DistConfig, ShardCluster, q6_plan

    _, table = generate_lineitem(nrows=nrows, seed=42)
    keys = table.column("l_orderkey")
    qs = np.linspace(0, 1, nshards + 1)[1:-1]
    bounds = sorted({int(np.quantile(keys, q)) for q in qs})
    sharded = ShardedTable(table.schema, "l_orderkey", bounds)
    sharded.bulk_load(
        {
            c.name: (
                table.column(c.name).view(f"S{c.dtype.width}").reshape(-1)
                if c.dtype.np_dtype is None
                else table.column(c.name)
            )
            for c in table.schema.user_columns
        }
    )
    tracer = Tracer()
    with ShardCluster(sharded, DistConfig()) as cluster:
        distributed = cluster.query(q6_plan(), tracer=tracer)
        serial = cluster.run_serial(q6_plan())
    if distributed.groups != serial.groups:
        raise AssertionError("distributed Q6 diverged from serial replay")
    trace = Trace(tracer.last)
    replayed = trace.to_ledger()
    if replayed.buckets != cluster.ledger.buckets:
        raise AssertionError("dist trace replay diverged from the ledger")
    return trace


def run(nrows: int, memory_model: str):
    """Execute Q6 on every engine with tracing; returns name → result."""
    catalog, _ = generate_lineitem(nrows=nrows, seed=42)
    engines = all_engines(catalog, memory_model=memory_model, tracer=Tracer())
    results = {}
    for name in ENGINES:
        out = engines[name].execute(Q6)
        replayed = out.trace.to_ledger()
        if replayed.buckets != out.ledger.buckets:
            raise AssertionError(
                f"{name}: trace replay diverged from the ledger"
            )
        results[name] = out
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument(
        "--model", choices=("analytic", "trace"), default="trace"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="rm",
        help="which engine's trace to export as Chrome JSON",
    )
    parser.add_argument("--json", default=None, help="trace-event output path")
    parser.add_argument(
        "--dist",
        type=int,
        default=0,
        metavar="N",
        help="export a cross-process trace from an N-shard cluster instead",
    )
    args = parser.parse_args(argv)

    if args.dist:
        trace = run_dist(args.rows, args.dist)
        print(f"=== dist — Q6, {args.rows} rows, {args.dist} shards ===")
        print(trace.render())
        if args.json:
            path = write_trace(trace, args.json)
            print(f"wrote {path} ({args.dist}-shard cross-process trace)")
        return 0

    results = run(args.rows, args.model)
    for name, out in results.items():
        print(f"=== {name} — Q6, {args.rows} rows, {args.model} model ===")
        print(out.trace.render())
        print()

    if args.json:
        path = write_trace(results[args.engine].trace, args.json)
        print(f"wrote {path} ({args.engine} engine trace)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
