"""Relational Storage bench (§IV-D): host traffic and latency with and
without in-storage transformation.

Three strategies over an SSD-resident lineitem table answering a Q6-style
question: legacy full scan, in-device projection+selection, in-device
aggregation. The fabric's storage instance must cut host bytes by an
order of magnitude and win on latency.

Run: pytest benchmarks/bench_storage_pushdown.py --benchmark-only
"""

from repro.bench.harness import Experiment
from repro.core.selection import CompareOp, FabricAggregate, FabricFilter, FabricPredicate
from repro.storage import RelationalStorage, SsdTable
from repro.workloads.tpch import generate_lineitem

NROWS = 150_000


def _run() -> Experiment:
    _, table = generate_lineitem(NROWS)
    ssd = SsdTable(table)
    rs = RelationalStorage(ssd)
    selection = FabricFilter.of(
        FabricPredicate("l_quantity", CompareOp.LT, 2400),
        FabricPredicate("l_discount", CompareOp.GE, 5),
        FabricPredicate("l_discount", CompareOp.LE, 7),
    )
    geometry = table.schema.geometry(["l_extendedprice", "l_discount"])
    base = table.schema.full_geometry()

    exp = Experiment(
        name="storage-pushdown",
        x_label="strategy",
        y_label="microseconds / bytes",
        notes=f"lineitem {NROWS} rows on simulated SmartSSD",
    )
    _, legacy = ssd.scan_rows()
    exp.add_point("legacy-scan", "us", legacy.total_us)
    exp.add_point("legacy-scan", "host_bytes", legacy.host_bytes)

    group = rs.configure(table.frame, geometry, base_geometry=base, fabric_filter=selection)
    exp.add_point("rs-project-select", "us", group.report.total_us)
    exp.add_point("rs-project-select", "host_bytes", group.report.host_bytes)

    _, agg_report = rs.aggregate(
        base, FabricAggregate("l_extendedprice", "count"), fabric_filter=selection
    )
    exp.add_point("rs-aggregate", "us", agg_report.total_us)
    exp.add_point("rs-aggregate", "host_bytes", agg_report.host_bytes)
    return exp


def test_storage_pushdown(benchmark, save_result):
    exp = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("storage_pushdown", exp.to_table())
    us = dict(zip(exp.x_values, exp.series["us"].values))
    host = dict(zip(exp.x_values, exp.series["host_bytes"].values))
    assert us["rs-project-select"] < us["legacy-scan"]
    assert us["rs-aggregate"] <= us["rs-project-select"]
    assert host["rs-project-select"] < host["legacy-scan"] / 10
    assert host["rs-aggregate"] == 8
