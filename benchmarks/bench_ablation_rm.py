"""Ablations on the RM hardware parameters: fabric clock and buffer size.

The prototype runs at 100 MHz with a 2 MB on-fabric data memory
(Section V). These sweeps probe how sensitive the headline results are
to both choices — the design-space questions a hardware team would ask.

Run: pytest benchmarks/bench_ablation_rm.py --benchmark-only
"""

from repro.bench import run_buffer_ablation, run_rm_clock_ablation

CLOCKS = (50, 100, 200, 400)
BUFFERS_KB = (64, 256, 1024, 2048, 8192)


def test_rm_clock_sweep(benchmark, save_result):
    exp = benchmark.pedantic(
        lambda: run_rm_clock_ablation(nrows=100_000, clocks_mhz=CLOCKS),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_rm_clock", exp.to_table())
    rm = exp.series["rm"].values
    # Faster fabric never hurts; once the consume side dominates, extra
    # clock stops paying (the curve flattens).
    assert all(b <= a for a, b in zip(rm, rm[1:]))
    row = exp.series["row"].values
    assert all(abs(r - row[0]) < row[0] * 0.01 for r in row)  # ROW unaffected


def test_rm_buffer_sweep(benchmark, save_result):
    exp = benchmark.pedantic(
        lambda: run_buffer_ablation(nrows=300_000, buffer_kb=BUFFERS_KB),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_rm_buffer", exp.to_table())
    stalls = exp.series["refill_stall"].values
    total = exp.series["rm"].values
    assert stalls[0] > stalls[-1], "small buffers must stall more"
    assert all(b <= a for a, b in zip(total, total[1:])), "bigger buffer never hurts"
    # The paper's 2 MB choice: stalls are already negligible there.
    idx_2mb = BUFFERS_KB.index(2048)
    assert stalls[idx_2mb] / total[idx_2mb] < 0.02
