"""Tests for range sharding with the fabric's ranged column-group API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.sharding import ShardedTable
from repro.workloads.synthetic import wide_schema
from repro.errors import SchemaError


def make_sharded(boundaries=(100, 200, 300), nrows=2000, seed=1):
    st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", list(boundaries))
    rng = np.random.default_rng(seed)
    st_.bulk_load(
        {f"c{i}": rng.integers(0, 400, nrows, dtype=np.int32) for i in range(4)}
    )
    return st_


class TestRouting:
    def test_shard_of(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [100, 200])
        assert st_.shard_of(0) == 0
        assert st_.shard_of(99) == 0
        assert st_.shard_of(100) == 1
        assert st_.shard_of(199) == 1
        assert st_.shard_of(200) == 2
        assert st_.shard_of(10**6) == 2

    def test_shards_for_range(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [100, 200])
        assert st_.shards_for_range(0, 50) == [0]
        assert st_.shards_for_range(50, 150) == [0, 1]
        assert st_.shards_for_range(0, 300) == [0, 1, 2]
        assert st_.shards_for_range(150, 150) == [1]
        assert st_.shards_for_range(5, 1) == []

    def test_shards_for_range_open_ends(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [100, 200])
        assert st_.shards_for_range() == [0, 1, 2]
        assert st_.shards_for_range(low=150) == [1, 2]
        assert st_.shards_for_range(high=150) == [0, 1]
        assert st_.shards_for_range(low=-(10**9)) == [0, 1, 2]
        assert st_.shards_for_range(high=10**9) == [0, 1, 2]

    def test_shards_for_range_boundary_keys(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [100, 200])
        # A boundary key belongs to the right-hand shard exclusively.
        assert st_.shards_for_range(100, 100) == [1]
        assert st_.shards_for_range(99, 100) == [0, 1]
        assert st_.shards_for_range(200, 200) == [2]

    def test_single_shard_table(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [])
        assert st_.shards_for_range() == [0]
        assert st_.shards_for_range(5, 900) == [0]
        assert st_.shard_bounds(0) == (None, None)

    def test_shard_bounds(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [100, 200])
        assert st_.shard_bounds(0) == (None, 99)
        assert st_.shard_bounds(1) == (100, 199)
        assert st_.shard_bounds(2) == (200, None)

    def test_shard_bounds_out_of_range(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [100])
        with pytest.raises(SchemaError):
            st_.shard_bounds(2)
        with pytest.raises(SchemaError):
            st_.shard_bounds(-1)

    def test_shard_bounds_round_trip_with_routing(self):
        st_ = ShardedTable(
            wide_schema(ncols=4, row_bytes=16), "c0", [100, 200, 300]
        )
        for i in range(len(st_.shards)):
            lo, hi = st_.shard_bounds(i)
            for key in (lo, hi):
                if key is not None:
                    assert st_.shard_of(key) == i

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(SchemaError):
            ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [200, 100])

    def test_non_numeric_key_rejected(self):
        from repro.db import Column, TableSchema
        from repro.db.types import CHAR, INT64

        schema = TableSchema("s", [Column("k", CHAR(4)), Column("v", INT64)])
        with pytest.raises(SchemaError):
            ShardedTable(schema, "k", [10])


class TestIngestion:
    def test_insert_routes_by_key(self):
        st_ = ShardedTable(wide_schema(ncols=4, row_bytes=16), "c0", [100])
        shard, slot = st_.insert({"c0": 42, "c1": 0, "c2": 0, "c3": 0})
        assert shard == 0 and slot == 0
        shard, _ = st_.insert({"c0": 150, "c1": 0, "c2": 0, "c3": 0})
        assert shard == 1
        assert st_.nrows == 2

    def test_bulk_load_partitions_correctly(self):
        st_ = make_sharded()
        for i, shard in enumerate(st_.shards):
            keys = shard.column_values("c0")
            lo = st_.boundaries[i - 1] if i > 0 else -(2**31)
            hi = st_.boundaries[i] if i < len(st_.boundaries) else 2**31
            assert (keys >= lo).all() and (keys < hi).all()

    def test_no_rows_lost(self):
        st_ = make_sharded(nrows=1234)
        assert st_.nrows == 1234


class TestRangedColumnGroups:
    def test_full_scan_touches_all_nonempty_shards(self):
        st_ = make_sharded()
        scans = st_.column_group(["c1"])
        assert len(scans) == sum(1 for s in st_.shards if s.nrows)
        total = sum(len(s.group) for s in scans)
        assert total == st_.nrows

    def test_interior_shard_ships_unfiltered(self):
        st_ = make_sharded()
        scans = st_.column_group(["c0"], key_low=0, key_high=399)
        for scan in scans:
            assert len(scan.group) == st_.shards[scan.shard_index].nrows

    def test_range_only_touches_overlapping_shards(self):
        st_ = make_sharded(boundaries=(100, 200, 300))
        scans = st_.column_group(["c0"], key_low=120, key_high=180)
        assert [s.shard_index for s in scans] == [1]

    def test_boundary_shards_filtered_in_fabric(self):
        st_ = make_sharded()
        values = st_.gather_column("c0", 150, 250)
        assert (values >= 150).all() and (values <= 250).all()
        all_keys = np.concatenate([s.column_values("c0") for s in st_.shards])
        expected = np.sort(all_keys[(all_keys >= 150) & (all_keys <= 250)])
        assert np.array_equal(np.sort(values), expected)

    def test_reports_attached_per_shard(self):
        st_ = make_sharded()
        scans = st_.column_group(["c1", "c2"], key_low=0, key_high=99)
        assert all(s.report.produce_cycles > 0 for s in scans)

    def test_empty_range(self):
        st_ = make_sharded()
        empty = st_.gather_column("c0", 500, 600)
        assert empty.size == 0
        # Dtype must match the decoded column so callers can concatenate.
        assert empty.dtype == st_.shards[0].column_values("c0").dtype

    def test_boundary_filter_interior_shard_is_none(self):
        st_ = make_sharded(boundaries=(100, 200, 300))
        # Shard 1 is [100, 199]; a range covering it needs no comparator.
        assert st_._boundary_filter(1, 50, 250) is None
        assert st_._boundary_filter(1, 100, 199) is None
        assert st_._boundary_filter(1, None, None) is None

    def test_boundary_filter_cuts_only_where_needed(self):
        from repro.core.selection import CompareOp

        st_ = make_sharded(boundaries=(100, 200, 300))
        low_cut = st_._boundary_filter(1, 150, 250)
        assert [p.op for p in low_cut.predicates] == [CompareOp.GE]
        high_cut = st_._boundary_filter(1, 50, 150)
        assert [p.op for p in high_cut.predicates] == [CompareOp.LE]
        both = st_._boundary_filter(1, 120, 180)
        assert [p.op for p in both.predicates] == [CompareOp.GE, CompareOp.LE]

    def test_boundary_filter_open_edge_shards(self):
        from repro.core.selection import CompareOp

        st_ = make_sharded(boundaries=(100, 200, 300))
        # First/last shards have an open end: only the closing bound cuts.
        first = st_._boundary_filter(0, None, 50)
        assert [p.op for p in first.predicates] == [CompareOp.LE]
        last = st_._boundary_filter(3, 350, None)
        assert [p.op for p in last.predicates] == [CompareOp.GE]
        assert st_._boundary_filter(0, None, None) is None

    @given(
        lo=st.integers(min_value=-50, max_value=450),
        hi=st.integers(min_value=-50, max_value=450),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_ranged_gather_matches_flat_filter(self, lo, hi, seed):
        lo, hi = min(lo, hi), max(lo, hi)
        st_ = make_sharded(nrows=500, seed=seed)
        got = np.sort(st_.gather_column("c0", lo, hi))
        all_keys = np.concatenate(
            [s.column_values("c0") for s in st_.shards if s.nrows]
        )
        expected = np.sort(all_keys[(all_keys >= lo) & (all_keys <= hi)])
        assert np.array_equal(got, expected)
