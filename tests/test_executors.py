"""Tests for the vectorized executor, with the Volcano interpreter as the
independent reference on every query shape the subset supports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Catalog, Column, TableSchema
from repro.db.plan import bind
from repro.db.sql import parse
from repro.db.types import CHAR, INT64
from repro.db.exec import QueryResult, results_equal, run_vector, run_volcano
from repro.errors import ExecutionError


def columns_for(bound, table):
    return {n: table.column_values(n) for n in bound.referenced_columns}


def both(sql, catalog, table):
    b = bind(parse(sql), catalog)
    cols = columns_for(b, table)
    return run_vector(b, cols), run_volcano(b, cols)


QUERIES = [
    "SELECT id, qty FROM mixed WHERE qty > 25",
    "SELECT sum(price) AS s, count(*) AS n FROM mixed",
    "SELECT grp, sum(price * qty) AS rev, avg(qty) AS aq, min(price) AS lo, "
    "max(price) AS hi, count(*) AS n FROM mixed GROUP BY grp ORDER BY grp",
    "SELECT id FROM mixed WHERE qty BETWEEN 10 AND 20 ORDER BY id DESC LIMIT 7",
    "SELECT grp, count(*) AS n FROM mixed WHERE price > 500 GROUP BY grp ORDER BY n DESC, grp",
    "SELECT sum(qty) AS s FROM mixed WHERE qty > 100",  # empty qualifying set
    "SELECT id, price FROM mixed WHERE grp = 'aa' AND qty < 10",
    "SELECT qty, count(*) AS n FROM mixed GROUP BY qty ORDER BY qty LIMIT 5",
]


class TestVectorVsVolcano:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_equivalence(self, mixed_catalog, sql):
        catalog, table = mixed_catalog
        vec, vol = both(sql, catalog, table)
        assert results_equal(vec, vol), f"{sql}\n{vec.rows()[:5]}\nvs\n{vol.rows()[:5]}"

    def test_join_equivalence(self, mixed_catalog):
        catalog, table = mixed_catalog
        lookup = catalog.create_table(
            TableSchema("grps", [Column("code", CHAR(2)), Column("weight", INT64)])
        )
        lookup.append_rows(
            [
                {"code": "aa", "weight": 1},
                {"code": "bb", "weight": 2},
                {"code": "cc", "weight": 3},
            ]
        )
        sql = (
            "SELECT sum(qty * weight) AS s FROM mixed JOIN grps ON grp = code "
            "WHERE qty < 30"
        )
        vec, vol = both(sql, catalog, table)
        assert results_equal(vec, vol)

    def test_join_duplicates_on_build_side(self, mixed_catalog):
        catalog, table = mixed_catalog
        lookup = catalog.create_table(
            TableSchema("dups", [Column("code", CHAR(2)), Column("w", INT64)])
        )
        lookup.append_rows(
            [{"code": "aa", "w": 1}, {"code": "aa", "w": 10}, {"code": "bb", "w": 2}]
        )
        sql = "SELECT count(*) AS n FROM mixed JOIN dups ON grp = code"
        vec, vol = both(sql, catalog, table)
        assert results_equal(vec, vol)
        n_aa = int((table.column_values("grp") == b"aa").sum())
        n_bb = int((table.column_values("grp") == b"bb").sum())
        assert vec.scalar() == 2 * n_aa + n_bb


class TestAggregates:
    def test_global_aggregate_on_empty_input_yields_one_row(self, mixed_catalog):
        catalog, table = mixed_catalog
        b = bind(parse("SELECT count(*) AS n FROM mixed WHERE qty > 10000"), catalog)
        res = run_vector(b, columns_for(b, table))
        assert res.nrows == 1
        assert res.scalar() == 0

    def test_avg(self, mixed_catalog):
        catalog, table = mixed_catalog
        b = bind(parse("SELECT avg(qty) AS a FROM mixed"), catalog)
        res = run_vector(b, columns_for(b, table))
        assert res.scalar() == pytest.approx(float(table.column_values("qty").mean()))

    def test_multi_key_group(self, mixed_catalog):
        catalog, table = mixed_catalog
        sql = "SELECT grp, qty, count(*) AS n FROM mixed GROUP BY grp, qty ORDER BY grp, qty"
        vec, vol = both(sql, catalog, table)
        assert results_equal(vec, vol)
        assert vec.column("n").sum() == table.nrows


class TestResultType:
    def test_ragged_rejected(self):
        with pytest.raises(ExecutionError):
            QueryResult(
                names=("a", "b"),
                columns={"a": np.array([1]), "b": np.array([1, 2])},
            )

    def test_scalar_requires_1x1(self, mixed_catalog):
        catalog, table = mixed_catalog
        b = bind(parse("SELECT id, qty FROM mixed"), catalog)
        res = run_vector(b, columns_for(b, table))
        with pytest.raises(ExecutionError):
            res.scalar()

    def test_rows_decode_bytes(self):
        res = QueryResult(
            names=("g",), columns={"g": np.array([b"ab\x00"], dtype="S3")}
        )
        assert res.rows() == [("ab",)]

    def test_to_dicts(self):
        res = QueryResult(names=("x",), columns={"x": np.array([1, 2])})
        assert res.to_dicts() == [{"x": 1}, {"x": 2}]

    def test_results_equal_float_tolerance(self):
        a = QueryResult(names=("x",), columns={"x": np.array([1.0])})
        b = QueryResult(names=("x",), columns={"x": np.array([1.0 + 1e-12])})
        assert results_equal(a, b)

    def test_results_not_equal_names(self):
        a = QueryResult(names=("x",), columns={"x": np.array([1])})
        b = QueryResult(names=("y",), columns={"y": np.array([1])})
        assert not results_equal(a, b)


class TestRandomizedEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        threshold=st.integers(min_value=0, max_value=60),
        limit=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_filter_order_limit(self, seed, threshold, limit):
        rng = np.random.default_rng(seed)
        catalog = Catalog()
        table = catalog.create_table(
            TableSchema("r", [Column("k", INT64), Column("v", INT64)])
        )
        n = int(rng.integers(1, 60))
        table.append_arrays(
            {
                "k": rng.integers(0, 50, n),
                "v": rng.integers(0, 100, n),
            }
        )
        sql = (
            f"SELECT k, v FROM r WHERE v > {threshold} "
            f"ORDER BY k, v DESC LIMIT {limit}"
        )
        b = bind(parse(sql), catalog)
        cols = {name: table.column_values(name) for name in b.referenced_columns}
        assert results_equal(run_vector(b, cols), run_volcano(b, cols))
