"""Tests for table statistics and statistics-backed selectivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Catalog, Column, TableSchema
from repro.db.expr import And, Between, ColumnRef, Compare, Literal, Not, Or
from repro.db.stats import TableStats, selectivity_with_stats
from repro.db.types import CHAR, INT64


@pytest.fixture
def stats_table():
    schema = TableSchema(
        "s", [Column("u", INT64), Column("g", CHAR(1)), Column("k", INT64)]
    )
    catalog = Catalog()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(6)
    n = 10_000
    table.append_arrays(
        {
            "u": rng.integers(0, 1000, n),  # uniform 0..999
            "g": rng.choice(np.array([b"a", b"b"], dtype="S1"), n),
            "k": np.arange(n, dtype=np.int64),  # unique key
        }
    )
    return catalog, table


class TestCollection:
    def test_basic_stats(self, stats_table):
        _, table = stats_table
        stats = TableStats.collect(table)
        assert stats.nrows == 10_000
        u = stats.column("u")
        assert u.min_value == pytest.approx(table.column_values("u").min())
        assert u.max_value == pytest.approx(table.column_values("u").max())
        assert 900 <= u.ndv <= 1000
        assert stats.column("k").ndv == 10_000

    def test_char_column_has_ndv_only(self, stats_table):
        _, table = stats_table
        stats = TableStats.collect(table)
        g = stats.column("g")
        assert g.ndv == 2
        assert g.min_value is None

    def test_empty_table(self):
        schema = TableSchema("e", [Column("a", INT64)])
        table = Catalog().create_table(schema)
        stats = TableStats.collect(table)
        assert stats.nrows == 0
        assert stats.column("a").ndv == 0

    def test_missing_column(self, stats_table):
        _, table = stats_table
        assert TableStats.collect(table).column("zz") is None


class TestSelectivity:
    def estimate(self, expr, table):
        return selectivity_with_stats(expr, TableStats.collect(table))

    def test_equality_uses_ndv(self, stats_table):
        _, table = stats_table
        sel = self.estimate(Compare("=", ColumnRef("k"), Literal(5)), table)
        assert sel == pytest.approx(1 / 10_000)

    def test_range_interpolates(self, stats_table):
        _, table = stats_table
        sel = self.estimate(Compare("<", ColumnRef("u"), Literal(250)), table)
        assert sel == pytest.approx(0.25, abs=0.03)

    def test_flipped_comparison(self, stats_table):
        _, table = stats_table
        # 250 > u  ==  u < 250
        sel = self.estimate(Compare(">", Literal(250), ColumnRef("u")), table)
        assert sel == pytest.approx(0.25, abs=0.03)

    def test_between(self, stats_table):
        _, table = stats_table
        sel = self.estimate(
            Between(ColumnRef("u"), Literal(100), Literal(300)), table
        )
        assert sel == pytest.approx(0.2, abs=0.03)

    def test_out_of_range_clamps(self, stats_table):
        _, table = stats_table
        assert self.estimate(Compare("<", ColumnRef("u"), Literal(-5)), table) == 0.0
        assert self.estimate(Compare("<", ColumnRef("u"), Literal(10**9)), table) == 1.0

    def test_conjunction_multiplies(self, stats_table):
        _, table = stats_table
        expr = And(
            terms=(
                Compare("<", ColumnRef("u"), Literal(500)),
                Compare("=", ColumnRef("g"), Literal(b"a")),
            )
        )
        # g is CHAR: no range stats, falls back to NDV? CHAR literal is
        # not numeric, so the rule constant applies for that conjunct.
        sel = self.estimate(expr, table)
        assert 0.0 < sel < 0.5

    def test_not_inverts(self, stats_table):
        _, table = stats_table
        sel = self.estimate(
            Not(Compare("<", ColumnRef("u"), Literal(250))), table
        )
        assert sel == pytest.approx(0.75, abs=0.03)

    def test_none_is_one(self, stats_table):
        _, table = stats_table
        assert self.estimate(None, table) == 1.0

    @given(threshold=st.integers(min_value=0, max_value=999))
    @settings(max_examples=25, deadline=None)
    def test_matches_true_fraction_on_uniform_data(self, threshold):
        rng = np.random.default_rng(9)
        schema = TableSchema("p", [Column("x", INT64)])
        table = Catalog().create_table(schema)
        values = rng.integers(0, 1000, 5000)
        table.append_arrays({"x": values})
        sel = selectivity_with_stats(
            Compare("<", ColumnRef("x"), Literal(threshold)),
            TableStats.collect(table),
        )
        true_frac = float((values < threshold).mean())
        assert sel == pytest.approx(true_frac, abs=0.05)


class TestCatalogIntegration:
    def test_analyze_and_staleness(self, stats_table):
        catalog, table = stats_table
        assert catalog.stats_of("s") is None
        stats = catalog.analyze("s")
        assert catalog.stats_of("s") is stats
        table.append_row({"u": 1, "g": "a", "k": 10_001})
        assert catalog.stats_of("s") is None  # stale after mutation

    def test_optimizer_uses_stats(self, stats_table):
        """With statistics, a highly selective range query's estimates
        shrink relative to the rule-based default."""
        from repro.db.plan import bind
        from repro.db.plan.cost import CostModel
        from repro.db.sql import parse

        catalog, table = stats_table
        stats = catalog.analyze("s")
        bound = bind(parse("SELECT k FROM s WHERE u < 10"), catalog)
        model = CostModel()
        with_stats = model.estimate_row_scan(bound, stats).cycles
        without = model.estimate_row_scan(bound).cycles
        assert with_stats < without  # fewer qualifying rows estimated
