"""The unified statement pipeline: Session end to end.

One front door — ``sql.parse -> plan.bind -> plan.logical ->
plan.optimizer -> exec`` for SELECTs, MVCC transactions over the WAL
for DML — plus the observability contract: spans, ``sql_*`` metrics,
and EXPLAIN / EXPLAIN ANALYZE.
"""

import math

import pytest

from repro.db.sql.pipeline import Session, split_statements
from repro.db.wal import WriteAheadLog, recover
from repro.errors import SqlError
from repro.obs import MetricsRegistry, Tracer
from repro.storage.ssd import SsdLog


def _seed(s: Session) -> None:
    s.execute("CREATE TABLE t (id INT32, v INT32, tag CHAR(4))")
    s.execute(
        "INSERT INTO t (id, v, tag) VALUES "
        "(1, 10, 'oak'), (2, 20, 'elm'), (3, 30, 'oak')"
    )


@pytest.fixture
def session():
    s = Session()
    _seed(s)
    yield s
    s.close()


# ----------------------------------------------------------------------
# SELECT through the full pipeline.
# ----------------------------------------------------------------------
def test_select_returns_rows_and_names(session):
    result = session.execute(
        "SELECT tag AS t, sum(v) AS total FROM t GROUP BY tag"
    )
    assert result.kind == "select"
    assert result.names == ("t", "total")
    assert result.rows == [("elm", 20.0), ("oak", 40.0)]
    assert result.cycles > 0


def test_volcano_and_vector_sessions_agree():
    answers = []
    for mode in ("volcano", "vector"):
        s = Session(exec_mode=mode)
        _seed(s)
        r = s.execute("SELECT id AS c0, v * 2 AS c1 FROM t ORDER BY c0 DESC")
        answers.append((r.names, r.rows))
        s.close()
    assert answers[0] == answers[1] == (
        ("c0", "c1"),
        [(3, 60), (2, 40), (1, 20)],
    )


def test_scalar_subquery_folds_and_counts(session):
    result = session.execute(
        "SELECT id AS c0 FROM t WHERE v > (SELECT avg(v) FROM t) ORDER BY c0"
    )
    assert result.rows == [(3,)]
    assert session.stats.subqueries_folded == 1


def test_scalar_subquery_must_return_one_row(session):
    with pytest.raises(SqlError, match="exactly one row"):
        session.execute("SELECT id FROM t WHERE v > (SELECT v FROM t)")


# ----------------------------------------------------------------------
# DML: autocommit and explicit transactions.
# ----------------------------------------------------------------------
def test_autocommit_dml_reports_rows_affected(session):
    assert session.execute("UPDATE t SET v = v + 1 WHERE tag = 'oak'").rows_affected == 2
    assert session.execute("DELETE FROM t WHERE id = 2").rows_affected == 1
    rows = session.execute("SELECT id AS c0, v AS c1 FROM t ORDER BY c0").rows
    assert rows == [(1, 11), (3, 31)]


def test_rollback_discards_and_commit_publishes(session):
    session.execute("BEGIN")
    assert session.in_transaction
    session.execute("DELETE FROM t WHERE id = 1")
    session.execute("ROLLBACK")
    assert not session.in_transaction
    assert len(session.execute("SELECT id AS c0 FROM t").rows) == 3

    session.execute("BEGIN")
    session.execute("DELETE FROM t WHERE id = 1")
    session.execute("COMMIT")
    assert len(session.execute("SELECT id AS c0 FROM t").rows) == 2


def test_transaction_control_misuse_is_rejected(session):
    with pytest.raises(SqlError, match="no open transaction"):
        session.execute("COMMIT")
    session.execute("BEGIN")
    with pytest.raises(SqlError, match="already open"):
        session.execute("BEGIN")
    session.execute("ROLLBACK")


def test_dml_needs_an_mvcc_table():
    from repro.db.catalog import Catalog
    from repro.db.schema import Column, TableSchema
    from repro.db.types import INT32

    catalog = Catalog()
    catalog.create_table(TableSchema("plain", [Column("k", INT32)]))
    s = Session(catalog)
    with pytest.raises(SqlError, match="not MVCC-enabled"):
        s.execute("INSERT INTO plain (k) VALUES (1)")
    s.close()


# ----------------------------------------------------------------------
# Durability: SQL DML flows through the WAL and survives recovery.
# ----------------------------------------------------------------------
def test_sql_dml_recovers_from_the_wal():
    wal = WriteAheadLog(device=SsdLog())
    s = Session(wal=wal)
    _seed(s)
    s.execute("UPDATE t SET v = 99 WHERE id = 2")
    s.execute("DELETE FROM t WHERE id = 3")
    # A dangling transaction must vanish on recovery.
    s.execute("BEGIN")
    s.execute("INSERT INTO t (id, v, tag) VALUES (9, 9, 'ash')")
    wal.flush()

    schema = s.catalog.table("t").schema
    res = recover(wal, schemas={"t": schema})
    rec = res.tables["t"]
    from repro.chaos import table_visible_rows

    assert table_visible_rows(rec, res.manager.now) == [
        (("id", 1), ("tag", "oak"), ("v", 10)),
        (("id", 2), ("tag", "elm"), ("v", 99)),
    ]
    s.close()


# ----------------------------------------------------------------------
# EXPLAIN and EXPLAIN ANALYZE.
# ----------------------------------------------------------------------
def test_explain_select_shows_access_path(session):
    result = session.execute("SELECT id FROM t WHERE v > 15")
    plan = session.execute("EXPLAIN SELECT id FROM t WHERE v > 15").plan
    assert result.rows == [(2,), (3,)]
    assert plan and "Scan" in plan


def test_explain_analyze_requires_a_tracer(session):
    with pytest.raises(SqlError, match="tracer-enabled"):
        session.execute("EXPLAIN ANALYZE SELECT id FROM t")


def test_explain_analyze_renders_the_span_tree():
    s = Session(tracer=Tracer())
    _seed(s)
    out = s.execute("EXPLAIN ANALYZE SELECT tag FROM t GROUP BY tag")
    assert out.kind == "explain"
    for name in ("sql.bind", "sql.plan", "sql.exec"):
        assert name in out.plan
    dml = s.execute("EXPLAIN ANALYZE UPDATE t SET v = 0 WHERE id = 1")
    assert dml.rows_affected == 1
    assert "sql.exec" in dml.plan
    s.close()


def test_statement_spans_carry_the_sql_layer():
    s = Session(tracer=Tracer())
    _seed(s)
    s.execute("SELECT count(*) FROM t")
    spans = list(s.last_trace.root.walk())
    names = {sp.name for sp in spans}
    assert {"sql.statement", "sql.parse", "sql.bind", "sql.exec"} <= names
    assert all(
        sp.attrs.get("layer") == "sql"
        for sp in spans
        if sp.name.startswith("sql.")
    )
    s.close()


# ----------------------------------------------------------------------
# Stats and metrics.
# ----------------------------------------------------------------------
def test_stats_count_by_statement_kind(session):
    session.execute("SELECT id FROM t")
    session.execute("INSERT INTO t (id, v, tag) VALUES (4, 40, 'fir')")
    session.execute("UPDATE t SET v = 0 WHERE id = 4")
    session.execute("DELETE FROM t WHERE id = 4")
    with pytest.raises(SqlError):
        session.execute("SELECT nope FROM t")
    st = session.stats
    assert (st.selects, st.inserts, st.updates, st.deletes) == (1, 2, 1, 1)
    assert st.ddl == 1 and st.errors == 1
    assert st.rows_written == 3 + 1 + 1 + 1


def test_sql_metrics_series_track_the_session():
    registry = MetricsRegistry()
    s = Session(metrics=registry)
    _seed(s)
    s.execute("SELECT id FROM t")
    s.execute("BEGIN")
    sample = registry.collect()
    assert sample["sql_statements_total"] == 4.0
    assert sample["sql_selects_total"] == 1.0
    assert sample["sql_dml_total"] == 1.0
    assert sample["sql_txn_open"] == 1.0
    s.execute("ROLLBACK")
    assert registry.collect()["sql_txn_open"] == 0.0
    s.close()


# ----------------------------------------------------------------------
# Scripts.
# ----------------------------------------------------------------------
def test_split_statements_respects_literals_and_comments():
    script = (
        "SELECT 'a;b' FROM t; -- trailing; comment\n"
        "INSERT INTO t (id) VALUES (1);\n"
        ";\n"
    )
    assert split_statements(script) == [
        "SELECT 'a;b' FROM t",
        "-- trailing; comment\nINSERT INTO t (id) VALUES (1)",
    ]


def test_run_script_returns_one_result_per_statement(session):
    results = session.run_script(
        "INSERT INTO t (id, v, tag) VALUES (7, 70, 'fir');"
        "SELECT count(*) AS c0 FROM t"
    )
    assert [r.kind for r in results] == ["insert", "select"]
    assert results[1].rows == [(4,)]
