"""Tests for ephemeral column groups and the fabric configure() API."""

import numpy as np
import pytest

from repro.core import (
    CompareOp,
    FabricFilter,
    FabricPredicate,
    RelationalMemory,
    Visibility,
    configure,
)
from repro.core.geometry import DataGeometry, FieldSlice
from repro.core.mvcc_filter import LIVE_TS
from repro.hw.config import TEST_PLATFORM

GEO = DataGeometry(
    row_stride=64,
    fields=(
        FieldSlice("key", 0, 8, "<i8"),
        FieldSlice("a", 8, 8, "<i8"),
        FieldSlice("b", 48, 8, "<i8"),
    ),
)


def make_frame(nrows=100, seed=1):
    rng = np.random.default_rng(seed)
    frame = np.zeros((nrows, 64), dtype=np.uint8)
    for name, lo in (("key", 0), ("a", 8), ("b", 48)):
        vals = rng.integers(0, 1000, nrows, dtype=np.int64)
        frame[:, lo : lo + 8] = vals.view(np.uint8).reshape(nrows, 8)
    return frame


class TestBasics:
    def test_length_and_width(self):
        cg = RelationalMemory(TEST_PLATFORM).configure(make_frame(), GEO)
        assert len(cg) == 100
        assert cg.packed_width == 24

    def test_columns_match_frame(self):
        frame = make_frame()
        cg = RelationalMemory(TEST_PLATFORM).configure(frame, GEO)
        expected = np.ascontiguousarray(frame[:, 8:16]).view("<i8").reshape(-1)
        assert np.array_equal(cg.column("a"), expected)

    def test_getitem_returns_typed_row(self):
        frame = make_frame()
        cg = RelationalMemory(TEST_PLATFORM).configure(frame, GEO)
        row = cg[3]
        assert set(row) == {"key", "a", "b"}
        assert row["a"] == cg.column("a")[3]

    def test_getitem_bounds(self):
        cg = RelationalMemory(TEST_PLATFORM).configure(make_frame(), GEO)
        with pytest.raises(IndexError):
            cg[100]

    def test_iteration(self):
        cg = RelationalMemory(TEST_PLATFORM).configure(make_frame(5), GEO)
        rows = list(cg)
        assert len(rows) == 5
        assert rows[0]["key"] == cg.column("key")[0]

    def test_module_level_configure(self):
        cg = configure(make_frame(), GEO, platform=TEST_PLATFORM)
        assert len(cg) == 100


class TestTransformationSemantics:
    def test_base_frame_never_materializes_packed_layout(self):
        frame = make_frame()
        before = frame.copy()
        cg = RelationalMemory(TEST_PLATFORM).configure(frame, GEO)
        cg.packed  # force the transformation
        assert np.array_equal(frame, before)

    def test_refresh_sees_base_updates(self):
        frame = make_frame()
        cg = RelationalMemory(TEST_PLATFORM).configure(frame, GEO)
        assert cg.column("a")[0] != 424242 or True
        new_val = np.array([424242], dtype="<i8")
        frame[0, 8:16] = new_val.view(np.uint8)
        cg.refresh()
        assert cg.column("a")[0] == 424242

    def test_refresh_counter(self):
        cg = RelationalMemory(TEST_PLATFORM).configure(make_frame(), GEO)
        cg.packed
        cg.refresh()
        assert cg.refreshes == 2

    def test_report_accounting(self):
        cg = RelationalMemory(TEST_PLATFORM).configure(make_frame(200), GEO)
        r = cg.report
        assert r.nrows == 200
        assert r.out_bytes == 200 * 24
        assert r.out_lines == int(np.ceil(200 * 24 / 64))
        assert r.produce_cycles > 0
        assert r.dram_bytes_touched >= r.out_bytes

    def test_buffer_refills_on_large_groups(self):
        nrows = 2000  # 48 KB packed > 4 KB test buffer
        cg = RelationalMemory(TEST_PLATFORM).configure(make_frame(nrows), GEO)
        assert cg.report.refills > 0
        assert cg.report.refill_stall_cycles > 0


class TestFilterAndVisibility:
    def test_fabric_filter_reduces_rows(self):
        frame = make_frame()
        flt = FabricFilter.of(FabricPredicate("key", CompareOp.LT, 500))
        cg = RelationalMemory(TEST_PLATFORM).configure(frame, GEO, fabric_filter=flt)
        keys = np.ascontiguousarray(frame[:, 0:8]).view("<i8").reshape(-1)
        assert len(cg) == int((keys < 500).sum())
        assert (cg.column("key") < 500).all()

    def test_filter_on_field_outside_projection(self):
        frame = make_frame()
        proj = DataGeometry(row_stride=64, fields=(FieldSlice("a", 8, 8, "<i8"),))
        flt = FabricFilter.of(FabricPredicate("key", CompareOp.GE, 500))
        cg = RelationalMemory(TEST_PLATFORM).configure(
            frame, proj, base_geometry=GEO, fabric_filter=flt
        )
        keys = np.ascontiguousarray(frame[:, 0:8]).view("<i8").reshape(-1)
        assert len(cg) == int((keys >= 500).sum())

    def test_visibility_filters_versions(self):
        frame = make_frame(10)
        begin = np.array([1, 1, 5, 5, 9, 1, 1, 1, 1, 20], dtype=np.int64)
        end = np.full(10, LIVE_TS, dtype=np.int64)
        end[1] = 4  # superseded at ts 4
        cg = RelationalMemory(TEST_PLATFORM).configure(
            frame, GEO, visibility=Visibility(begin, end, snapshot_ts=6)
        )
        # Visible: begin<=6<end -> slots 0,2,3,5,6,7,8 (not 1: ended; not
        # 4: begin 9; not 9: begin 20).
        assert len(cg) == 7

    def test_visibility_and_filter_combine(self):
        frame = make_frame(50)
        begin = np.ones(50, dtype=np.int64)
        begin[25:] = 100
        end = np.full(50, LIVE_TS, dtype=np.int64)
        flt = FabricFilter.of(FabricPredicate("key", CompareOp.LT, 500))
        cg = RelationalMemory(TEST_PLATFORM).configure(
            frame, GEO, fabric_filter=flt,
            visibility=Visibility(begin, end, snapshot_ts=10),
        )
        keys = np.ascontiguousarray(frame[:25, 0:8]).view("<i8").reshape(-1)
        assert len(cg) == int((keys < 500).sum())

    def test_mvcc_report_flag_costs(self):
        frame = make_frame(1000)
        rm = RelationalMemory(TEST_PLATFORM)
        plain = rm.configure(frame, GEO).report
        begin = np.ones(1000, dtype=np.int64)
        end = np.full(1000, LIVE_TS, dtype=np.int64)
        filtered = rm.configure(
            frame, GEO, visibility=Visibility(begin, end, 5)
        ).report
        assert filtered.produce_cycles >= plain.produce_cycles
