"""Property tests on the engines' cost behaviour.

These pin the *mechanics* the figures rely on: costs scale linearly with
data, grow monotonically with touched columns, and the decomposition
reported in the ledger stays coherent.
"""

import pytest

from repro.db.engines import all_engines
from repro.hw.config import ZYNQ_ULTRASCALE
from repro.workloads.synthetic import (
    make_wide_table,
    projection_selection_query,
    projectivity_query,
)


def cycles(catalog, engine_name, sql):
    return all_engines(catalog)[engine_name].execute(sql).cycles


class TestLinearity:
    @pytest.mark.parametrize("engine", ["row", "column", "rm"])
    def test_cost_scales_linearly_with_rows(self, engine):
        small_cat, _ = make_wide_table(nrows=20_000, seed=1)
        big_cat, _ = make_wide_table(nrows=80_000, seed=1)
        sql = projectivity_query(4)
        ratio = cycles(big_cat, engine, sql) / cycles(small_cat, engine, sql)
        assert ratio == pytest.approx(4.0, rel=0.1)


class TestMonotonicity:
    @pytest.mark.parametrize("engine", ["row", "column", "rm"])
    def test_more_projected_columns_never_cheaper(self, engine):
        catalog, _ = make_wide_table(nrows=30_000, seed=2)
        eng = all_engines(catalog)[engine]
        costs = [eng.execute(projectivity_query(k)).cycles for k in range(1, 12)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    @pytest.mark.parametrize("engine", ["row", "column", "rm"])
    def test_more_selection_columns_never_cheaper(self, engine):
        catalog, _ = make_wide_table(nrows=30_000, ncols=20, row_bytes=128, seed=3)
        eng = all_engines(catalog)[engine]
        costs = [
            eng.execute(projection_selection_query(2, s)).cycles
            for s in range(1, 9)
        ]
        assert all(b >= a * 0.999 for a, b in zip(costs, costs[1:]))

    def test_row_cost_independent_of_projectivity_in_memory(self):
        """ROW's DRAM traffic never changes with projectivity — the
        paper's Figure 1 point."""
        catalog, table = make_wide_table(nrows=30_000, seed=4)
        eng = all_engines(catalog)["row"]
        traffic = {
            k: eng.execute(projectivity_query(k)).ledger.dram_bytes
            for k in (1, 6, 11)
        }
        assert len(set(traffic.values())) == 1
        assert traffic[1] == table.nbytes

    def test_rm_traffic_grows_with_projectivity(self):
        catalog, _ = make_wide_table(nrows=30_000, seed=5)
        eng = all_engines(catalog)["rm"]
        t1 = eng.execute(projectivity_query(1)).ledger.dram_bytes
        t8 = eng.execute(projectivity_query(8)).ledger.dram_bytes
        assert t8 > t1


class TestLedgerCoherence:
    @pytest.mark.parametrize("engine", ["row", "column", "rm"])
    def test_total_is_bucket_sum(self, engine):
        catalog, _ = make_wide_table(nrows=10_000, seed=6)
        res = all_engines(catalog)[engine].execute(projection_selection_query(3, 2))
        assert res.cycles == pytest.approx(sum(res.ledger.buckets.values()))

    def test_rm_fabric_configure_constant_across_sizes(self):
        small, _ = make_wide_table(nrows=5_000, seed=7)
        large, _ = make_wide_table(nrows=50_000, seed=7)
        sql = projectivity_query(2)
        a = all_engines(small)["rm"].execute(sql).ledger.get("fabric_configure")
        b = all_engines(large)["rm"].execute(sql).ledger.get("fabric_configure")
        assert a == b == ZYNQ_ULTRASCALE.rm.configure_cycles

    def test_deterministic_costs(self):
        catalog, _ = make_wide_table(nrows=10_000, seed=8)
        sql = projection_selection_query(2, 2)
        a = cycles(catalog, "rm", sql)
        b = cycles(catalog, "rm", sql)
        assert a == b
