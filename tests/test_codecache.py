"""Tests for the code-fragment cache (§III-B code generation)."""

import pytest

from repro.db.plan import bind
from repro.db.plan.codecache import CodeFragmentCache, fragment_signature
from repro.db.sql import parse
from repro.errors import PlanError
from repro.workloads.synthetic import make_wide_table


@pytest.fixture(scope="module")
def catalog():
    cat, _ = make_wide_table(nrows=64, name="cc")
    return cat


def bq(sql, catalog):
    return bind(parse(sql), catalog)


class TestSignatures:
    def test_same_query_same_signature(self, catalog):
        a = bq("SELECT sum(c0 + c1) AS s FROM cc WHERE c2 < 5", catalog)
        b = bq("SELECT sum(c0 + c1) AS s FROM cc WHERE c2 < 9", catalog)
        # Constants are runtime parameters: same fragment.
        assert fragment_signature(a, "row") == fragment_signature(b, "row")
        assert fragment_signature(a, "ephemeral") == fragment_signature(b, "ephemeral")

    def test_row_layout_bakes_offsets(self, catalog):
        a = bq("SELECT sum(c0 + c1) AS s FROM cc", catalog)
        b = bq("SELECT sum(c4 + c5) AS s FROM cc", catalog)
        assert fragment_signature(a, "row") != fragment_signature(b, "row")

    def test_ephemeral_layout_reuses_across_column_subsets(self, catalog):
        """The fabric's packed layout makes structurally identical queries
        share one fragment regardless of which columns they touch."""
        a = bq("SELECT sum(c0 + c1) AS s FROM cc WHERE c2 < 5", catalog)
        b = bq("SELECT sum(c4 + c7) AS s FROM cc WHERE c9 < 5", catalog)
        assert fragment_signature(a, "ephemeral") == fragment_signature(b, "ephemeral")
        assert fragment_signature(a, "row") != fragment_signature(b, "row")

    def test_different_shapes_differ_everywhere(self, catalog):
        a = bq("SELECT sum(c0 + c1) AS s FROM cc", catalog)
        b = bq("SELECT sum(c0 * c1) AS s FROM cc", catalog)
        c = bq("SELECT min(c0 + c1) AS s FROM cc", catalog)
        for layout in ("row", "ephemeral"):
            assert fragment_signature(a, layout) != fragment_signature(b, layout)
            assert fragment_signature(a, layout) != fragment_signature(c, layout)

    def test_group_and_order_in_signature(self, catalog):
        a = bq("SELECT c0, count(*) AS n FROM cc GROUP BY c0", catalog)
        b = bq("SELECT c0, count(*) AS n FROM cc GROUP BY c0 ORDER BY c0", catalog)
        assert fragment_signature(a, "row") != fragment_signature(b, "row")

    def test_unknown_layout_rejected(self, catalog):
        a = bq("SELECT c0 FROM cc", catalog)
        with pytest.raises(PlanError):
            fragment_signature(a, "quantum")


class TestCache:
    def test_miss_then_hit(self, catalog):
        cache = CodeFragmentCache()
        q = bq("SELECT sum(c0) AS s FROM cc", catalog)
        hit, cycles = cache.lookup(q, "row")
        assert not hit and cycles > 0
        hit, cycles = cache.lookup(q, "row")
        assert hit and cycles == 0
        assert cache.stats.hit_rate == 0.5

    def test_capacity_evicts_lru(self, catalog):
        cache = CodeFragmentCache(capacity=2)
        q1 = bq("SELECT sum(c0) AS s FROM cc", catalog)
        q2 = bq("SELECT sum(c1) AS s FROM cc", catalog)
        q3 = bq("SELECT sum(c2) AS s FROM cc", catalog)
        cache.lookup(q1, "row")
        cache.lookup(q2, "row")
        cache.lookup(q3, "row")  # evicts q1
        assert cache.stats.evictions == 1
        hit, _ = cache.lookup(q1, "row")
        assert not hit

    def test_capacity_validated(self):
        with pytest.raises(PlanError):
            CodeFragmentCache(capacity=0)

    def test_fabric_reuse_beats_row_reuse(self, catalog):
        """The §III-B claim, end to end: an ad-hoc workload over varying
        column subsets reuses fragments aggressively through the fabric
        and barely at all on the row layout."""
        row_cache = CodeFragmentCache()
        eph_cache = CodeFragmentCache()
        pairs = [(a, a + 1) for a in range(0, 14, 2)]
        for a, b in pairs:
            q = bq(
                f"SELECT sum(c{a} + c{b}) AS s FROM cc WHERE c{(a + 3) % 16} < 7",
                catalog,
            )
            row_cache.lookup(q, "row")
            eph_cache.lookup(q, "ephemeral")
        assert eph_cache.stats.hit_rate > 0.8
        assert row_cache.stats.hit_rate == 0.0
        assert eph_cache.stats.compile_cycles < row_cache.stats.compile_cycles
