"""Fault-domain scatter-gather: fragments, replicas, and the cluster.

The load-bearing contract is *bit-identity*: the distributed answer —
payload bytes and charged ledger cycles both — must equal serial
execution at every shard count, under every recoverable fault. The
fault-path tests drive kills, partitions, crashes, and stalls through
the same coordinator entry points the chaos harness uses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp_st

from repro.chaos import table_visible_rows
from repro.core.ledger import CostLedger
from repro.core.selection import CompareOp
from repro.db.mvcc import TransactionManager
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.db.wal import WriteAheadLog, recover
from repro.dist import (
    AggSpec,
    AggTerm,
    DistConfig,
    DistPlan,
    DistPredicate,
    ShardCluster,
    ShardReplica,
    execute_fragment,
    execute_plan,
    merge_partials,
    q1_plan,
    q6_plan,
)
from repro.errors import PartialResultError, WalCorruptionError
from repro.faults import SHARD_CRASH, SHARD_PARTITION, SHARD_STALL
from repro.workloads.htap import orders_schema
from repro.workloads.tpch import generate_lineitem


def lineitem_table(rows=2000, seed=11):
    _, table = generate_lineitem(rows, seed=seed)
    return table


def shard_lineitem(table, nshards):
    keys = table.column("l_orderkey")
    qs = np.linspace(0, 1, nshards + 1)[1:-1]
    bounds = sorted({int(np.quantile(keys, q)) for q in qs})
    sharded = ShardedTable(table.schema, "l_orderkey", bounds)
    sharded.bulk_load(
        {
            c.name: (
                table.column(c.name).view(f"S{c.dtype.width}").reshape(-1)
                if c.dtype.np_dtype is None
                else table.column(c.name)
            )
            for c in table.schema.user_columns
        }
    )
    return sharded


ORDERS_PLAN = DistPlan(
    table="orders",
    key_column="o_id",
    predicates=(DistPredicate("o_customer", CompareOp.LE, 40),),
    group_by=("o_status",),
    aggregates=(
        AggSpec("sum_amount", "sum", (AggTerm("o_amount"),)),
        AggSpec("max_amount", "max", (AggTerm("o_amount"),)),
        AggSpec("n", "count"),
    ),
)


def durable_cluster(config=None, n=120, seed=5):
    cluster = ShardCluster(
        ShardedTable(orders_schema(), "o_id", [100, 200, 300]),
        config or DistConfig(inline=True),
        durable=True,
    )
    cluster.start()
    rng = np.random.default_rng(seed)
    for _ in range(n):
        cluster.insert(
            {
                "o_id": int(rng.integers(0, 400)),
                "o_customer": int(rng.integers(1, 50)),
                "o_amount": float(rng.integers(1, 20_000)) / 100.0,
                "o_status": int(rng.integers(0, 3)),
            }
        )
    return cluster


class TestFragment:
    def test_q6_matches_raw_numpy_brute_force(self):
        table = lineitem_table()
        plan = q6_plan()
        partial = execute_fragment(table, plan, snapshot_ts=None)
        result = merge_partials([partial], plan, CostLedger())

        ship = table.column("l_shipdate")
        disc = table.column("l_discount")
        qty = table.column("l_quantity")
        ext = table.column("l_extendedprice")
        mask = np.ones(len(ship), dtype=bool)
        for pred in plan.predicates:
            col = {"l_shipdate": ship, "l_discount": disc, "l_quantity": qty}[
                pred.column
            ]
            mask &= pred.op.apply(col, pred.value)
        expected = int(
            np.sum(ext[mask].astype(object) * disc[mask].astype(object))
        )
        assert result.groups == [((), [expected])]
        assert result.rows_qualifying == int(mask.sum())
        assert result.rows_scanned == table.nrows

    def test_key_range_restricts_rows(self):
        table = lineitem_table()
        keys = table.column("l_orderkey")
        lo, hi = int(np.quantile(keys, 0.3)), int(np.quantile(keys, 0.6))
        plan = q6_plan(key_low=lo, key_high=hi)
        partial = execute_fragment(table, plan, snapshot_ts=None)
        in_range = int(((keys >= lo) & (keys <= hi)).sum())
        assert partial.rows_qualifying <= in_range

    def test_merge_values_are_python_ints(self):
        table = lineitem_table()
        plan = q1_plan()
        res = execute_plan(table, plan)
        for key, values in res.groups:
            assert all(type(v) is int for v in values)
            assert all(type(k) is not np.int64 for k in key)


class TestReplica:
    def _workload(self, n=40, seed=3):
        schema = orders_schema()
        table = Table(schema)
        wal = WriteAheadLog()
        manager = TransactionManager(wal=wal)
        rng = np.random.default_rng(seed)
        for i in range(n):
            txn = manager.begin()
            txn.insert(
                table,
                {
                    "o_id": i,
                    "o_customer": int(rng.integers(1, 50)),
                    "o_amount": float(rng.integers(1, 9_000)) / 100.0,
                    "o_status": int(rng.integers(0, 3)),
                },
            )
            if rng.random() < 0.2:
                manager.abort(txn)
            else:
                manager.commit(txn)
        wal.flush()
        return schema, table, wal, manager

    def test_full_image_matches_recover(self):
        schema, table, wal, manager = self._workload()
        image = wal.device.media()
        replica = ShardReplica(schema=schema)
        replica.boot(image)
        assert replica.applied_lsn == wal.durable_bytes
        assert table_visible_rows(
            replica.table, manager.now
        ) == table_visible_rows(table, manager.now)
        from repro.storage.ssd import SsdLog

        recovered = recover(
            WriteAheadLog(device=SsdLog(initial=image)),
            schemas={schema.name: schema},
        )
        assert table_visible_rows(
            recovered.tables[schema.name], manager.now
        ) == table_visible_rows(replica.table, manager.now)

    def test_split_deltas_equal_one_boot(self):
        schema, table, wal, manager = self._workload()
        image = wal.device.media()
        # Split on a record boundary found by scanning the prefix.
        from repro.db.wal import scan_records

        records, _ = scan_records(image)
        cut = records[len(records) // 2][1]
        replica = ShardReplica(schema=schema)
        assert replica.apply_delta(image[:cut], 0)
        assert replica.apply_delta(image[cut:], cut)
        assert table_visible_rows(
            replica.table, manager.now
        ) == table_visible_rows(table, manager.now)

    def test_gap_and_duplicate_deltas_rejected(self):
        schema, _, wal, _ = self._workload(n=10)
        image = wal.device.media()
        replica = ShardReplica(schema=schema)
        assert not replica.apply_delta(image, 16)  # gap
        assert replica.apply_delta(image, 0)
        assert not replica.apply_delta(image, 0)  # duplicate
        assert replica.applied_lsn == len(image)

    def test_truncated_delta_raises_typed_corruption(self):
        schema, _, wal, _ = self._workload(n=10)
        image = wal.device.media()
        replica = ShardReplica(schema=schema)
        with pytest.raises(WalCorruptionError):
            replica.apply_delta(image[:-3], 0)


class TestBenchCluster:
    @pytest.mark.parametrize("nshards", [1, 2, 8])
    def test_q1_q6_bit_identical_to_serial(self, nshards):
        table = lineitem_table()
        sharded = shard_lineitem(table, nshards)
        with ShardCluster(sharded, DistConfig(inline=True)) as cluster:
            for plan in (q1_plan(), q6_plan()):
                serial = execute_plan(table, plan)
                res = cluster.query(plan)
                assert res.to_bytes() == serial.to_bytes()
                assert res.ledger.buckets == serial.ledger.buckets

    def test_key_range_prunes_shards(self):
        table = lineitem_table()
        sharded = shard_lineitem(table, 4)
        lo, hi = sharded.shard_bounds(1)
        with ShardCluster(sharded, DistConfig(inline=True)) as cluster:
            res = cluster.query(q6_plan(key_low=lo, key_high=hi))
            assert res.stats.shards_planned == 1
            serial = execute_plan(table, q6_plan(key_low=lo, key_high=hi))
            assert res.groups == serial.groups

    def test_process_transport_matches_inline(self):
        table = lineitem_table()
        plan = q6_plan()
        serial = execute_plan(table, plan)
        with ShardCluster(
            shard_lineitem(table, 2), DistConfig(deadline_s=30.0)
        ) as cluster:
            res = cluster.query(plan)
        assert res.to_bytes() == serial.to_bytes()


class TestDurableCluster:
    def test_query_matches_run_serial(self):
        cluster = durable_cluster()
        try:
            res = cluster.query(ORDERS_PLAN)
            assert res.to_bytes() == cluster.run_serial(ORDERS_PLAN).to_bytes()
            assert not res.degraded
        finally:
            cluster.close()

    def test_kill_restarts_and_recovers_from_wal(self):
        cluster = durable_cluster()
        try:
            serial = cluster.run_serial(ORDERS_PLAN)
            for i in range(4):
                cluster.kill_shard(i)
                res = cluster.query(ORDERS_PLAN)
                assert res.to_bytes() == serial.to_bytes()
            assert cluster.stats.restarts_total == 4
            assert cluster.stats.recoveries_total == 4
            assert cluster.stats.recovered_bytes_total > 0
        finally:
            cluster.close()

    def test_dropped_delta_caught_by_lsn_fence(self):
        cluster = durable_cluster(
            DistConfig(
                inline=True,
                fault_rates={SHARD_PARTITION: 1.0},
                fault_max=1,
                fault_shards=frozenset({1}),
                fault_incarnations=frozenset({0}),
            )
        )
        try:
            res = cluster.query(ORDERS_PLAN)
            assert res.to_bytes() == cluster.run_serial(ORDERS_PLAN).to_bytes()
            assert cluster.stats.stale_fences_total >= 1
            assert cluster.stats.restarts_total >= 1
        finally:
            cluster.close()

    def test_crash_on_exec_recovers(self):
        cluster = durable_cluster(
            DistConfig(
                inline=True,
                fault_rates={SHARD_CRASH: 1.0},
                fault_max=1,
                fault_shards=frozenset({2}),
                fault_incarnations=frozenset({0}),
            )
        )
        try:
            res = cluster.query(ORDERS_PLAN)
            assert res.to_bytes() == cluster.run_serial(ORDERS_PLAN).to_bytes()
            assert cluster.stats.restarts_total >= 1
        finally:
            cluster.close()

    def test_persistent_crash_degrades_to_typed_partial(self):
        config = DistConfig(
            inline=True,
            deadline_s=0.5,
            retries=1,
            fault_rates={SHARD_CRASH: 1.0},
            fault_shards=frozenset({3}),
        )
        cluster = durable_cluster(config)
        try:
            bounds = cluster.sharded.shard_bounds(3)
            with pytest.raises(PartialResultError) as err:
                cluster.query(ORDERS_PLAN)
            assert err.value.missing_ranges == (bounds,)
            res = cluster.query(ORDERS_PLAN, allow_partial=True)
            assert res.degraded and res.missing_ranges == (bounds,)
            lo, _ = bounds
            clipped = DistPlan(
                table=ORDERS_PLAN.table,
                key_column=ORDERS_PLAN.key_column,
                key_high=lo - 1,
                predicates=ORDERS_PLAN.predicates,
                group_by=ORDERS_PLAN.group_by,
                aggregates=ORDERS_PLAN.aggregates,
            )
            assert res.groups == cluster.run_serial(clipped).groups
        finally:
            cluster.close()

    def test_stalled_shard_loses_to_hedge(self):
        config = DistConfig(
            deadline_s=10.0,
            hedge_after_s=0.1,
            stall_s=1.5,
            fault_rates={SHARD_STALL: 1.0},
            fault_max=1,
            fault_shards=frozenset({0}),
            fault_incarnations=frozenset({0}),
        )
        cluster = durable_cluster(config, n=60)
        try:
            res = cluster.query(ORDERS_PLAN)
            assert res.to_bytes() == cluster.run_serial(ORDERS_PLAN).to_bytes()
            assert cluster.stats.hedges_total >= 1
            assert cluster.stats.hedge_wins_total >= 1
        finally:
            cluster.close()


class TestShardCountInvariance:
    """Satellite 3: payload and ledger bit-identity across shard counts."""

    @given(seed=hyp_st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=8, deadline=None)
    def test_serial_2_and_8_shards_bit_identical(self, seed):
        _, table = generate_lineitem(800, seed=seed)
        for plan in (q1_plan(), q6_plan()):
            serial = execute_plan(table, plan)
            for nshards in (2, 8):
                sharded = shard_lineitem(table, nshards)
                with ShardCluster(sharded, DistConfig(inline=True)) as c:
                    res = c.query(plan)
                assert res.to_bytes() == serial.to_bytes()
                assert res.ledger.buckets == serial.ledger.buckets
                # Every dist charge is an exact integer cycle count —
                # fractional cycles would break cross-shard bit-identity.
                assert all(
                    float(v).is_integer()
                    for v in res.ledger.buckets.values()
                )
