"""Tests for the executable index-probe access path (§III-A)."""

import numpy as np
import pytest

from repro.db.engines import RowStoreEngine
from repro.db.exec import results_equal
from repro.db.index import build_index
from repro.workloads.synthetic import make_wide_table


@pytest.fixture
def indexed():
    catalog, table = make_wide_table(nrows=30_000, seed=17)
    catalog.add_index("wide", "c0", build_index(table, "c0"))
    return catalog, table


class TestIndexProbe:
    def probe_sql(self, table, extra=""):
        key = int(table.column_values("c0")[42])
        return f"SELECT c1, c2 FROM wide WHERE c0 = {key}{extra}"

    def test_same_answer_as_scan(self, indexed):
        catalog, table = indexed
        sql = self.probe_sql(table)
        via_index = RowStoreEngine(catalog, use_indexes=True).execute(sql)
        via_scan = RowStoreEngine(catalog).execute(sql)
        assert results_equal(via_index.result, via_scan.result)

    def test_far_cheaper_than_scan(self, indexed):
        catalog, table = indexed
        sql = self.probe_sql(table)
        engine = RowStoreEngine(catalog, use_indexes=True)
        via_index = engine.execute(sql)
        via_scan = RowStoreEngine(catalog).execute(sql)
        assert via_index.cycles < via_scan.cycles / 100
        assert engine.index_answered == 1
        assert "Index-Probe" in via_index.plan

    def test_residual_conjuncts_applied(self, indexed):
        catalog, table = indexed
        key = int(table.column_values("c0")[42])
        sql = f"SELECT c1 FROM wide WHERE c0 = {key} AND c1 < 500000"
        via_index = RowStoreEngine(catalog, use_indexes=True).execute(sql)
        via_scan = RowStoreEngine(catalog).execute(sql)
        assert results_equal(via_index.result, via_scan.result)

    def test_missing_key_yields_empty(self, indexed):
        catalog, _ = indexed
        engine = RowStoreEngine(catalog, use_indexes=True)
        res = engine.execute("SELECT c1 FROM wide WHERE c0 = 999999999")
        assert res.result.nrows == 0
        assert engine.index_answered == 1

    def test_range_query_falls_back_to_scan(self, indexed):
        catalog, _ = indexed
        engine = RowStoreEngine(catalog, use_indexes=True)
        engine.execute("SELECT c1 FROM wide WHERE c0 < 100")
        assert engine.index_answered == 0
        assert engine.access_path == "scan"

    def test_unindexed_column_falls_back(self, indexed):
        catalog, table = indexed
        engine = RowStoreEngine(catalog, use_indexes=True)
        key = int(table.column_values("c5")[0])
        engine.execute(f"SELECT c1 FROM wide WHERE c5 = {key}")
        assert engine.index_answered == 0

    def test_literal_on_left(self, indexed):
        catalog, table = indexed
        key = int(table.column_values("c0")[7])
        engine = RowStoreEngine(catalog, use_indexes=True)
        res = engine.execute(f"SELECT c1 FROM wide WHERE {key} = c0")
        assert engine.index_answered == 1
        scan = RowStoreEngine(catalog).execute(f"SELECT c1 FROM wide WHERE c0 = {key}")
        assert results_equal(res.result, scan.result)

    def test_disabled_by_default(self, indexed):
        catalog, table = indexed
        engine = RowStoreEngine(catalog)
        engine.execute(self.probe_sql(table))
        assert engine.index_answered == 0

    def test_mvcc_visibility_filters_probe_results(self, mvcc_catalog):
        from repro.db.index import build_index as bi
        from repro.db.mvcc import TransactionManager

        catalog, table = mvcc_catalog
        manager = TransactionManager()
        txn = manager.begin()
        slots = [txn.insert(table, {"id": 7, "balance": i}) for i in range(3)]
        manager.commit(txn)
        snapshot = manager.now
        txn2 = manager.begin()
        txn2.delete(table, slots[0])
        manager.commit(txn2)
        catalog.add_index("accounts", "id", bi(table, "id"))
        engine = RowStoreEngine(catalog, use_indexes=True)
        old = engine.execute(
            "SELECT count(*) AS n FROM accounts WHERE id = 7", snapshot_ts=snapshot
        )
        new = engine.execute(
            "SELECT count(*) AS n FROM accounts WHERE id = 7", snapshot_ts=manager.now
        )
        assert old.result.scalar() == 3
        assert new.result.scalar() == 2
