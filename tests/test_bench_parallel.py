"""Multiprocessing fan-out: determinism, seeding, and result merging.

The contract: a figure sweep run with ``processes > 1`` produces exactly
the same harness contents as the serial run — no scheduling-dependent
seeds, no reordered points.
"""

import math
import time

import pytest

from repro.bench import derive_seed, fanout, merge_experiments, run_fig6, run_fig7
from repro.bench.harness import Experiment
from repro.bench.parallel import resolve_processes
from repro.errors import WorkerTimeoutError


def _square(x):
    return x * x


def _sleepy(x):
    if x == 2:
        time.sleep(60)
    return x * x


class TestDeriveSeed:
    def test_pure_and_stable(self):
        assert derive_seed(42, 0) == derive_seed(42, 0)
        # Pinned value: changing the mixing function silently changes
        # every "reproducible" figure, so the constant is under test.
        assert derive_seed(42, 0) == 0xBDD732262FEB6E95

    def test_distinct_across_indices(self):
        seeds = {derive_seed(7, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_distinct_across_base_seeds(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_fits_in_64_bits(self):
        for i in range(100):
            assert 0 <= derive_seed(2**63, i) < 2**64


class TestResolveProcesses:
    def test_explicit_count_clamped_to_points(self):
        assert resolve_processes(8, 3) == 3

    def test_zero_and_none_mean_all_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_processes(None, 10_000) == min(cores, 10_000)
        assert resolve_processes(0, 10_000) == min(cores, 10_000)

    def test_at_least_one(self):
        assert resolve_processes(4, 0) == 1


class TestFanout:
    def test_serial_matches_pool(self):
        points = list(range(50))
        assert fanout(_square, points, processes=1) == fanout(
            _square, points, processes=4
        )

    def test_order_preserved(self):
        assert fanout(_square, [3, 1, 2], processes=3) == [9, 1, 4]

    def test_empty_points(self):
        assert fanout(_square, [], processes=4) == []


class TestFanoutTimeout:
    def test_hung_worker_raises_typed_timeout(self):
        with pytest.raises(WorkerTimeoutError):
            fanout(_sleepy, [0, 1, 2, 3], processes=4, timeout_s=1.0)

    def test_generous_timeout_identical_to_unbounded(self):
        points = list(range(20))
        assert fanout(_square, points, processes=3, timeout_s=60.0) == fanout(
            _square, points, processes=3
        )

    def test_serial_path_ignores_timeout(self):
        # No pool to terminate: the serial fallback must not fabricate
        # timeouts even with an absurdly small bound.
        assert fanout(_square, [1, 2, 3], processes=1, timeout_s=1e-9) == [
            1,
            4,
            9,
        ]


class TestMergeExperiments:
    def test_merge_replays_points_in_order(self):
        parts = []
        for x in (1, 2, 3):
            e = Experiment(name="part", x_label="x", y_label="y")
            e.add_point(x, "a", float(x))
            e.add_point(x, "b", float(x * 10))
            parts.append(e)
        merged = merge_experiments(parts, name="whole")
        assert merged.name == "whole"
        assert merged.x_values == [1, 2, 3]
        assert merged.series["a"].values == [1.0, 2.0, 3.0]
        assert merged.series["b"].values == [10.0, 20.0, 30.0]

    def test_merge_skips_nan_padding(self):
        e1 = Experiment(name="p", x_label="x", y_label="y")
        e1.add_point(1, "a", 1.0)
        e1.add_point(2, "b", 2.0)  # pads "a" with NaN at x=2
        merged = merge_experiments([e1])
        assert not any(math.isnan(v) for v in merged.series["b"].values if v == v)
        assert merged.series["a"].values[0] == 1.0

    def test_merge_requires_parts(self):
        with pytest.raises(ValueError):
            merge_experiments([])


class TestParallelFiguresDeterministic:
    """End to end: fanned-out figure runners == serial runners."""

    def test_fig6_parallel_equals_serial(self):
        kw = dict(nrows=4_000, max_projected=3, max_selection=2)
        s_row, s_col = run_fig6(processes=1, **kw)
        p_row, p_col = run_fig6(processes=3, **kw)
        assert p_row.values == s_row.values
        assert p_col.values == s_col.values

    def test_fig7_parallel_equals_serial(self):
        kw = dict(query="Q6", target_mbs=(2, 4, 8), scale=1 / 256)
        serial = run_fig7(processes=1, **kw)
        parallel = run_fig7(processes=3, **kw)
        assert parallel.x_values == serial.x_values
        for label, series in serial.series.items():
            assert parallel.series[label].values == series.values
