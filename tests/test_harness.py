"""Tests for the bench harness containers, the ASCII chart, and the CLI."""

import pytest

from repro.bench.chart import line_chart
from repro.bench.harness import Experiment, Grid, Series


class TestExperiment:
    def make(self):
        exp = Experiment(name="t", x_label="k")
        for k in (1, 2, 3):
            exp.add_point(k, "a", k * 10.0)
            exp.add_point(k, "b", k * 5.0)
        return exp

    def test_add_point_tracks_x(self):
        exp = self.make()
        assert exp.x_values == [1, 2, 3]
        assert exp.series["a"].values == [10.0, 20.0, 30.0]

    def test_ratio(self):
        exp = self.make()
        assert exp.ratio("a", "b") == [2.0, 2.0, 2.0]

    def test_ratio_divide_by_zero(self):
        exp = Experiment(name="z", x_label="x")
        exp.add_point(1, "a", 1.0)
        exp.add_point(1, "b", 0.0)
        assert exp.ratio("a", "b") == [float("inf")]

    def test_to_table_contains_all(self):
        text = self.make().to_table()
        assert "t" in text and "a" in text and "b" in text
        assert "30" in text

    def test_to_json_roundtrips(self):
        import json

        data = json.loads(self.make().to_json())
        assert data["series"]["a"] == [10.0, 20.0, 30.0]
        assert data["x_values"] == ["1", "2", "3"]

    def test_series_for_creates_once(self):
        exp = Experiment(name="s", x_label="x")
        s1 = exp.series_for("q")
        s2 = exp.series_for("q")
        assert s1 is s2


class TestGrid:
    def make(self):
        grid = Grid(name="g", row_label="s", col_label="p")
        for s in (1, 2):
            for p in (1, 2, 3):
                grid.set(s, p, s * p * 1.0)
        return grid

    def test_set_get(self):
        grid = self.make()
        assert grid.get(2, 3) == 6.0
        assert grid.rows == [1, 2] and grid.cols == [1, 2, 3]

    def test_region_mean(self):
        grid = self.make()
        assert grid.region_mean(lambda s: s == 1, lambda p: True) == pytest.approx(2.0)
        assert grid.region_mean(lambda s: False, lambda p: True) != grid.region_mean(
            lambda s: True, lambda p: True
        ) or True

    def test_to_table_renders_rows_top_down(self):
        lines = self.make().to_table().splitlines()
        # First data row (after name, rule, header, dashes) is the highest
        # row index — heatmaps grow upward like the paper's.
        assert lines[4].split()[0] == "2"
        assert lines[5].split()[0] == "1"


class TestChart:
    def test_chart_renders_marks_and_legend(self):
        exp = Experiment(name="c", x_label="x", y_label="y")
        for x in range(5):
            exp.add_point(x, "up", float(x))
            exp.add_point(x, "down", float(4 - x))
        text = line_chart(exp, labels=["up", "down"])
        assert "* up" in text and "o down" in text
        assert "(x)" in text

    def test_chart_logscale(self):
        exp = Experiment(name="c", x_label="x", y_label="y")
        for x in range(4):
            exp.add_point(x, "a", 10.0 ** x)
        text = line_chart(exp, logscale=True)
        assert "log scale" in text

    def test_chart_empty(self):
        exp = Experiment(name="c", x_label="x")
        assert line_chart(exp) == "(no data)"

    def test_constant_series_does_not_crash(self):
        exp = Experiment(name="c", x_label="x")
        for x in range(3):
            exp.add_point(x, "flat", 5.0)
        assert "flat" in line_chart(exp)


class TestCli:
    def test_fig5_target_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig5", "--nrows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "fig5-projectivity" in out
        assert "row" in out and "rm" in out

    def test_bad_target_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])
