"""The benchmark regression gate: flattening, tolerance rules, and the
bench_compare CLI exit codes."""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.regress import (
    Tolerance,
    compare,
    flatten,
    load_spec,
    match_rule,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = [
    Tolerance("*seconds*", direction="ignore"),
    Tolerance("*bit_identical*", rel_tol=0.0, direction="higher_is_better"),
    Tolerance("*cycles*", rel_tol=0.10, direction="lower_is_better"),
    Tolerance("*", rel_tol=0.05, direction="both"),
]


# ----------------------------------------------------------------------
# Flattening.
# ----------------------------------------------------------------------
class TestFlatten:
    def test_nested_paths(self):
        doc = {"a": {"b": 1, "c": [2, {"d": 3}]}, "e": 4.5}
        assert flatten(doc) == {
            "a.b": 1.0,
            "a.c[0]": 2.0,
            "a.c[1].d": 3.0,
            "e": 4.5,
        }

    def test_bools_become_binary(self):
        assert flatten({"ok": True, "bad": False}) == {"ok": 1.0, "bad": 0.0}

    def test_strings_and_nulls_skipped(self):
        assert flatten({"name": "q6", "note": None, "n": 1}) == {"n": 1.0}


# ----------------------------------------------------------------------
# Rule matching and comparison.
# ----------------------------------------------------------------------
class TestCompare:
    def test_first_match_wins(self):
        rule = match_rule("scan.scalar_seconds", RULES)
        assert rule.direction == "ignore"
        assert match_rule("scan.cycles[0]", RULES).rel_tol == 0.10

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            Tolerance("*", direction="sideways")

    def test_twenty_percent_cycle_regression_fails(self):
        base = {"scan": {"cycles": 1000.0}}
        cur = {"scan": {"cycles": 1200.0}}
        report = compare("t", base, cur, RULES)
        assert report.failed
        (finding,) = report.regressions
        assert finding.path == "scan.cycles"
        assert finding.rel_delta == pytest.approx(0.20)

    def test_within_tolerance_passes(self):
        base = {"scan": {"cycles": 1000.0, "rows": 100}}
        cur = {"scan": {"cycles": 1030.0, "rows": 100}}
        report = compare("t", base, cur, RULES)
        assert not report.failed
        assert report.counts() == {"ok": 2}

    def test_improvement_is_noted_not_fatal(self):
        report = compare(
            "t", {"cycles": 1000.0}, {"cycles": 500.0}, RULES
        )
        assert not report.failed
        assert report.findings[0].status == "improved"

    def test_wall_clock_ignored_even_when_terrible(self):
        report = compare(
            "t", {"scalar_seconds": 0.1}, {"scalar_seconds": 99.0}, RULES
        )
        assert report.counts() == {"ignored": 1}

    def test_bit_identical_flip_is_fatal(self):
        report = compare(
            "t", {"bit_identical": True}, {"bit_identical": False}, RULES
        )
        assert report.failed

    def test_missing_metric_is_a_regression(self):
        report = compare("t", {"rows": 10, "gone": 5}, {"rows": 10}, RULES)
        assert report.failed
        assert report.regressions[0].path == "gone"

    def test_new_metric_is_noted(self):
        report = compare("t", {"rows": 10}, {"rows": 10, "fresh": 1}, RULES)
        assert not report.failed
        assert {f.status for f in report.findings} == {"ok", "new"}

    def test_zero_baseline_nonzero_current(self):
        report = compare("t", {"aborts": 0}, {"aborts": 3}, RULES)
        assert report.failed
        assert report.regressions[0].note == "baseline was zero"

    def test_load_spec_roundtrip(self, tmp_path):
        spec = tmp_path / "tol.json"
        spec.write_text(json.dumps({
            "rules": [{"pattern": "*seconds*", "direction": "ignore"}],
            "default": {"rel_tol": 0.02, "direction": "both"},
        }))
        rules = load_spec(str(spec))
        assert rules[0].direction == "ignore"
        assert rules[-1].pattern == "*" and rules[-1].rel_tol == 0.02


# ----------------------------------------------------------------------
# The CLI.
# ----------------------------------------------------------------------
class TestCli:
    def _run(self, tmp_path, current, baseline, spec=None):
        base_dir = tmp_path / "baselines"
        base_dir.mkdir(exist_ok=True)
        (base_dir / "BENCH_x.json").write_text(json.dumps(baseline))
        (base_dir / "tolerances.json").write_text(json.dumps(
            spec or {"rules": [{"pattern": "*seconds*", "direction": "ignore"}],
                     "default": {"rel_tol": 0.05, "direction": "both"}}
        ))
        cur = tmp_path / "BENCH_x.json"
        cur.write_text(json.dumps(current))
        report = tmp_path / "report.json"
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "scripts", "bench_compare.py"),
             "--baseline-dir", str(base_dir), "--report", str(report),
             str(cur)],
            capture_output=True, text=True,
        )
        return proc, report

    def test_pass_within_noise(self, tmp_path):
        proc, report = self._run(
            tmp_path, {"cycles": 1010.0}, {"cycles": 1000.0}
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert json.loads(report.read_text())[0]["failed"] is False

    def test_fail_on_degradation(self, tmp_path):
        proc, report = self._run(
            tmp_path, {"cycles": 1200.0}, {"cycles": 1000.0}
        )
        assert proc.returncode == 1
        assert "FAIL" in proc.stderr
        assert json.loads(report.read_text())[0]["failed"] is True

    def test_missing_baseline_is_usage_error(self, tmp_path):
        base_dir = tmp_path / "baselines"
        base_dir.mkdir()
        (base_dir / "tolerances.json").write_text(json.dumps({"rules": []}))
        cur = tmp_path / "BENCH_x.json"
        cur.write_text("{}")
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "scripts", "bench_compare.py"),
             "--baseline-dir", str(base_dir), str(cur)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 2

    def test_committed_spec_loads(self):
        rules = load_spec(
            os.path.join(REPO, "benchmarks", "baselines", "tolerances.json")
        )
        assert any(r.direction == "ignore" for r in rules)
        assert rules[-1].pattern == "*"


# ----------------------------------------------------------------------
# The metrics-JSON branch of the schema validator.
# ----------------------------------------------------------------------
class TestMetricsSchemaCheck:
    def _check(self, tmp_path, doc):
        path = tmp_path / "METRICS_x.json"
        path.write_text(json.dumps(doc))
        return subprocess.run(
            [sys.executable,
             os.path.join(REPO, "scripts", "check_trace_schema.py"), str(path)],
            capture_output=True, text=True,
        )

    def _valid_doc(self):
        return {
            "schema": "repro.metrics/v1",
            "interval_cycles": 100.0,
            "ticks": [100.0, 200.0],
            "series": {"a": [1.0, 2.0], "late": [None, 5.0]},
        }

    def test_valid_series_passes(self, tmp_path):
        proc = self._check(tmp_path, self._valid_doc())
        assert proc.returncode == 0, proc.stderr
        assert "2 series x 2 samples" in proc.stdout

    def test_ragged_series_fails(self, tmp_path):
        doc = self._valid_doc()
        doc["series"]["a"] = [1.0]
        assert self._check(tmp_path, doc).returncode == 1

    def test_non_increasing_ticks_fail(self, tmp_path):
        doc = self._valid_doc()
        doc["ticks"] = [200.0, 100.0]
        assert self._check(tmp_path, doc).returncode == 1

    def test_bad_interval_fails(self, tmp_path):
        doc = self._valid_doc()
        doc["interval_cycles"] = 0
        assert self._check(tmp_path, doc).returncode == 1

    # ------------------------------------------------------------------
    # SQL front-door series semantics.
    # ------------------------------------------------------------------
    def test_sql_counter_decrease_fails(self, tmp_path):
        doc = self._valid_doc()
        doc["series"] = {"sql_statements_total": [3.0, 2.0]}
        proc = self._check(tmp_path, doc)
        assert proc.returncode == 1
        assert "counter decreased" in proc.stderr

    def test_sql_negative_sample_fails(self, tmp_path):
        doc = self._valid_doc()
        doc["series"] = {"sql_rows_returned_total": [-1.0, 0.0]}
        assert self._check(tmp_path, doc).returncode == 1

    def test_sql_txn_open_must_be_binary(self, tmp_path):
        doc = self._valid_doc()
        doc["series"] = {"sql_txn_open": [0.0, 2.0]}
        proc = self._check(tmp_path, doc)
        assert proc.returncode == 1
        assert "0/1" in proc.stderr

    def test_clean_sql_series_passes(self, tmp_path):
        doc = self._valid_doc()
        doc["series"] = {
            "sql_statements_total": [1.0, 4.0],
            "sql_txn_open": [None, 1.0],
        }
        proc = self._check(tmp_path, doc)
        assert proc.returncode == 0, proc.stderr


class TestSqlSpanCheck:
    """A real statement trace must pass the checker, and ``sql.*`` spans
    stripped of their layer tag must fail it."""

    def _check(self, path):
        return subprocess.run(
            [sys.executable,
             os.path.join(REPO, "scripts", "check_trace_schema.py"), str(path)],
            capture_output=True, text=True,
        )

    def _statement_trace(self):
        from repro.db.sql.pipeline import Session
        from repro.obs import Tracer

        s = Session(tracer=Tracer())
        s.execute("CREATE TABLE t (id INT32, v INT32)")
        s.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
        s.execute("SELECT sum(v) AS s FROM t")
        trace = s.last_trace
        s.close()
        return trace

    def test_statement_trace_passes(self, tmp_path):
        path = tmp_path / "TRACE_sql.json"
        path.write_text(self._statement_trace().to_chrome_json())
        proc = self._check(path)
        assert proc.returncode == 0, proc.stderr
        assert "spans" in proc.stdout

    def test_sql_span_without_layer_fails(self, tmp_path):
        doc = json.loads(self._statement_trace().to_chrome_json())
        for event in doc["traceEvents"]:
            if event["name"].startswith("sql."):
                event["args"].pop("layer", None)
        path = tmp_path / "TRACE_sql.json"
        path.write_text(json.dumps(doc))
        proc = self._check(path)
        assert proc.returncode == 1
        assert "layer == 'sql'" in proc.stderr
