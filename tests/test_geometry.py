"""Tests for data geometries (field slices, validation, packing math)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import DataGeometry, FieldSlice, full_row_geometry
from repro.errors import GeometryError


def geo(*fields, stride=64):
    return DataGeometry(row_stride=stride, fields=tuple(fields))


class TestFieldSlice:
    def test_valid(self):
        f = FieldSlice("a", 0, 8, "<i8")
        assert f.end == 8

    def test_negative_offset(self):
        with pytest.raises(GeometryError):
            FieldSlice("a", -1, 4)

    def test_zero_width(self):
        with pytest.raises(GeometryError):
            FieldSlice("a", 0, 0)

    def test_dtype_width_mismatch(self):
        with pytest.raises(GeometryError):
            FieldSlice("a", 0, 4, "<i8")


class TestValidation:
    def test_field_beyond_stride(self):
        with pytest.raises(GeometryError):
            geo(FieldSlice("a", 60, 8))

    def test_overlap_rejected(self):
        with pytest.raises(GeometryError):
            geo(FieldSlice("a", 0, 8), FieldSlice("b", 4, 8))

    def test_adjacent_ok(self):
        g = geo(FieldSlice("a", 0, 8), FieldSlice("b", 8, 8))
        assert g.packed_width == 16

    def test_duplicate_names_rejected(self):
        with pytest.raises(GeometryError):
            geo(FieldSlice("a", 0, 4), FieldSlice("a", 8, 4))

    def test_empty_fields_rejected(self):
        with pytest.raises(GeometryError):
            DataGeometry(row_stride=64, fields=())

    def test_non_positive_stride(self):
        with pytest.raises(GeometryError):
            DataGeometry(row_stride=0, fields=(FieldSlice("a", 0, 4),))


class TestDerived:
    def test_packed_offsets_follow_declaration_order(self):
        g = geo(FieldSlice("z", 40, 8), FieldSlice("a", 0, 4))
        assert g.packed_offset_of("z") == 0
        assert g.packed_offset_of("a") == 8
        assert g.packed_width == 12

    def test_packed_field_relocated(self):
        g = geo(FieldSlice("z", 40, 8, "<i8"), FieldSlice("a", 0, 4, "<i4"))
        pf = g.packed_field("a")
        assert pf.offset == 8 and pf.width == 4 and pf.dtype == "<i4"

    def test_field_lookup_missing(self):
        g = geo(FieldSlice("a", 0, 4))
        with pytest.raises(GeometryError):
            g.field("nope")
        with pytest.raises(GeometryError):
            g.packed_offset_of("nope")

    def test_subset_preserves_order_given(self):
        g = geo(FieldSlice("a", 0, 4), FieldSlice("b", 4, 4), FieldSlice("c", 8, 4))
        sub = g.subset(["c", "a"])
        assert sub.field_names == ("c", "a")
        assert sub.packed_width == 8

    def test_byte_selectivity(self):
        g = geo(FieldSlice("a", 0, 16), stride=64)
        assert g.selectivity_of_bytes() == 0.25

    def test_full_row_geometry(self):
        g = full_row_geometry(128)
        assert g.packed_width == 128
        assert g.selectivity_of_bytes() == 1.0


@st.composite
def geometries(draw):
    """Random valid geometries: non-overlapping fields in a row."""
    stride = draw(st.integers(min_value=8, max_value=128))
    n = draw(st.integers(min_value=1, max_value=min(6, (stride + 1) // 2)))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=stride),
                min_size=2 * n,
                max_size=2 * n,
                unique=True,
            )
        )
    )
    fields = []
    for i in range(0, len(cuts) - 1, 2):
        off, end = cuts[i], cuts[i + 1]
        if end > off:
            fields.append(FieldSlice(f"f{i}", off, end - off))
    if not fields:
        fields = [FieldSlice("f0", 0, min(4, stride))]
    return DataGeometry(row_stride=stride, fields=tuple(fields))


class TestProperties:
    @given(geometries())
    @settings(max_examples=80, deadline=None)
    def test_packed_width_is_field_sum(self, g):
        assert g.packed_width == sum(f.width for f in g.fields)
        assert 0 < g.packed_width <= g.row_stride

    @given(geometries())
    @settings(max_examples=80, deadline=None)
    def test_packed_offsets_partition_output(self, g):
        offsets = [g.packed_offset_of(f.name) for f in g.fields]
        widths = [f.width for f in g.fields]
        cursor = 0
        for off, w in zip(offsets, widths):
            assert off == cursor
            cursor += w
        assert cursor == g.packed_width
