"""Tests for the type system and table schemas."""

import datetime

import numpy as np
import pytest

from repro.db.schema import MVCC_BEGIN, MVCC_END, Column, TableSchema
from repro.db.types import (
    CHAR,
    DATE,
    DECIMAL,
    FLOAT64,
    INT32,
    INT64,
    parse_type,
)
from repro.errors import SchemaError


class TestTypes:
    def test_widths(self):
        assert INT32.width == 4
        assert INT64.width == 8
        assert CHAR(12).width == 12
        assert DECIMAL(2).width == 8
        assert DATE.width == 4

    def test_decimal_roundtrip(self):
        d = DECIMAL(2)
        assert d.encode(12.34) == 1234
        assert d.decode(1234) == pytest.approx(12.34)

    def test_decimal_rounding(self):
        assert DECIMAL(2).encode(0.009) == 1
        assert DECIMAL(2).encode(0.005) == 0  # round-half-even

    def test_decimal_decode_array_rescales(self):
        vals = np.array([100, 250], dtype=np.int64)
        assert DECIMAL(2).decode_array(vals).tolist() == [1.0, 2.5]

    def test_date_roundtrip(self):
        day = datetime.date(1998, 12, 1)
        raw = DATE.encode(day)
        assert DATE.decode(raw) == day

    def test_date_accepts_day_number(self):
        assert DATE.encode(100) == 100

    def test_char_pads_and_strips(self):
        c = CHAR(6)
        raw = c.encode("ab")
        assert raw == b"ab\x00\x00\x00\x00"
        assert c.decode(raw) == "ab"

    def test_char_overflow_rejected(self):
        with pytest.raises(SchemaError):
            CHAR(2).encode("abc")

    def test_parse_type(self):
        assert parse_type("int64") is INT64
        assert parse_type("CHAR(12)").width == 12
        assert parse_type("DECIMAL(4)").scale == 4
        assert parse_type("decimal").scale == 2
        with pytest.raises(SchemaError):
            parse_type("VARCHAR(9)")


class TestSchema:
    def test_offsets_back_to_back(self):
        schema = TableSchema(
            "t", [Column("a", INT64), Column("b", INT32), Column("c", CHAR(3))]
        )
        assert schema.offset_of("a") == 0
        assert schema.offset_of("b") == 8
        assert schema.offset_of("c") == 12
        assert schema.row_stride == 15

    def test_row_alignment_pads(self):
        schema = TableSchema("t", [Column("a", INT32)], row_align=64)
        assert schema.row_stride == 64

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INT32), Column("a", INT64)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_reserved_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column(MVCC_BEGIN, INT64)])

    def test_mvcc_appends_hidden_columns(self):
        schema = TableSchema("t", [Column("a", INT64)], mvcc=True)
        assert schema.row_stride == 8 + 16
        assert schema.column_names == ("a",)  # user view
        assert schema.has_column(MVCC_BEGIN) and schema.has_column(MVCC_END)

    def test_geometry_selected_columns(self):
        schema = TableSchema(
            "t", [Column("a", INT64), Column("b", INT32), Column("c", INT64)]
        )
        g = schema.geometry(["c", "a"])
        assert g.field_names == ("c", "a")
        assert g.packed_width == 16
        assert g.field("c").offset == 12

    def test_geometry_default_all_user_columns(self):
        schema = TableSchema("t", [Column("a", INT64)], mvcc=True)
        g = schema.geometry()
        assert g.field_names == ("a",)
        full = schema.full_geometry()
        assert MVCC_END in full.field_names

    def test_bytes_of(self):
        schema = TableSchema("t", [Column("a", INT64), Column("b", INT32)])
        assert schema.bytes_of(["a", "b"]) == 12

    def test_unknown_column_raises(self):
        schema = TableSchema("t", [Column("a", INT64)])
        with pytest.raises(SchemaError):
            schema.offset_of("zz")
        with pytest.raises(SchemaError):
            schema.column("zz")

    def test_field_slice_carries_dtype(self):
        schema = TableSchema("t", [Column("p", DECIMAL(2)), Column("c", CHAR(4))])
        assert schema.field_slice("p").dtype == "<i8"
        assert schema.field_slice("c").dtype is None
