"""The shard-kill chaos suite, run in-process on a couple of seeds.

CI runs all eight seeds as a matrix job; here two seeds (reduced sizes)
keep the tier-1 suite honest about the harness itself — a refactor that
breaks kill-recovery, typed partials, hedging, or the cross-shard
bit-identity check fails here first.
"""

import pytest

from repro.chaos import ShardKillChaosReport, run_shard_kill_chaos


@pytest.mark.parametrize("seed", [0, 3])
def test_seeded_suite_passes(seed):
    report = run_shard_kill_chaos(seed, n_txns=60, lineitem_rows=6000)
    assert report.passed, report.violations
    assert report.kills == report.shards == 4
    assert report.restarts >= report.kills
    assert report.recoveries >= report.kills
    assert report.recovered_bytes > 0
    assert report.hedge_wins >= 1
    assert report.partial_probes == 1
    assert report.identity_checks == 4


def test_report_to_dict_roundtrips_passed():
    report = ShardKillChaosReport(seed=1, txns=0)
    d = report.to_dict()
    assert d["passed"] is True
    report.violations.append("boom")
    assert report.to_dict()["passed"] is False
