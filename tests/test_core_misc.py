"""Tests for the MVCC visibility masks, the cost ledger, and the RM
engine cost model."""

import numpy as np
import pytest

from repro.core.ledger import CostLedger
from repro.core.mvcc_filter import LIVE_TS, NEVER_TS, latest_mask, version_count, visible_mask
from repro.errors import ConfigurationError
from repro.hw.config import TEST_PLATFORM, ZYNQ_ULTRASCALE
from repro.hw.engine import RelationalMemoryEngineModel


class TestVisibilityMasks:
    def test_visible_window(self):
        begin = np.array([1, 5, 10])
        end = np.array([4, LIVE_TS, LIVE_TS])
        assert visible_mask(begin, end, 3).tolist() == [True, False, False]
        assert visible_mask(begin, end, 5).tolist() == [False, True, False]
        assert visible_mask(begin, end, 100).tolist() == [False, True, True]

    def test_boundaries_begin_inclusive_end_exclusive(self):
        begin = np.array([5])
        end = np.array([9])
        assert visible_mask(begin, end, 5).tolist() == [True]
        assert visible_mask(begin, end, 9).tolist() == [False]

    def test_uncommitted_never_visible(self):
        begin = np.array([NEVER_TS])
        end = np.array([LIVE_TS])
        assert not visible_mask(begin, end, 10**15).any()

    def test_latest_mask(self):
        begin = np.array([1, 1, NEVER_TS])
        end = np.array([5, LIVE_TS, LIVE_TS])
        assert latest_mask(begin, end).tolist() == [False, True, False]

    def test_version_count(self):
        begin = np.array([1, NEVER_TS, 3])
        end = np.array([LIVE_TS, LIVE_TS, 7])
        assert version_count(begin, end) == 2


class TestCostLedger:
    def test_charge_and_total(self):
        ledger = CostLedger()
        ledger.charge("cpu", 100)
        ledger.charge("cpu", 50)
        ledger.charge("memory", 25)
        assert ledger.total_cycles == 175
        assert ledger.get("cpu") == 150
        assert ledger.get("missing") == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge("cpu", -1)

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge("cpu", 10)
        b.charge("cpu", 5)
        b.charge("memory", 7)
        b.charge_traffic(64)
        a.merge(b)
        assert a.get("cpu") == 15 and a.get("memory") == 7
        assert a.dram_bytes == 64

    def test_breakdown_sums_to_one(self):
        ledger = CostLedger()
        ledger.charge("a", 30)
        ledger.charge("b", 70)
        breakdown = ledger.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["b"] == pytest.approx(0.7)

    def test_empty_breakdown_covers_all_buckets(self):
        # A zero-total ledger still reports every known bucket (at 0.0)
        # instead of an empty dict, so degraded/empty runs render a table.
        breakdown = CostLedger().breakdown()
        assert set(CostLedger.KNOWN_BUCKETS) <= set(breakdown)
        assert all(v == 0.0 for v in breakdown.values())


class TestRmEngineModel:
    def make(self, platform=ZYNQ_ULTRASCALE):
        return RelationalMemoryEngineModel(platform)

    def test_out_lines_rounding(self):
        report = self.make().transform(nrows=10, row_stride=64, out_bytes_per_row=24)
        assert report.out_bytes == 240
        assert report.out_lines == 4

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().transform(nrows=10, row_stride=64, out_bytes_per_row=0)

    def test_width_beyond_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().transform(nrows=10, row_stride=64, out_bytes_per_row=65)

    def test_qualifying_rows_shrink_output_not_scan(self):
        full = self.make().transform(nrows=1000, row_stride=64, out_bytes_per_row=16)
        selected = self.make().transform(
            nrows=1000, row_stride=64, out_bytes_per_row=16, qualifying_rows=10
        )
        assert selected.out_bytes == 160
        assert selected.nrows == full.nrows  # all rows inspected

    def test_mvcc_and_predicates_add_fabric_work(self):
        base = self.make().transform(nrows=10000, row_stride=64, out_bytes_per_row=16)
        mvcc = self.make().transform(
            nrows=10000, row_stride=64, out_bytes_per_row=16, mvcc_filter=True
        )
        preds = self.make().transform(
            nrows=10000, row_stride=64, out_bytes_per_row=16, fabric_predicates=4
        )
        assert mvcc.produce_cycles >= base.produce_cycles
        assert preds.produce_cycles >= base.produce_cycles

    def test_refills_track_buffer(self):
        engine = RelationalMemoryEngineModel(TEST_PLATFORM)  # 4 KB buffer
        small = engine.transform(nrows=100, row_stride=64, out_bytes_per_row=16)
        big = engine.transform(nrows=10_000, row_stride=64, out_bytes_per_row=16)
        assert small.refills == 0
        assert big.refills == 10_000 * 16 // TEST_PLATFORM.rm.buffer_bytes - 1 + 1
        assert big.refill_stall_cycles > 0

    def test_produce_cost_scales_with_rows(self):
        a = self.make().transform(nrows=1000, row_stride=64, out_bytes_per_row=16)
        b = self.make().transform(nrows=10_000, row_stride=64, out_bytes_per_row=16)
        assert b.produce_cycles > a.produce_cycles * 5

    def test_slower_fabric_clock_costs_more(self):
        fast = RelationalMemoryEngineModel(
            ZYNQ_ULTRASCALE.with_rm(freq_hz=400_000_000)
        ).transform(nrows=10_000, row_stride=64, out_bytes_per_row=16)
        slow = RelationalMemoryEngineModel(
            ZYNQ_ULTRASCALE.with_rm(freq_hz=50_000_000)
        ).transform(nrows=10_000, row_stride=64, out_bytes_per_row=16)
        assert slow.produce_cycles > fast.produce_cycles
