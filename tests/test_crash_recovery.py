"""Crash-point chaos acceptance suite for the durability subsystem.

The headline guarantee: crash at **every** record boundary of a 200+
transaction seeded HTAP workload (plus dozens of randomized intra-record
torn offsets) and recovery restores exactly the committed-durable state —
verified against a brute-force shadow oracle — while mid-log corruption
is refused loudly with :class:`~repro.errors.WalCorruptionError`.
"""

import pytest

from repro.chaos import (
    check_crash_point,
    run_chaos,
    run_seeded_workload,
    table_visible_rows,
)
from repro.db.wal import WriteAheadLog, recover, scan_records
from repro.errors import ReproError, StorageError, WalCorruptionError
from repro.faults import WAL_FLUSH, WAL_TORN, FaultInjector, FaultPlan
from repro.storage.ssd import SsdLog


@pytest.fixture(scope="module")
def journal():
    """One seeded 200-txn workload shared by the single-point tests."""
    return run_seeded_workload(seed=0, n_txns=200)


class TestAcceptanceChaos:
    def test_every_boundary_and_torn_offsets_recover(self):
        """The acceptance criterion, verbatim: >=200 txns, every record
        boundary, >=64 torn offsets, zero violations, all corruption
        probes detected."""
        report = run_chaos(seed=1, n_txns=200, torn_offsets=64)
        assert report.txns >= 200
        assert report.boundary_points == report.records + 1  # every boundary + 0
        assert report.boundary_points > 200
        assert report.torn_points >= 64
        assert report.corruption_probes == 8
        assert report.corruption_detected == report.corruption_probes
        assert report.violations == []
        assert report.passed
        # The workload actually exercised the interesting paths.
        assert report.conflicts > 0
        assert report.deliberate_aborts > 0

    def test_chaos_with_checkpoints(self):
        report = run_chaos(
            seed=2, n_txns=60, torn_offsets=16, checkpoint_every=20
        )
        assert report.checkpointed
        assert report.violations == []
        assert report.passed

    def test_chaos_with_vacuum(self):
        """Compacting vacuums mid-workload (each checkpointing behind
        itself) must leave every crash point recoverable — the regression
        the review caught: pre-vacuum WAL records redone against
        compacted slots silently lost committed rows."""
        report = run_chaos(seed=4, n_txns=120, torn_offsets=16, vacuum_every=40)
        assert report.vacuums > 0
        assert report.checkpointed  # vacuum checkpoints behind itself
        assert report.violations == []
        assert report.passed


class TestCrashPoints:
    def test_crash_at_zero_recovers_empty(self, journal):
        assert check_crash_point(journal, 0) == []

    def test_crash_at_full_log_recovers_final_state(self, journal):
        offset = len(journal.media)
        assert check_crash_point(journal, offset) == []
        wal = WriteAheadLog(device=SsdLog(initial=journal.media))
        res = recover(wal, schemas=journal.schemas)
        name = next(iter(journal.schemas))
        # The dangling uncommitted txn flushed at the end must be dropped.
        assert res.report.uncommitted_dropped >= 1
        assert (
            table_visible_rows(res.tables[name], res.manager.now)
            == journal.expected_at(offset)
        )

    def test_expected_state_is_monotone(self, journal):
        """The journal's commit offsets are strictly increasing — the
        crash-point ground truth is well defined at every byte."""
        offsets = [off for off, _ in journal.commits]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)
        assert offsets[-1] <= len(journal.media)

    def test_mid_record_crash_rolls_back_to_last_commit(self, journal):
        # One byte past a commit boundary: the trailing partial record is
        # torn garbage; state must equal that commit's snapshot exactly.
        offset = journal.commits[3][0] + 1
        assert check_crash_point(journal, offset) == []


class TestCorruptionDetection:
    def test_mid_log_damage_raises_typed_error(self, journal):
        damaged = bytearray(journal.media)
        damaged[10] ^= 0xFF  # inside the first record
        wal = WriteAheadLog(device=SsdLog(initial=bytes(damaged)))
        with pytest.raises(WalCorruptionError) as exc:
            recover(wal, schemas=journal.schemas)
        # Typed, catchable, part of the repo-wide hierarchy.
        assert isinstance(exc.value, StorageError)
        assert isinstance(exc.value, ReproError)

    def test_damage_in_every_record_but_last_is_detected(self, journal):
        records, _ = scan_records(journal.media)
        starts = [0] + [end for _, end in records[:-1]]
        # Probe the first byte of every 20th record (full sweep is slow).
        for start in starts[:-1][::20]:
            damaged = bytearray(journal.media)
            damaged[start + 2] ^= 0x01  # clobber the type byte region
            wal = WriteAheadLog(device=SsdLog(initial=bytes(damaged)))
            with pytest.raises(WalCorruptionError):
                recover(wal, schemas=journal.schemas)


class TestFaultShapedDevices:
    def test_workload_on_faulty_media_recovers_a_committed_prefix(self):
        """With torn appends and partial flushes shaped into the log by
        the fault injector, recovery must land on *some* committed-prefix
        state (never a torn half-transaction) or refuse loudly."""
        inj = FaultInjector(
            FaultPlan(seed=7, rates={WAL_TORN: 0.05, WAL_FLUSH: 0.03})
        )
        journal = run_seeded_workload(seed=3, n_txns=80, fault_injector=inj)
        assert inj.total_fired > 0, "plan never fired; test is vacuous"
        wal = WriteAheadLog(device=SsdLog(initial=journal.media))
        name = next(iter(journal.schemas))
        try:
            res = recover(wal, schemas=journal.schemas)
        except WalCorruptionError:
            # A lost flush sandwiched between later good flushes is real
            # mid-log corruption; refusing it is the correct outcome.
            return
        visible = table_visible_rows(res.tables[name], res.manager.now)
        valid_states = [snap for _, snap in journal.commits] + [[]]
        assert visible in valid_states
