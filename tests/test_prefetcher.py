"""Tests for the stream prefetcher model."""

from repro.hw.config import PrefetcherConfig
from repro.hw.prefetcher import StreamPrefetcher


def make(max_streams=4, train=3, max_stride=256):
    return StreamPrefetcher(
        PrefetcherConfig(
            max_streams=max_streams, train_lines=train, max_stride_bytes=max_stride
        )
    )


class TestTraining:
    def test_stream_trains_after_train_lines(self):
        pf = make(train=3)
        assert pf.observe_miss(10) is False  # allocates
        assert pf.observe_miss(11) is False  # hit 2, not trained
        assert pf.observe_miss(12) is False  # hit 3 -> trained
        assert pf.observe_miss(13) is True  # covered

    def test_single_miss_never_covered(self):
        pf = make()
        assert pf.observe_miss(100) is False
        assert pf.covered == 0

    def test_non_sequential_misses_never_train(self):
        pf = make()
        for line in (0, 10, 20, 30, 40):
            assert pf.observe_miss(line) is False

    def test_strided_stream_trains(self):
        pf = make()
        stride = 128  # two lines
        for i in range(3):
            pf.observe_miss(i * 2, stride_bytes=stride)
        assert pf.observe_miss(6, stride_bytes=stride) is True

    def test_large_stride_rejected(self):
        pf = make(max_stride=256)
        for i in range(6):
            assert pf.observe_miss(i * 100, stride_bytes=6400) is False
        assert pf.active_streams == 0


class TestStreamLimit:
    def test_covered_stream_count_caps(self):
        pf = make(max_streams=4)
        assert pf.covered_stream_count(2) == 2
        assert pf.covered_stream_count(4) == 4
        assert pf.covered_stream_count(9) == 4

    def test_limit_streams_all_covered(self):
        """max_streams interleaved streams all reach coverage."""
        pf = make(max_streams=4, train=3)
        bases = [0, 1000, 2000, 3000]
        covered = 0
        for step in range(10):
            for base in bases:
                covered += pf.observe_miss(base + step)
        assert covered == 4 * (10 - 3)  # each stream covered after training

    def test_excess_streams_thrash(self):
        """More lockstep streams than the table tracks -> coverage dies
        (the adversarial case the analytic model documents)."""
        pf = make(max_streams=2, train=3)
        bases = [0, 1000, 2000, 3000, 4000]
        for step in range(10):
            for base in bases:
                pf.observe_miss(base + step)
        assert pf.covered == 0

    def test_reset(self):
        pf = make()
        for i in range(5):
            pf.observe_miss(i)
        pf.reset()
        assert pf.active_streams == 0
        assert pf.covered == 0 and pf.uncovered == 0

    def test_lru_stream_replacement(self):
        pf = make(max_streams=2, train=2)
        pf.observe_miss(0)      # stream A
        pf.observe_miss(1000)   # stream B
        pf.observe_miss(1)      # advance A (A newer)
        pf.observe_miss(2000)   # allocates C, evicts B (LRU)
        assert pf.observe_miss(2) is True or pf.active_streams == 2
        # B was evicted: continuing it allocates fresh, not covered.
        assert pf.observe_miss(1001) is False
