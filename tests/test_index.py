"""Tests for the B+-tree, including a model-based property check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.index import BPlusTree, build_index
from repro.errors import IndexError_


class TestBasics:
    def test_insert_and_search(self):
        tree = BPlusTree(fanout=4)
        for i in range(20):
            tree.insert(i, i * 10)
        assert tree.search(7) == [70]
        assert tree.search(99) == []
        assert len(tree) == 20

    def test_duplicates_accumulate(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert sorted(tree.search(5)) == [1, 2]
        assert len(tree) == 2

    def test_unique_constraint(self):
        tree = BPlusTree(fanout=4, unique=True)
        tree.insert(5, 1)
        with pytest.raises(IndexError_):
            tree.insert(5, 2)

    def test_small_fanout_rejected(self):
        with pytest.raises(IndexError_):
            BPlusTree(fanout=2)

    def test_height_grows_with_splits(self):
        tree = BPlusTree(fanout=4)
        for i in range(200):
            tree.insert(i, i)
        assert tree.height >= 3
        for i in range(200):
            assert tree.search(i) == [i]

    def test_reverse_and_shuffled_inserts(self):
        for order in (range(100, 0, -1), np.random.default_rng(0).permutation(100)):
            tree = BPlusTree(fanout=5)
            for k in order:
                tree.insert(int(k), int(k))
            assert [k for k, _ in tree.items()] == sorted(int(k) for k in order)

    def test_string_keys(self):
        tree = BPlusTree(fanout=4)
        for word in ["pear", "apple", "fig", "date"]:
            tree.insert(word, len(word))
        assert tree.search("fig") == [3]
        assert [k for k, _ in tree.items()] == ["apple", "date", "fig", "pear"]


class TestRange:
    def test_inclusive_range(self):
        tree = BPlusTree(fanout=4)
        for i in range(50):
            tree.insert(i, i)
        got = [k for k, _ in tree.range(10, 15)]
        assert got == [10, 11, 12, 13, 14, 15]

    def test_exclusive_high(self):
        tree = BPlusTree(fanout=4)
        for i in range(50):
            tree.insert(i, i)
        got = [k for k, _ in tree.range(10, 15, inclusive=False)]
        assert got == [10, 11, 12, 13, 14]

    def test_range_spans_leaves(self):
        tree = BPlusTree(fanout=4)
        for i in range(500):
            tree.insert(i, i)
        assert len(list(tree.range(0, 499))) == 500

    def test_empty_range(self):
        tree = BPlusTree(fanout=4)
        for i in range(0, 100, 10):
            tree.insert(i, i)
        assert list(tree.range(41, 49)) == []


class TestDelete:
    def test_delete_specific_slot(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert tree.delete(5, 1) == 1
        assert tree.search(5) == [2]
        assert len(tree) == 1

    def test_delete_all_slots_of_key(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert tree.delete(5) == 2
        assert tree.search(5) == []

    def test_delete_missing(self):
        tree = BPlusTree(fanout=4)
        tree.insert(1, 1)
        assert tree.delete(9) == 0
        assert tree.delete(1, 99) == 0


class TestBuildFromTable:
    def test_build_index(self, mixed_catalog):
        _, table = mixed_catalog
        tree = build_index(table, "qty")
        values = table.column_values("qty")
        probe = int(values[0])
        assert set(tree.search(probe)) == set(np.flatnonzero(values == probe).tolist())
        assert len(tree) == table.nrows


class TestModelBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=10**6),
            ),
            max_size=300,
        ),
        st.integers(min_value=4, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, entries, fanout):
        tree = BPlusTree(fanout=fanout)
        model = {}
        for key, slot in entries:
            tree.insert(key, slot)
            model.setdefault(key, []).append(slot)
        assert len(tree) == sum(len(v) for v in model.values())
        for key, slots in model.items():
            assert sorted(tree.search(key)) == sorted(slots)
        assert [k for k, _ in tree.items()] == sorted(
            k for k, v in model.items() for _ in v
        )

    @given(
        st.lists(st.integers(min_value=0, max_value=300), max_size=200),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_matches_model(self, keys, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        tree = BPlusTree(fanout=6)
        for k in keys:
            tree.insert(k, k)
        got = [k for k, _ in tree.range(lo, hi)]
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert got == expected
