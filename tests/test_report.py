"""Tests for the consolidated reproduction report generator."""

import os

import pytest

from repro.bench.report import (
    PAPER_FIGURES,
    collect_sections,
    render_markdown,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig5_projectivity.txt").write_text("fig5 table body\n")
    (d / "htap.txt").write_text("htap table body\n")
    return str(d)


class TestReport:
    def test_sections_mark_presence(self, results_dir):
        sections = collect_sections(results_dir)
        by_title = {s.title: s for s in sections}
        assert by_title["Figure 5"].present
        assert by_title["HTAP"].present
        assert not by_title["Figure 6a"].present

    def test_markdown_checklist_and_bodies(self, results_dir):
        text = render_markdown(results_dir, now="2026-07-04T00:00:00")
        assert "Paper figures with fresh results: **1/5**" in text
        assert "| Figure 5 |" in text and "| ✓ |" in text
        assert "| Figure 6a |" in text and "missing" in text
        assert "fig5 table body" in text
        assert "2026-07-04T00:00:00" in text

    def test_write_report_creates_file(self, results_dir, tmp_path):
        out = str(tmp_path / "REPORT.md")
        assert write_report(results_dir, out) == out
        assert os.path.exists(out)
        with open(out) as f:
            assert "reproduction report" in f.read()

    def test_every_known_figure_listed(self, results_dir):
        text = render_markdown(results_dir)
        for title, _, _ in PAPER_FIGURES:
            assert f"| {title} |" in text

    def test_cli_report_target(self, tmp_path, monkeypatch, capsys):
        from repro.bench.__main__ import main

        results = tmp_path / "benchmarks" / "results"
        results.mkdir(parents=True)
        (results / "fig5_projectivity.txt").write_text("body\n")
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "REPORT.md" in out
        assert (results / "REPORT.md").exists()
