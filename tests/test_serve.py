"""The multi-tenant serving front door (repro.serve).

Covers admission verdicts and token-bucket math, deadline expiry (both
the queue sweep and the dispatch-time check), degraded-mode hysteresis,
graceful shedding, retry-after composition with RetryPolicy, run-level
determinism, span nesting, the serve metrics collector, and the armed
fast path of the two serve chaos sites.
"""

import json
import time

import pytest

from repro import FaultInjector, FaultPlan, MetricsRegistry, RetryPolicy, Tracer
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    FaultError,
    ReproError,
    ServeFaultError,
    TenantThrottledError,
)
from repro.faults import SERVE_CLOCK_SKEW, SERVE_SHED, SERVE_SITES
from repro.serve import (
    ADMIT,
    SHED,
    THROTTLE,
    AdmissionController,
    ExecOutcome,
    Outcome,
    Request,
    ServeConfig,
    ServeOracle,
    ServeScheduler,
    TenantConfig,
    TokenBucket,
    throttle_backoff,
)


def fixed_executor(cycles=10_000.0, degraded_cycles=1_000.0):
    """Deterministic executor: fixed cost, cheaper when asked to degrade."""

    def execute(request, degrade):
        if degrade:
            return ExecOutcome(degraded_cycles, degraded=True)
        return ExecOutcome(cycles)

    return execute


def two_tenant_config(**overrides):
    defaults = dict(
        tenants=(
            TenantConfig("a", weight=2.0, max_concurrency=2,
                         rate_cycles_per_interval=1e6, burst_cycles=2e6),
            TenantConfig("b", weight=1.0, max_concurrency=1,
                         rate_cycles_per_interval=1e6, burst_cycles=2e6),
        ),
        global_concurrency=2,
        interval_cycles=1e6,
        max_queue_depth=8,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


# ----------------------------------------------------------------------
# Error taxonomy.
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_serve_errors_are_fault_errors(self):
        for exc in (TenantThrottledError, DeadlineExceededError):
            assert issubclass(exc, ServeFaultError)
            assert issubclass(exc, FaultError)
            assert issubclass(exc, ReproError)

    def test_throttled_carries_retry_after(self):
        err = TenantThrottledError("quota", retry_after_cycles=123.0)
        assert err.retry_after_cycles == 123.0

    def test_serve_sites_registered(self):
        assert SERVE_SHED in SERVE_SITES
        assert SERVE_CLOCK_SKEW in SERVE_SITES
        # Registered sites are valid FaultPlan keys.
        FaultPlan(rates={SERVE_SHED: 0.5, SERVE_CLOCK_SKEW: 0.5})


# ----------------------------------------------------------------------
# Token buckets.
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        b = TokenBucket(rate=100.0, interval=1_000.0, burst=500.0)
        assert b.tokens == 500.0
        b.refill(10_000.0)  # way past: still capped
        assert b.tokens == 500.0

    def test_continuous_refill(self):
        b = TokenBucket(rate=100.0, interval=1_000.0, burst=500.0)
        assert b.try_take(0.0, 500.0)
        assert b.tokens == 0.0
        b.refill(2_000.0)  # two intervals -> 200 tokens
        assert b.tokens == pytest.approx(200.0)

    def test_insufficient_tokens_rejected_without_deduction(self):
        b = TokenBucket(rate=100.0, interval=1_000.0, burst=500.0)
        assert not b.try_take(0.0, 501.0)
        assert b.tokens == 500.0

    def test_epsilon_never_throttles(self):
        b = TokenBucket(rate=100.0, interval=1_000.0, burst=500.0)
        # Accumulated float error below 1e-9 must not reject.
        assert b.try_take(0.0, 500.0 + 1e-10)

    def test_retry_after_matches_refill_math(self):
        b = TokenBucket(rate=100.0, interval=1_000.0, burst=500.0)
        b.try_take(0.0, 500.0)
        # 300 tokens short -> 300 / (100 per 1000 cycles) = 3000 cycles.
        assert b.retry_after(300.0) == pytest.approx(3_000.0)
        b.refill(3_000.0)
        assert b.try_take(3_000.0, 300.0)

    def test_clock_backwards_raises(self):
        b = TokenBucket(rate=1.0, interval=1.0, burst=1.0)
        b.refill(10.0)
        with pytest.raises(ConfigurationError):
            b.refill(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, interval=1.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, interval=-1.0, burst=1.0)


# ----------------------------------------------------------------------
# Admission verdicts.
# ----------------------------------------------------------------------
def _req(req_id=0, tenant="a", lane="oltp", arrival=0.0, cost=100_000.0,
         deadline=None):
    return Request(req_id=req_id, tenant=tenant, lane=lane, arrival=arrival,
                   cost_estimate=cost, deadline=deadline)


class TestAdmission:
    def make(self):
        return AdmissionController(two_tenant_config())

    def test_admit_deducts_estimate(self):
        ctl = self.make()
        v = ctl.decide(_req(cost=300_000.0), now=0.0, queue_depth=0)
        assert v.action == ADMIT
        assert v.tokens_after == pytest.approx(2e6 - 300_000.0)
        assert v.error(_req()) is None

    def test_over_quota_throttles_with_hint(self):
        ctl = self.make()
        assert ctl.decide(_req(cost=2e6), now=0.0, queue_depth=0).action == ADMIT
        v = ctl.decide(_req(req_id=1, cost=2e6), now=0.0, queue_depth=0)
        assert v.action == THROTTLE
        # Empty bucket, full burst asked: 2e6 / (1e6 per 1e6 cycles).
        assert v.retry_after_cycles == pytest.approx(2e6)
        err = v.error(_req(req_id=1, cost=2e6))
        assert isinstance(err, TenantThrottledError)
        assert err.retry_after_cycles == v.retry_after_cycles

    def test_throttle_does_not_mutate_bucket(self):
        ctl = self.make()
        ctl.decide(_req(cost=2e6), now=0.0, queue_depth=0)
        before = ctl.bucket("a").tokens
        ctl.decide(_req(req_id=1, cost=2e6), now=0.0, queue_depth=0)
        assert ctl.bucket("a").tokens == before

    def test_queue_cap_sheds(self):
        ctl = self.make()
        v = ctl.decide(_req(cost=1.0), now=0.0, queue_depth=8)
        assert v.action == SHED
        assert not v.forced
        assert "full" in str(v.error(_req()))

    def test_forced_shed_takes_precedence(self):
        ctl = self.make()
        v = ctl.decide(_req(cost=1.0), now=0.0, queue_depth=0, forced_shed=True)
        assert v.action == SHED
        assert v.forced
        assert "serve.shed" in str(v.error(_req()))
        # A forced shed never touches the bucket.
        assert ctl.bucket("a").tokens == 2e6

    def test_tenants_isolated(self):
        ctl = self.make()
        ctl.decide(_req(cost=2e6), now=0.0, queue_depth=0)  # drains a
        v = ctl.decide(_req(req_id=1, tenant="b", cost=2e6), now=0.0,
                       queue_depth=0)
        assert v.action == ADMIT

    def test_unknown_tenant_raises(self):
        with pytest.raises(ConfigurationError):
            self.make().bucket("nope")


# ----------------------------------------------------------------------
# Scheduler basics.
# ----------------------------------------------------------------------
class TestScheduler:
    def test_submit_validation(self):
        s = ServeScheduler(two_tenant_config(), fixed_executor())
        with pytest.raises(ConfigurationError):
            s.submit("a", "vip", 100.0)
        with pytest.raises(ConfigurationError):
            s.submit("nope", "oltp", 100.0)
        with pytest.raises(ConfigurationError):
            s.submit("a", "oltp", 0.0)
        with pytest.raises(ConfigurationError):
            s.submit("a", "oltp", 100.0, deadline_budget=-1.0)

    def test_every_request_resolves_exactly_once(self):
        s = ServeScheduler(two_tenant_config(), fixed_executor())
        for i in range(20):
            s.submit("a" if i % 2 else "b", "oltp", 50_000.0,
                     arrival=i * 10_000.0)
        report = s.run_until_drained()
        assert len(report.resolutions) == 20
        assert sorted(report.resolutions) == list(range(20))
        assert all(
            r.outcome is Outcome.COMPLETED for r in report.resolutions.values()
        )
        assert ServeOracle(two_tenant_config()).verify(report.events) == []

    def test_clock_advances_only_while_working(self):
        s = ServeScheduler(two_tenant_config(), fixed_executor(cycles=5_000.0))
        s.submit("a", "oltp", 10_000.0, arrival=100_000.0)
        report = s.run_until_drained()
        # Idle until the arrival, busy for the service time.
        assert report.sim_cycles == pytest.approx(105_000.0)
        assert report.idle_cycles == pytest.approx(100_000.0)
        assert report.busy_cycles == pytest.approx(5_000.0)

    def test_global_concurrency_serializes(self):
        # One slot: three simultaneous arrivals run back to back.
        cfg = two_tenant_config(global_concurrency=1)
        s = ServeScheduler(cfg, fixed_executor(cycles=10_000.0))
        for i in range(3):
            s.submit("a", "oltp", 10_000.0, arrival=0.0)
        report = s.run_until_drained()
        ends = sorted(r.resolved_at for r in report.resolutions.values())
        assert ends == [pytest.approx(10_000.0 * (i + 1)) for i in range(3)]

    def test_per_tenant_concurrency_respected(self):
        cfg = two_tenant_config(global_concurrency=2)
        s = ServeScheduler(cfg, fixed_executor(cycles=10_000.0))
        # b's cap is 1: its second request waits even with a free slot.
        s.submit("b", "oltp", 10_000.0, arrival=0.0)
        s.submit("b", "oltp", 10_000.0, arrival=0.0)
        report = s.run_until_drained()
        ends = sorted(r.resolved_at for r in report.resolutions.values())
        assert ends == [pytest.approx(10_000.0), pytest.approx(20_000.0)]

    def test_throttled_resolution_carries_typed_error(self):
        s = ServeScheduler(two_tenant_config(), fixed_executor())
        s.submit("a", "olap", 2e6, arrival=0.0)
        s.submit("a", "olap", 2e6, arrival=0.0)
        report = s.run_until_drained()
        outcomes = {r.outcome for r in report.resolutions.values()}
        assert Outcome.THROTTLED in outcomes
        throttled = next(
            r for r in report.resolutions.values()
            if r.outcome is Outcome.THROTTLED
        )
        assert isinstance(throttled.error, TenantThrottledError)
        assert throttled.error.retry_after_cycles > 0

    def test_queue_cap_sheds_gracefully(self):
        cfg = two_tenant_config(global_concurrency=1, max_queue_depth=2)
        s = ServeScheduler(cfg, fixed_executor(cycles=1e6))
        # Cheap requests so the bucket never throttles. Same-timestamp
        # arrivals all hit admission before any dispatch, so the third
        # and fourth find the queue at its cap of 2 and are shed.
        for _ in range(4):
            s.submit("a", "oltp", 1_000.0, arrival=0.0)
        report = s.run_until_drained()
        lane = report.lane("a", "oltp")
        assert lane.shed == 2
        assert lane.completed == 2
        shed = next(
            r for r in report.resolutions.values() if r.outcome is Outcome.SHED
        )
        assert isinstance(shed.error, TenantThrottledError)


# ----------------------------------------------------------------------
# Deadlines.
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_queued_past_deadline_expires_on_sweep(self):
        cfg = two_tenant_config(global_concurrency=1)
        s = ServeScheduler(cfg, fixed_executor(cycles=100_000.0))
        s.submit("a", "oltp", 10_000.0, arrival=0.0)  # occupies the slot
        late = s.submit("a", "oltp", 10_000.0, arrival=0.0,
                        deadline_budget=50_000.0)
        report = s.run_until_drained()
        res = report.resolutions[late.req_id]
        assert res.outcome is Outcome.EXPIRED
        assert isinstance(res.error, DeadlineExceededError)
        assert report.lane("a", "oltp").expired == 1
        assert ServeOracle(cfg).verify(report.events) == []

    def test_deadline_met_when_capacity_free(self):
        s = ServeScheduler(two_tenant_config(), fixed_executor(cycles=1_000.0))
        req = s.submit("a", "oltp", 10_000.0, arrival=0.0,
                       deadline_budget=50_000.0)
        report = s.run_until_drained()
        assert report.resolutions[req.req_id].outcome is Outcome.COMPLETED

    def test_deadline_applies_to_queue_wait_not_service(self):
        # Dispatch happens before the deadline; the service time running
        # past it must NOT expire the request (deadlines gate admission
        # and dispatch, not execution).
        s = ServeScheduler(two_tenant_config(), fixed_executor(cycles=90_000.0))
        req = s.submit("a", "oltp", 10_000.0, arrival=0.0,
                       deadline_budget=50_000.0)
        report = s.run_until_drained()
        assert report.resolutions[req.req_id].outcome is Outcome.COMPLETED


# ----------------------------------------------------------------------
# Degraded mode (the overload breaker).
# ----------------------------------------------------------------------
class TestDegradedMode:
    def overload_cfg(self):
        return two_tenant_config(
            tenants=(
                TenantConfig("a", max_concurrency=1,
                             rate_cycles_per_interval=1e9, burst_cycles=1e9),
            ),
            global_concurrency=1,
            degrade_enter_queued_cycles=500_000.0,
            degrade_exit_queued_cycles=100_000.0,
        )

    def test_backlog_degrades_olap_then_recovers(self):
        cfg = self.overload_cfg()
        s = ServeScheduler(
            cfg, fixed_executor(cycles=200_000.0, degraded_cycles=25_000.0)
        )
        for _ in range(8):
            s.submit("a", "olap", 200_000.0, arrival=0.0)
        report = s.run_until_drained()
        lane = report.lane("a", "olap")
        assert report.degraded_mode_entries >= 1
        assert lane.degraded > 0
        # The backlog drained, so the breaker closed again.
        assert not s.degraded_mode
        degraded = [
            r for r in report.resolutions.values()
            if r.outcome is Outcome.DEGRADED
        ]
        assert degraded and all(
            r.service_cycles == 25_000.0 for r in degraded
        )
        assert ServeOracle(cfg).verify(report.events) == []

    def test_oltp_never_degraded(self):
        cfg = self.overload_cfg()
        s = ServeScheduler(cfg, fixed_executor(cycles=200_000.0))
        for _ in range(8):
            s.submit("a", "oltp", 200_000.0, arrival=0.0)
        report = s.run_until_drained()
        assert report.lane("a", "oltp").degraded == 0
        assert report.degraded_mode_entries >= 1  # breaker opened anyway

    def test_hysteresis_validated(self):
        with pytest.raises(ConfigurationError):
            two_tenant_config(
                degrade_enter_queued_cycles=1.0,
                degrade_exit_queued_cycles=2.0,
            )


# ----------------------------------------------------------------------
# Retry-after composition.
# ----------------------------------------------------------------------
class TestThrottleBackoff:
    def test_hint_is_a_floor(self):
        policy = RetryPolicy(base=100.0, multiplier=2.0, cap=1e9, jitter=0.0)
        err = TenantThrottledError("quota", retry_after_cycles=50_000.0)
        # Early attempts: the server hint dominates.
        assert throttle_backoff(policy, err, 0) == 50_000.0
        # Late attempts: the policy's exponential growth dominates.
        assert throttle_backoff(policy, err, 10) == 100.0 * 2.0**10

    def test_plain_error_falls_back_to_policy(self):
        policy = RetryPolicy(base=100.0, multiplier=2.0, cap=1e9, jitter=0.0)
        assert throttle_backoff(policy, ValueError("x"), 2) == 400.0

    def test_end_to_end_hint_survives_resolution(self):
        s = ServeScheduler(two_tenant_config(), fixed_executor())
        s.submit("a", "olap", 2e6, arrival=0.0)
        s.submit("a", "olap", 2e6, arrival=0.0)
        report = s.run_until_drained()
        err = next(
            r.error for r in report.resolutions.values()
            if r.outcome is Outcome.THROTTLED
        )
        policy = RetryPolicy(base=1.0, multiplier=2.0, cap=1e9, jitter=0.0)
        assert throttle_backoff(policy, err, 0) == err.retry_after_cycles


# ----------------------------------------------------------------------
# Determinism.
# ----------------------------------------------------------------------
class TestDeterminism:
    def run_once(self, seed=3):
        from repro.serve import LoadSpec, submit_open_loop, synthetic_executor

        cfg = two_tenant_config()
        s = ServeScheduler(cfg, synthetic_executor(seed=seed))
        specs = [
            LoadSpec("a", "oltp", mean_interarrival_cycles=20_000.0,
                     cost_cycles=(5_000.0, 20_000.0),
                     deadline_budget_cycles=500_000.0),
            LoadSpec("b", "olap", mean_interarrival_cycles=300_000.0,
                     cost_cycles=(200_000.0, 900_000.0)),
        ]
        submit_open_loop(s, specs, horizon_cycles=3_000_000.0, seed=seed)
        return s.run_until_drained()

    def test_identical_seeds_identical_runs(self):
        a, b = self.run_once(), self.run_once()
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )
        assert [(e.kind, e.t, e.req_id) for e in a.events] == [
            (e.kind, e.t, e.req_id) for e in b.events
        ]

    def test_different_seeds_differ(self):
        a, b = self.run_once(seed=3), self.run_once(seed=4)
        assert json.dumps(a.to_dict(), sort_keys=True) != json.dumps(
            b.to_dict(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Spans.
# ----------------------------------------------------------------------
class TestSpans:
    def test_lifecycle_spans_nest_under_caller(self):
        tracer = Tracer()
        s = ServeScheduler(
            two_tenant_config(), fixed_executor(cycles=7_000.0), tracer=tracer
        )
        s.submit("a", "oltp", 10_000.0, arrival=0.0)
        with tracer.span("serve.run") as root:
            s.run_until_drained()
        names = [span.name for span in root.walk()]
        assert names[0] == "serve.run"
        assert "serve.admit" in names
        assert "serve.queue" in names
        assert "serve.execute" in names
        execute = next(sp for sp in root.walk() if sp.name == "serve.execute")
        assert execute.parent is root
        assert execute.attrs["tenant"] == "a"
        assert execute.duration_cycles == 7_000.0

    def test_no_tracer_no_spans(self):
        s = ServeScheduler(two_tenant_config(), fixed_executor())
        s.submit("a", "oltp", 10_000.0)
        s.run_until_drained()  # simply must not blow up without a tracer


# ----------------------------------------------------------------------
# Metrics: hot-path histograms + the registered collector.
# ----------------------------------------------------------------------
class TestServeMetrics:
    def test_collector_and_histograms(self):
        registry = MetricsRegistry()
        s = ServeScheduler(
            two_tenant_config(), fixed_executor(cycles=10_000.0),
            metrics=registry,
        )
        for i in range(4):
            s.submit("a", "oltp", 10_000.0, arrival=i * 1_000.0)
        s.run_until_drained()
        snap = registry.collect()
        assert snap['serve_submitted{lane="oltp",tenant="a"}'] == 4.0
        assert snap['serve_completed{lane="oltp",tenant="a"}'] == 4.0
        assert snap['serve_queue_depth{lane="oltp",tenant="a"}'] == 0.0
        assert snap["serve_running_total"] == 0.0
        assert snap["serve_degraded_mode"] == 0.0
        assert snap['serve_latency_count{lane="oltp",tenant="a"}'] == 4.0
        assert snap['serve_latency_sum{lane="oltp",tenant="a"}'] > 0.0
        assert snap['serve_time_in_queue_count{lane="oltp",tenant="a"}'] == 4.0
        # Tokens drained by four admissions.
        assert snap['serve_tokens{tenant="a"}'] < 2e6

    def test_sampler_ticks_on_the_serve_clock(self):
        registry = MetricsRegistry()
        sampler = registry.attach_sampler(interval_cycles=10_000.0)
        s = ServeScheduler(
            two_tenant_config(), fixed_executor(cycles=10_000.0),
            metrics=registry,
        )
        for i in range(5):
            s.submit("a", "oltp", 10_000.0, arrival=i * 20_000.0)
        s.run_until_drained()
        # 5 back-to-back-ish requests cover ~90k cycles of simulated time.
        assert len(sampler.series) >= 9


# ----------------------------------------------------------------------
# Chaos sites: armed behaviour and the disarmed fast path.
# ----------------------------------------------------------------------
class TestServeFaultSites:
    def test_forced_shed_site(self):
        inj = FaultInjector(FaultPlan(rates={SERVE_SHED: 1.0}, seed=1))
        s = ServeScheduler(
            two_tenant_config(), fixed_executor(), fault_injector=inj
        )
        for _ in range(5):
            s.submit("a", "oltp", 1_000.0, arrival=0.0)
        report = s.run_until_drained()
        lane = report.lane("a", "oltp")
        assert lane.shed == 5
        assert all(
            r.outcome is Outcome.SHED for r in report.resolutions.values()
        )
        assert inj.checks[SERVE_SHED] == 5

    def test_clock_skew_expires_at_dispatch(self):
        cfg = two_tenant_config(max_clock_skew_cycles=1_000_000)
        inj = FaultInjector(FaultPlan(rates={SERVE_CLOCK_SKEW: 1.0}, seed=2))
        s = ServeScheduler(cfg, fixed_executor(), fault_injector=inj)
        # Tight deadlines: any skew draw above 5k cycles expires them.
        for _ in range(10):
            s.submit("a", "oltp", 1_000.0, arrival=0.0,
                     deadline_budget=5_000.0)
        report = s.run_until_drained()
        lane = report.lane("a", "oltp")
        assert lane.expired > 0
        expired = [
            r for r in report.resolutions.values()
            if r.outcome is Outcome.EXPIRED
        ]
        assert all(isinstance(r.error, DeadlineExceededError) for r in expired)
        assert all("skew" in str(r.error) for r in expired)
        # Skewed expiries still satisfy the oracle (skew is in the event).
        assert ServeOracle(cfg).verify(report.events) == []

    def test_no_deadline_no_skew_consultation(self):
        inj = FaultInjector(FaultPlan(rates={SERVE_CLOCK_SKEW: 1.0}, seed=3))
        s = ServeScheduler(
            two_tenant_config(), fixed_executor(), fault_injector=inj
        )
        s.submit("a", "oltp", 1_000.0)
        s.run_until_drained()
        # Best-effort requests never pay the skew check.
        assert SERVE_CLOCK_SKEW not in inj.checks

    def test_disarmed_injector_not_consulted(self):
        inj = FaultInjector(FaultPlan(rates={SERVE_SHED: 0.0}))
        assert not inj.armed
        s = ServeScheduler(
            two_tenant_config(), fixed_executor(), fault_injector=inj
        )
        for _ in range(50):
            s.submit("a", "oltp", 1_000.0, arrival=0.0)
        s.run_until_drained()
        assert inj.checks == {}

    def test_disarmed_overhead_below_five_percent(self):
        """The armed gate costs <5% on the submit/admit/dispatch hot loop
        versus no injector at all (min-of-trials to suppress CI noise)."""

        def _trial(injector):
            s = ServeScheduler(
                two_tenant_config(max_queue_depth=4096),
                fixed_executor(cycles=100.0),
                fault_injector=injector,
            )
            for i in range(1_500):
                s.submit("a", "oltp", 100.0, arrival=float(i) * 50.0)
            t0 = time.perf_counter()
            s.run_until_drained()
            return time.perf_counter() - t0

        disarmed = lambda: FaultInjector(FaultPlan())  # noqa: E731
        _trial(None), _trial(disarmed())  # warm-up
        # Interleave the trials so slow drift in machine load (the rest
        # of the suite, CI neighbours) hits both arms equally, and give
        # a noisy first round a second chance before calling it a
        # regression — a real gate cost reproduces; scheduler jitter
        # does not.
        for round_ in range(3):
            base_times, gated_times = [], []
            for _ in range(7):
                base_times.append(_trial(None))
                gated_times.append(_trial(disarmed()))
            base, gated = min(base_times), min(gated_times)
            if gated < base * 1.05:
                return
        assert gated < base * 1.05, f"disarmed overhead {gated / base - 1:.1%}"
