"""Tests for platform presets, config validation, and the CPU cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import (
    CACHE_LINE_BYTES,
    CacheConfig,
    PlatformConfig,
    TEST_PLATFORM,
    ZYNQ_RMC,
    ZYNQ_ULTRASCALE,
    default_platform,
)
from repro.hw.cpu import CpuCostModel


class TestPresets:
    def test_default_platform_is_the_papers(self):
        assert default_platform() is ZYNQ_ULTRASCALE

    def test_paper_platform_parameters(self):
        """Section V 'Target Platform' verbatim."""
        p = ZYNQ_ULTRASCALE
        assert p.cpu.freq_hz == 1_500_000_000  # 4x Cortex-A53 @ 1.5 GHz
        assert p.l1.size_bytes == 32 * 1024  # 32+32 KB L1 (D side modelled)
        assert p.l2.size_bytes == 1024 * 1024  # 1 MB shared L2
        assert p.rm.freq_hz == 100_000_000  # RM constrained to 100 MHz
        assert p.rm.buffer_bytes == 2 * 1024 * 1024  # 2 MB data memory

    def test_presets_validate(self):
        for platform in (ZYNQ_ULTRASCALE, TEST_PLATFORM, ZYNQ_RMC):
            platform.validate()

    def test_rmc_differs_where_iv_c_says(self):
        assert ZYNQ_RMC.rm.freq_hz > ZYNQ_ULTRASCALE.rm.freq_hz
        assert ZYNQ_RMC.rm.configure_cycles < ZYNQ_ULTRASCALE.rm.configure_cycles
        # Everything CPU-side is the same machine.
        assert ZYNQ_RMC.cpu == ZYNQ_ULTRASCALE.cpu
        assert ZYNQ_RMC.l2 == ZYNQ_ULTRASCALE.l2

    def test_clock_ratio(self):
        assert ZYNQ_ULTRASCALE.rm.clock_ratio(ZYNQ_ULTRASCALE.cpu) == 15.0


class TestValidation:
    def test_mismatched_line_sizes_rejected(self):
        platform = PlatformConfig(
            name="bad",
            l1=CacheConfig(size_bytes=1024, ways=2, line_bytes=32),
        )
        with pytest.raises(ConfigurationError):
            platform.validate()

    def test_buffer_not_line_multiple_rejected(self):
        platform = ZYNQ_ULTRASCALE.with_rm(buffer_bytes=1000)
        with pytest.raises(ConfigurationError):
            platform.validate()

    def test_with_rm_returns_modified_copy(self):
        variant = ZYNQ_ULTRASCALE.with_rm(freq_hz=200_000_000)
        assert variant.rm.freq_hz == 200_000_000
        assert ZYNQ_ULTRASCALE.rm.freq_hz == 100_000_000  # original intact
        assert variant.l1 == ZYNQ_ULTRASCALE.l1

    def test_with_prefetcher_returns_modified_copy(self):
        variant = ZYNQ_ULTRASCALE.with_prefetcher(max_streams=8)
        assert variant.prefetcher.max_streams == 8
        assert ZYNQ_ULTRASCALE.prefetcher.max_streams == 4

    def test_cache_line_constant(self):
        assert CACHE_LINE_BYTES == 64


class TestCpuCostModel:
    @pytest.fixture
    def cpu(self):
        return CpuCostModel(ZYNQ_ULTRASCALE.cpu)

    def test_linear_helpers(self, cpu):
        cfg = ZYNQ_ULTRASCALE.cpu
        assert cpu.volcano_tuples(10) == 10 * cfg.volcano_tuple_cycles
        assert cpu.field_extracts(3) == 3 * cfg.field_extract_cycles
        assert cpu.vector_ops(7) == 7 * cfg.vector_op_cycles
        assert cpu.reconstructions(2) == 2 * cfg.col_reconstruct_cycles
        assert cpu.aggregate_updates(5) == 5 * cfg.aggregate_update_cycles
        assert cpu.intermediates(4) == 4 * cfg.intermediate_value_cycles
        assert cpu.function_calls(6) == 6 * cfg.function_call_cycles

    def test_branch_misses_symmetric_in_selectivity(self, cpu):
        assert cpu.branch_misses(100, 0.1) == pytest.approx(
            cpu.branch_misses(100, 0.9)
        )
        assert cpu.branch_misses(100, 0.5) > cpu.branch_misses(100, 0.01)
        assert cpu.branch_misses(100, 0.0) == 0.0

    def test_predicates(self, cpu):
        cfg = ZYNQ_ULTRASCALE.cpu
        assert cpu.predicates(10) == 10 * cfg.predicate_cycles
        with_misses = cpu.predicates(10, miss_fraction=0.5)
        assert with_misses == 10 * cfg.predicate_cycles + 5 * cfg.branch_miss_cycles

    def test_seconds_conversion(self, cpu):
        assert cpu.seconds(1_500_000_000) == pytest.approx(1.0)
        assert cpu.seconds(0) == 0.0
