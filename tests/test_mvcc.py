"""Tests for snapshot-isolation MVCC: lifecycle, anomalies, vacuum."""

import numpy as np
import pytest

from repro.core.mvcc_filter import LIVE_TS, NEVER_TS
from repro.db import Catalog, Column, Table, TableSchema
from repro.db.mvcc import TransactionManager, TxnState
from repro.db.types import INT64
from repro.errors import (
    TransactionError,
    TransactionStateError,
    WriteConflictError,
)


@pytest.fixture
def setup(mvcc_catalog):
    catalog, table = mvcc_catalog
    manager = TransactionManager()
    txn = manager.begin()
    slots = [txn.insert(table, {"id": i, "balance": 100 * i}) for i in range(5)]
    manager.commit(txn)
    return catalog, table, manager, slots


class TestLifecycle:
    def test_insert_invisible_until_commit(self, mvcc_catalog):
        _, table = mvcc_catalog
        manager = TransactionManager()
        txn = manager.begin()
        slot = txn.insert(table, {"id": 1, "balance": 5})
        assert table.begin_ts[slot] == NEVER_TS
        other = manager.begin()
        assert len(other.visible_slots(table)) == 0
        # But the writer sees its own pending row.
        assert slot in txn.visible_slots(table)
        manager.commit(txn)
        fresh = manager.begin()
        assert slot in fresh.visible_slots(table)

    def test_commit_stamps_timestamps(self, setup):
        _, table, manager, slots = setup
        assert (table.begin_ts[: len(slots)] > 0).all()
        assert (table.end_ts[: len(slots)] == LIVE_TS).all()

    def test_update_creates_version_chain(self, setup):
        _, table, manager, slots = setup
        txn = manager.begin()
        new_slot = txn.update(table, slots[0], {"balance": 1})
        ts = manager.commit(txn)
        assert table.end_ts[slots[0]] == ts
        assert table.begin_ts[new_slot] == ts
        assert table.row(new_slot)["balance"] == 1
        assert table.row(new_slot)["id"] == 0  # unchanged columns copied

    def test_delete_ends_validity(self, setup):
        _, table, manager, slots = setup
        txn = manager.begin()
        txn.delete(table, slots[2])
        ts = manager.commit(txn)
        assert table.end_ts[slots[2]] == ts
        assert slots[2] not in manager.begin().visible_slots(table)

    def test_operations_after_commit_rejected(self, setup):
        _, table, manager, _ = setup
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionStateError):
            txn.insert(table, {"id": 9, "balance": 9})

    def test_abort_hides_writes_forever(self, setup):
        _, table, manager, _ = setup
        txn = manager.begin()
        txn.insert(table, {"id": 9, "balance": 9})
        manager.abort(txn)
        assert txn.state is TxnState.ABORTED
        assert len(manager.begin().visible_slots(table)) == 5

    def test_double_abort_is_idempotent(self, setup):
        _, _, manager, _ = setup
        txn = manager.begin()
        manager.abort(txn)
        manager.abort(txn)
        assert manager.stats.aborted == 1

    def test_non_mvcc_table_rejected(self, setup):
        catalog, _, manager, _ = setup
        plain = catalog.create_table(TableSchema("plain", [Column("x", INT64)]))
        txn = manager.begin()
        with pytest.raises(TransactionError):
            txn.insert(plain, {"x": 1})


class TestIsolation:
    def test_snapshot_does_not_see_later_commits(self, setup):
        _, table, manager, slots = setup
        reader = manager.begin()
        writer = manager.begin()
        writer.update(table, slots[0], {"balance": 777})
        manager.commit(writer)
        visible = reader.visible_slots(table)
        assert slots[0] in visible  # old version still visible
        assert table.row(slots[0])["balance"] == 0

    def test_first_committer_wins_at_commit(self, setup):
        _, table, manager, slots = setup
        t1 = manager.begin()
        t2 = manager.begin()
        t1.update(table, slots[1], {"balance": 1})
        t2.update(table, slots[1], {"balance": 2})  # both read same snapshot
        manager.commit(t1)
        with pytest.raises(WriteConflictError):
            manager.commit(t2)
        assert t2.state is TxnState.ABORTED
        assert manager.stats.conflicts == 1

    def test_conflict_detected_early_when_version_superseded(self, setup):
        _, table, manager, slots = setup
        t1 = manager.begin()
        t1.update(table, slots[1], {"balance": 1})
        manager.commit(t1)
        t2 = manager.begin()  # started after t1 committed: no conflict
        slots2 = t2.visible_slots(table)
        t2.update(table, int(slots2[-1]), {"balance": 2})
        manager.commit(t2)
        # But a txn with an OLD snapshot updating the superseded version
        # conflicts immediately.
        t3 = manager.begin()
        with pytest.raises(WriteConflictError):
            t3.update(table, slots[1], {"balance": 3})
        assert t3.state is TxnState.ABORTED

    def test_write_skew_is_allowed_under_si(self, setup):
        """Snapshot isolation famously permits write skew on disjoint
        rows — the reproduction must too (it is SI, not serializable)."""
        _, table, manager, slots = setup
        t1 = manager.begin()
        t2 = manager.begin()
        t1.update(table, slots[0], {"balance": 0})
        t2.update(table, slots[1], {"balance": 0})
        manager.commit(t1)
        manager.commit(t2)  # no conflict: disjoint write sets
        assert manager.stats.conflicts == 0

    def test_same_txn_double_write_rejected(self, setup):
        _, table, manager, slots = setup
        txn = manager.begin()
        txn.update(table, slots[0], {"balance": 1})
        with pytest.raises(TransactionError):
            txn.update(table, slots[0], {"balance": 2})

    def test_updating_own_insert_rejected(self, setup):
        _, table, manager, _ = setup
        txn = manager.begin()
        slot = txn.insert(table, {"id": 10, "balance": 10})
        with pytest.raises(TransactionError):
            txn.update(table, slot, {"balance": 11})


class TestVacuum:
    def test_vacuum_reclaims_dead_and_aborted(self, setup):
        _, table, manager, slots = setup
        txn = manager.begin()
        txn.update(table, slots[0], {"balance": 1})
        manager.commit(txn)
        aborted = manager.begin()
        aborted.insert(table, {"id": 42, "balance": 0})
        manager.abort(aborted)
        assert table.nrows == 7
        removed = manager.vacuum(table)
        assert removed == 2  # the superseded version + the aborted insert
        assert table.nrows == 5

    def test_vacuum_respects_active_snapshots(self, setup):
        _, table, manager, slots = setup
        reader = manager.begin()  # holds the old snapshot
        txn = manager.begin()
        txn.update(table, slots[0], {"balance": 1})
        manager.commit(txn)
        with pytest.raises(TransactionError):
            manager.vacuum(table)
        manager.abort(reader)
        assert manager.vacuum(table) == 1

    def test_vacuum_non_mvcc_noop(self, setup):
        catalog, _, manager, _ = setup
        plain = catalog.create_table(TableSchema("p2", [Column("x", INT64)]))
        assert manager.vacuum(plain) == 0

    def test_queries_unchanged_after_vacuum(self, setup):
        catalog, table, manager, slots = setup
        from repro.db.engines import all_engines

        txn = manager.begin()
        txn.update(table, slots[3], {"balance": 12345})
        manager.commit(txn)
        sql = "SELECT sum(balance) AS s FROM accounts"
        engines = all_engines(catalog)
        before = engines["row"].execute(sql, snapshot_ts=manager.now).result.scalar()
        manager.vacuum(table)
        for engine in engines.values():
            after = engine.execute(sql, snapshot_ts=manager.now).result.scalar()
            assert after == before


class TestStats:
    def test_counters(self, setup):
        _, table, manager, slots = setup
        txn = manager.begin()
        txn.update(table, slots[0], {"balance": 3})
        manager.commit(txn)
        assert manager.stats.begun == 2
        assert manager.stats.committed == 2
        assert manager.stats.versions_created == 6

    def test_oldest_active_snapshot(self, setup):
        _, _, manager, _ = setup
        a = manager.begin()
        b = manager.begin()
        assert manager.oldest_active_snapshot() == a.start_ts
        manager.abort(a)
        assert manager.oldest_active_snapshot() == b.start_ts


# ----------------------------------------------------------------------
# run_transaction hygiene: no exception path may leak an active txn.
# ----------------------------------------------------------------------
class TestRunTransactionHygiene:
    def test_non_conflict_exception_aborts_the_transaction(self, mvcc_catalog):
        """Regression: an arbitrary error from ``fn`` used to leave the
        transaction in ``_active`` forever, pinning the vacuum horizon."""
        from repro.db.mvcc import run_transaction

        _, table = mvcc_catalog
        manager = TransactionManager()

        def boom(txn):
            txn.insert(table, {"id": 1, "balance": 1})
            raise ValueError("application bug, not a conflict")

        with pytest.raises(ValueError):
            run_transaction(manager, boom)
        assert manager.active_count == 0
        assert manager.stats.aborted == 1
        assert manager.stats.retries == 0  # not a conflict: no replay
        # The horizon advanced past the failed txn, so vacuum reclaims
        # its garbage instead of being pinned forever.
        assert manager.oldest_active_snapshot() == manager.now
        assert manager.vacuum(table) == 1
        assert table.nrows == 0

    def test_keyboard_interrupt_also_aborts(self, mvcc_catalog):
        from repro.db.mvcc import run_transaction

        _, table = mvcc_catalog
        manager = TransactionManager()

        def interrupted(txn):
            txn.insert(table, {"id": 1, "balance": 1})
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_transaction(manager, interrupted)
        assert manager.active_count == 0

    def test_policy_budget_wins_over_retries_argument(self):
        """One object owns the retry shape: an explicit ``policy``'s
        budget applies and the bare ``retries`` argument is ignored."""
        from repro.db.mvcc import run_transaction
        from repro.faults import RetryPolicy

        manager = TransactionManager()
        attempts = []

        def always_conflict(txn):
            attempts.append(txn.txn_id)
            raise WriteConflictError("synthetic")

        with pytest.raises(WriteConflictError):
            run_transaction(
                manager, always_conflict, retries=9, policy=RetryPolicy(retries=1)
            )
        assert len(attempts) == 2  # 1 try + policy's 1 retry, not 10
        assert manager.stats.retries == 1

    def test_retries_argument_shapes_the_default_policy(self):
        from repro.db.mvcc import run_transaction

        manager = TransactionManager()
        attempts = []

        def always_conflict(txn):
            attempts.append(txn.txn_id)
            raise WriteConflictError("synthetic")

        with pytest.raises(WriteConflictError):
            run_transaction(manager, always_conflict, retries=0)
        assert len(attempts) == 1


# ----------------------------------------------------------------------
# Property test: randomized interleavings vs the brute-force oracle.
# ----------------------------------------------------------------------
class TestVisibilityVsOracle:
    """Drive random concurrent interleavings through the real manager and
    the dict-based :class:`~repro.chaos.ShadowOracle` in lockstep, then
    demand identical visibility at *every* timestamp ever issued."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_interleavings_match_oracle(self, seed):
        import random

        from repro.chaos import ShadowOracle, table_visible_rows
        from repro.errors import TransactionError as TxnErr

        rng = random.Random(seed)
        schema = TableSchema(
            "accounts", [Column("id", INT64), Column("balance", INT64)], mvcc=True
        )
        table = Table(schema)
        manager = TransactionManager()
        oracle = ShadowOracle()
        active = []
        next_id = 0

        def committed_live():
            mask = (table.begin_ts != NEVER_TS) & (table.end_ts == LIVE_TS)
            return list(np.flatnonzero(mask))

        def finish(txn, how):
            active.remove(txn)
            if how == "abort":
                manager.abort(txn)
                oracle.abort(txn.txn_id)
                return
            try:
                manager.commit(txn)
                oracle.commit(txn.txn_id, txn.commit_ts)
            except WriteConflictError:
                oracle.abort(txn.txn_id)

        for _ in range(150):
            action = rng.random()
            if action < 0.25 or not active:
                if len(active) < 4:
                    txn = manager.begin()
                    oracle.begin(txn.txn_id)
                    active.append(txn)
                continue
            txn = rng.choice(active)
            try:
                if action < 0.45:
                    next_id += 1
                    slot = txn.insert(
                        table, {"id": next_id, "balance": next_id * 10}
                    )
                    oracle.insert(txn.txn_id, table.row(slot))
                elif action < 0.60:
                    live = committed_live()
                    if live:
                        old = int(rng.choice(live))
                        new = txn.update(
                            table, old, {"balance": int(rng.randrange(1000))}
                        )
                        oracle.update(txn.txn_id, old, table.row(new))
                elif action < 0.70:
                    live = committed_live()
                    if live:
                        old = int(rng.choice(live))
                        txn.delete(table, old)
                        oracle.delete(txn.txn_id, old)
                elif action < 0.90:
                    finish(txn, "commit")
                else:
                    finish(txn, "abort")
            except WriteConflictError:
                # The manager aborted the txn inside update/delete;
                # mirror that into the oracle.
                active.remove(txn)
                oracle.abort(txn.txn_id)
            except TxnErr:
                pass  # double-write on one slot etc.: no state change

        for txn in list(active):
            finish(txn, rng.choice(["commit", "abort"]))

        assert len(oracle.rows) == table.nrows  # slot-aligned by design
        for ts in range(manager.now + 2):
            assert table_visible_rows(table, ts) == oracle.visible(ts), (
                f"seed {seed}: visibility diverged at ts={ts}"
            )
