"""Cross-process trace propagation: wire encoding, the graft splice, and
the bit-identity contract of distributed traces.

The acceptance bar for the distributed-tracing spine:

* a grafted distributed trace replays (:meth:`Trace.to_ledger`) to the
  same buckets as the per-query ledger at **every** shard count — grafted
  worker spans are counters-only annotations, never replayable events;
* a hedged loser's spans may land in the trace but can never charge the
  ledger (the winner's partial is the only one merged);
* spans from a SIGKILL-recovered shard come back tagged with the
  incarnation that produced them and render on their own process track
  in the Chrome/Perfetto export.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hyp_st

from repro.core.selection import CompareOp
from repro.db.sharding import ShardedTable
from repro.dist import (
    AggSpec,
    AggTerm,
    DistConfig,
    DistPlan,
    DistPredicate,
    ShardCluster,
    execute_plan,
    q6_plan,
)
from repro.faults import SHARD_STALL
from repro.obs import (
    Span,
    Trace,
    TraceContext,
    Tracer,
    graft_partial,
    new_trace_id,
    span_to_wire,
    wire_to_span,
)
from repro.workloads.htap import orders_schema
from repro.workloads.tpch import generate_lineitem


def shard_lineitem(table, nshards):
    keys = table.column("l_orderkey")
    qs = np.linspace(0, 1, nshards + 1)[1:-1]
    bounds = sorted({int(np.quantile(keys, q)) for q in qs})
    sharded = ShardedTable(table.schema, "l_orderkey", bounds)
    sharded.bulk_load(
        {
            c.name: (
                table.column(c.name).view(f"S{c.dtype.width}").reshape(-1)
                if c.dtype.np_dtype is None
                else table.column(c.name)
            )
            for c in table.schema.user_columns
        }
    )
    return sharded


ORDERS_PLAN = DistPlan(
    table="orders",
    key_column="o_id",
    predicates=(DistPredicate("o_customer", CompareOp.LE, 40),),
    group_by=("o_status",),
    aggregates=(
        AggSpec("sum_amount", "sum", (AggTerm("o_amount"),)),
        AggSpec("n", "count"),
    ),
)


def durable_cluster(config=None, n=120, seed=5):
    cluster = ShardCluster(
        ShardedTable(orders_schema(), "o_id", [100, 200, 300]),
        config or DistConfig(inline=True),
        durable=True,
    )
    cluster.start()
    rng = np.random.default_rng(seed)
    for _ in range(n):
        cluster.insert(
            {
                "o_id": int(rng.integers(0, 400)),
                "o_customer": int(rng.integers(1, 50)),
                "o_amount": float(rng.integers(1, 20_000)) / 100.0,
                "o_status": int(rng.integers(0, 3)),
            }
        )
    return cluster


# ----------------------------------------------------------------------
# The wire protocol: TraceContext and span tree encoding.
# ----------------------------------------------------------------------
class TestWire:
    def test_context_child_carries_identity(self):
        ctx = TraceContext(trace_id="tdeadbeef")
        child = ctx.child(3, 2)
        assert child.trace_id == "tdeadbeef"
        assert child.parent == ctx.parent == "dist.shard_exec"
        assert (child.shard, child.incarnation) == (3, 2)

    def test_new_trace_ids_are_unique_and_prefixed(self):
        ids = {new_trace_id("q") for _ in range(64)}
        assert len(ids) == 64
        assert all(i.startswith("q") for i in ids)

    def test_roundtrip_preserves_shape_but_not_events(self):
        tracer = Tracer()
        with tracer.span("worker.exec", shard=1) as root:
            with tracer.span("frag.scan") as scan:
                tracer.record("dist_scan", 120.0)
                scan.add_counter("rows", 500)
            with tracer.span("frag.agg"):
                tracer.record("dist_agg", 30.0)
        wire = span_to_wire(root)
        rebuilt = wire_to_span(wire)
        assert rebuilt.name == "worker.exec"
        assert [c.name for c in rebuilt.children] == ["frag.scan", "frag.agg"]
        assert rebuilt.attrs["remote"] is True
        # Bucket totals survive as counters for rendering...
        assert rebuilt.children[0].counters["bucket:dist_scan"] == 120.0
        assert rebuilt.children[0].counters["rows"] == 500.0
        # ...and the timeline width ships as an explicit duration...
        assert rebuilt.duration_cycles == root.duration_cycles == 150.0
        # ...but replay sees *no* events: grafts cannot double-charge.
        assert Trace(rebuilt).to_ledger().buckets == {}

    def test_graft_partial_noop_paths(self):
        wire = span_to_wire(Span("x"))
        assert graft_partial(None, wire) is None
        assert graft_partial(Tracer(enabled=False), wire) is None
        idle = Tracer()
        assert graft_partial(idle, wire) is None  # no open span
        with idle.span("dist.shard_exec"):
            assert graft_partial(idle, None) is None  # reply had no spans
            grafted = graft_partial(idle, wire, hedge_loser=True)
        assert grafted is not None and grafted.attrs["hedge_loser"] is True


# ----------------------------------------------------------------------
# Bit-identity of the grafted distributed trace.
# ----------------------------------------------------------------------
class TestDistTraceIdentity:
    @given(seed=hyp_st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=5, deadline=None)
    def test_to_ledger_identical_across_1_2_4_8_shards(self, seed):
        _, table = generate_lineitem(600, seed=seed)
        serial = execute_plan(table, q6_plan())
        replays = []
        for nshards in (1, 2, 4, 8):
            tracer = Tracer()
            sharded = shard_lineitem(table, nshards)
            with ShardCluster(sharded, DistConfig(inline=True)) as cluster:
                res = cluster.query(q6_plan(), tracer=tracer)
            assert res.to_bytes() == serial.to_bytes()
            replayed = Trace(tracer.last).to_ledger()
            # The grafted trace replays to exactly the per-query ledger —
            # worker spans contributed rendering, not charges.
            assert replayed.buckets == res.ledger.buckets
            replays.append(
                json.dumps(replayed.buckets, sort_keys=True).encode()
            )
        assert len(set(replays)) == 1, "replay diverged across shard counts"

    def test_worker_spans_grafted_with_identity(self):
        _, table = generate_lineitem(800, seed=9)
        tracer = Tracer()
        with ShardCluster(
            shard_lineitem(table, 3), DistConfig(inline=True)
        ) as cluster:
            cluster.query(q6_plan(), tracer=tracer)
        trace = Trace(tracer.last)
        workers = [s for s in trace.root.walk() if s.name == "worker.exec"]
        assert len(workers) == 3
        root_tid = trace.root.attrs.get("trace_id")
        for w in workers:
            assert w.attrs["remote"] is True
            assert w.attrs["incarnation"] == 0
            assert w.attrs["trace_id"] == root_tid
            assert w.parent.name == "dist.shard_exec"
        assert sorted(w.attrs["shard"] for w in workers) == [0, 1, 2]


# ----------------------------------------------------------------------
# Hedging: the loser may appear in the trace, never in the ledger.
# ----------------------------------------------------------------------
class TestHedgedTrace:
    def test_hedge_winner_tagged_and_no_double_charge(self):
        config = DistConfig(
            deadline_s=10.0,
            hedge_after_s=0.1,
            stall_s=1.5,
            fault_rates={SHARD_STALL: 1.0},
            fault_max=1,
            fault_shards=frozenset({0}),
            fault_incarnations=frozenset({0}),
        )
        cluster = durable_cluster(config, n=60)
        try:
            tracer = Tracer()
            serial = cluster.run_serial(ORDERS_PLAN)
            res = cluster.query(ORDERS_PLAN, tracer=tracer)
            assert res.to_bytes() == serial.to_bytes()
            assert cluster.stats.hedge_wins_total >= 1
            trace = Trace(tracer.last)
            winners = [
                s for s in trace.root.walk()
                if s.name == "worker.exec" and s.attrs.get("hedge_winner")
            ]
            assert winners, "no hedge-winner span grafted"
            assert all(w.attrs["incarnation"] >= 1 for w in winners)
            # Ledger bit-identity holds with hedging in play: the loser's
            # spans (grafted or not) carry zero replayable events.
            assert trace.to_ledger().buckets == res.ledger.buckets
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# SIGKILL + recovery: incarnation tagging end to end (acceptance bar).
# ----------------------------------------------------------------------
class TestKillRecoveryTrace:
    def test_recovered_shard_spans_are_incarnation_tagged(self):
        cluster = durable_cluster()
        try:
            serial = cluster.run_serial(ORDERS_PLAN)
            cluster.kill_shard(1)
            tracer = Tracer()
            res = cluster.query(ORDERS_PLAN, tracer=tracer)
            assert res.to_bytes() == serial.to_bytes()
            trace = Trace(tracer.last)
            # The coordinator recorded the recovery under the awaiting
            # shard_exec span, tagged with the new incarnation...
            recovery = trace.find("dist.recovery")
            assert recovery is not None
            assert recovery.attrs["shard"] == 1
            assert recovery.attrs["incarnation"] == 1
            # ...and the worker's own spans carry the incarnation that
            # actually produced the answer.
            workers = {
                s.attrs["shard"]: s
                for s in trace.root.walk()
                if s.name == "worker.exec"
            }
            assert workers[1].attrs["incarnation"] == 1
            assert all(
                w.attrs["incarnation"] == 0
                for shard, w in workers.items() if shard != 1
            )
        finally:
            cluster.close()

    def test_render_and_chrome_export_show_remote_tracks(self):
        cluster = durable_cluster()
        try:
            cluster.kill_shard(2)
            tracer = Tracer()
            cluster.query(ORDERS_PLAN, tracer=tracer)
            trace = Trace(tracer.last)
            text = trace.render()
            assert "worker.exec" in text and "dist.recovery" in text
            # Remote spans render the shipped duration, marked "~".
            assert "~" in text
            doc = json.loads(trace.to_chrome_json())
            events = doc["traceEvents"]
            # One process track per shard: remote pids 2 + shard.
            pids = {e["pid"] for e in events if e["ph"] == "X"}
            assert pids >= {1, 2, 3, 4, 5}
            names = {
                e["args"]["name"]
                for e in events
                if e["ph"] == "M" and e["name"] == "process_name"
            }
            assert {"shard 0", "shard 1", "shard 2", "shard 3"} <= names
            threads = {
                e["args"]["name"]
                for e in events
                if e["ph"] == "M" and e["name"] == "thread_name"
            }
            # The killed shard answered from its restarted incarnation.
            assert "incarnation 1" in threads
        finally:
            cluster.close()
