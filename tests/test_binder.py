"""Tests for binding SQL against the catalog."""

import pytest

from repro.db.plan import bind
from repro.db.sql import parse
from repro.errors import SqlError


def bound(sql, catalog):
    return bind(parse(sql), catalog)


class TestResolution:
    def test_unknown_table(self, mixed_catalog):
        catalog, _ = mixed_catalog
        with pytest.raises(Exception):
            bound("SELECT id FROM nope", catalog)

    def test_unknown_column(self, mixed_catalog):
        catalog, _ = mixed_catalog
        with pytest.raises(SqlError):
            bound("SELECT nope FROM mixed", catalog)

    def test_referenced_columns_in_schema_order(self, mixed_catalog):
        catalog, _ = mixed_catalog
        b = bound("SELECT sum(qty) AS s FROM mixed WHERE price > 1 AND id < 100", catalog)
        assert b.referenced_columns == ("id", "price", "qty")
        assert b.selection_columns == ("id", "price")
        assert b.projection_columns == ("qty",)

    def test_group_by_column_counts_as_projection(self, mixed_catalog):
        catalog, _ = mixed_catalog
        b = bound("SELECT grp, count(*) AS n FROM mixed GROUP BY grp", catalog)
        assert "grp" in b.projection_columns

    def test_count_star_touches_narrowest_column(self, mixed_catalog):
        catalog, table = mixed_catalog
        b = bound("SELECT count(*) AS n FROM mixed", catalog)
        assert b.referenced_columns == ("grp",)  # CHAR(2) is narrowest

    def test_output_names(self, mixed_catalog):
        catalog, _ = mixed_catalog
        b = bound("SELECT id, qty + 1 AS next FROM mixed", catalog)
        assert b.outputs[0].name == "id"
        assert b.outputs[1].name == "next"

    def test_mixing_agg_and_plain_without_group_rejected(self, mixed_catalog):
        catalog, _ = mixed_catalog
        with pytest.raises(SqlError):
            bound("SELECT id, sum(qty) FROM mixed", catalog)

    def test_non_grouped_plain_output_rejected(self, mixed_catalog):
        catalog, _ = mixed_catalog
        with pytest.raises(SqlError):
            bound("SELECT id, sum(qty) AS s FROM mixed GROUP BY grp", catalog)


class TestCharPadding:
    def test_char_literal_padded_to_width(self, mixed_catalog):
        catalog, _ = mixed_catalog
        b = bound("SELECT id FROM mixed WHERE grp = 'aa'", catalog)
        assert b.where.right.value == b"aa"

    def test_char_literal_shorter_than_width(self, mixed_catalog):
        catalog, table = mixed_catalog
        b = bound("SELECT id FROM mixed WHERE grp = 'a'", catalog)
        assert b.where.right.value == b"a\x00"

    def test_literal_on_left_also_padded(self, mixed_catalog):
        catalog, _ = mixed_catalog
        b = bound("SELECT id FROM mixed WHERE 'aa' = grp", catalog)
        assert b.where.left.value == b"aa"


class TestDerivedCounts:
    def test_op_counts(self, mixed_catalog):
        catalog, _ = mixed_catalog
        b = bound(
            "SELECT sum(price * qty) AS s FROM mixed WHERE qty BETWEEN 1 AND 5",
            catalog,
        )
        assert b.where_op_count == 2
        assert b.output_op_count == 1
        assert b.aggregate_count == 1

    def test_where_conjuncts_split(self, mixed_catalog):
        catalog, _ = mixed_catalog
        b = bound(
            "SELECT id FROM mixed WHERE id > 1 AND qty < 5 AND price > 0", catalog
        )
        assert len(b.where_conjuncts) == 3

    def test_join_binding(self, mixed_catalog):
        catalog, table = mixed_catalog
        from repro.db import Column, TableSchema
        from repro.db.types import CHAR, INT64

        lookup = catalog.create_table(
            TableSchema("grps", [Column("code", CHAR(2)), Column("label", CHAR(8))])
        )
        lookup.append_row({"code": "aa", "label": "alpha"})
        b = bound(
            "SELECT id, label FROM mixed JOIN grps ON grp = code", catalog
        )
        assert b.join is not None
        assert b.join.table.schema.name == "grps"
