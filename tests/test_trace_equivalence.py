"""Property: the hierarchical trace is a *lossless refinement* of the
flat cost buckets.

Replaying every charge event of a trace in sequence order must rebuild
``result.ledger`` exactly — same buckets, same total, same DRAM bytes,
bit for bit (float folds happen in the same order, so the equality is
``==``, not ``approx``). And attaching a tracer must not perturb the
numbers an untraced run produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Catalog, Column, TableSchema
from repro.db.engines import all_engines
from repro.db.types import CHAR, INT64
from repro.obs import Tracer
from repro.workloads.tpch import Q6, generate_lineitem

N_ROWS = 200
COLUMNS = ("a", "b", "c", "d")
ENGINES = ("row", "column", "rm")
MODELS = ("analytic", "trace")


def build_catalog(seed: int):
    schema = TableSchema(
        "fuzz",
        [Column(name, INT64) for name in COLUMNS] + [Column("g", CHAR(1))],
    )
    catalog = Catalog()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(seed)
    table.append_arrays(
        {
            **{name: rng.integers(0, 50, N_ROWS) for name in COLUMNS},
            "g": rng.choice(np.array([b"x", b"y", b"z"], dtype="S1"), N_ROWS),
        }
    )
    return catalog


@st.composite
def queries(draw):
    """Small fault-free query pool: every engine shape (project, filter,
    aggregate, group, distinct, sort) with drawn constants."""
    shape = draw(st.sampled_from(["project", "agg", "group", "distinct"]))
    lo = draw(st.integers(min_value=0, max_value=40))
    hi = lo + draw(st.integers(min_value=0, max_value=15))
    where = draw(
        st.sampled_from(
            [
                "",
                f" WHERE a < {hi}",
                f" WHERE b BETWEEN {lo} AND {hi}",
                f" WHERE a < {hi} AND c >= {lo}",
            ]
        )
    )
    if shape == "project":
        return f"SELECT a, b FROM fuzz{where} ORDER BY a, b, c, d LIMIT 25"
    if shape == "agg":
        return f"SELECT sum(a * b) AS s, count(*) AS n FROM fuzz{where}"
    if shape == "group":
        return f"SELECT g, sum(a + c) AS s FROM fuzz{where} GROUP BY g ORDER BY g"
    return f"SELECT DISTINCT g, d FROM fuzz{where}"


def _assert_ledgers_identical(replayed, ledger):
    assert replayed.buckets == ledger.buckets, (
        replayed.buckets,
        ledger.buckets,
    )
    assert list(replayed.buckets) == list(ledger.buckets)  # fold order too
    assert replayed.total_cycles == ledger.total_cycles
    assert replayed.dram_bytes == ledger.dram_bytes


class TestTraceEquivalence:
    @pytest.mark.parametrize("model", MODELS)
    @given(sql=queries(), seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_trace_replay_rebuilds_ledger(self, model, sql, seed):
        catalog = build_catalog(seed)
        for name, engine in all_engines(
            catalog, memory_model=model, tracer=Tracer()
        ).items():
            out = engine.execute(sql)
            assert out.trace is not None, (name, sql)
            _assert_ledgers_identical(out.trace.to_ledger(), out.ledger)

    @pytest.mark.parametrize("model", MODELS)
    @given(sql=queries())
    @settings(max_examples=15, deadline=None)
    def test_tracing_does_not_perturb_buckets(self, model, sql):
        catalog = build_catalog(3)
        plain = all_engines(catalog, memory_model=model)
        traced = all_engines(catalog, memory_model=model, tracer=Tracer())
        for name in ENGINES:
            a = plain[name].execute(sql).ledger
            b = traced[name].execute(sql).ledger
            assert a.buckets == b.buckets, (name, sql)
            assert a.total_cycles == b.total_cycles
            assert a.dram_bytes == b.dram_bytes


class TestQ6Equivalence:
    """The paper's data-movement query, every engine × memory model."""

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("name", ENGINES)
    def test_q6(self, name, model):
        catalog, _ = generate_lineitem(nrows=1_500, seed=11)
        engine = all_engines(catalog, memory_model=model, tracer=Tracer())[name]
        out = engine.execute(Q6)
        _assert_ledgers_identical(out.trace.to_ledger(), out.ledger)
        assert out.ledger.dram_bytes > 0
