"""Tests for ephemeral matrix/tensor slicing (§VII Q1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tensor import TensorFabric, matrix_geometry
from repro.errors import GeometryError


@pytest.fixture
def fabric():
    return TensorFabric()


class TestMatrixGeometry:
    def test_window_geometry(self):
        g = matrix_geometry(ncols=100, itemsize=8, col_lo=10, col_hi=20)
        assert g.row_stride == 800
        assert g.packed_width == 80
        assert g.fields[0].offset == 80

    def test_bad_window(self):
        with pytest.raises(GeometryError):
            matrix_geometry(10, 8, 5, 5)
        with pytest.raises(GeometryError):
            matrix_geometry(10, 8, 5, 11)


class TestMatrixSlice:
    def test_values_match_numpy(self, fabric):
        m = np.arange(600, dtype=np.float64).reshape(20, 30)
        sl = fabric.slice_matrix(m, (3, 9), (5, 12))
        assert np.array_equal(sl.values, m[3:9, 5:12])
        assert sl.shape == (6, 7)

    def test_integer_dtypes(self, fabric):
        m = np.arange(100, dtype=np.int32).reshape(10, 10)
        sl = fabric.slice_matrix(m, (0, 10), (2, 4))
        assert np.array_equal(sl.values, m[:, 2:4])
        assert sl.values.dtype == np.int32

    def test_bytes_shipped_is_window_only(self, fabric):
        m = np.zeros((100, 128), dtype=np.float64)
        sl = fabric.slice_matrix(m, (0, 100), (0, 16))
        assert sl.bytes_shipped == 100 * 16 * 8
        assert sl.legacy_bytes(128 * 8) == 100 * 128 * 8
        assert sl.report.dram_bytes_touched < sl.legacy_bytes(128 * 8)

    def test_report_scales_with_window(self, fabric):
        m = np.zeros((1000, 64), dtype=np.float64)
        small = fabric.slice_matrix(m, (0, 1000), (0, 4)).report
        large = fabric.slice_matrix(m, (0, 1000), (0, 32)).report
        assert large.out_bytes == 8 * small.out_bytes

    def test_non_contiguous_rejected(self, fabric):
        m = np.zeros((10, 10), dtype=np.float64).T
        with pytest.raises(GeometryError):
            fabric.slice_matrix(np.asfortranarray(m), (0, 5), (0, 5))

    def test_1d_rejected(self, fabric):
        with pytest.raises(GeometryError):
            fabric.slice_matrix(np.zeros(10), (0, 1), (0, 1))

    def test_bad_row_window(self, fabric):
        m = np.zeros((10, 10), dtype=np.float64)
        with pytest.raises(GeometryError):
            fabric.slice_matrix(m, (5, 20), (0, 5))

    def test_source_matrix_untouched(self, fabric):
        m = np.arange(100, dtype=np.int64).reshape(10, 10)
        before = m.copy()
        fabric.slice_matrix(m, (1, 5), (1, 5))
        assert np.array_equal(m, before)


class TestTensor3d:
    def test_values_match_numpy(self, fabric):
        t = np.arange(4 * 8 * 16, dtype=np.int64).reshape(4, 8, 16)
        sl = fabric.slice_tensor_3d(t, (1, 3), (2, 6), (4, 10))
        assert np.array_equal(sl.values, t[1:3, 2:6, 4:10])

    def test_report_merges_planes(self, fabric):
        t = np.zeros((4, 100, 16), dtype=np.float64)
        one = fabric.slice_tensor_3d(t, (0, 1), (0, 100), (0, 4)).report
        four = fabric.slice_tensor_3d(t, (0, 4), (0, 100), (0, 4)).report
        assert four.out_bytes == 4 * one.out_bytes
        assert four.nrows == 4 * one.nrows

    def test_empty_plane_window_rejected(self, fabric):
        t = np.zeros((4, 4, 4), dtype=np.float64)
        with pytest.raises(GeometryError):
            fabric.slice_tensor_3d(t, (2, 2), (0, 2), (0, 2))

    def test_2d_input_rejected(self, fabric):
        with pytest.raises(GeometryError):
            fabric.slice_tensor_3d(np.zeros((4, 4)), (0, 1), (0, 1), (0, 1))


class TestProperties:
    @given(
        shape=st.tuples(
            st.integers(min_value=1, max_value=30),
            st.integers(min_value=1, max_value=30),
        ),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_windows_match_numpy(self, shape, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 1000, size=shape).astype(np.int64)
        r_lo = int(rng.integers(0, shape[0]))
        r_hi = int(rng.integers(r_lo + 1, shape[0] + 1))
        c_lo = int(rng.integers(0, shape[1]))
        c_hi = int(rng.integers(c_lo + 1, shape[1] + 1))
        sl = TensorFabric().slice_matrix(m, (r_lo, r_hi), (c_lo, c_hi))
        assert np.array_equal(sl.values, m[r_lo:r_hi, c_lo:c_hi])
