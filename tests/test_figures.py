"""Integration tests: the paper's figure *shapes* as assertions.

These are the reproduction's acceptance criteria (EXPERIMENTS.md): who
wins, where the crossovers fall, and the rough factors — run at reduced
scale so the whole file stays CI-fast.
"""

import pytest

from repro.bench import (
    run_buffer_ablation,
    run_fig5,
    run_fig6,
    run_fig7,
    run_prefetcher_ablation,
    run_rm_clock_ablation,
)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(nrows=60_000)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(nrows=25_000)


@pytest.fixture(scope="module")
def fig7_q1():
    return run_fig7(query="Q1", target_mbs=(2, 8, 32), scale=1 / 64)


@pytest.fixture(scope="module")
def fig7_q6():
    return run_fig7(query="Q6", target_mbs=(2, 8, 32), scale=1 / 64)


class TestFig5Projectivity:
    def test_rm_beats_row_at_every_projectivity(self, fig5):
        assert all(r > 1.0 for r in fig5.ratio("row", "rm"))

    def test_rm_vs_row_band_is_moderate(self, fig5):
        """The paper reports 1.3-1.5x; we accept a slightly wider band."""
        ratios = fig5.ratio("row", "rm")
        assert all(1.2 < r < 2.1 for r in ratios)

    def test_col_wins_below_four_columns(self, fig5):
        col_vs_rm = fig5.ratio("column", "rm")
        assert all(c < 1.0 for c in col_vs_rm[:3])  # k = 1..3

    def test_rm_wins_above_five_columns(self, fig5):
        col_vs_rm = fig5.ratio("column", "rm")
        assert all(c > 1.0 for c in col_vs_rm[5:])  # k = 6..11

    def test_crossover_near_four(self, fig5):
        """The COL/RM crossover falls in k ∈ [4, 6] (paper: 4)."""
        col_vs_rm = fig5.ratio("column", "rm")
        crossing = next(i + 1 for i, c in enumerate(col_vs_rm) if c >= 1.0)
        assert 4 <= crossing <= 6

    def test_row_cost_grows_mildly_with_projectivity(self, fig5):
        rows = fig5.series["row_cycles"].values
        assert rows == sorted(rows)
        assert rows[-1] < rows[0] * 3

    def test_col_cost_grows_fastest(self, fig5):
        cols = fig5.series["column_cycles"].values
        assert cols[-1] / cols[0] > fig5.series["rm_cycles"].values[-1] / (
            fig5.series["rm_cycles"].values[0]
        )


class TestFig6Heatmaps:
    def test_6a_rm_beats_row_everywhere(self, fig6):
        vs_row, _ = fig6
        assert min(vs_row.values.values()) > 1.0

    def test_6a_band_roughly_matches_paper(self, fig6):
        vs_row, _ = fig6
        values = list(vs_row.values.values())
        assert 1.2 < min(values) and max(values) < 2.5

    def test_6a_speedup_shrinks_with_more_columns(self, fig6):
        vs_row, _ = fig6
        assert vs_row.get(1, 1) > vs_row.get(10, 10)

    def test_6b_col_wins_lower_left(self, fig6):
        _, vs_col = fig6
        assert vs_col.region_mean(lambda s: s <= 2, lambda p: p <= 2) < 1.0

    def test_6b_rm_wins_upper_right(self, fig6):
        _, vs_col = fig6
        assert vs_col.region_mean(lambda s: s >= 6, lambda p: p >= 6) > 1.0

    def test_6b_corner_factors(self, fig6):
        """Paper corners: 0.49 at (1,1), ~1.6-2.2 at high counts."""
        _, vs_col = fig6
        assert vs_col.get(1, 1) < 0.95
        assert vs_col.get(10, 10) > 1.3

    def test_6b_monotonic_in_projected_columns(self, fig6):
        _, vs_col = fig6
        for s in (1, 5, 10):
            row = [vs_col.get(s, p) for p in range(1, 11)]
            assert all(b >= a * 0.98 for a, b in zip(row, row[1:]))


class TestFig7Tpch:
    def test_q1_rm_never_slower(self, fig7_q1):
        assert all(r >= 1.0 for r in fig7_q1.ratio("row", "rm"))
        assert all(c >= 0.98 for c in fig7_q1.ratio("column", "rm"))

    def test_q1_engines_similar(self, fig7_q1):
        """Q1 is compute-bound: every engine within ~1.5x (paper: 'the
        execution time is similar for all layouts')."""
        assert max(fig7_q1.ratio("row", "rm")) < 1.55
        assert max(fig7_q1.ratio("column", "rm")) < 1.55

    def test_q6_rm_fastest(self, fig7_q6):
        """RM always beats ROW; COL sits at parity or worse. The COL band
        matches Q1's (2%): at CI scale the smallest point is only a few
        thousand rows, so generator noise moves the ratio by ~1%."""
        assert all(r > 1.0 for r in fig7_q6.ratio("row", "rm"))
        assert all(c >= 0.98 for c in fig7_q6.ratio("column", "rm"))

    def test_q6_movement_bound_gap_larger_than_q1(self, fig7_q1, fig7_q6):
        assert min(fig7_q6.ratio("row", "rm")) > max(fig7_q1.ratio("row", "rm"))

    def test_scaling_linear_in_data_size(self, fig7_q6):
        """Doubling the data roughly doubles every engine's time."""
        for name in ("row", "column", "rm"):
            series = fig7_q6.series[name].values
            assert series[1] / series[0] == pytest.approx(4, rel=0.2)  # 2MB->8MB
            assert series[2] / series[1] == pytest.approx(4, rel=0.2)

    def test_rows_tracked_per_point(self, fig7_q6):
        assert all(r > 0 for r in fig7_q6.series["rows"].values)


class TestAblations:
    def test_prefetcher_limit_moves_crossover(self):
        """More trackable streams push the COL/RM crossover to higher
        projectivity — the mechanism behind Figure 5's '4'."""
        results = run_prefetcher_ablation(
            nrows=40_000, stream_limits=(2, 8), max_projectivity=11
        )

        def crossover(exp):
            ratios = exp.ratio("column", "rm")
            for i, c in enumerate(ratios):
                if c >= 1.0:
                    return i + 1
            return len(ratios) + 1

        assert crossover(results[2]) < crossover(results[8])

    def test_rm_clock_sensitivity(self):
        exp = run_rm_clock_ablation(nrows=30_000, clocks_mhz=(50, 400))
        rm_slow = exp.series["rm"].values[0]
        rm_fast = exp.series["rm"].values[1]
        assert rm_fast <= rm_slow

    def test_buffer_size_reduces_stalls(self):
        exp = run_buffer_ablation(nrows=150_000, buffer_kb=(64, 8192))
        stalls = exp.series["refill_stall"].values
        assert stalls[0] > stalls[-1]
        assert exp.series["rm"].values[0] >= exp.series["rm"].values[-1]
