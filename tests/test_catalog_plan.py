"""Tests for the catalog and the logical plan rendering."""

import pytest

from repro.db import Catalog, Column, TableSchema
from repro.db.index import build_index
from repro.db.plan import bind, build_plan, explain
from repro.db.sql import parse
from repro.db.types import INT64
from repro.errors import SchemaError


def schema(name="t"):
    return TableSchema(name, [Column("a", INT64), Column("b", INT64)])


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        table = catalog.create_table(schema())
        assert catalog.table("t") is table
        assert catalog.has_table("t")
        assert "t" in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table(schema())
        with pytest.raises(SchemaError):
            catalog.create_table(schema())

    def test_register_adopts_existing(self):
        from repro.db.table import Table

        catalog = Catalog()
        table = Table(schema("ext"))
        assert catalog.register(table) is table
        assert catalog.table("ext") is table

    def test_missing_table(self):
        with pytest.raises(SchemaError):
            Catalog().table("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table(schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(SchemaError):
            catalog.drop_table("t")

    def test_index_registry(self):
        catalog = Catalog()
        table = catalog.create_table(schema())
        table.append_row({"a": 1, "b": 2})
        tree = build_index(table, "a")
        catalog.add_index("t", "a", tree)
        assert catalog.index_on("t", "a") is tree
        assert catalog.index_on("t", "b") is None

    def test_tables_iterator(self):
        catalog = Catalog()
        catalog.create_table(schema("x"))
        catalog.create_table(schema("y"))
        assert {t.schema.name for t in catalog.tables()} == {"x", "y"}


class TestLogicalPlan:
    def make_bound(self, sql):
        catalog = Catalog()
        table = catalog.create_table(schema())
        table.append_row({"a": 1, "b": 2})
        return bind(parse(sql), catalog)

    def test_simple_scan_plan(self):
        plan = build_plan(self.make_bound("SELECT a FROM t"))
        assert plan.kind == "Project"
        assert plan.children[0].kind == "Scan"

    def test_filter_node_present(self):
        text = explain(self.make_bound("SELECT a FROM t WHERE a > 1"))
        assert "Filter" in text and "(a > 1)" in text

    def test_aggregate_plan(self):
        text = explain(self.make_bound("SELECT sum(a) AS s FROM t"))
        assert "Aggregate" in text and "sum" in text

    def test_sort_and_limit(self):
        text = explain(self.make_bound("SELECT a FROM t ORDER BY a DESC LIMIT 3"))
        assert "Sort" in text and "Limit: 3" in text and "DESC" in text

    def test_access_path_label(self):
        text = explain(self.make_bound("SELECT a FROM t"), access_path="ephemeral-scan")
        assert "Ephemeral-Scan" in text

    def test_referenced_columns_shown(self):
        text = explain(self.make_bound("SELECT a FROM t WHERE b > 0"))
        assert "t(a, b)" in text
