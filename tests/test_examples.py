"""Smoke tests: every example script runs to completion.

The examples are the library's public walkthroughs; a refactor that
breaks one should fail the suite, not a user. Sizes are kept small by
monkeypatching the entry points where the scripts allow it.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=None, monkeypatch=None):
    if monkeypatch is not None:
        monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        run_example("quickstart.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "identical" in out
        assert "rm" in out

    def test_tpch_analytics_small(self, capsys, monkeypatch):
        run_example("tpch_analytics.py", argv=["20000"], monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "TPC-H Q1" in out and "TPC-H Q6" in out
        assert "optimizer" in out

    def test_htap_mvcc(self, capsys, monkeypatch):
        run_example("htap_mvcc.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "first committer wins" in out
        assert "freshness lag" in out
        assert "oltp.txn" in out  # OLTP span tree
        assert "fabric.refresh" in out  # OLAP span tree

    def test_sql_htap(self, capsys, monkeypatch):
        run_example("sql_htap.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "SQL == programmatic" in out
        assert "sql.analyze" in out  # EXPLAIN ANALYZE span tree
        assert "sql_statements_total" in out
        assert "identical through both doors" in out

    def test_physical_design(self, capsys, monkeypatch):
        run_example("physical_design.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "partitioning" in out
        assert "<== chosen" in out

    def test_storage_pushdown(self, capsys, monkeypatch):
        run_example("storage_pushdown.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "relational storage" in out
        assert "speedup" in out

    def test_fabric_extensions(self, capsys, monkeypatch):
        run_example("fabric_extensions.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "sharding" in out
        assert "tiered fabric" in out

    def test_reproduce_figures_quick(self, capsys, monkeypatch):
        run_example(
            "reproduce_figures.py", argv=["--quick"], monkeypatch=monkeypatch
        )
        out = capsys.readouterr().out
        assert "[MISS]" not in out
        assert out.count("[ok]") == 12
