"""Batched trace kernel vs the scalar reference: exact equivalence.

The whole value of :mod:`repro.hw.batch` is that it is *not* an
approximation: for any sequence of line batches — mixed strides, writes,
random scatter, re-references — the batched path must leave the
hierarchy in the same state (every cache set, prefetcher stream, open
DRAM row, counter, and tick) and return the same cycle totals as the
scalar per-line loop. These property tests drive both implementations
with identical inputs and compare full state snapshots.
"""

import dataclasses
import time

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.analytic import TraceMemoryModel
from repro.hw.config import TEST_PLATFORM, default_platform
from repro.hw.hierarchy import MemoryHierarchy


# ----------------------------------------------------------------------
# Full-state snapshots (private attributes on purpose: the equivalence
# claim covers *end state*, not just the public counters).
# ----------------------------------------------------------------------
def cache_state(cache):
    return (
        cache._tick,
        dataclasses.asdict(cache.stats),
        [
            sorted(
                (tag, e.last_use, e.use_count, e.dirty)
                for tag, e in cset.items()
            )
            for cset in cache._sets
        ],
    )


def prefetcher_state(pf):
    return (
        pf._tick,
        pf._next_id,
        pf.covered,
        pf.uncovered,
        sorted(
            (sid, s.next_line, s.stride_lines, s.trained, s.hits, s.last_use)
            for sid, s in pf._streams.items()
        ),
    )


def hierarchy_state(h):
    return (
        dataclasses.asdict(h.stats),
        cache_state(h.l1),
        cache_state(h.l2),
        dataclasses.asdict(h.dram.stats),
        list(h.dram._open_rows),
        prefetcher_state(h.prefetcher),
    )


def replay(platform, batches, batched: bool):
    """Run ``[(lines, write, stride_hint), ...]`` through one hierarchy."""
    h = MemoryHierarchy(platform)
    cycles = []
    for lines, write, stride in batches:
        if batched:
            c = h.access_lines_batch(
                np.asarray(lines, dtype=np.int64), write=write, stride_hint=stride
            )
        else:
            c = h.access_lines([int(x) for x in lines], write=write, stride_hint=stride)
        cycles.append(c)
    return cycles, hierarchy_state(h)


# ----------------------------------------------------------------------
# Hypothesis strategies: batches that exercise every kernel path —
# contiguous runs (prefetcher trains), strided runs (set-conflicts),
# random scatter (warm-group scalar fallback), and re-references.
# ----------------------------------------------------------------------
LINE = st.integers(min_value=0, max_value=4096)


@st.composite
def line_batch(draw):
    kind = draw(st.sampled_from(["seq", "strided", "random", "rerun"]))
    n = draw(st.integers(min_value=1, max_value=120))
    start = draw(LINE)
    if kind == "seq":
        lines = list(range(start, start + n))
        stride = 64
    elif kind == "strided":
        step = draw(st.integers(min_value=2, max_value=33))
        lines = list(range(start, start + n * step, step))
        stride = step * 64
    elif kind == "rerun":
        base = draw(st.integers(min_value=0, max_value=64))
        lines = [base + (i % draw(st.integers(min_value=1, max_value=16))) for i in range(n)]
        stride = 0
    else:
        lines = [draw(LINE) for _ in range(min(n, 40))]
        stride = draw(st.sampled_from([0, 64, 2**20]))
    write = draw(st.booleans())
    return lines, write, stride


@st.composite
def trace_scenario(draw):
    return draw(st.lists(line_batch(), min_size=1, max_size=6))


class TestBatchEqualsScalar:
    @settings(max_examples=150, deadline=None)
    @given(trace_scenario())
    def test_mixed_batches_bit_identical(self, batches):
        scalar_cycles, scalar_state = replay(TEST_PLATFORM, batches, batched=False)
        batch_cycles, batch_state = replay(TEST_PLATFORM, batches, batched=True)
        assert batch_cycles == scalar_cycles
        assert batch_state == scalar_state

    @settings(max_examples=40, deadline=None)
    @given(trace_scenario())
    def test_default_platform_bit_identical(self, batches):
        scalar_cycles, scalar_state = replay(
            default_platform(), batches, batched=False
        )
        batch_cycles, batch_state = replay(default_platform(), batches, batched=True)
        assert batch_cycles == scalar_cycles
        assert batch_state == scalar_state

    def test_empty_batch(self):
        h = MemoryHierarchy(TEST_PLATFORM)
        assert h.access_lines_batch(np.empty(0, dtype=np.int64)) == 0
        assert hierarchy_state(h) == hierarchy_state(MemoryHierarchy(TEST_PLATFORM))

    def test_write_dirtiness_matches(self):
        batches = [
            (list(range(0, 50)), True, 64),
            (list(range(0, 50)), False, 64),
            (list(range(1000, 1010)), True, 0),
        ]
        assert replay(TEST_PLATFORM, batches, True) == replay(
            TEST_PLATFORM, batches, False
        )


# ----------------------------------------------------------------------
# Model-level equivalence: the TraceMemoryModel drives the same kernel
# through its five access shapes (plus the shared LCG stream).
# ----------------------------------------------------------------------
@st.composite
def model_op(draw):
    kind = draw(st.sampled_from(["seq", "multi", "strided", "random", "gather"]))
    if kind == "seq":
        return ("sequential", draw(st.integers(1, 8192)), draw(st.booleans()))
    if kind == "multi":
        sizes = draw(st.lists(st.integers(0, 4096), min_size=1, max_size=4))
        return ("multi_stream", sizes)
    if kind == "strided":
        return (
            "strided",
            draw(st.integers(1, 200)),  # nrows
            draw(st.integers(1, 16)) * 16,  # stride
            draw(st.integers(1, 16)),  # touched
        )
    if kind == "random":
        return ("random", draw(st.integers(1, 200)), draw(st.integers(1, 64)) * 64)
    n_candidates = draw(st.integers(1, 400))
    n_rows = draw(st.integers(1, n_candidates))
    return ("gather", n_candidates, n_rows, draw(st.integers(1, 32)))


def apply_op(model, op):
    name = op[0]
    if name == "sequential":
        return model.sequential(op[1], write=op[2])
    if name == "multi_stream":
        return model.multi_stream(op[1])
    if name == "strided":
        return model.strided(op[1], op[2], op[3])
    if name == "random":
        return model.random(op[1], op[2])
    return model.gather(op[1], op[2], op[3])


class TestTraceModelBatchFlag:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(model_op(), min_size=1, max_size=5))
    def test_use_batch_equivalent(self, ops):
        fast = TraceMemoryModel(TEST_PLATFORM, use_batch=True)
        slow = TraceMemoryModel(TEST_PLATFORM, use_batch=False)
        for op in ops:
            cf, cs = apply_op(fast, op), apply_op(slow, op)
            assert (cf.covered, cf.exposed) == (cs.covered, cs.exposed)
        assert fast._rng_state == slow._rng_state
        assert hierarchy_state(fast.hierarchy) == hierarchy_state(slow.hierarchy)


# ----------------------------------------------------------------------
# The perf claim, pinned at reduced scale (the 1M-row / >=20x version
# lives in benchmarks/bench_trace_batch.py).
# ----------------------------------------------------------------------
class TestBatchSpeedup:
    def test_batch_beats_scalar_on_small_trace(self):
        nbytes = 200_000 * 64  # 200k lines, sequential

        def run(use_batch):
            model = TraceMemoryModel(default_platform(), use_batch=use_batch)
            t0 = time.perf_counter()
            cost = model.sequential(nbytes)
            return time.perf_counter() - t0, (cost.covered, cost.exposed)

        t_batch, c_batch = run(True)
        t_scalar, c_scalar = run(False)
        assert c_batch == c_scalar
        speedup = t_scalar / t_batch
        assert speedup > 5.0, f"batch only {speedup:.1f}x faster"
