"""Tests for the row-major table frames."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mvcc_filter import LIVE_TS, NEVER_TS
from repro.db import Catalog, Column, Table, TableSchema
from repro.db.types import CHAR, DECIMAL, INT32, INT64
from repro.errors import SchemaError

SCHEMA = TableSchema(
    "t",
    [
        Column("id", INT64),
        Column("name", CHAR(4)),
        Column("price", DECIMAL(2)),
        Column("qty", INT32),
    ],
)


class TestAppendRow:
    def test_roundtrip_python_values(self):
        table = Table(SCHEMA)
        idx = table.append_row({"id": 7, "name": "ab", "price": 19.99, "qty": 3})
        assert idx == 0
        row = table.row(0)
        assert row == {"id": 7, "name": "ab", "price": pytest.approx(19.99), "qty": 3}

    def test_missing_column_rejected(self):
        table = Table(SCHEMA)
        with pytest.raises(SchemaError):
            table.append_row({"id": 1})

    def test_capacity_growth(self):
        table = Table(SCHEMA, capacity=2)
        for i in range(100):
            table.append_row({"id": i, "name": "x", "price": 1.0, "qty": i})
        assert table.nrows == 100
        assert table.column_values("qty").tolist() == list(range(100))

    def test_version_bumps_on_mutation(self):
        table = Table(SCHEMA)
        v0 = table.version
        table.append_row({"id": 1, "name": "a", "price": 1.0, "qty": 1})
        v1 = table.version
        table.set_value(0, "qty", 9)
        assert v0 < v1 < table.version


class TestBulkLoad:
    def test_append_arrays(self):
        table = Table(SCHEMA)
        table.append_arrays(
            {
                "id": np.array([1, 2, 3]),
                "name": np.array([b"aa", b"bb", b"cc"], dtype="S4"),
                "price": np.array([100, 200, 300]),  # cents
                "qty": np.array([4, 5, 6], dtype=np.int32),
            }
        )
        assert table.nrows == 3
        assert table.column_values("price").tolist() == [1.0, 2.0, 3.0]
        assert table.column_values("name").tolist() == [b"aa", b"bb", b"cc"]

    def test_ragged_rejected(self):
        table = Table(SCHEMA)
        with pytest.raises(SchemaError):
            table.append_arrays(
                {
                    "id": np.array([1]),
                    "name": np.array([b"a", b"b"], dtype="S4"),
                    "price": np.array([1]),
                    "qty": np.array([1], dtype=np.int32),
                }
            )

    def test_wrong_columns_rejected(self):
        table = Table(SCHEMA)
        with pytest.raises(SchemaError):
            table.append_arrays({"id": np.array([1])})

    def test_bulk_then_row_append_interleave(self):
        table = Table(SCHEMA)
        table.append_arrays(
            {
                "id": np.array([1, 2]),
                "name": np.array([b"aa", b"bb"], dtype="S4"),
                "price": np.array([100, 200]),
                "qty": np.array([1, 2], dtype=np.int32),
            }
        )
        table.append_row({"id": 3, "name": "cc", "price": 3.0, "qty": 3})
        assert table.column_values("id").tolist() == [1, 2, 3]


class TestReads:
    def test_column_raw_vs_values(self):
        table = Table(SCHEMA)
        table.append_row({"id": 1, "name": "a", "price": 12.5, "qty": 1})
        assert table.column("price")[0] == 1250
        assert table.column_values("price")[0] == 12.5

    def test_frame_shape_and_bytes(self):
        table = Table(SCHEMA)
        table.append_row({"id": 1, "name": "a", "price": 1.0, "qty": 1})
        assert table.frame.shape == (1, SCHEMA.row_stride)
        assert table.nbytes == SCHEMA.row_stride

    def test_rows_iterator(self):
        table = Table(SCHEMA)
        table.append_row({"id": 1, "name": "a", "price": 1.0, "qty": 1})
        table.append_row({"id": 2, "name": "b", "price": 2.0, "qty": 2})
        assert [r["id"] for r in table.rows()] == [1, 2]

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            Table(SCHEMA).row(0)


class TestMvccColumns:
    def schema(self):
        return TableSchema("m", [Column("a", INT64)], mvcc=True)

    def test_defaults_invisible(self):
        table = Table(self.schema())
        table.append_row({"a": 1})
        assert table.begin_ts[0] == NEVER_TS
        assert table.end_ts[0] == LIVE_TS

    def test_stamping(self):
        table = Table(self.schema())
        table.append_row({"a": 1})
        table.stamp_begin(0, 5)
        table.stamp_end(0, 9)
        assert table.begin_ts[0] == 5 and table.end_ts[0] == 9

    def test_non_mvcc_table_rejects_ts_access(self):
        table = Table(SCHEMA)
        with pytest.raises(SchemaError):
            _ = table.begin_ts

    def test_retain_compacts(self):
        table = Table(self.schema())
        for i in range(10):
            table.append_row({"a": i})
        keep = np.array([i % 2 == 0 for i in range(10)])
        table.retain(keep)
        assert table.nrows == 5
        assert table.column_values("a").tolist() == [0, 2, 4, 6, 8]

    def test_retain_shape_check(self):
        table = Table(self.schema())
        table.append_row({"a": 1})
        with pytest.raises(SchemaError):
            table.retain(np.array([True, False]))


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-(2**62), max_value=2**62),
                st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    max_size=4,
                ),
                st.integers(min_value=-(10**6), max_value=10**6),
                st.integers(min_value=-(2**31), max_value=2**31 - 1),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_row_roundtrip(self, rows):
        table = Table(SCHEMA)
        for rid, name, cents, qty in rows:
            table.append_row(
                {"id": rid, "name": name, "price": cents / 100, "qty": qty}
            )
        for i, (rid, name, cents, qty) in enumerate(rows):
            row = table.row(i)
            assert row["id"] == rid
            assert row["name"] == name.rstrip("\x00")
            assert row["price"] == pytest.approx(cents / 100)
            assert row["qty"] == qty
