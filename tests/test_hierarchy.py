"""Tests for the event-accurate memory hierarchy."""

import pytest

from repro.hw.config import TEST_PLATFORM
from repro.hw.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(TEST_PLATFORM)


class TestLevels:
    def test_l1_hit_cost(self, hierarchy):
        hierarchy.access(0)
        assert hierarchy.access(0) == TEST_PLATFORM.l1.hit_cycles

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hierarchy.access(0)
        # Blow L1 (1 KB = 16 lines) but stay inside L2 (8 KB).
        for i in range(1, 64):
            hierarchy.access(i * 64)
        cost = hierarchy.access(0)
        assert cost == TEST_PLATFORM.l2.hit_cycles

    def test_cold_miss_costs_dram(self, hierarchy):
        cost = hierarchy.access(123456)
        assert cost >= TEST_PLATFORM.dram.row_hit_cycles

    def test_dram_lines_counted(self, hierarchy):
        hierarchy.access(0)
        hierarchy.access(0)
        assert hierarchy.stats.dram_lines == 1

    def test_flush_forces_remisses(self, hierarchy):
        hierarchy.access(0)
        hierarchy.flush()
        assert hierarchy.access(0) > TEST_PLATFORM.l1.hit_cycles


class TestScans:
    def test_sequential_scan_converges_to_stream_cost(self, hierarchy):
        nbytes = 64 * 1024  # far beyond the 8 KB test L2
        cycles = hierarchy.scan_region(1 << 20, nbytes)
        lines = nbytes // 64
        per_line = cycles / lines
        stream = TEST_PLATFORM.dram.stream_cycles_per_line
        assert stream <= per_line <= stream * 1.1  # training tail only

    def test_strided_scan_touches_one_line_per_row(self, hierarchy):
        before = hierarchy.stats.dram_lines
        hierarchy.scan_region(1 << 21, 256 * 100, stride_bytes=256, touched_per_row=4)
        touched = hierarchy.stats.dram_lines - before
        assert touched == pytest.approx(100, abs=2)

    def test_large_stride_defeats_prefetcher(self, hierarchy):
        nrows = 200
        cycles = hierarchy.scan_region(
            1 << 22, 1024 * nrows, stride_bytes=1024, touched_per_row=4
        )
        per_row = cycles / nrows
        assert per_row >= TEST_PLATFORM.dram.row_hit_cycles * 0.8

    def test_small_scan_reuses_cache(self, hierarchy):
        base = 1 << 23
        hierarchy.scan_region(base, 2048)
        cycles = hierarchy.scan_region(base, 2048)
        per_line = cycles / (2048 // 64)
        assert per_line <= TEST_PLATFORM.l2.hit_cycles

    def test_zero_bytes_is_free(self, hierarchy):
        assert hierarchy.scan_region(0, 0) == 0

    def test_level_stats_shape(self, hierarchy):
        hierarchy.scan_region(1 << 24, 4096)
        stats = hierarchy.level_stats()
        assert {"l1", "l2", "dram", "prefetch_covered", "prefetch_uncovered"} <= set(
            stats
        )
        assert stats["l1"].accesses > 0
