"""WAL unit tests: record format, torn-tail policy, devices, checkpoints."""

import numpy as np
import pytest

from repro.core.ledger import CostLedger
from repro.core.mvcc_filter import LIVE_TS, NEVER_TS
from repro.db import Column, TableSchema
from repro.db.mvcc import TransactionManager
from repro.db.table import Table
from repro.db.types import INT64
from repro.db.wal import (
    Checkpointer,
    WalRecord,
    WalRecordType,
    WriteAheadLog,
    encode_record,
    recover,
    scan_records,
)
from repro.errors import (
    SchemaError,
    TransactionError,
    WalCorruptionError,
)
from repro.faults import (
    WAL_BITFLIP,
    WAL_FLUSH,
    WAL_TORN,
    FaultInjector,
    FaultPlan,
)
from repro.storage.flash import FlashDevice
from repro.storage.ssd import SsdLog


def accounts_schema(name="accounts"):
    return TableSchema(
        name, [Column("id", INT64), Column("balance", INT64)], mvcc=True
    )


def make_manager():
    schema = accounts_schema()
    table = Table(schema)
    wal = WriteAheadLog()
    return TransactionManager(wal=wal), table, wal, schema


SAMPLE_RECORDS = [
    WalRecord(WalRecordType.BEGIN, txn_id=7, start_ts=41),
    WalRecord(
        WalRecordType.WRITE,
        txn_id=7,
        table="accounts",
        new_slot=3,
        old_slot=1,
        row_bytes=bytes(range(48)),
    ),
    WalRecord(WalRecordType.WRITE, txn_id=7, table="accounts", old_slot=2),
    WalRecord(WalRecordType.COMMIT, txn_id=7, commit_ts=42),
    WalRecord(WalRecordType.ABORT, txn_id=8),
    WalRecord(
        WalRecordType.CHECKPOINT, checkpoint_id=5, clock=99, next_txn_id=12
    ),
]


class TestRecordFormat:
    def test_round_trip_every_type(self):
        blob = b"".join(encode_record(r) for r in SAMPLE_RECORDS)
        decoded, stop = scan_records(blob)
        assert stop == len(blob)
        assert [r for r, _ in decoded] == SAMPLE_RECORDS

    def test_end_offsets_are_cumulative(self):
        blob = b"".join(encode_record(r) for r in SAMPLE_RECORDS)
        decoded, _ = scan_records(blob)
        sizes = [len(encode_record(r)) for r in SAMPLE_RECORDS]
        assert [end for _, end in decoded] == list(np.cumsum(sizes))

    def test_empty_log(self):
        assert scan_records(b"") == ([], 0)

    def test_torn_tail_discarded_silently(self):
        blob = b"".join(encode_record(r) for r in SAMPLE_RECORDS)
        first_end = len(encode_record(SAMPLE_RECORDS[0]))
        torn = blob[: first_end + 9]  # mid-second-record
        decoded, stop = scan_records(torn)
        assert [r for r, _ in decoded] == SAMPLE_RECORDS[:1]
        assert stop == first_end

    def test_every_torn_prefix_decodes_cleanly(self):
        """No truncation offset may crash the scanner or fake corruption."""
        blob = b"".join(encode_record(r) for r in SAMPLE_RECORDS)
        boundaries = {0}
        for r in SAMPLE_RECORDS:
            boundaries.add(max(boundaries) + len(encode_record(r)))
        for cut in range(len(blob)):
            decoded, stop = scan_records(blob[:cut])
            assert stop <= cut
            # Only whole records survive a cut.
            assert all(end <= cut for _, end in decoded)

    def test_mid_log_corruption_raises_typed_error(self):
        blob = bytearray(b"".join(encode_record(r) for r in SAMPLE_RECORDS))
        blob[5] ^= 0xFF  # inside the first record; intact records follow
        with pytest.raises(WalCorruptionError):
            scan_records(bytes(blob))

    def test_corrupted_final_record_is_a_torn_tail(self):
        blob = bytearray(b"".join(encode_record(r) for r in SAMPLE_RECORDS))
        blob[-3] ^= 0xFF
        decoded, _ = scan_records(bytes(blob))
        assert [r for r, _ in decoded] == SAMPLE_RECORDS[:-1]


class TestSsdLog:
    def test_append_is_buffered_until_flush(self):
        log = SsdLog()
        log.append(b"hello")
        assert log.durable_bytes == 0 and log.pending_bytes == 5
        log.flush()
        assert log.durable_bytes == 5 and log.pending_bytes == 0
        assert log.media() == b"hello"

    def test_crash_drops_unflushed_bytes(self):
        log = SsdLog()
        log.append(b"durable")
        log.flush()
        log.append(b"lost")
        log.crash()
        log.flush()
        assert log.media() == b"durable"

    def test_flush_costs_program_time(self):
        flash = FlashDevice()
        log = SsdLog(flash=flash)
        log.append(b"x" * 10_000)
        us = log.flush()
        assert us > 0
        assert flash.pages_written >= 3

    def test_write_pages_us_validates(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            FlashDevice().write_pages_us(-1)

    def test_torn_append_fault_truncates_last_record(self):
        inj = FaultInjector(FaultPlan(seed=3, rates={WAL_TORN: 1.0}))
        log = SsdLog(fault_injector=inj)
        log.append(b"A" * 40)
        log.append(b"B" * 40)
        log.flush()
        assert log.torn_appends == 1
        media = log.media()
        assert media.startswith(b"A" * 40)
        assert len(media) < 80

    def test_partial_flush_fault_drops_a_suffix(self):
        inj = FaultInjector(FaultPlan(seed=1, rates={WAL_FLUSH: 1.0}))
        log = SsdLog(fault_injector=inj)
        log.append(b"A" * 100)
        log.flush()
        assert log.partial_flushes == 1
        assert log.durable_bytes < 100

    def test_bitflip_fault_corrupts_read_back_only(self):
        inj = FaultInjector(FaultPlan(seed=2, rates={WAL_BITFLIP: 1.0}))
        log = SsdLog(fault_injector=inj)
        log.append(b"\x00" * 64)
        log.flush()
        data, _ = log.read_all()
        assert data != b"\x00" * 64  # one bit flipped on this read
        assert log.media() == b"\x00" * 64  # media itself untouched
        assert log.bitflips == 1

    def test_fault_shaping_is_deterministic(self):
        def run():
            inj = FaultInjector(FaultPlan(seed=9, rates={WAL_FLUSH: 0.5}))
            log = SsdLog(fault_injector=inj)
            for i in range(20):
                log.append(bytes([i]) * 10)
                log.flush()
            return log.media()

        assert run() == run()


class TestManagerWalWiring:
    def test_default_manager_has_no_wal(self):
        assert TransactionManager().wal is None

    def test_read_only_txns_log_nothing(self):
        mgr, table, wal, _ = make_manager()
        txn = mgr.begin()
        mgr.commit(txn)
        txn2 = mgr.begin()
        mgr.abort(txn2)
        assert wal.stats.records == 0
        assert wal.durable_bytes == 0

    def test_commit_is_a_durable_barrier(self):
        mgr, table, wal, _ = make_manager()
        txn = mgr.begin()
        txn.insert(table, {"id": 1, "balance": 10})
        assert wal.durable_bytes == 0  # intents buffer until commit
        mgr.commit(txn)
        assert wal.durable_bytes > 0
        types = [r.type for r in wal.records()]
        assert types == [
            WalRecordType.BEGIN,
            WalRecordType.WRITE,
            WalRecordType.COMMIT,
        ]

    def test_append_cycles_land_in_ledger_bucket(self):
        mgr, table, wal, _ = make_manager()
        txn = mgr.begin()
        txn.insert(table, {"id": 1, "balance": 10})
        mgr.commit(txn)
        assert wal.ledger.get(CostLedger.WAL_APPEND) > 0

    def test_abort_logs_but_does_not_flush(self):
        mgr, table, wal, _ = make_manager()
        txn = mgr.begin()
        txn.insert(table, {"id": 1, "balance": 10})
        mgr.abort(txn)
        assert wal.stats.aborts_logged == 1
        assert wal.durable_bytes == 0  # advisory record, no barrier


class TestRecovery:
    def _committed(self, table, ts):
        from repro.core.mvcc_filter import visible_mask

        mask = visible_mask(table.begin_ts, table.end_ts, ts)
        return sorted(
            tuple(sorted(table.row(int(i)).items())) for i in np.flatnonzero(mask)
        )

    def test_recover_restores_committed_state(self):
        mgr, table, wal, schema = make_manager()
        t1 = mgr.begin()
        slots = [t1.insert(table, {"id": i, "balance": i * 10}) for i in range(4)]
        mgr.commit(t1)
        t2 = mgr.begin()
        t2.update(table, slots[1], {"balance": 777})
        t2.delete(table, slots[2])
        mgr.commit(t2)
        res = recover(wal, schemas={schema.name: schema})
        rec = res.tables[schema.name]
        assert self._committed(rec, res.manager.now) == self._committed(
            table, mgr.now
        )
        assert res.report.committed_redone == 2
        assert wal.ledger.get(CostLedger.WAL_RECOVERY) > 0

    def test_uncommitted_and_aborted_stay_invisible(self):
        mgr, table, wal, schema = make_manager()
        t1 = mgr.begin()
        t1.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t1)
        t2 = mgr.begin()
        t2.insert(table, {"id": 2, "balance": 2})
        mgr.abort(t2)
        t3 = mgr.begin()
        t3.insert(table, {"id": 3, "balance": 3})
        wal.flush()  # durable intents, no COMMIT
        res = recover(wal, schemas={schema.name: schema})
        rec = res.tables[schema.name]
        rows = self._committed(rec, res.manager.now + 10_000)
        assert rows == [(("balance", 1), ("id", 1))]
        assert res.report.aborted_seen == 1
        assert res.report.uncommitted_dropped == 1
        # The invisible garbage slots exist (slot alignment) but are NEVER.
        assert rec.nrows == 3
        assert int(rec.begin_ts[1]) == NEVER_TS
        assert int(rec.end_ts[2]) == LIVE_TS

    def test_recovered_clock_and_ids_resume_monotonically(self):
        mgr, table, wal, schema = make_manager()
        t1 = mgr.begin()
        t1.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t1)
        res = recover(wal, schemas={schema.name: schema}, attach_wal=True)
        assert res.manager.now >= mgr.now - 1  # dangling begins may trail
        t2 = res.manager.begin()
        assert t2.txn_id > t1.txn_id
        slot = t2.insert(res.tables[schema.name], {"id": 2, "balance": 2})
        res.manager.commit(t2)
        # The re-attached WAL keeps logging: recover again sees both rows.
        res2 = recover(wal, schemas={schema.name: schema})
        assert len(
            self._committed(res2.tables[schema.name], res2.manager.now)
        ) == 2
        assert int(res.tables[schema.name].begin_ts[slot]) > 0

    def test_recover_twice_is_identical(self):
        mgr, table, wal, schema = make_manager()
        for k in range(5):
            t = mgr.begin()
            t.insert(table, {"id": k, "balance": k})
            mgr.commit(t)
        a = recover(wal, schemas={schema.name: schema})
        b = recover(wal, schemas={schema.name: schema})
        assert np.array_equal(
            a.tables[schema.name].frame, b.tables[schema.name].frame
        )
        assert a.manager.now == b.manager.now

    def test_missing_schema_is_a_typed_error(self):
        mgr, table, wal, schema = make_manager()
        t = mgr.begin()
        t.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t)
        with pytest.raises(WalCorruptionError):
            recover(wal)

    def test_bitflip_on_read_back_is_detected(self):
        mgr, table, wal, schema = make_manager()
        for k in range(8):
            t = mgr.begin()
            t.insert(table, {"id": k, "balance": k})
            mgr.commit(t)
        wal.device.fault_injector = FaultInjector(
            FaultPlan(seed=4, rates={WAL_BITFLIP: 1.0})
        )
        with pytest.raises(WalCorruptionError):
            recover(wal, schemas={schema.name: schema})


class TestCheckpointer:
    def test_checkpoint_truncates_and_recovers(self):
        mgr, table, wal, schema = make_manager()
        for k in range(6):
            t = mgr.begin()
            t.insert(table, {"id": k, "balance": k})
            mgr.commit(t)
        bytes_before = wal.durable_bytes
        cp = Checkpointer(wal).checkpoint(mgr, [table])
        assert wal.durable_bytes < bytes_before
        t = mgr.begin()
        t.insert(table, {"id": 99, "balance": 99})
        mgr.commit(t)
        res = recover(wal, checkpoint=cp)
        rows = TestRecovery()._committed(res.tables[schema.name], res.manager.now)
        assert rows == TestRecovery()._committed(table, mgr.now)
        assert res.report.checkpoint_id == cp.checkpoint_id
        assert res.report.committed_redone == 1  # only the post-checkpoint txn
        assert wal.ledger.get(CostLedger.WAL_CHECKPOINT) > 0

    def test_checkpoint_requires_quiescence(self):
        mgr, table, wal, _ = make_manager()
        txn = mgr.begin()
        txn.insert(table, {"id": 1, "balance": 1})
        with pytest.raises(TransactionError):
            Checkpointer(wal).checkpoint(mgr, [table])
        mgr.abort(txn)
        Checkpointer(wal).checkpoint(mgr, [table])

    def test_damaged_checkpoint_refused(self):
        mgr, table, wal, _ = make_manager()
        t = mgr.begin()
        t.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t)
        cp = Checkpointer(wal).checkpoint(mgr, [table])
        snap = next(iter(cp.snapshots.values()))
        snap.frame = snap.frame[:-1] + bytes([snap.frame[-1] ^ 0xFF])
        with pytest.raises(WalCorruptionError):
            recover(wal, checkpoint=cp)

    def test_checkpoint_id_mismatch_refused(self):
        mgr, table, wal, _ = make_manager()
        ckp = Checkpointer(wal)
        cp1 = ckp.checkpoint(mgr, [table])
        ckp.checkpoint(mgr, [table])  # log now starts at checkpoint 2
        with pytest.raises(WalCorruptionError):
            recover(wal, checkpoint=cp1)


class TestVacuumWalInteraction:
    """Vacuum compacts slot indices; a stale WAL referencing the old slots
    must never survive it (regression for a committed-row loss: insert 2,
    delete 1, vacuum, insert 1, recover — a committed row vanished)."""

    def _committed(self, table, ts):
        return TestRecovery()._committed(table, ts)

    def test_vacuum_with_wal_requires_checkpointer(self):
        mgr, table, wal, _ = make_manager()
        t = mgr.begin()
        s = t.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t)
        t = mgr.begin()
        t.delete(table, s)
        mgr.commit(t)
        with pytest.raises(TransactionError):
            mgr.vacuum(table)
        # Nothing was compacted by the refused call.
        assert table.nrows == 1
        assert mgr.stats.versions_vacuumed == 0

    def test_vacuum_checkpointer_on_other_wal_refused(self):
        mgr, table, wal, _ = make_manager()
        with pytest.raises(TransactionError):
            mgr.vacuum(table, checkpointer=Checkpointer(WriteAheadLog()))

    def test_vacuum_without_wal_needs_no_checkpointer(self):
        schema = accounts_schema()
        table = Table(schema)
        mgr = TransactionManager()  # in-memory manager, original behaviour
        t = mgr.begin()
        s = t.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t)
        t = mgr.begin()
        t.delete(table, s)
        mgr.commit(t)
        assert mgr.vacuum(table) == 1

    def test_reviewer_repro_vacuum_then_insert_recovers(self):
        """The exact committed-durable violation: the vacuum checkpoint
        must truncate the stale log so post-vacuum slots never collide
        with pre-vacuum WRITE records during redo."""
        mgr, table, wal, schema = make_manager()
        ckp = Checkpointer(wal)
        t = mgr.begin()
        s0 = t.insert(table, {"id": 1, "balance": 10})
        t.insert(table, {"id": 2, "balance": 20})
        mgr.commit(t)
        t = mgr.begin()
        t.delete(table, s0)
        mgr.commit(t)
        assert mgr.vacuum(table, checkpointer=ckp) == 1
        assert ckp.last is not None
        t = mgr.begin()
        t.insert(table, {"id": 3, "balance": 30})
        mgr.commit(t)
        res = recover(wal, checkpoint=ckp.last)
        rows = self._committed(res.tables[schema.name], res.manager.now)
        assert rows == self._committed(table, mgr.now)
        assert {dict(r)["id"] for r in rows} == {2, 3}
        # And recovery stays idempotent across the vacuum boundary.
        res2 = recover(wal, checkpoint=ckp.last)
        assert np.array_equal(
            res.tables[schema.name].frame, res2.tables[schema.name].frame
        )

    def test_vacuum_noop_takes_no_checkpoint(self):
        mgr, table, wal, _ = make_manager()
        ckp = Checkpointer(wal)
        t = mgr.begin()
        t.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t)
        assert mgr.vacuum(table, checkpointer=ckp) == 0
        assert ckp.taken == 0  # nothing moved, the log is still valid

    def test_checkpoint_marker_without_snapshot_refused(self):
        """A log that begins at a checkpoint cannot be recovered WAL-only:
        redo would silently miss every pre-checkpoint commit."""
        mgr, table, wal, schema = make_manager()
        t = mgr.begin()
        t.insert(table, {"id": 1, "balance": 1})
        mgr.commit(t)
        Checkpointer(wal).checkpoint(mgr, [table])
        with pytest.raises(WalCorruptionError):
            recover(wal, schemas={schema.name: schema})


class TestTableSnapshotHelpers:
    def test_row_bytes_round_trip(self):
        table = Table(accounts_schema())
        table.append_row({"id": 1, "balance": 2})
        img = table.row_bytes(0)
        other = Table(accounts_schema())
        other.write_row_bytes(0, img)
        assert other.row(0) == table.row(0)

    def test_write_row_bytes_pads_invisibly(self):
        table = Table(accounts_schema())
        src = Table(accounts_schema())
        src.append_row({"id": 9, "balance": 9})
        table.write_row_bytes(3, src.row_bytes(0))
        assert table.nrows == 4
        assert (table.begin_ts[:3] == NEVER_TS).all()

    def test_write_row_bytes_validates_stride(self):
        table = Table(accounts_schema())
        with pytest.raises(SchemaError):
            table.write_row_bytes(0, b"short")

    def test_restore_round_trip(self):
        table = Table(accounts_schema())
        for i in range(3):
            table.append_row({"id": i, "balance": i})
        clone = Table.restore(
            table.schema, table.frame.tobytes(), table.nrows, table.version
        )
        assert np.array_equal(clone.frame, table.frame)
        assert clone.version == table.version
