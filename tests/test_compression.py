"""Tests for the compression codecs and their fabric-compatibility
contracts (§III-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.compression import (
    DeltaCodec,
    DictionaryCodec,
    HuffmanCodec,
    Lz77Codec,
    RleCodec,
    all_codecs,
    best_codec,
    decode,
)
from repro.errors import CompressionError

CODECS = list(all_codecs().values())


def ids(codecs):
    return [c.name for c in codecs]


@pytest.mark.parametrize("codec", CODECS, ids=ids(CODECS))
class TestRoundTrip:
    def test_random_values(self, codec):
        rng = np.random.default_rng(1)
        values = rng.integers(-(10**9), 10**9, 777)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_constant_values(self, codec):
        values = np.full(500, 42, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_empty(self, codec):
        values = np.zeros(0, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_single_value(self, codec):
        values = np.array([-7])
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_decode_range(self, codec):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 100, 5000)
        enc = codec.encode(values)
        assert np.array_equal(codec.decode_range(enc, 123, 4567), values[123:4567])

    def test_wrong_codec_payload_rejected(self, codec):
        other = DictionaryCodec() if codec.name != "dictionary" else DeltaCodec()
        enc = other.encode(np.array([1, 2, 3]))
        with pytest.raises(CompressionError):
            codec.decode(enc)

    def test_non_integer_rejected(self, codec):
        with pytest.raises(CompressionError):
            codec.encode(np.array([1.5, 2.5]))

    def test_2d_rejected(self, codec):
        with pytest.raises(CompressionError):
            codec.encode(np.zeros((2, 2), dtype=np.int64))


class TestEffectiveness:
    def test_dictionary_wins_on_small_domains(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 10, 10_000)
        ratio = DictionaryCodec().encode(values).ratio(values.astype(np.int64).nbytes)
        assert ratio > 6

    def test_delta_wins_on_sorted_data(self):
        values = np.sort(np.random.default_rng(4).integers(0, 10**12, 5000))
        ratio = DeltaCodec().encode(values).ratio(values.nbytes)
        assert ratio > 1.5

    def test_rle_wins_on_runs(self):
        values = np.repeat(np.arange(20), 500)
        ratio = RleCodec().encode(values).ratio(values.astype(np.int64).nbytes)
        assert ratio > 100

    def test_lz_compresses_repetitive_bytes(self):
        values = np.tile(np.arange(16), 200)
        ratio = Lz77Codec().encode(values).ratio(values.astype(np.int64).nbytes)
        assert ratio > 3

    def test_huffman_compresses_skewed_bytes(self):
        values = np.random.default_rng(5).integers(0, 4, 4096)
        ratio = HuffmanCodec().encode(values).ratio(values.astype(np.int64).nbytes)
        assert ratio > 2

    def test_best_codec_picks_a_winner(self):
        values = np.repeat(np.arange(5), 1000)
        assert best_codec(values).name == "rle"

    def test_best_codec_fabric_only_excludes_rle_lz(self):
        values = np.repeat(np.arange(5), 1000)
        codec = best_codec(values, fabric_only=True)
        assert codec.fabric_compatible
        assert codec.name not in ("rle", "lz77")

    def test_module_decode_dispatches(self):
        values = np.arange(100)
        enc = DeltaCodec().encode(values)
        assert np.array_equal(decode(enc), values)


class TestFabricCompatibilityContract:
    """§III-D as executable truth: compatible codecs decode a row range
    with work proportional to the range; incompatible ones cannot."""

    def test_declared_flags(self):
        flags = {c.name: c.fabric_compatible for c in CODECS}
        assert flags == {
            "dictionary": True,
            "delta": True,
            "huffman": True,
            "rle": False,
            "lz77": False,
        }

    @pytest.mark.parametrize(
        "codec",
        [c for c in CODECS if c.fabric_compatible],
        ids=ids([c for c in CODECS if c.fabric_compatible]),
    )
    def test_compatible_range_decode_is_local(self, codec):
        """Corrupting the payload OUTSIDE the requested range must not
        affect a compatible codec's range decode."""
        rng = np.random.default_rng(6)
        values = rng.integers(0, 50, 20_000)
        enc = codec.encode(values)
        start, stop = 8192, 8192 + 100  # inside one late block
        want = codec.decode_range(enc, start, stop)
        corrupted = bytearray(enc.payload)
        corrupted[0] ^= 0xFF  # clobber the first block's bytes
        enc.payload = bytes(corrupted)
        got = codec.decode_range(enc, start, stop)
        assert np.array_equal(got, want)

    def test_rle_range_decode_depends_on_prefix(self):
        """RLE's positional data-dependence: early corruption shifts the
        positions of later values."""
        codec = RleCodec()
        values = np.repeat(np.arange(100), 7)
        enc = codec.encode(values)
        want = codec.decode_range(enc, 300, 310)
        corrupted = np.frombuffer(enc.payload, dtype=np.int64).reshape(-1, 2).copy()
        corrupted[0, 1] += 3  # lengthen the first run
        enc.payload = corrupted.tobytes()
        got = codec.decode_range(enc, 300, 310)
        assert not np.array_equal(got, want)


class TestProperties:
    @pytest.mark.parametrize("codec", CODECS, ids=ids(CODECS))
    @given(values=st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, codec, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300),
        bounds=st.tuples(st.integers(0, 299), st.integers(0, 300)),
    )
    @settings(max_examples=30, deadline=None)
    def test_range_decode_property(self, values, bounds):
        arr = np.array(values, dtype=np.int64)
        start, stop = sorted(bounds)
        start = min(start, len(arr))
        stop = min(stop, len(arr))
        for codec in (DictionaryCodec(), DeltaCodec(block_size=16), HuffmanCodec(block_size=16)):
            enc = codec.encode(arr)
            assert np.array_equal(codec.decode_range(enc, start, stop), arr[start:stop])
