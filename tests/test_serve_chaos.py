"""Overload chaos harness and the brute-force serving oracle.

Fast versions of the CI job (`python -m repro.chaos --mode overload`):
short-horizon storms over a couple of seeds, plus negative tests proving
the oracle actually catches tampered event logs — an oracle that cannot
fail is not evidence.
"""

import dataclasses

import pytest

from repro.chaos import (
    OLTP_P99_BOUND_CYCLES,
    overload_config,
    overload_specs,
    run_overload_chaos,
)
from repro.serve import (
    EV_ADMIT,
    EV_COMPLETE,
    EV_DISPATCH,
    ServeOracle,
    ServeScheduler,
    submit_open_loop,
    synthetic_executor,
)

#: Short horizon: ~900 requests per storm, still hits every code path
#: (throttle, shed, expiry, skew, degraded mode) in well under a second.
HORIZON = 10_000_000.0


# ----------------------------------------------------------------------
# The harness itself.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 5])
def test_overload_chaos_passes(seed):
    report = run_overload_chaos(seed, horizon_cycles=HORIZON)
    assert report.passed, report.violations
    assert report.deterministic
    assert report.requests > 200
    terminal = (
        report.completed + report.degraded + report.throttled
        + report.shed + report.expired
    )
    assert terminal == report.requests
    assert report.oltp_p99_cycles <= OLTP_P99_BOUND_CYCLES
    # The storm genuinely exercised the overload machinery.
    assert report.hostile_rejections > 0
    assert report.degraded_mode_entries > 0
    assert report.to_dict()["passed"] is True


def test_chaos_sites_fire(fast_seed=1):
    report = run_overload_chaos(
        fast_seed, horizon_cycles=HORIZON, check_determinism=False
    )
    assert report.passed, report.violations
    # At a 2% rate over hundreds of arrivals both sites fire.
    assert report.faults_fired.get("serve.shed", 0) > 0
    assert report.faults_fired.get("serve.clock_skew", 0) > 0


# ----------------------------------------------------------------------
# The oracle must catch a corrupted log.
# ----------------------------------------------------------------------
def _clean_events(seed=2):
    config = overload_config()
    scheduler = ServeScheduler(config, synthetic_executor(seed=seed))
    submit_open_loop(scheduler, overload_specs(), HORIZON, seed=seed)
    report = scheduler.run_until_drained()
    events = report.events
    assert ServeOracle(config).verify(events) == []
    return config, events


def _first_index(events, kind):
    return next(i for i, ev in enumerate(events) if ev.kind == kind)


class TestOracleCatchesTampering:
    def test_dropped_completion_is_conservation_violation(self):
        config, events = _clean_events()
        i = _first_index(events, EV_COMPLETE)
        tampered = events[:i] + events[i + 1:]
        violations = ServeOracle(config).verify(tampered)
        # The stuck slot surfaces either as a concurrency breach (the
        # replayed running count never drops) or as a missing terminal.
        assert any(
            "concurrency" in v or "terminal" in v or "complete" in v
            for v in violations
        ), violations

    def test_duplicated_admit_is_caught(self):
        config, events = _clean_events()
        i = _first_index(events, EV_ADMIT)
        tampered = events[: i + 1] + [events[i]] + events[i + 1:]
        assert ServeOracle(config).verify(tampered)

    def test_forged_token_balance_is_caught(self):
        config, events = _clean_events()
        i = _first_index(events, EV_ADMIT)
        ev = events[i]
        forged = dataclasses.replace(
            ev, data={**ev.data, "tokens_after": ev.data["tokens_after"] + 1e6}
        )
        tampered = events[:i] + [forged] + events[i + 1:]
        violations = ServeOracle(config).verify(tampered)
        assert any("balance" in v for v in violations), violations

    def test_phantom_dispatch_is_caught(self):
        # Dispatching a request that was never admitted must fail replay.
        config, events = _clean_events()
        i = _first_index(events, EV_DISPATCH)
        ev = events[i]
        forged = dataclasses.replace(ev, req_id=999_999)
        tampered = events[:i] + [forged] + events[i + 1:]
        assert ServeOracle(config).verify(tampered)

    def test_clock_rewind_is_caught(self):
        config, events = _clean_events()
        ev = events[-1]
        tampered = events + [dataclasses.replace(ev, t=ev.t - 1.0)]
        violations = ServeOracle(config).verify(tampered)
        assert any("clock" in v or "monoton" in v for v in violations)
