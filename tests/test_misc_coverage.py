"""Coverage for smaller public surfaces: execution results, fabric
configure errors, bus stats, and result conveniences."""

import numpy as np
import pytest

from repro.core import FabricFilter, FabricPredicate, CompareOp, RelationalMemory
from repro.core.geometry import DataGeometry, FieldSlice
from repro.db.engines import RowStoreEngine
from repro.db.exec.result import QueryResult
from repro.errors import ExecutionError, GeometryError
from repro.hw.config import TEST_PLATFORM
from repro.hw.cpu import CpuCostModel
from repro.workloads.synthetic import make_wide_table, projectivity_query


class TestExecutionResult:
    def test_accepts_bound_query(self):
        catalog, _ = make_wide_table(nrows=1_000, seed=51)
        engine = RowStoreEngine(catalog)
        bound = engine.bind(projectivity_query(2))
        res = engine.execute(bound)
        assert res.engine == "row"
        assert res.visible_rows == 1_000

    def test_seconds_uses_cpu_clock(self):
        catalog, _ = make_wide_table(nrows=1_000, seed=52)
        engine = RowStoreEngine(catalog)
        res = engine.execute(projectivity_query(1))
        cpu = CpuCostModel(engine.platform.cpu)
        assert res.seconds(cpu) == pytest.approx(res.cycles / 1.5e9)

    def test_plan_attached(self):
        catalog, _ = make_wide_table(nrows=100, seed=53)
        res = RowStoreEngine(catalog).execute(projectivity_query(1))
        assert "Aggregate" in res.plan


class TestFabricConfigureErrors:
    def test_filter_field_missing_from_geometry(self):
        geometry = DataGeometry(
            row_stride=16, fields=(FieldSlice("a", 0, 8, "<i8"),)
        )
        frame = np.zeros((4, 16), dtype=np.uint8)
        flt = FabricFilter.of(FabricPredicate("missing", CompareOp.LT, 1))
        with pytest.raises(GeometryError):
            RelationalMemory(TEST_PLATFORM).configure(frame, geometry, fabric_filter=flt)


class TestQueryResultEdges:
    def test_missing_column(self):
        res = QueryResult(names=("a",), columns={"a": np.array([1])})
        with pytest.raises(ExecutionError):
            res.column("b")

    def test_empty_result_nrows(self):
        res = QueryResult(names=(), columns={})
        assert res.nrows == 0
        assert res.rows() == []

    def test_rows_handle_numpy_scalars(self):
        res = QueryResult(
            names=("i", "f"),
            columns={"i": np.array([np.int32(3)]), "f": np.array([np.float32(1.5)])},
        )
        (row,) = res.rows()
        assert isinstance(row[0], int) and isinstance(row[1], float)


class TestLedgerReprAndSeries:
    def test_ledger_repr_mentions_buckets(self):
        from repro.core.ledger import CostLedger

        ledger = CostLedger()
        ledger.charge("cpu", 5)
        assert "cpu" in repr(ledger)

    def test_schema_repr(self):
        from repro.db import Column, TableSchema
        from repro.db.types import INT64

        schema = TableSchema("r", [Column("a", INT64)])
        assert "r" in repr(schema) and "INT64" in repr(schema)

    def test_table_repr(self):
        from repro.db import Catalog, Column, TableSchema
        from repro.db.types import INT64

        table = Catalog().create_table(TableSchema("tr", [Column("a", INT64)]))
        assert "tr" in repr(table)
