"""Binder edge cases: scoping, ambiguity, CHAR padding, aggregate misuse.

The binder is the statement pipeline's gatekeeper — every confusing
reference must die here with a message that names the fix, because past
it the executors assume a flat, unambiguous column namespace.
"""

import pytest

from repro.db.catalog import Catalog
from repro.db.expr import Compare, InList, Literal
from repro.db.plan.binder import bind
from repro.db.schema import Column, TableSchema
from repro.db.sql.parser import parse
from repro.db.sql.pipeline import Session
from repro.db.types import CHAR, INT32
from repro.errors import SchemaError, SqlError


@pytest.fixture
def session():
    s = Session()
    s.execute("CREATE TABLE a (k INT32, x INT32, tag CHAR(6))")
    s.execute("CREATE TABLE b (bk INT32, x INT32, btag CHAR(6))")
    s.execute(
        "INSERT INTO a (k, x, tag) VALUES (1, 5, 'oak'), (2, 7, 'elm')"
    )
    s.execute("INSERT INTO b (bk, x, btag) VALUES (1, 9, 'fir')")
    yield s
    s.close()


# ----------------------------------------------------------------------
# Ambiguity and scoping.
# ----------------------------------------------------------------------
def test_unqualified_column_in_two_tables_is_ambiguous(session):
    with pytest.raises(SqlError, match="ambiguous column 'x'"):
        session.execute("SELECT x AS c0 FROM a JOIN b ON k = bk")


def test_qualifying_cannot_rescue_a_flat_namespace_clash(session):
    # The executors key batches by bare name, so a join between tables
    # sharing a referenced column name is rejected even when qualified.
    with pytest.raises(SqlError, match="multiple joined tables"):
        session.execute("SELECT a.x AS c0 FROM a JOIN b ON k = bk")


def test_unknown_column_names_itself(session):
    with pytest.raises(SqlError, match="unknown column 'v'"):
        session.execute("SELECT v FROM a")


def test_alias_shadows_the_table_name(session):
    # Once aliased, the base table name leaves scope entirely.
    with pytest.raises(SqlError, match="unknown table alias 'a'"):
        session.execute("SELECT z.k FROM a z WHERE a.k = 1")
    result = session.execute("SELECT z.k AS c0 FROM a z WHERE z.k = 1")
    assert result.rows == [(1,)]


def test_duplicate_alias_in_join_is_rejected(session):
    with pytest.raises(SqlError, match="duplicate table name or alias"):
        session.execute("SELECT k AS c0 FROM a JOIN b a ON k = bk")


# ----------------------------------------------------------------------
# CHAR padding: both comparison orientations, IN lists, and inequality.
# ----------------------------------------------------------------------
def _bound_where(sql: str) -> object:
    catalog = Catalog()
    catalog.create_table(
        TableSchema("a", [Column("k", INT32), Column("tag", CHAR(6))])
    )
    return bind(parse(sql), catalog).where


def test_char_literal_padded_column_on_left():
    where = _bound_where("SELECT k FROM a WHERE tag = 'oak'")
    assert isinstance(where, Compare)
    assert where.right == Literal(b"oak\x00\x00\x00")


def test_char_literal_padded_column_on_right():
    where = _bound_where("SELECT k FROM a WHERE 'oak' = tag")
    assert isinstance(where, Compare)
    assert where.left == Literal(b"oak\x00\x00\x00")


def test_char_in_list_values_padded():
    where = _bound_where("SELECT k FROM a WHERE tag IN ('oak', 'fir')")
    assert isinstance(where, InList)
    assert where.values == (b"oak\x00\x00\x00", b"fir\x00\x00\x00")


def test_char_padding_preserves_comparison_results(session):
    # Equality and ordering agree between padded bytes and bare strings
    # (NUL sorts below every ASCII character), in both orientations.
    assert session.execute(
        "SELECT k AS c0 FROM a WHERE tag = 'oak'"
    ).rows == [(1,)]
    assert session.execute(
        "SELECT k AS c0 FROM a WHERE 'oak' = tag"
    ).rows == [(1,)]
    assert session.execute(
        "SELECT k AS c0 FROM a WHERE tag < 'fir'"
    ).rows == [(2,)]


def test_char_value_too_wide_is_rejected(session):
    # Width enforcement happens at the storage layer, past the binder.
    with pytest.raises(SchemaError, match="too long"):
        session.execute("INSERT INTO a (k, x, tag) VALUES (3, 1, 'overlong')")


# ----------------------------------------------------------------------
# Aggregate placement.
# ----------------------------------------------------------------------
def test_aggregate_in_where_is_rejected_with_having_hint(session):
    with pytest.raises(SqlError, match="HAVING"):
        session.execute("SELECT k FROM a WHERE sum(x) > 1")


def test_plain_column_next_to_aggregate_needs_group_by(session):
    with pytest.raises(SqlError, match="GROUP BY"):
        session.execute("SELECT k, sum(x) FROM a")


def test_non_group_key_output_is_rejected(session):
    with pytest.raises(SqlError, match="neither aggregated nor in GROUP BY"):
        session.execute("SELECT x, sum(k) FROM a GROUP BY tag")


def test_having_resolves_output_aliases(session):
    result = session.execute(
        "SELECT tag AS t, sum(x) AS total FROM a GROUP BY tag "
        "HAVING total > 6"
    )
    assert result.rows == [("elm", 7.0)]
