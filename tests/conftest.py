"""Shared fixtures: small platforms and tables every suite reuses."""

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden transcript files instead of comparing",
    )

from repro.db import Catalog, Column, TableSchema
from repro.db.types import CHAR, DECIMAL, INT32, INT64
from repro.hw.config import TEST_PLATFORM, ZYNQ_ULTRASCALE


@pytest.fixture
def platform():
    """The paper's evaluation platform."""
    return ZYNQ_ULTRASCALE


@pytest.fixture
def small_platform():
    """Tiny caches so cache effects show with kilobyte tables."""
    return TEST_PLATFORM


@pytest.fixture
def wide_catalog():
    """The Figure 5 table: 16 INT32 columns in 64-byte rows, 5k rows."""
    from repro.workloads.synthetic import make_wide_table

    catalog, table = make_wide_table(nrows=5_000, ncols=16, row_bytes=64, seed=11)
    return catalog, table


@pytest.fixture
def mixed_catalog():
    """A table mixing ints, decimals and chars, hand-loaded."""
    schema = TableSchema(
        "mixed",
        [
            Column("id", INT64),
            Column("grp", CHAR(2)),
            Column("price", DECIMAL(2)),
            Column("qty", INT32),
        ],
    )
    catalog = Catalog()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(5)
    n = 500
    table.append_arrays(
        {
            "id": np.arange(n, dtype=np.int64),
            "grp": rng.choice(np.array([b"aa", b"bb", b"cc"], dtype="S2"), n),
            "price": rng.integers(100, 99999, n),  # cents
            "qty": rng.integers(1, 50, n, dtype=np.int32),
        }
    )
    return catalog, table


@pytest.fixture
def mvcc_catalog():
    """An MVCC-enabled two-column table."""
    schema = TableSchema(
        "accounts",
        [Column("id", INT64), Column("balance", INT64)],
        mvcc=True,
    )
    catalog = Catalog()
    return catalog, catalog.create_table(schema)
