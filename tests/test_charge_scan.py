"""Unit tests for the shared parallel scan-charging math in Engine.

Every engine's figure behaviour flows through ``_charge_scan``; these
tests pin its contract directly: overlap, bandwidth saturation, and
bucket attribution.
"""

import pytest

from repro.core.ledger import CostLedger
from repro.db.engines import RowStoreEngine
from repro.hw.analytic import MemCost
from repro.workloads.synthetic import make_wide_table


@pytest.fixture(scope="module")
def catalog():
    cat, _ = make_wide_table(nrows=16, name="cs")
    return cat


def engine_with(catalog, threads):
    return RowStoreEngine(catalog, threads=threads)


class TestChargeScan:
    def test_cpu_bound_stage_is_cpu_only(self, catalog):
        engine = engine_with(catalog, 1)
        ledger = CostLedger()
        total = engine._charge_scan(ledger, MemCost(covered=100, exposed=0), cpu=500)
        assert total == 500
        assert ledger.get("cpu") == 500
        assert ledger.get("memory") == 0

    def test_memory_bound_stage_pays_uncovered_part(self, catalog):
        engine = engine_with(catalog, 1)
        ledger = CostLedger()
        total = engine._charge_scan(ledger, MemCost(covered=800, exposed=0), cpu=500)
        assert total == 800
        assert ledger.get("memory") == 300

    def test_exposed_latency_is_additive(self, catalog):
        engine = engine_with(catalog, 1)
        ledger = CostLedger()
        total = engine._charge_scan(
            ledger, MemCost(covered=100, exposed=250), cpu=500
        )
        assert total == 750
        assert ledger.get("memory") == 250

    def test_threads_scale_cpu_and_exposed(self, catalog):
        engine = engine_with(catalog, 4)
        ledger = CostLedger()
        total = engine._charge_scan(ledger, MemCost(covered=0, exposed=400), cpu=800)
        assert ledger.get("cpu") == 200  # /4
        assert ledger.get("memory") == 100  # /4
        assert total == 300

    def test_covered_saturates_at_bandwidth_cores(self, catalog):
        engine = engine_with(catalog, 4)
        sat = engine.platform.dram.bandwidth_saturation_cores
        ledger = CostLedger()
        total = engine._charge_scan(ledger, MemCost(covered=800, exposed=0), cpu=0)
        assert total == 800 / sat  # not /4

    def test_multiple_cpu_buckets_split(self, catalog):
        engine = engine_with(catalog, 2)
        ledger = CostLedger()
        total = engine._charge_scan(
            ledger,
            MemCost(covered=0, exposed=0),
            cpu=100,
            tuple_reconstruction=60,
        )
        assert ledger.get("cpu") == 50
        assert ledger.get("tuple_reconstruction") == 30
        assert total == 80

    def test_overlap_uses_combined_cpu_buckets(self, catalog):
        """The covered stream overlaps with ALL per-tuple work, including
        reconstruction — memory only charges the excess."""
        engine = engine_with(catalog, 1)
        ledger = CostLedger()
        engine._charge_scan(
            ledger,
            MemCost(covered=120, exposed=0),
            cpu=70,
            tuple_reconstruction=40,
        )
        assert ledger.get("memory") == pytest.approx(10)

    def test_zero_work_is_free(self, catalog):
        engine = engine_with(catalog, 1)
        ledger = CostLedger()
        assert engine._charge_scan(ledger, MemCost(), cpu=0) == 0
        assert ledger.total_cycles == 0
