"""Additional advisor scenarios: drift, degenerate workloads, ordering."""

import pytest

from repro.db.advisor import (
    WorkloadQuery,
    advise_partitions,
    fabric_cost,
    partition_cost,
)
from repro.workloads.synthetic import wide_schema


def schema():
    return wide_schema(ncols=8, row_bytes=32, name="adv")


class TestDegenerateWorkloads:
    def test_single_full_row_workload_prefers_row_layout(self):
        workload = [WorkloadQuery(tuple(f"c{i}" for i in range(8)), 1.0)]
        report = advise_partitions(schema(), workload, nrows=100)
        # A full-row workload: the advisor should merge everything (one
        # partition == the row layout) and cost exactly the row cost.
        assert report.partitioned_cost == report.row_layout_cost
        assert len(report.partitions) == 1

    def test_disjoint_single_column_workload_prefers_columns(self):
        workload = [WorkloadQuery((f"c{i}",), 1.0) for i in range(8)]
        report = advise_partitions(schema(), workload, nrows=100)
        assert report.partitioned_cost == report.column_layout_cost

    def test_fabric_equals_columns_for_single_column_queries(self):
        workload = [WorkloadQuery((f"c{i}",), 1.0) for i in range(8)]
        report = advise_partitions(schema(), workload, nrows=100)
        assert report.fabric_cost == report.column_layout_cost

    def test_zero_frequency_query_is_free(self):
        base = [WorkloadQuery(("c0",), 1.0)]
        extra = base + [WorkloadQuery(("c1", "c2"), 0.0)]
        s = schema()
        assert partition_cost(
            s, [frozenset({"c0"}), frozenset({"c1"}), frozenset({"c2"})], base, 10
        ) == partition_cost(
            s, [frozenset({"c0"}), frozenset({"c1"}), frozenset({"c2"})], extra, 10
        )


class TestDrift:
    def test_stale_design_costs_more_than_readvised(self):
        s = schema()
        original = [WorkloadQuery(("c0", "c1"), 50.0), WorkloadQuery(("c7",), 1.0)]
        drifted = [WorkloadQuery(("c4", "c5"), 50.0), WorkloadQuery(("c7",), 1.0)]
        stale = advise_partitions(s, original, nrows=1000)
        fresh = advise_partitions(s, drifted, nrows=1000)
        stale_on_drifted = partition_cost(s, stale.partitions, drifted, 1000)
        assert fresh.partitioned_cost <= stale_on_drifted
        # The fabric never needed the re-design.
        assert fabric_cost(s, drifted, 1000) <= fresh.partitioned_cost

    def test_steps_recorded(self):
        report = advise_partitions(
            schema(), [WorkloadQuery(("c0", "c1", "c2"), 5.0)], nrows=100
        )
        assert report.steps  # at least one merge happened
        assert all("merge" in step for step in report.steps)
