"""Analytic vs trace memory models: formulas, splits, and agreement.

The analytic model is the benchmark fast path; these tests pin it to the
event-accurate trace model on the regimes where they must agree, and
document (by asserting direction) the one divergence noted in the module
docstring.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.analytic import AnalyticMemoryModel, MemCost, TraceMemoryModel
from repro.hw.config import TEST_PLATFORM


@pytest.fixture
def analytic():
    return AnalyticMemoryModel(TEST_PLATFORM)


@pytest.fixture
def trace():
    return TraceMemoryModel(TEST_PLATFORM)


class TestMemCost:
    def test_total(self):
        assert MemCost(3.0, 4.0).total == 7.0

    def test_add(self):
        c = MemCost(1.0, 2.0) + MemCost(10.0, 20.0)
        assert c.covered == 11.0 and c.exposed == 22.0


class TestAnalyticFormulas:
    def test_sequential_cost_per_line(self, analytic):
        cost = analytic.sequential(64 * 100)
        assert cost.covered == 100 * TEST_PLATFORM.dram.stream_cycles_per_line
        assert cost.exposed == 0

    def test_sequential_rounds_up_lines(self, analytic):
        assert analytic.sequential(1).covered == TEST_PLATFORM.dram.stream_cycles_per_line

    def test_sequential_write_doubles(self, analytic):
        read = analytic.sequential(6400).covered
        write = AnalyticMemoryModel(TEST_PLATFORM).sequential(6400, write=True).covered
        assert write == 2 * read

    def test_multi_stream_within_limit_all_covered(self, analytic):
        cost = analytic.multi_stream([6400] * TEST_PLATFORM.prefetcher.max_streams)
        assert cost.exposed == 0

    def test_multi_stream_excess_exposed(self, analytic):
        k = TEST_PLATFORM.prefetcher.max_streams + 3
        cost = analytic.multi_stream([6400] * k)
        per_stream_lines = 100
        assert cost.exposed == pytest.approx(
            3 * per_stream_lines * TEST_PLATFORM.dram.unprefetched_cycles_per_line
        )

    def test_multi_stream_covers_largest_first(self, analytic):
        small, big = 640, 64000
        k = TEST_PLATFORM.prefetcher.max_streams
        cost = analytic.multi_stream([big] * k + [small])
        # Only the small stream is uncovered.
        assert cost.exposed == pytest.approx(
            10 * TEST_PLATFORM.dram.unprefetched_cycles_per_line
        )

    def test_strided_small_stride_is_sequential(self, analytic):
        a = analytic.strided(100, 64, 8)
        b = AnalyticMemoryModel(TEST_PLATFORM).sequential(6400)
        assert a.covered == b.covered

    def test_strided_prefetchable_stride(self, analytic):
        cost = analytic.strided(100, 256, 4)
        assert cost.exposed == 0
        assert cost.covered >= 100 * TEST_PLATFORM.dram.stream_cycles_per_line

    def test_strided_large_stride_exposed(self, analytic):
        cost = analytic.strided(100, 4096, 4)
        assert cost.covered == 0
        assert cost.exposed >= 100 * TEST_PLATFORM.dram.unprefetched_cycles_per_line

    def test_random_in_l1_cheap(self, analytic):
        cost = analytic.random(100, TEST_PLATFORM.l1.size_bytes // 2)
        assert cost.total == 100 * TEST_PLATFORM.l1.hit_cycles

    def test_random_in_l2(self, analytic):
        cost = analytic.random(100, TEST_PLATFORM.l2.size_bytes // 2)
        assert cost.total == 100 * TEST_PLATFORM.l2.hit_cycles

    def test_random_cold_expensive(self, analytic):
        cost = analytic.random(100, 100 * TEST_PLATFORM.l2.size_bytes)
        assert cost.exposed / 100 > TEST_PLATFORM.dram.row_hit_cycles * 0.5

    def test_gather_dense_is_covered_stream(self, analytic):
        cost = analytic.gather(900, 1000, 8)
        assert cost.exposed == 0
        assert cost.covered > 0

    def test_gather_sparse_is_exposed(self, analytic):
        cost = analytic.gather(10, 100_000, 8)
        assert cost.covered == 0
        assert cost.exposed > 0

    def test_gather_scales_with_candidates(self, analytic):
        sparse = analytic.gather(10, 1_000_000, 8).exposed
        denser = analytic.gather(1000, 1_000_000, 8).exposed
        assert denser > sparse * 50

    def test_zero_inputs_free(self, analytic):
        assert analytic.sequential(0).total == 0
        assert analytic.multi_stream([]).total == 0
        assert analytic.random(0, 100).total == 0
        assert analytic.gather(0, 10, 8).total == 0

    def test_traffic_accumulates(self, analytic):
        analytic.sequential(6400)
        analytic.multi_stream([640, 640])
        assert analytic.traffic.dram_bytes == 6400 + 1280


class TestAgreement:
    """Trace and analytic must agree on large cold scans."""

    @given(st.integers(min_value=200, max_value=2000))
    @settings(max_examples=15, deadline=None)
    def test_sequential_agreement(self, nlines):
        nbytes = nlines * 64
        a = AnalyticMemoryModel(TEST_PLATFORM).sequential(nbytes).total
        t = TraceMemoryModel(TEST_PLATFORM).sequential(nbytes).total
        assert t == pytest.approx(a, rel=0.15)

    @given(
        st.integers(min_value=1, max_value=TEST_PLATFORM.prefetcher.max_streams),
        st.integers(min_value=100, max_value=600),
    )
    @settings(max_examples=15, deadline=None)
    def test_multi_stream_agreement_within_limit(self, k, nlines):
        sizes = [nlines * 64] * k
        a = AnalyticMemoryModel(TEST_PLATFORM).multi_stream(sizes).total
        t = TraceMemoryModel(TEST_PLATFORM).multi_stream(sizes).total
        assert t == pytest.approx(a, rel=0.2)

    def test_excess_streams_documented_divergence(self):
        """Beyond the stream limit the trace model (adversarial lockstep)
        is at least as expensive as the analytic one, never cheaper."""
        sizes = [64 * 300] * (TEST_PLATFORM.prefetcher.max_streams + 3)
        a = AnalyticMemoryModel(TEST_PLATFORM).multi_stream(sizes).total
        t = TraceMemoryModel(TEST_PLATFORM).multi_stream(sizes).total
        assert t >= a * 0.95

    def test_strided_agreement(self):
        a = AnalyticMemoryModel(TEST_PLATFORM).strided(1000, 256, 4).total
        t = TraceMemoryModel(TEST_PLATFORM).strided(1000, 256, 4).total
        assert t == pytest.approx(a, rel=0.2)

    def test_random_cold_agreement(self):
        ws = 64 * TEST_PLATFORM.l2.size_bytes
        a = AnalyticMemoryModel(TEST_PLATFORM).random(500, ws).total
        t = TraceMemoryModel(TEST_PLATFORM).random(500, ws).total
        assert t == pytest.approx(a, rel=0.35)

    def test_monotonic_in_streams(self):
        """Analytic multi-stream cost is monotonic in stream count."""
        model = AnalyticMemoryModel(TEST_PLATFORM)
        costs = [
            AnalyticMemoryModel(TEST_PLATFORM).multi_stream([6400] * k).total
            for k in range(1, 9)
        ]
        assert costs == sorted(costs)


class TestAgreementAtScale:
    """100k+ line scans, feasible since the batched trace kernel.

    At this scale the cold-start transient the small-trace tests must
    tolerate (15-20%) washes out, so the tolerances tighten by an order
    of magnitude: streams to 1%, strided to 8%. Random scatter keeps a
    wide band — the analytic closed form deliberately ignores DRAM
    row-buffer and bank effects that dominate random traffic.
    """

    @given(st.integers(min_value=100_000, max_value=500_000))
    @settings(max_examples=5, deadline=None)
    def test_sequential_agreement_tight(self, nlines):
        nbytes = nlines * 64
        a = AnalyticMemoryModel(TEST_PLATFORM).sequential(nbytes).total
        t = TraceMemoryModel(TEST_PLATFORM).sequential(nbytes).total
        assert t == pytest.approx(a, rel=0.01)

    @given(
        st.integers(min_value=1, max_value=TEST_PLATFORM.prefetcher.max_streams),
        st.integers(min_value=100_000, max_value=250_000),
    )
    @settings(max_examples=5, deadline=None)
    def test_multi_stream_agreement_tight(self, k, nlines):
        sizes = [nlines * 64] * k
        a = AnalyticMemoryModel(TEST_PLATFORM).multi_stream(sizes).total
        t = TraceMemoryModel(TEST_PLATFORM).multi_stream(sizes).total
        assert t == pytest.approx(a, rel=0.01)

    def test_strided_agreement_tight(self):
        a = AnalyticMemoryModel(TEST_PLATFORM).strided(150_000, 256, 4).total
        t = TraceMemoryModel(TEST_PLATFORM).strided(150_000, 256, 4).total
        assert t == pytest.approx(a, rel=0.08)

    def test_random_agreement_bounded(self):
        ws = 64 * TEST_PLATFORM.l2.size_bytes
        a = AnalyticMemoryModel(TEST_PLATFORM).random(120_000, ws).total
        t = TraceMemoryModel(TEST_PLATFORM).random(120_000, ws).total
        assert t == pytest.approx(a, rel=0.3)
