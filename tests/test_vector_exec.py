"""Property tests for the vectorized execution path (ISSUE 7).

The contract under test: for every query shape, layout, exec mode, and
MVCC snapshot, the vectorized fused-kernel path and the scalar Volcano
reference produce **bit-identical** answers — and in trace mode the two
exec modes of one engine charge identical cycles and touch the hardware
model identically (cost recipes never depend on the answer path).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mvcc_filter import visible_mask, visible_mask_batched
from repro.db import Catalog, Column, TableSchema
from repro.db.engines.base import Engine
from repro.db.engines.colstore import ColumnStoreEngine
from repro.db.engines.rmstore import RelationalMemoryEngine
from repro.db.engines.rowstore import RowStoreEngine
from repro.db.exec.vector import (
    FusedKernel,
    join_indices,
    run_vector,
)
from repro.db.exec.volcano import run_volcano
from repro.db.mvcc import TransactionManager
from repro.db.plan import bind
from repro.db.plan.codecache import CodeFragmentCache
from repro.db.sql import parse
from repro.db.types import CHAR, DECIMAL, INT32, INT64
from repro.core.ledger import CostLedger
from repro.hw.config import TEST_PLATFORM

ENGINES = (RowStoreEngine, ColumnStoreEngine, RelationalMemoryEngine)


def assert_same_result(a, b, context=""):
    """Bit-identical comparison (dataclass ``==`` chokes on arrays).

    Byte-string columns may differ in declared width (the Volcano path
    re-packs scalars); numpy's elementwise comparison is padding-blind,
    which matches the executors' own semantics.
    """
    assert a.names == b.names, f"{context}: {a.names} != {b.names}"
    for n in a.names:
        x, y = a.columns[n], b.columns[n]
        assert len(x) == len(y), f"{context}: column {n} length {len(x)} != {len(y)}"
        if x.dtype.kind != "S" or y.dtype.kind != "S":
            assert x.dtype == y.dtype, f"{context}: column {n} {x.dtype} != {y.dtype}"
        if x.dtype.kind == "f":
            assert np.array_equal(x, y, equal_nan=True), f"{context}: column {n}"
        else:
            assert np.array_equal(x, y), f"{context}: column {n}"


# ----------------------------------------------------------------------
# A small star schema the random queries run over.
# ----------------------------------------------------------------------
def make_star(seed=7, n_fact=400, n_dim1=40, n_dim2=12):
    catalog = Catalog()
    fact = catalog.create_table(
        TableSchema(
            "fact",
            [
                Column("k1", INT64),
                Column("k2", INT64),
                Column("val", DECIMAL(2)),
                Column("qty", INT32),
                Column("cat", CHAR(4)),
            ],
        )
    )
    dim1 = catalog.create_table(
        TableSchema(
            "dim1",
            [
                Column("d1_key", INT64),
                Column("d1_ref", INT64),
                Column("d1_w", INT32),
                Column("d1_cat", CHAR(4)),
            ],
        )
    )
    dim2 = catalog.create_table(
        TableSchema("dim2", [Column("d2_key", INT64), Column("d2_w", INT32)])
    )
    rng = np.random.default_rng(seed)
    fact.append_arrays(
        {
            "k1": rng.integers(0, n_dim1 + 5, n_fact, dtype=np.int64),
            "k2": rng.integers(0, n_dim2 + 3, n_fact, dtype=np.int64),
            "val": rng.integers(100, 50_000, n_fact),
            "qty": rng.integers(1, 40, n_fact, dtype=np.int32),
            "cat": rng.choice(np.array([b"aa", b"bb", b"cc", b"dddd"], "S4"), n_fact),
        }
    )
    dim1.append_arrays(
        {
            # Duplicate keys: the join must fan out.
            "d1_key": rng.integers(0, n_dim1, n_dim1 * 2, dtype=np.int64),
            "d1_ref": rng.integers(0, n_dim2 + 3, n_dim1 * 2, dtype=np.int64),
            "d1_w": rng.integers(1, 9, n_dim1 * 2, dtype=np.int32),
            "d1_cat": rng.choice(np.array([b"xx", b"yy"], "S4"), n_dim1 * 2),
        }
    )
    dim2.append_arrays(
        {
            "d2_key": rng.integers(0, n_dim2, n_dim2, dtype=np.int64),
            "d2_w": rng.integers(1, 5, n_dim2, dtype=np.int32),
        }
    )
    return catalog, fact


STAR_CATALOG, STAR_FACT = make_star()

_JOINS = [
    "",
    " JOIN dim1 ON k1 = d1_key",
    " JOIN dim1 ON k1 = d1_key JOIN dim2 ON k2 = d2_key",
    # Chained probe key: the second join's left column lives in dim1.
    " JOIN dim1 ON k1 = d1_key JOIN dim2 ON d1_ref = d2_key",
]
_WHERES = [
    "",
    " WHERE qty > 12",
    " WHERE cat = 'aa' OR qty < 5",
    " WHERE val BETWEEN 20 AND 300",
    " WHERE qty > 45",  # empty qualifying set
]
#: Predicates over joined columns (post-join filters); only valid with a
#: join clause that brings the column in.
_POST_WHERES = {
    1: " WHERE qty > 10 AND d1_cat = 'xx'",
    2: " WHERE d1_w > 2 AND d2_w < 4",
    3: " WHERE val > 50 AND d2_w > 1",
}


@st.composite
def star_queries(draw):
    join_i = draw(st.integers(0, len(_JOINS) - 1))
    join = _JOINS[join_i]
    if join_i and draw(st.booleans()):
        where = _POST_WHERES[join_i]
    else:
        where = draw(st.sampled_from(_WHERES))
    shape = draw(st.integers(0, 2))
    if shape == 0:  # grouped aggregation
        key = draw(st.sampled_from(["cat", "k2"] + (["d1_cat"] if join_i else [])))
        sql = (
            f"SELECT {key}, sum(val) AS s, count(*) AS n, min(qty) AS lo, "
            f"max(qty * 2) AS hi, avg(val) AS m FROM fact{join}{where} "
            f"GROUP BY {key} ORDER BY {key}"
        )
    elif shape == 1:  # global aggregates
        sql = (
            f"SELECT sum(val * qty) AS s, count(*) AS n, avg(qty) AS m "
            f"FROM fact{join}{where}"
        )
    else:  # projection with ordering
        distinct = "DISTINCT " if draw(st.booleans()) else ""
        limit = draw(st.sampled_from(["", " LIMIT 7"]))
        order = "" if distinct else " ORDER BY val DESC, k1"
        sql = f"SELECT {distinct}k1, val, qty FROM fact{join}{where}{order}{limit}"
    return sql


class TestVectorVsVolcanoProperty:
    @given(star_queries())
    @settings(max_examples=60, deadline=None)
    def test_random_queries_bit_identical(self, sql):
        bound = bind(parse(sql), STAR_CATALOG)
        cols = {n: STAR_FACT.column_values(n) for n in bound.referenced_columns}
        vec = run_vector(bound, cols)
        vol = run_volcano(bound, cols)
        assert_same_result(vec, vol, context=sql)

    @given(star_queries(), st.sampled_from(["probe", "merge"]))
    @settings(max_examples=30, deadline=None)
    def test_join_strategies_bit_identical(self, sql, strategy):
        bound = bind(parse(sql), STAR_CATALOG)
        cols = {n: STAR_FACT.column_values(n) for n in bound.referenced_columns}
        forced = FusedKernel(bound, join_strategy=strategy)(cols)
        auto = run_vector(bound, cols)
        assert_same_result(forced, auto, context=f"{strategy}: {sql}")


class TestJoinIndices:
    @given(
        st.lists(st.integers(0, 8), max_size=60),
        st.lists(st.integers(0, 8), max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_probe_merge_and_reference_agree(self, left, right):
        l = np.asarray(left, dtype=np.int64)
        r = np.asarray(right, dtype=np.int64)
        expect_l, expect_r = [], []
        for i, lv in enumerate(left):
            for j, rv in enumerate(right):
                if lv == rv:
                    expect_l.append(i)
                    expect_r.append(j)
        for strategy in ("probe", "merge", "auto"):
            li, ri = join_indices([l], [r], strategy=strategy)
            assert li.tolist() == expect_l, strategy
            assert ri.tolist() == expect_r, strategy

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=40),
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_multi_key(self, left, right):
        la = np.asarray([t[0] for t in left], dtype=np.int64)
        lb = np.asarray([t[1] for t in left], dtype=np.int64)
        ra = np.asarray([t[0] for t in right], dtype=np.int64)
        rb = np.asarray([t[1] for t in right], dtype=np.int64)
        expect = [
            (i, j)
            for i, lt in enumerate(left)
            for j, rt in enumerate(right)
            if lt == rt
        ]
        for strategy in ("probe", "merge"):
            li, ri = join_indices([la, lb], [ra, rb], strategy=strategy)
            assert list(zip(li.tolist(), ri.tolist())) == expect, strategy

    def test_mixed_dtype_keys_promote(self):
        l = np.asarray([1, 2, 3], dtype=np.int32)
        r = np.asarray([2, 2, 3], dtype=np.int64)
        li, ri = join_indices([l], [r])
        assert list(zip(li.tolist(), ri.tolist())) == [(1, 0), (1, 1), (2, 2)]

    def test_merge_picked_for_high_fanout(self):
        from repro.db.exec.vector import _join_codes, _pick_strategy

        l = np.arange(100, dtype=np.int64)  # all-unique: fanout 1
        r = np.zeros(200, dtype=np.int64)  # fanout 200 >> threshold
        lc, rc = _join_codes([l], [r])
        assert _pick_strategy(np.sort(rc), len(lc)) == "merge"
        assert _pick_strategy(np.sort(lc), len(rc)) == "probe"


class TestEmptyAggregates:
    """Satellite 2: empty-input semantics pinned to the Volcano reference."""

    def _run_both(self, sql):
        bound = bind(parse(sql), STAR_CATALOG)
        cols = {n: STAR_FACT.column_values(n) for n in bound.referenced_columns}
        vec = run_vector(bound, cols)
        vol = run_volcano(bound, cols)
        assert_same_result(vec, vol, context=sql)
        return vec

    def test_global_aggregates_over_zero_rows(self):
        res = self._run_both(
            "SELECT count(*) AS n, sum(val) AS s, avg(val) AS m, "
            "min(val) AS lo, max(val) AS hi FROM fact WHERE qty > 1000"
        )
        assert res.nrows == 1
        row = dict(zip(res.names, res.rows()[0]))
        assert row["n"] == 0
        assert row["s"] == 0.0
        assert np.isnan(row["m"])
        assert row["lo"] == np.inf
        assert row["hi"] == -np.inf

    def test_grouped_aggregate_over_zero_rows_is_empty(self):
        res = self._run_both(
            "SELECT cat, sum(val) AS s FROM fact WHERE qty > 1000 GROUP BY cat"
        )
        assert res.nrows == 0

    def test_empty_probe_side_join(self):
        res = self._run_both(
            "SELECT count(*) AS n, sum(d1_w) AS s FROM fact "
            "JOIN dim1 ON k1 = d1_key WHERE qty > 1000"
        )
        assert res.rows() == [(0, 0.0)]


class TestEngineTraceBitIdentity:
    """Vector and volcano modes of one engine: identical rows, cycles,
    ledger buckets, and hardware counters in trace mode."""

    SQL = (
        "SELECT cat, sum(val * qty) AS rev, count(*) AS n FROM fact "
        "JOIN dim1 ON k1 = d1_key WHERE qty > 8 AND d1_w > 1 "
        "GROUP BY cat ORDER BY rev DESC"
    )

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_modes_identical(self, engine_cls):
        results = {}
        for mode in ("vector", "volcano"):
            engine = engine_cls(
                STAR_CATALOG, TEST_PLATFORM, memory_model="trace", exec_mode=mode
            )
            res = engine.execute(self.SQL)
            results[mode] = (res, engine.memory.hierarchy.counters())
        vec, vec_hw = results["vector"]
        vol, vol_hw = results["volcano"]
        assert_same_result(vec.result, vol.result, context=engine_cls.name)
        assert vec.ledger.buckets == vol.ledger.buckets
        assert vec.cycles == vol.cycles
        assert vec_hw == vol_hw

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_modes_identical_under_mvcc_snapshot(self, engine_cls):
        schema = TableSchema(
            "ledger_t",
            [Column("acct", INT64), Column("amount", INT64), Column("tag", CHAR(2))],
            mvcc=True,
        )
        catalog = Catalog()
        table = catalog.create_table(schema)
        manager = TransactionManager()
        rng = np.random.default_rng(3)
        snapshots = []
        for batch in range(4):
            txn = manager.begin()
            for _ in range(25):
                txn.insert(
                    table,
                    {
                        "acct": int(rng.integers(0, 10)),
                        "amount": int(rng.integers(1, 1000)),
                        "tag": rng.choice(["aa", "bb"]),
                    },
                )
            manager.commit(txn)
            snapshots.append(manager.now)
        # One uncommitted transaction: invisible to every snapshot below.
        pending = manager.begin()
        pending.insert(table, {"acct": 1, "amount": 10_000, "tag": "aa"})

        sql = (
            "SELECT acct, sum(amount) AS s, count(*) AS n FROM ledger_t "
            "WHERE tag = 'aa' GROUP BY acct ORDER BY acct"
        )
        for snapshot_ts in snapshots:
            ref = None
            for mode in ("vector", "volcano"):
                engine = engine_cls(
                    catalog, TEST_PLATFORM, memory_model="trace", exec_mode=mode
                )
                res = engine.execute(sql, snapshot_ts=snapshot_ts)
                if ref is None:
                    ref = res
                else:
                    assert_same_result(
                        ref.result, res.result, context=f"ts={snapshot_ts}"
                    )
                    assert ref.ledger.buckets == res.ledger.buckets
        # Later snapshots see strictly more rows.
        engine = engine_cls(catalog, TEST_PLATFORM)
        counts = [
            engine.execute(
                "SELECT count(*) AS n FROM ledger_t", snapshot_ts=ts
            ).result.scalar()
            for ts in snapshots
        ]
        assert counts == sorted(counts) and counts[0] < counts[-1]


class TestCodeCache:
    SQL = (
        "SELECT cat, sum(val) AS s FROM fact JOIN dim1 ON k1 = d1_key "
        "WHERE qty > 10 GROUP BY cat ORDER BY cat"
    )

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_warm_hit_skips_compile(self, engine_cls):
        cache = CodeFragmentCache()
        engine = engine_cls(STAR_CATALOG, TEST_PLATFORM, codecache=cache)
        cold = engine.execute(self.SQL)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        assert cold.ledger.get(CostLedger.PLAN_COMPILE) == cache.compile_cycles
        warm = engine.execute(self.SQL)
        assert cache.stats.hits == 1
        assert warm.ledger.get(CostLedger.PLAN_COMPILE) == 0.0
        assert_same_result(cold.result, warm.result, context="cold vs warm")
        assert warm.cycles < cold.cycles

    def test_shape_reuse_with_different_literals(self):
        # Same fragment signature (literals are parameters), different
        # constants: the cached kernel must be re-bound, not replayed.
        cache = CodeFragmentCache()
        engine = RowStoreEngine(STAR_CATALOG, TEST_PLATFORM, codecache=cache)
        plain = RowStoreEngine(STAR_CATALOG, TEST_PLATFORM)
        for cut in (5, 20, 35):
            sql = f"SELECT sum(val) AS s, count(*) AS n FROM fact WHERE qty > {cut}"
            cached = engine.execute(sql)
            reference = plain.execute(sql)
            assert_same_result(cached.result, reference.result, context=sql)
        assert cache.stats.misses == 1 and cache.stats.hits == 2

    def test_vector_mode_required(self):
        cache = CodeFragmentCache()
        engine = RowStoreEngine(
            STAR_CATALOG, TEST_PLATFORM, exec_mode="volcano", codecache=cache
        )
        engine.execute(self.SQL)
        # The volcano path never consults the fragment cache.
        assert cache.stats.lookups == 0

    def test_codecache_metrics_collector(self):
        from repro.obs import MetricsRegistry

        cache = CodeFragmentCache()
        registry = MetricsRegistry()
        engine = RowStoreEngine(
            STAR_CATALOG, TEST_PLATFORM, codecache=cache, metrics=registry
        )
        engine.execute(self.SQL)
        engine.execute(self.SQL)
        sample = registry.collect()
        assert sample['codecache_hits_total{engine="row"}'] == 1
        assert sample['codecache_misses_total{engine="row"}'] == 1
        assert sample['codecache_hit_rate{engine="row"}'] == 0.5
        assert sample['codecache_resident{engine="row"}'] == 1

    def test_layouts_key_fragments_differently(self):
        # One shared cache across engines: the row layout bakes offsets,
        # the column/fabric layouts key on positional types, so the same
        # SQL compiles one fragment per layout.
        cache = CodeFragmentCache()
        for engine_cls in ENGINES:
            engine_cls(STAR_CATALOG, TEST_PLATFORM, codecache=cache).execute(self.SQL)
        assert cache.stats.misses == 3 and cache.resident == 3


class TestMvccBatchRead:
    def _seeded(self):
        catalog = Catalog()
        table = catalog.create_table(
            TableSchema(
                "t", [Column("id", INT64), Column("v", INT64)], mvcc=True
            )
        )
        manager = TransactionManager()
        txn = manager.begin()
        for i in range(20):
            txn.insert(table, {"id": i, "v": i * 10})
        manager.commit(txn)
        return catalog, table, manager

    @given(
        st.lists(st.integers(0, 2**40), min_size=0, max_size=200),
        st.integers(0, 2**40),
        st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_mask_bit_identical(self, begins, snapshot, batch):
        begin_ts = np.asarray(begins, dtype=np.int64)
        rng = np.random.default_rng(len(begins))
        end_ts = begin_ts + rng.integers(0, 2**20, len(begins))
        assert np.array_equal(
            visible_mask(begin_ts, end_ts, snapshot),
            visible_mask_batched(begin_ts, end_ts, snapshot, batch_rows=batch),
        )

    def test_read_columns_matches_row_loop(self):
        _, table, manager = self._seeded()
        txn = manager.begin()
        # Mix in this transaction's own intents: one insert, one update,
        # one delete — read_columns must see exactly what read_row sees.
        txn.insert(table, {"id": 99, "v": 990})
        txn.update(table, 3, {"v": -1})
        txn.delete(table, 5)
        batch = txn.read_columns(table)
        slots = txn.visible_slots(table)
        rows = [txn.read_row(table, int(s)) for s in slots]
        assert set(batch) == {"id", "v"}
        assert batch["id"].tolist() == [r["id"] for r in rows]
        assert batch["v"].tolist() == [r["v"] for r in rows]
        assert 99 in batch["id"].tolist()  # own pending insert visible
        assert 5 not in slots.tolist() or table.row(5)["id"] != 5

    def test_read_columns_subset_and_isolation(self):
        _, table, manager = self._seeded()
        reader = manager.begin()
        writer = manager.begin()
        writer.insert(table, {"id": 50, "v": 500})
        manager.commit(writer)
        # Snapshot isolation: the earlier reader never sees the new row.
        batch = reader.read_columns(table, names=("v",))
        assert set(batch) == {"v"}
        assert len(batch["v"]) == 20
        fresh = manager.begin()
        assert len(fresh.read_columns(table)["v"]) == 21
