"""Differential SQL fuzzing through the statement pipeline.

Hypothesis draws seeds; each seed drives a random statement stream
(DML, transactions, joins, grouping, subqueries) through the vector
engine, the volcano engine, a determinism twin, the scatter-gather
cluster (where the statement fits its dialect), and the brute-force
dict-row oracle — every answer must agree, byte-identically between
engine modes. ``python -m repro.chaos --mode sql-fuzz`` runs the same
harness with WAL crash points in CI.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.sql.fuzz import StatementGen, run_sql_fuzz
from repro.db.sql.oracle import SqlOracle


def _assert_clean(report):
    assert report.passed, "\n".join(report.violations[:10])


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_differential_fuzz(seed):
    report = run_sql_fuzz(seed, steps=40)
    _assert_clean(report)
    assert report.selects > 0
    assert report.dml_statements > 0


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_differential_fuzz_with_crash_points(seed):
    report = run_sql_fuzz(seed, steps=30, crash_points=8)
    _assert_clean(report)
    assert report.crash_boundary_points > 0
    assert report.crash_torn_points > 0


@pytest.mark.parametrize("seed", range(4))
def test_ci_seeds_stay_green(seed):
    """The exact configuration the chaos CI job runs (spot check)."""
    report = run_sql_fuzz(seed, steps=60, crash_points=12)
    _assert_clean(report)


def test_fuzz_exercises_every_statement_family():
    """Across a handful of seeds the stream must cover selects, DML,
    explicit transactions, rollbacks, subqueries, and dist routing —
    a generator regression (e.g. a branch that stops firing) would
    silently gut the differential coverage."""
    totals = {
        "selects": 0,
        "dml_statements": 0,
        "txn_blocks": 0,
        "rollbacks": 0,
        "subquery_selects": 0,
        "dist_checked": 0,
        "rows_checked": 0,
    }
    for seed in range(8):
        report = run_sql_fuzz(seed, steps=60)
        _assert_clean(report)
        for key in totals:
            totals[key] += getattr(report, key)
    for key, count in totals.items():
        assert count > 0, f"fuzz stream never exercised {key}"


# ----------------------------------------------------------------------
# The oracle itself: spot-check its semantics against hand-computed
# answers so a bug in the referee can't silently excuse both engines.
# ----------------------------------------------------------------------
def _fresh_oracle():
    oracle = SqlOracle()
    oracle.execute("CREATE TABLE t (id INT32, v INT32, w INT32, tag CHAR(8))")
    oracle.execute(
        "INSERT INTO t (id, v, w, tag) VALUES "
        "(1, 10, 5, 'oak'), (2, 20, 5, 'elm'), (3, 30, 7, 'oak')"
    )
    return oracle


def test_oracle_group_by_matches_hand_computation():
    names, rows = _fresh_oracle().execute(
        "SELECT tag AS c0, sum(v) AS c1, count(*) AS c2 FROM t GROUP BY tag"
    )
    assert names == ("c0", "c1", "c2")
    assert rows == [("elm", 20.0, 1), ("oak", 40.0, 2)]


def test_oracle_global_aggregate_over_empty_input():
    oracle = _fresh_oracle()
    names, rows = oracle.execute(
        "SELECT count(*) AS c0, sum(v) AS c1, min(v) AS c2, "
        "max(v) AS c3, avg(v) AS c4 FROM t WHERE v > 1000"
    )
    (count, total, lo, hi, mean), = rows
    assert (count, total, lo, hi) == (0, 0.0, float("inf"), float("-inf"))
    assert math.isnan(mean)


def test_oracle_update_moves_rows_to_end_of_scan_order():
    oracle = _fresh_oracle()
    assert oracle.execute("UPDATE t SET v = v + 1 WHERE tag = 'oak'") == 2
    # MVCC slot discipline: updated versions land after untouched rows.
    assert [r["id"] for r in oracle.tables["t"].rows] == [2, 1, 3]


def test_oracle_txn_rollback_discards_staged_dml():
    oracle = _fresh_oracle()
    oracle.execute("BEGIN")
    oracle.execute("DELETE FROM t WHERE id = 1")
    oracle.execute("ROLLBACK")
    assert len(oracle.tables["t"].rows) == 3
    oracle.execute("BEGIN")
    oracle.execute("DELETE FROM t WHERE id = 1")
    oracle.execute("COMMIT")
    assert len(oracle.tables["t"].rows) == 2


def test_oracle_scalar_and_in_subqueries():
    oracle = _fresh_oracle()
    _, rows = oracle.execute(
        "SELECT id AS c0 FROM t WHERE v >= (SELECT avg(v) FROM t) ORDER BY c0"
    )
    assert rows == [(2,), (3,)]
    _, rows = oracle.execute(
        "SELECT id AS c0 FROM t WHERE w IN (SELECT w FROM t WHERE tag = 'elm') "
        "ORDER BY c0"
    )
    assert rows == [(1,), (2,)]


def test_generator_emits_only_valid_sql():
    """Every generated statement must parse (and the harness runs them
    all anyway — this pins the contract at the generator boundary)."""
    import random

    from repro.db.sql.parser import parse_statement

    gen = StatementGen(random.Random(7))
    for _ in range(200):
        stmt = gen.select()
        parse_statement(stmt.sql)
        parse_statement(gen.insert())
        parse_statement(gen.update())
        parse_statement(gen.delete())
