"""Tests for intra-query parallelism (the 4-core testbed model)."""

import pytest

from repro.db.engines import (
    ColumnStoreEngine,
    RelationalMemoryEngine,
    RowStoreEngine,
    all_engines,
)
from repro.db.exec import results_equal
from repro.errors import ExecutionError
from repro.hw.config import ZYNQ_RMC
from repro.workloads.synthetic import make_wide_table, projectivity_query


@pytest.fixture(scope="module")
def wide():
    return make_wide_table(nrows=40_000, seed=41)


class TestThreads:
    def test_invalid_thread_count(self, wide):
        catalog, _ = wide
        with pytest.raises(ExecutionError):
            RowStoreEngine(catalog, threads=0)

    def test_answers_independent_of_threads(self, wide):
        catalog, _ = wide
        sql = projectivity_query(3)
        base = RowStoreEngine(catalog, threads=1).execute(sql).result
        for engine_cls in (RowStoreEngine, ColumnStoreEngine, RelationalMemoryEngine):
            for t in (2, 4):
                res = engine_cls(catalog, threads=t).execute(sql).result
                assert results_equal(res, base)

    def test_more_threads_never_slower(self, wide):
        catalog, _ = wide
        sql = projectivity_query(6)
        for engine_cls in (RowStoreEngine, ColumnStoreEngine, RelationalMemoryEngine):
            costs = [
                engine_cls(catalog, threads=t).execute(sql).cycles for t in (1, 2, 4)
            ]
            assert all(b <= a * 1.001 for a, b in zip(costs, costs[1:]))

    def test_compute_bound_work_scales_linearly(self, wide):
        """A CPU-dominated query (high projectivity, row engine) should
        get close to 2x from the second core."""
        catalog, _ = wide
        sql = projectivity_query(11)
        one = RowStoreEngine(catalog, threads=1).execute(sql).cycles
        two = RowStoreEngine(catalog, threads=2).execute(sql).cycles
        assert one / two == pytest.approx(2.0, rel=0.1)

    def test_bandwidth_bound_work_saturates(self):
        """A movement-dominated row scan (TPC-H Q6 over 160-byte rows)
        stops scaling at the channel-saturation core count."""
        from repro.workloads.tpch import Q6, generate_lineitem

        catalog, _ = generate_lineitem(30_000)
        two = RowStoreEngine(catalog, threads=2).execute(Q6).cycles
        four = RowStoreEngine(catalog, threads=4).execute(Q6).cycles
        assert four / two > 0.65  # nowhere near another 2x

    def test_fpga_fabric_is_rm_scaling_wall(self, wide):
        """The single 100 MHz engine bounds RM at high thread counts;
        the integrated RMC (§IV-C) lifts the bound."""
        catalog, _ = wide
        sql = projectivity_query(2)
        rm4 = RelationalMemoryEngine(catalog, threads=4).execute(sql)
        rmc4 = RelationalMemoryEngine(catalog, ZYNQ_RMC, threads=4).execute(sql)
        assert rmc4.cycles <= rm4.cycles
        assert rm4.ledger.get("fabric_produce") >= rmc4.ledger.get("fabric_produce")

    def test_all_engines_accept_threads_kwarg(self, wide):
        catalog, _ = wide
        engines = all_engines(catalog, threads=4)
        sql = projectivity_query(2)
        results = [e.execute(sql).result for e in engines.values()]
        assert results_equal(results[0], results[1])
        assert results_equal(results[0], results[2])
