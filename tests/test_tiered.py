"""Tests for the tiered fabric: compressed column archive → rows in
memory → ephemeral groups (§VII Q3)."""

import numpy as np
import pytest

from repro.db import Catalog, Column, TableSchema
from repro.db.types import CHAR, DECIMAL, INT64
from repro.storage import ColumnArchive, TieredFabric
from repro.errors import StorageError
from repro.workloads.tpch import generate_lineitem


@pytest.fixture(scope="module")
def lineitem():
    _, table = generate_lineitem(8_000)
    return table


@pytest.fixture(scope="module")
def archive(lineitem):
    return ColumnArchive.from_table(lineitem)


class TestArchive:
    def test_every_column_archived(self, lineitem, archive):
        summary = archive.codec_summary()
        assert set(summary) == set(lineitem.schema.column_names)

    def test_numeric_columns_use_fabric_codecs(self, archive):
        summary = archive.codec_summary()
        assert summary["l_discount"] in ("dictionary", "delta", "huffman")
        assert summary["l_orderkey"] in ("dictionary", "delta", "huffman")

    def test_char_columns_stay_raw(self, archive):
        summary = archive.codec_summary()
        assert summary["l_comment"] == "raw"
        assert summary["l_returnflag"] == "raw"

    def test_archive_compresses(self, archive):
        assert archive.compression_ratio > 1.2

    def test_unknown_column(self, archive):
        with pytest.raises(StorageError):
            archive.column("nope")

    def test_numeric_only_table_compresses_harder(self):
        schema = TableSchema(
            "nums", [Column("a", INT64), Column("b", DECIMAL(2))]
        )
        table = Catalog().create_table(schema)
        rng = np.random.default_rng(3)
        table.append_arrays(
            {"a": rng.integers(0, 20, 5000), "b": rng.integers(0, 50, 5000)}
        )
        arch = ColumnArchive.from_table(table)
        assert arch.compression_ratio > 4


class TestMaterialization:
    def test_full_roundtrip(self, lineitem, archive):
        tiered = TieredFabric(archive)
        table, report = tiered.materialize_rows()
        assert table.nrows == lineitem.nrows
        assert np.array_equal(table.frame[:, : _user_bytes(lineitem)],
                              lineitem.frame[:, : _user_bytes(lineitem)])
        assert report.host_bytes == lineitem.nbytes

    def test_row_range(self, lineitem, archive):
        tiered = TieredFabric(archive)
        table, _ = tiered.materialize_rows(1_000, 3_000)
        assert table.nrows == 2_000
        assert np.array_equal(
            table.column("l_orderkey"), lineitem.column("l_orderkey")[1_000:3_000]
        )
        assert np.array_equal(
            table.column("l_shipinstruct"),
            lineitem.column("l_shipinstruct")[1_000:3_000],
        )

    def test_empty_range(self, archive):
        tiered = TieredFabric(archive)
        table, report = tiered.materialize_rows(100, 100)
        assert table.nrows == 0
        assert report.host_bytes == 0

    def test_bad_range(self, archive):
        tiered = TieredFabric(archive)
        with pytest.raises(StorageError):
            tiered.materialize_rows(5, 1_000_000)

    def test_fewer_pages_than_uncompressed(self, archive):
        tiered = TieredFabric(archive)
        _, report = tiered.materialize_rows()
        assert report.pages_read < report.baseline_pages
        assert report.speedup_vs_uncompressed >= 1.0

    def test_decimal_values_survive(self, lineitem, archive):
        tiered = TieredFabric(archive)
        table, _ = tiered.materialize_rows(0, 500)
        assert np.array_equal(
            table.column_values("l_extendedprice"),
            lineitem.column_values("l_extendedprice")[:500],
        )


class TestMemoryTier:
    def test_ephemeral_over_materialized_rows(self, lineitem, archive):
        tiered = TieredFabric(archive)
        table, _ = tiered.materialize_rows(2_000, 6_000)
        group = tiered.ephemeral(table, ["l_quantity", "l_discount"])
        assert np.array_equal(
            group.column("l_quantity"), lineitem.column("l_quantity")[2_000:6_000]
        )
        assert group.packed_width == 16
        assert group.report.produce_cycles > 0

    def test_queries_work_over_the_warm_tier(self, lineitem, archive):
        from repro.db import Catalog
        from repro.db.engines import all_engines
        from repro.db.exec import results_equal

        tiered = TieredFabric(archive)
        warm, _ = tiered.materialize_rows()
        catalog = Catalog()
        catalog.register(warm)
        cold_catalog = Catalog()
        cold_catalog.register(lineitem)
        sql = (
            "SELECT sum(l_extendedprice * l_discount) AS rev FROM lineitem "
            "WHERE l_quantity < 24"
        )
        warm_res = all_engines(catalog)["rm"].execute(sql)
        cold_res = all_engines(cold_catalog)["rm"].execute(sql)
        assert results_equal(warm_res.result, cold_res.result)


def _user_bytes(table) -> int:
    return sum(c.dtype.width for c in table.schema.user_columns)
