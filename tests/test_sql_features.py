"""Tests for DISTINCT, HAVING and SELECT * across the whole stack."""

import numpy as np
import pytest

from repro.db import Catalog, Column, TableSchema
from repro.db.engines import all_engines
from repro.db.exec import results_equal, run_vector, run_volcano
from repro.db.plan import bind
from repro.db.sql import parse
from repro.db.types import CHAR, INT64
from repro.errors import SqlError


@pytest.fixture
def dup_catalog():
    schema = TableSchema(
        "dups", [Column("g", CHAR(1)), Column("v", INT64), Column("w", INT64)]
    )
    catalog = Catalog()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(4)
    n = 400
    table.append_arrays(
        {
            "g": rng.choice(np.array([b"a", b"b", b"c"], dtype="S1"), n),
            "v": rng.integers(0, 5, n),
            "w": rng.integers(0, 3, n),
        }
    )
    return catalog, table


def both(sql, catalog, table):
    b = bind(parse(sql), catalog)
    cols = {n: table.column_values(n) for n in b.referenced_columns}
    return run_vector(b, cols), run_volcano(b, cols)


class TestDistinct:
    def test_single_column(self, dup_catalog):
        catalog, table = dup_catalog
        vec, vol = both("SELECT DISTINCT v FROM dups", catalog, table)
        assert results_equal(vec, vol)
        assert vec.nrows == len(np.unique(table.column_values("v")))

    def test_multi_column(self, dup_catalog):
        catalog, table = dup_catalog
        vec, vol = both("SELECT DISTINCT g, v FROM dups", catalog, table)
        assert results_equal(vec, vol)
        pairs = set(zip(table.column_values("g"), table.column_values("v")))
        assert vec.nrows == len(pairs)

    def test_distinct_with_where(self, dup_catalog):
        catalog, table = dup_catalog
        vec, vol = both("SELECT DISTINCT v FROM dups WHERE v > 2", catalog, table)
        assert results_equal(vec, vol)
        assert (vec.column("v") > 2).all()

    def test_distinct_with_order_and_limit(self, dup_catalog):
        catalog, table = dup_catalog
        vec, vol = both(
            "SELECT DISTINCT v FROM dups ORDER BY v DESC LIMIT 2", catalog, table
        )
        assert results_equal(vec, vol)
        expected = sorted(np.unique(table.column_values("v")), reverse=True)[:2]
        assert vec.column("v").tolist() == expected

    def test_engines_agree_on_distinct(self, dup_catalog):
        catalog, table = dup_catalog
        sql = "SELECT DISTINCT g, w FROM dups ORDER BY g, w"
        results = [e.execute(sql).result for e in all_engines(catalog).values()]
        assert results_equal(results[0], results[1])
        assert results_equal(results[0], results[2])

    def test_distinct_charges_dedup_cost(self, dup_catalog):
        catalog, _ = dup_catalog
        engines = all_engines(catalog)
        plain = engines["row"].execute("SELECT v FROM dups").cycles
        distinct = all_engines(catalog)["row"].execute("SELECT DISTINCT v FROM dups").cycles
        assert distinct > plain


class TestHaving:
    def test_filters_groups(self, dup_catalog):
        catalog, table = dup_catalog
        sql = "SELECT v, count(*) AS n FROM dups GROUP BY v HAVING n > 70 ORDER BY v"
        vec, vol = both(sql, catalog, table)
        assert results_equal(vec, vol)
        assert (vec.column("n") > 70).all()

    def test_having_on_group_key(self, dup_catalog):
        catalog, table = dup_catalog
        sql = "SELECT v, sum(w) AS s FROM dups GROUP BY v HAVING v >= 3 ORDER BY v"
        vec, vol = both(sql, catalog, table)
        assert results_equal(vec, vol)
        assert (vec.column("v") >= 3).all()

    def test_having_conjunction(self, dup_catalog):
        catalog, table = dup_catalog
        sql = (
            "SELECT g, count(*) AS n, sum(v) AS s FROM dups GROUP BY g "
            "HAVING n > 10 AND s > 100 ORDER BY g"
        )
        vec, vol = both(sql, catalog, table)
        assert results_equal(vec, vol)

    def test_having_requires_group_by(self):
        with pytest.raises(SqlError):
            parse("SELECT v FROM dups HAVING v > 1")

    def test_having_can_empty_result(self, dup_catalog):
        catalog, table = dup_catalog
        sql = "SELECT v, count(*) AS n FROM dups GROUP BY v HAVING n > 100000"
        vec, vol = both(sql, catalog, table)
        assert vec.nrows == 0
        assert results_equal(vec, vol)

    def test_engines_agree_on_having(self, dup_catalog):
        catalog, _ = dup_catalog
        sql = "SELECT g, avg(v) AS a FROM dups GROUP BY g HAVING a > 1.5 ORDER BY g"
        results = [e.execute(sql).result for e in all_engines(catalog).values()]
        assert results_equal(results[0], results[1])
        assert results_equal(results[0], results[2])


class TestSelectStar:
    def test_expands_to_all_user_columns(self, dup_catalog):
        catalog, table = dup_catalog
        b = bind(parse("SELECT * FROM dups"), catalog)
        assert tuple(o.name for o in b.outputs) == ("g", "v", "w")

    def test_star_with_where(self, dup_catalog):
        catalog, table = dup_catalog
        vec, vol = both("SELECT * FROM dups WHERE v = 4", catalog, table)
        assert results_equal(vec, vol)
        assert vec.nrows == int((table.column_values("v") == 4).sum())

    def test_star_excludes_mvcc_columns(self, mvcc_catalog):
        catalog, table = mvcc_catalog
        table.append_row({"id": 1, "balance": 2})
        b = bind(parse("SELECT * FROM accounts"), catalog)
        assert tuple(o.name for o in b.outputs) == ("id", "balance")

    def test_plan_renders_new_nodes(self, dup_catalog):
        catalog, _ = dup_catalog
        from repro.db.plan import explain

        b = bind(
            parse("SELECT v, count(*) AS n FROM dups GROUP BY v HAVING n > 1"),
            catalog,
        )
        assert "Having" in explain(b)
        b2 = bind(parse("SELECT DISTINCT v FROM dups"), catalog)
        assert "Distinct" in explain(b2)
