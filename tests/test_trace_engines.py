"""Engines running on the event-accurate trace memory model.

The analytic model backs the benchmarks; these tests run the same
queries through engines wired to the trace model (small platform, small
data) and check that answers are identical and the cost *ordering*
matches the analytic story.
"""

import pytest

from repro.db.engines import all_engines
from repro.db.exec import results_equal
from repro.hw.config import TEST_PLATFORM
from repro.workloads.synthetic import make_wide_table, projectivity_query


@pytest.fixture(scope="module")
def setup():
    # Data far beyond the tiny test L2 (8 KB) so scans are cold.
    catalog, table = make_wide_table(nrows=4_000, seed=23)
    return catalog, table


class TestTraceEngines:
    def test_answers_match_analytic_engines(self, setup):
        catalog, _ = setup
        sql = projectivity_query(3)
        trace = all_engines(catalog, TEST_PLATFORM, memory_model="trace")
        analytic = all_engines(catalog, TEST_PLATFORM, memory_model="analytic")
        for name in trace:
            a = trace[name].execute(sql)
            b = analytic[name].execute(sql)
            assert results_equal(a.result, b.result)

    def test_rm_beats_row_under_trace_model(self, setup):
        catalog, _ = setup
        sql = projectivity_query(2)
        engines = all_engines(catalog, TEST_PLATFORM, memory_model="trace")
        row = engines["row"].execute(sql).cycles
        rm = engines["rm"].execute(sql).cycles
        assert rm < row

    def test_trace_and_analytic_costs_within_factor(self, setup):
        """The two models need not match exactly, but must agree on the
        rough magnitude for a plain covered scan."""
        catalog, _ = setup
        sql = projectivity_query(2)
        for name in ("row", "rm"):
            t = all_engines(catalog, TEST_PLATFORM, memory_model="trace")[name]
            a = all_engines(catalog, TEST_PLATFORM, memory_model="analytic")[name]
            ct, ca = t.execute(sql).cycles, a.execute(sql).cycles
            assert 0.5 < ct / ca < 2.0, (name, ct, ca)

    def test_unknown_memory_model_rejected(self, setup):
        catalog, _ = setup
        from repro.db.engines import RowStoreEngine
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            RowStoreEngine(catalog, TEST_PLATFORM, memory_model="psychic")
