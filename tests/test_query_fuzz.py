"""Query fuzzing: randomly generated SQL must produce identical answers
from the Volcano reference, the vectorized executor, and all three
engines — the strongest end-to-end consistency check in the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Catalog, Column, TableSchema
from repro.db.engines import all_engines
from repro.db.exec import results_equal, run_volcano
from repro.db.plan import bind
from repro.db.sql import parse
from repro.db.types import CHAR, INT64

N_ROWS = 300
COLUMNS = ("a", "b", "c", "d")


def build_catalog(seed: int):
    schema = TableSchema(
        "fuzz",
        [Column(name, INT64) for name in COLUMNS] + [Column("g", CHAR(1))],
    )
    catalog = Catalog()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(seed)
    table.append_arrays(
        {
            **{name: rng.integers(0, 50, N_ROWS) for name in COLUMNS},
            "g": rng.choice(np.array([b"x", b"y", b"z"], dtype="S1"), N_ROWS),
        }
    )
    return catalog, table


@st.composite
def arith_term(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(COLUMNS))
        return str(draw(st.integers(min_value=0, max_value=60)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arith_term(depth + 1))
    right = draw(arith_term(depth + 1))
    return f"({left} {op} {right})"


@st.composite
def predicates(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    terms = []
    for _ in range(n):
        kind = draw(st.sampled_from(["cmp", "between", "or"]))
        col = draw(st.sampled_from(COLUMNS))
        if kind == "cmp":
            op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]))
            terms.append(f"{col} {op} {draw(st.integers(0, 55))}")
        elif kind == "between":
            lo = draw(st.integers(0, 50))
            terms.append(f"{col} BETWEEN {lo} AND {lo + draw(st.integers(0, 20))}")
        else:
            terms.append(
                f"({col} < {draw(st.integers(0, 30))} OR "
                f"{draw(st.sampled_from(COLUMNS))} > {draw(st.integers(20, 55))})"
            )
    return " AND ".join(terms)


@st.composite
def queries(draw):
    shape = draw(st.sampled_from(["project", "agg", "group", "distinct"]))
    where = f" WHERE {draw(predicates())}" if draw(st.booleans()) else ""
    if shape == "project":
        cols = draw(
            st.lists(st.sampled_from(COLUMNS), min_size=1, max_size=3, unique=True)
        )
        order = f" ORDER BY {cols[0]} DESC, {', '.join(COLUMNS)}"
        limit = f" LIMIT {draw(st.integers(1, 40))}"
        return f"SELECT {', '.join(cols)} FROM fuzz{where}{order}{limit}"
    if shape == "agg":
        expr = draw(arith_term())
        funcs = draw(
            st.lists(
                st.sampled_from(["sum", "min", "max", "count", "avg"]),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        items = ", ".join(
            f"{f}({'*' if f == 'count' and draw(st.booleans()) else expr}) AS {f}_v"
            for f in funcs
        )
        return f"SELECT {items} FROM fuzz{where}"
    if shape == "group":
        expr = draw(arith_term())
        return (
            f"SELECT g, sum({expr}) AS s, count(*) AS n FROM fuzz{where} "
            f"GROUP BY g ORDER BY g"
        )
    cols = draw(
        st.lists(st.sampled_from(COLUMNS + ("g",)), min_size=1, max_size=2, unique=True)
    )
    return f"SELECT DISTINCT {', '.join(cols)} FROM fuzz{where}"


class TestQueryFuzz:
    @given(sql=queries(), seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_all_paths_agree(self, sql, seed):
        catalog, table = build_catalog(seed)
        bound = bind(parse(sql), catalog)
        cols = {n: table.column_values(n) for n in bound.referenced_columns}
        reference = run_volcano(bound, cols)
        for name, engine in all_engines(catalog).items():
            result = engine.execute(sql).result
            assert results_equal(result, reference), (
                sql,
                name,
                result.rows()[:4],
                reference.rows()[:4],
            )

    @given(sql=queries())
    @settings(max_examples=40, deadline=None)
    def test_rm_variants_agree(self, sql):
        from repro.db.engines import RelationalMemoryEngine

        catalog, _ = build_catalog(3)
        base = RelationalMemoryEngine(catalog).execute(sql).result
        for kwargs in (
            {"consumption": "vector"},
            {"consumption": "auto"},
            {"pushdown": True},
            {"pushdown": True, "aggregate_pushdown": True},
        ):
            variant = RelationalMemoryEngine(catalog, **kwargs).execute(sql).result
            assert results_equal(variant, base), (sql, kwargs)
