"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.cache import Cache
from repro.hw.config import CacheConfig


def small_cache(size=1024, ways=2, line=64):
    return Cache(CacheConfig(size_bytes=size, ways=ways, line_bytes=line))


class TestGeometry:
    def test_line_and_set_counts(self):
        cache = small_cache(size=1024, ways=2, line=64)
        assert cache.config.num_lines == 16
        assert cache.config.num_sets == 8

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, ways=3, line_bytes=64).validate()

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=64 * 3, ways=1, line_bytes=64).validate()

    def test_line_of_addr(self):
        cache = small_cache()
        assert cache.line_of(0) == 0
        assert cache.line_of(63) == 0
        assert cache.line_of(64) == 1
        assert cache.line_of(6400) == 100


class TestBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_bytes_hit(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(63) is True

    def test_lru_eviction_in_set(self):
        cache = small_cache(size=256, ways=2, line=64)  # 2 sets
        # Lines 0, 2, 4 map to set 0 (even lines).
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(0)  # line 0 is now MRU
        cache.access_line(4)  # evicts line 2 (LRU)
        assert cache.contains_line(0)
        assert cache.contains_line(4)
        assert not cache.contains_line(2)
        assert cache.stats.evictions == 1

    def test_pollution_counter(self):
        """A line installed and evicted untouched is pollution."""
        cache = small_cache(size=128, ways=1, line=64)  # 2 direct-mapped sets
        cache.access_line(0)
        cache.access_line(2)  # evicts line 0, never reused
        assert cache.stats.polluted_evictions == 1
        cache.access_line(4)
        assert cache.stats.polluted_evictions == 2

    def test_reused_line_not_pollution(self):
        cache = small_cache(size=128, ways=1, line=64)
        cache.access_line(0)
        cache.access_line(0)
        cache.access_line(2)  # evicts a line that was hit
        assert cache.stats.polluted_evictions == 0

    def test_flush_empties(self):
        cache = small_cache()
        for i in range(10):
            cache.access_line(i)
        assert cache.flush() == 10
        assert cache.resident_lines == 0
        assert cache.access_line(0) is False

    def test_hit_rate(self):
        cache = small_cache()
        cache.access_line(1)
        cache.access_line(1)
        cache.access_line(1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_write_marks_dirty_state_only(self):
        cache = small_cache()
        cache.access_line(3, write=True)
        assert cache.access_line(3) is True


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, lines):
        cache = small_cache(size=512, ways=2, line=64)
        for line in lines:
            cache.access_line(line)
        assert cache.resident_lines <= cache.config.num_lines

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_accesses_equal_hits_plus_misses(self, lines):
        cache = small_cache()
        for line in lines:
            cache.access_line(line)
        assert cache.stats.accesses == len(lines)
        assert cache.stats.hits + cache.stats.misses == len(lines)

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_immediate_reaccess_always_hits(self, lines):
        cache = small_cache()
        for line in lines:
            cache.access_line(line)
            assert cache.access_line(line) is True

    @given(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=100)
    )
    @settings(max_examples=40, deadline=None)
    def test_working_set_within_capacity_never_evicts(self, lines):
        """Touching at most num_lines distinct lines in one set-balanced
        range cannot evict (fully associative equivalence per set)."""
        cache = small_cache(size=1024, ways=2, line=64)  # 16 lines, 8 sets
        for line in lines:  # lines 0..15 spread one per way across sets
            cache.access_line(line)
        assert cache.stats.evictions == 0
