"""Simulated-time metrics: instruments, the sampler grid, collectors,
exporters, and the disabled fast path."""

import json

import numpy as np
import pytest

from repro.db.engines import RowStoreEngine
from repro.errors import ExecutionError
from repro.hw.config import TEST_PLATFORM
from repro.hw.hierarchy import MemoryHierarchy
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Sampler,
    active_metrics,
    fmt_name,
)
from repro.workloads.htap import HtapDriver
from repro.workloads.tpch import Q6, generate_lineitem


# ----------------------------------------------------------------------
# Instruments.
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5.0
        with pytest.raises(ExecutionError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_instrument_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ExecutionError):
            reg.gauge("x")  # same name, different type

    def test_fmt_name_sorts_labels(self):
        assert fmt_name("m", b=2, a=1) == fmt_name("m", a=1, b=2)
        assert fmt_name("m", bank=3) == 'm{bank="3"}'
        assert fmt_name("m") == "m"


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in (0.5, 3.0, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 106.5
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)

    def test_negative_observation_raises(self):
        with pytest.raises(ExecutionError):
            Histogram("h").observe(-1.0)

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").p99 == 0.0

    @pytest.mark.parametrize("base", [2.0, 1.25])
    @pytest.mark.parametrize("q", [50, 95, 99])
    def test_percentiles_vs_brute_force_oracle(self, base, q):
        """The log-bucketed estimate stays within one bucket width (a
        factor of ``base``) of the exact numpy percentile."""
        rng = np.random.default_rng(11)
        values = rng.lognormal(mean=4.0, sigma=2.0, size=4000)
        h = Histogram("h", base=base)
        for v in values:
            h.observe(float(v))
        oracle = float(np.percentile(values, q))
        est = h.percentile(q)
        assert oracle / base * 0.999 <= est <= oracle * base * 1.001, (
            f"p{q}: est {est:g} vs oracle {oracle:g} (base {base})"
        )

    def test_order_independent_buckets(self):
        rng = np.random.default_rng(5)
        values = [float(v) for v in rng.uniform(0.1, 500.0, size=300)]
        a, b = Histogram("a"), Histogram("b")
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.bounds == b.bounds
        assert a.counts == b.counts
        assert a.p95 == b.p95


# ----------------------------------------------------------------------
# The simulated clock and sampler grid.
# ----------------------------------------------------------------------
class TestSampler:
    def test_ticks_land_on_the_grid(self):
        reg = MetricsRegistry()
        reg.attach_sampler(interval_cycles=100)
        reg.counter("c").inc()
        for _ in range(7):
            reg.advance(60)  # 420 crosses grid points 100..400
        assert reg.sampler.series.ticks == [100.0, 200.0, 300.0, 400.0]

    def test_grid_independent_of_charge_granularity(self):
        """Same total cycles through different charge sequences sample at
        identical timestamps with identical values."""

        def run(steps):
            reg = MetricsRegistry()
            reg.attach_sampler(interval_cycles=50)
            c = reg.counter("c")
            for s in steps:
                c.inc()
                reg.advance(s)
            return reg.sampler.series.ticks

        assert run([10] * 30) == run([150, 150]) == run([299, 1])

    def test_big_jump_emits_every_crossed_tick(self):
        reg = MetricsRegistry()
        reg.attach_sampler(interval_cycles=10)
        reg.advance(35)
        assert reg.sampler.series.ticks == [10.0, 20.0, 30.0]

    def test_bad_interval_raises(self):
        with pytest.raises(ExecutionError):
            Sampler(MetricsRegistry(), interval_cycles=0)

    def test_late_series_backfills_none(self):
        reg = MetricsRegistry()
        sampler = reg.attach_sampler(interval_cycles=10)
        reg.advance(10)
        reg.counter("late").inc(3)
        reg.advance(10)
        assert sampler.series.series["late"] == [None, 3.0]


# ----------------------------------------------------------------------
# Exporters.
# ----------------------------------------------------------------------
class TestExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("reqs", help="requests served").inc(7)
        reg.counter('reqs{engine="rm"}').inc(2)
        reg.gauge("depth").set(3)
        h = reg.histogram("lat", help="latency")
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        reg.register_collector(lambda: {"ext_value": 42.0})
        return reg

    def test_prometheus_exposition(self):
        text = self._registry().to_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 7" in text
        assert 'reqs_total{engine="rm"} 2' in text
        # HELP/TYPE declared once even with two labeled children.
        assert text.count("# TYPE reqs_total counter") == 1
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 12" in text
        assert "lat_count 3" in text
        assert "ext_value 42" in text
        assert "sim_cycles 0" in text

    def test_histogram_buckets_are_cumulative(self):
        text = self._registry().to_prometheus()
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_collect_expands_histograms(self):
        snap = self._registry().collect()
        assert snap["lat_count"] == 3.0
        assert snap["lat_sum"] == 12.0
        assert "lat_p50" in snap and "lat_p99" in snap
        assert snap["reqs"] == 7.0
        assert snap["ext_value"] == 42.0

    def test_time_series_json_schema(self):
        reg = self._registry()
        sampler = reg.attach_sampler(interval_cycles=5)
        reg.advance(11)
        doc = json.loads(sampler.series.to_json())
        assert doc["schema"] == "repro.metrics/v1"
        assert doc["ticks"] == [5.0, 10.0]
        assert all(len(col) == 2 for col in doc["series"].values())


# ----------------------------------------------------------------------
# The disabled fast path (mirrors the tracer's TestNullPath).
# ----------------------------------------------------------------------
class TestNullPath:
    def test_active_metrics_predicate(self):
        assert active_metrics(None) is None
        assert active_metrics(MetricsRegistry(enabled=False)) is None
        reg = MetricsRegistry()
        assert active_metrics(reg) is reg

    def test_engine_without_metrics_has_none(self):
        catalog, _ = generate_lineitem(nrows=500, seed=7)
        res = RowStoreEngine(catalog).execute(Q6)
        assert res.metrics is None

    def test_engine_with_metrics_advances_the_clock(self):
        catalog, _ = generate_lineitem(nrows=500, seed=7)
        reg = MetricsRegistry()
        res = RowStoreEngine(catalog, metrics=reg).execute(Q6)
        assert res.metrics is reg
        assert reg.cycles == pytest.approx(res.cycles)
        snap = reg.collect()
        assert snap['engine_rows_scanned{engine="row"}'] == 500.0
        assert snap['engine_queries{engine="row"}'] == 1.0

    def test_disabled_metrics_overhead_below_five_percent(self):
        """A disabled registry on the trace-mode Q6 hot path costs <5%
        versus no registry at all (min-of-trials to suppress CI noise)."""
        import time as _time

        catalog, _ = generate_lineitem(nrows=1_000, seed=7)
        baseline = RowStoreEngine(catalog, memory_model="trace")
        gated = RowStoreEngine(
            catalog, memory_model="trace",
            metrics=MetricsRegistry(enabled=False),
        )

        def _trial(engine):
            t0 = _time.perf_counter()
            engine.execute(Q6)
            return _time.perf_counter() - t0

        _trial(baseline), _trial(gated)  # warm-up
        # Interleave the trials so machine-load drift hits both arms,
        # and give a noisy round a second chance: a real hot-path cost
        # reproduces across rounds, scheduler jitter does not.
        for _round in range(3):
            pairs = [(_trial(baseline), _trial(gated)) for _ in range(7)]
            base = min(b for b, _ in pairs)
            noop = min(n for _, n in pairs)
            if noop < base * 1.05:
                return
        assert noop < base * 1.05, f"no-op metrics overhead {noop / base - 1:.1%}"


# ----------------------------------------------------------------------
# Collectors over real layers.
# ----------------------------------------------------------------------
class TestCollectors:
    def test_per_bank_dram_counters_scalar_vs_batch(self):
        """The per-bank row-hit/line counters added for the DRAM
        collector agree bit-for-bit between the scalar and batch paths."""
        rng = np.random.default_rng(3)
        batches = []
        for _ in range(10):
            start = int(rng.integers(0, 2048))
            batches.append(np.arange(start, start + 64, dtype=np.int64))
            batches.append(rng.integers(0, 4096, size=50).astype(np.int64))

        def bank_state(batched):
            h = MemoryHierarchy(TEST_PLATFORM)
            for lines in batches:
                if batched:
                    h.access_lines_batch(lines, stride_hint=64)
                else:
                    h.access_lines([int(x) for x in lines], stride_hint=64)
            d = h.dram
            return (d.bank_row_hits, d.bank_row_misses, d.bank_lines)

        assert bank_state(False) == bank_state(True)

    def test_hierarchy_collector_names(self):
        from repro.obs.collectors import register_hierarchy

        reg = MetricsRegistry()
        h = MemoryHierarchy(TEST_PLATFORM)
        register_hierarchy(reg, h)
        h.access_lines(list(range(256)), stride_hint=64)
        snap = reg.collect()
        assert snap["hw_l1_misses"] > 0
        assert 0.0 <= snap["hw_l1_occupancy_frac"] <= 1.0
        assert 0.0 <= snap["hw_prefetch_accuracy"] <= 1.0
        banks = h.dram.config.banks
        # Bank-attributed hits are a subset of all row hits: the stream
        # and gather kernels model no bank routing (documented in dram.py).
        bank_hits = sum(
            snap[f'hw_dram_bank_row_hits{{bank="{b}"}}'] for b in range(banks)
        )
        assert 0 <= bank_hits <= snap["hw_dram_row_hits"]
        # Queue-depth proxies are load relative to the mean, so they
        # average exactly 1.0 whenever any bank saw demand traffic.
        depths = [
            snap[f'hw_dram_bank_queue_depth{{bank="{b}"}}'] for b in range(banks)
        ]
        assert sum(depths) == pytest.approx(banks)

    def test_wal_and_mvcc_metrics_via_manager(self):
        from repro.db.mvcc import TransactionManager
        from repro.db.schema import Column, TableSchema
        from repro.db.table import Table
        from repro.db.types import INT64
        from repro.db.wal import WriteAheadLog

        reg = MetricsRegistry()
        wal = WriteAheadLog()
        mgr = TransactionManager(wal=wal, metrics=reg)
        table = Table(TableSchema("t", [Column("k", INT64)], mvcc=True))
        txn = mgr.begin()
        for k in range(10):
            txn.insert(table, {"k": k})
        mgr.commit(txn)
        snap = reg.collect()
        assert snap["mvcc_committed"] == 1.0
        assert snap["wal_records"] > 0
        assert snap["wal_durable_bytes"] > 0
        assert snap["mvcc_txn_intents_count"] == 1.0
        assert snap["mvcc_txn_intents_p50"] == pytest.approx(10.0, rel=1.0)


# ----------------------------------------------------------------------
# End to end: the HTAP run is deterministic under the same seed.
# ----------------------------------------------------------------------
class TestHtapSeries:
    def _series_json(self):
        reg = MetricsRegistry()
        sampler = reg.attach_sampler(interval_cycles=50_000)
        driver = HtapDriver(initial_rows=500, seed=7, metrics=reg)
        driver.run_mixed(rounds=2, txns_per_round=20)
        sampler.sample_now()
        return sampler.series.to_json()

    def test_same_seed_bit_identical_series(self):
        first = self._series_json()
        second = self._series_json()
        assert first == second
        doc = json.loads(first)
        assert len(doc["ticks"]) > 2
        assert "mvcc_committed" in doc["series"]
        assert any(k.startswith("engine_rows_scanned") for k in doc["series"])
        assert any(k.startswith("mvcc_chain_len") for k in doc["series"])

    def test_series_is_rectangular_and_finite(self):
        doc = json.loads(self._series_json())
        n = len(doc["ticks"])
        for name, col in doc["series"].items():
            assert len(col) == n, name
            for v in col:
                assert v is None or np.isfinite(v), (name, v)
