"""The flight recorder: ring semantics, the disabled fast path, the
``journal/v1`` dump format, and the black-box triggers.

Two acceptance bars live here: the disabled recorder costs < 5% on the
serving hot path (the always-on promise is only honest if *off* is
free), and a forced chaos-grade failure — a
:class:`~repro.errors.PartialResultError` escaping the coordinator —
produces a dump the schema checker accepts.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import overload_config, overload_specs
from repro.db.sharding import ShardedTable
from repro.dist import DistConfig, ShardCluster
from repro.errors import PartialResultError
from repro.faults import SHARD_CRASH
from repro.obs import FlightRecorder, active_journal
from repro.obs.journal import (
    EV_PARTIAL_RESULT,
    EV_SHARD_KILL,
    EV_SHARD_RESTART,
    JOURNAL_SCHEMA,
)
from repro.serve import ServeScheduler, submit_open_loop, synthetic_executor
from repro.workloads.htap import orders_schema

from tests.test_distctx import ORDERS_PLAN, durable_cluster

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Ring mechanics.
# ----------------------------------------------------------------------
class TestRing:
    def test_eviction_keeps_monotone_totals(self):
        j = FlightRecorder(capacity=4)
        for i in range(10):
            j.record("fault.fired", site=f"s{i}")
        assert len(j) == 4
        assert j.dropped == 6
        assert j.events_total == 10
        assert j.counts == {"fault.fired": 10}
        seqs = [e.seq for e in j.events()]
        assert seqs == [7, 8, 9, 10]  # oldest evicted, seq survives

    def test_clear_empties_ring_not_totals(self):
        j = FlightRecorder()
        j.record("breaker.open")
        j.clear()
        assert len(j) == 0
        assert j.events_total == 1
        assert j.counts == {"breaker.open": 1}

    def test_clock_stamps_and_explicit_cycles_win(self):
        now = [42.0]
        j = FlightRecorder(clock=lambda: now[0])
        j.record("a")
        now[0] = 99.0
        j.record("b")
        j.record("c", cycles=7.0)
        cycles = [e.cycles for e in j.events()]
        assert cycles == [42.0, 99.0, 7.0]

    def test_tail_returns_newest(self):
        j = FlightRecorder()
        for i in range(5):
            j.record("k", i=i)
        assert [e.attrs["i"] for e in j.tail(2)] == [3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_disabled_recorder_is_inert_and_folds_to_none(self):
        j = FlightRecorder(enabled=False)
        j.record("anything")
        assert len(j) == 0 and j.events_total == 0
        assert active_journal(j) is None
        assert active_journal(None) is None
        live = FlightRecorder()
        assert active_journal(live) is live


# ----------------------------------------------------------------------
# The journal/v1 dump.
# ----------------------------------------------------------------------
class TestDump:
    def test_to_dict_layout(self):
        j = FlightRecorder(capacity=8)
        j.record("wal.checkpoint", nbytes=100)
        doc = j.to_dict(reason="unit test")
        assert doc["schema"] == JOURNAL_SCHEMA == "journal/v1"
        assert doc["capacity"] == 8
        assert doc["reason"] == "unit test"
        assert doc["events"][0]["kind"] == "wal.checkpoint"
        assert doc["events"][0]["attrs"] == {"nbytes": 100}

    def test_dump_roundtrips_through_json(self, tmp_path):
        j = FlightRecorder()
        j.record("shard.kill", shard=np.int64(3))
        # Attrs may carry arbitrary objects: the serializer falls back
        # to repr rather than refusing the dump.
        j.record("sql.error", error=ValueError("boom"))
        path = j.dump(str(tmp_path / "j.json"), reason="forced")
        assert j.last_dump_path == path
        doc = json.loads(Path(path).read_text())
        assert doc["schema"] == "journal/v1"
        assert "boom" in doc["events"][1]["attrs"]["error"]

    def test_auto_dump_requires_configured_path(self, tmp_path):
        j = FlightRecorder()
        j.record("x")
        assert j.auto_dump("no path") is None
        j.auto_dump_path = str(tmp_path / "auto.json")
        assert j.auto_dump("now") == j.auto_dump_path
        assert json.loads(Path(j.auto_dump_path).read_text())["reason"] == "now"


# ----------------------------------------------------------------------
# Black-box triggers: decision sites land events; an escaping partial
# result dumps the ring (the acceptance-criterion artifact).
# ----------------------------------------------------------------------
class TestTriggers:
    def test_kill_restart_and_partial_escape_dump(self, tmp_path):
        dump_path = tmp_path / "flight.json"
        recorder = FlightRecorder(auto_dump_path=str(dump_path))
        config = DistConfig(
            inline=True,
            deadline_s=0.5,
            retries=1,
            fault_rates={SHARD_CRASH: 1.0},
            fault_shards=frozenset({3}),
        )
        cluster = ShardCluster(
            ShardedTable(orders_schema(), "o_id", [100, 200, 300]),
            config,
            durable=True,
            journal=recorder,
        )
        cluster.start()
        rng = np.random.default_rng(5)
        for _ in range(60):
            cluster.insert(
                {
                    "o_id": int(rng.integers(0, 400)),
                    "o_customer": int(rng.integers(1, 50)),
                    "o_amount": 10.0,
                    "o_status": int(rng.integers(0, 3)),
                }
            )
        try:
            with pytest.raises(PartialResultError):
                cluster.query(ORDERS_PLAN)
        finally:
            cluster.close()
        # The ring saw the whole incident...
        assert recorder.counts.get(EV_SHARD_RESTART, 0) >= 1
        assert recorder.counts.get(EV_PARTIAL_RESULT, 0) == 1
        # ...and the escape auto-dumped it.
        assert dump_path.exists()
        doc = json.loads(dump_path.read_text())
        assert doc["schema"] == "journal/v1"
        assert "PartialResultError" in doc["reason"]
        # The CI schema checker accepts the artifact.
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts/check_trace_schema.py"),
             str(dump_path)],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_kill_shard_records_event(self):
        recorder = FlightRecorder()
        cluster = durable_cluster()
        cluster.journal = active_journal(recorder)
        try:
            cluster.kill_shard(2)
            cluster.query(ORDERS_PLAN)
        finally:
            cluster.close()
        kinds = [e.kind for e in recorder.events()]
        assert EV_SHARD_KILL in kinds and EV_SHARD_RESTART in kinds
        kill = next(e for e in recorder.events() if e.kind == EV_SHARD_KILL)
        assert kill.attrs == {"shard": 2, "incarnation": 0}


# ----------------------------------------------------------------------
# The always-on promise: disabled journal + objective-free SLO monitor
# cost < 5% on the serving hot path.
# ----------------------------------------------------------------------
class TestDisabledOverhead:
    def test_disabled_path_overhead_below_five_percent(self):
        import time as _time

        from repro.obs import SloMonitor

        specs = [
            s for s in overload_specs() if s.tenant_id != "analytics"
        ]

        def _trial(journal, slo):
            config = overload_config()
            scheduler = ServeScheduler(
                config, synthetic_executor(seed=11), journal=journal, slo=slo
            )
            t0 = _time.perf_counter()
            submit_open_loop(scheduler, specs, 2_000_000.0, seed=11)
            scheduler.run_until_drained()
            return _time.perf_counter() - t0

        def _base():
            return _trial(None, None)

        def _gated():
            # A disabled recorder plus a monitor with no objectives: the
            # full instrumented path, with every gate closed.
            return _trial(FlightRecorder(enabled=False), SloMonitor([]))

        _base(), _gated()  # warm-up
        # Interleave and take min-of-trials; retry noisy rounds (same
        # discipline as the no-op tracer overhead test).
        for _round in range(3):
            pairs = [(_base(), _gated()) for _ in range(7)]
            base = min(b for b, _ in pairs)
            noop = min(n for _, n in pairs)
            if noop < base * 1.05:
                return
        assert noop < base * 1.05, (
            f"disabled journal+slo overhead {noop / base - 1:.1%}"
        )
