"""Tests for expression trees: both evaluators, op counting, conjuncts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Literal,
    Not,
    Or,
    conjuncts,
    op_count,
)
from repro.errors import ExecutionError

X = ColumnRef("x")
Y = ColumnRef("y")


class TestEvaluation:
    def test_arith_row(self):
        expr = BinOp("+", X, BinOp("*", Y, Literal(2)))
        assert expr.eval_row({"x": 1, "y": 10}) == 21

    def test_compare_row(self):
        assert Compare("<", X, Literal(5)).eval_row({"x": 3}) is True
        assert Compare(">=", X, Literal(5)).eval_row({"x": 3}) is False

    def test_and_or_not(self):
        expr = And(
            terms=(
                Compare(">", X, Literal(0)),
                Or(terms=(Compare("<", Y, Literal(5)), Not(Compare("=", X, Literal(3))))),
            )
        )
        assert expr.eval_row({"x": 1, "y": 9}) is True
        assert expr.eval_row({"x": 3, "y": 9}) is False

    def test_between_inclusive(self):
        expr = Between(X, Literal(2), Literal(4))
        assert expr.eval_row({"x": 2}) and expr.eval_row({"x": 4})
        assert not expr.eval_row({"x": 5})

    def test_vector_matches_row(self):
        expr = And(
            terms=(
                Compare(">", X, Literal(2)),
                Compare("<", BinOp("+", X, Y), Literal(10)),
            )
        )
        xs = np.array([1, 3, 5, 7])
        ys = np.array([2, 2, 2, 2])
        vec = expr.eval_vector({"x": xs, "y": ys})
        rows = [expr.eval_row({"x": int(x), "y": int(y)}) for x, y in zip(xs, ys)]
        assert vec.tolist() == rows

    def test_missing_column_raises(self):
        with pytest.raises(ExecutionError):
            X.eval_row({"y": 1})
        with pytest.raises(ExecutionError):
            X.eval_vector({"y": np.array([1])})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExecutionError):
            BinOp("%", X, Y)
        with pytest.raises(ExecutionError):
            Compare("~", X, Y)


class TestIntrospection:
    def test_columns(self):
        expr = And(terms=(Compare("<", X, Literal(1)), Compare("<", Y, X)))
        assert expr.columns() == frozenset({"x", "y"})

    def test_op_count(self):
        assert op_count(X) == 0
        assert op_count(Literal(3)) == 0
        assert op_count(BinOp("+", X, Y)) == 1
        assert op_count(Compare("<", BinOp("+", X, Y), Literal(1))) == 2
        assert op_count(Between(X, Literal(1), Literal(2))) == 2
        assert (
            op_count(And(terms=(Compare("<", X, Literal(1)),) * 3)) == 3 + 2
        )

    def test_conjuncts_flatten_nested_and(self):
        a = Compare("<", X, Literal(1))
        b = Compare(">", Y, Literal(2))
        c = Compare("=", X, Y)
        expr = And(terms=(a, And(terms=(b, c))))
        assert conjuncts(expr) == (a, b, c)

    def test_conjuncts_of_non_and(self):
        a = Or(terms=(Compare("<", X, Literal(1)), Compare(">", X, Literal(9))))
        assert conjuncts(a) == (a,)

    def test_str_rendering(self):
        expr = Compare("<", BinOp("*", X, Literal(2)), Y)
        assert str(expr) == "((x * 2) < y)"


@st.composite
def arith_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from([X, Y]))
        return Literal(draw(st.integers(min_value=-100, max_value=100)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinOp(op, draw(arith_exprs(depth + 1)), draw(arith_exprs(depth + 1)))


class TestProperties:
    @given(
        arith_exprs(),
        st.lists(
            st.tuples(
                st.integers(min_value=-1000, max_value=1000),
                st.integers(min_value=-1000, max_value=1000),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_row_and_vector_evaluators_agree(self, expr, points):
        xs = np.array([p[0] for p in points], dtype=np.int64)
        ys = np.array([p[1] for p in points], dtype=np.int64)
        vec = expr.eval_vector({"x": xs, "y": ys})
        if np.isscalar(vec):
            vec = np.full(len(points), vec)
        for i, (x, y) in enumerate(points):
            assert expr.eval_row({"x": x, "y": y}) == vec[i]
