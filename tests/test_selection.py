"""Tests for fabric-pushed selection and aggregation units."""

import numpy as np
import pytest

from repro.core.geometry import DataGeometry, FieldSlice
from repro.core.selection import (
    CompareOp,
    FabricAggregate,
    FabricFilter,
    FabricPredicate,
)
from repro.errors import GeometryError

GEO = DataGeometry(
    row_stride=16,
    fields=(FieldSlice("x", 0, 8, "<i8"), FieldSlice("tag", 8, 4)),
)


def frame_with_x(values):
    values = np.asarray(values, dtype="<i8")
    frame = np.zeros((len(values), 16), dtype=np.uint8)
    frame[:, 0:8] = values.view(np.uint8).reshape(-1, 8)
    return frame


class TestCompareOp:
    @pytest.mark.parametrize(
        "op,expected",
        [
            (CompareOp.LT, [True, False, False]),
            (CompareOp.LE, [True, True, False]),
            (CompareOp.GT, [False, False, True]),
            (CompareOp.GE, [False, True, True]),
            (CompareOp.EQ, [False, True, False]),
            (CompareOp.NE, [True, False, True]),
        ],
    )
    def test_all_ops(self, op, expected):
        values = np.array([1, 5, 9])
        assert op.apply(values, 5).tolist() == expected


class TestPredicateAndFilter:
    def test_predicate_evaluates_on_frame(self):
        frame = frame_with_x([1, 10, 100])
        pred = FabricPredicate("x", CompareOp.GT, 5)
        assert pred.evaluate(frame, GEO).tolist() == [False, True, True]

    def test_predicate_on_opaque_field_rejected(self):
        frame = frame_with_x([1])
        with pytest.raises(GeometryError):
            FabricPredicate("tag", CompareOp.EQ, 0).evaluate(frame, GEO)

    def test_filter_conjunction(self):
        frame = frame_with_x([1, 5, 10, 50])
        flt = FabricFilter.of(
            FabricPredicate("x", CompareOp.GE, 5),
            FabricPredicate("x", CompareOp.LT, 50),
        )
        assert flt.evaluate(frame, GEO).tolist() == [False, True, True, False]

    def test_filter_len_and_fields(self):
        flt = FabricFilter.of(
            FabricPredicate("x", CompareOp.GE, 5),
            FabricPredicate("x", CompareOp.LT, 50),
        )
        assert len(flt) == 2
        assert flt.fields() == ("x", "x")

    def test_empty_filter_passes_all(self):
        flt = FabricFilter.of()
        assert flt.evaluate(frame_with_x([1, 2]), GEO).all()


class TestAggregates:
    def test_sum_min_max_count(self):
        frame = frame_with_x([3, 1, 4, 1, 5])
        assert FabricAggregate("x", "sum").evaluate(frame, GEO) == 14
        assert FabricAggregate("x", "min").evaluate(frame, GEO) == 1
        assert FabricAggregate("x", "max").evaluate(frame, GEO) == 5
        assert FabricAggregate("x", "count").evaluate(frame, GEO) == 5

    def test_masked_aggregate(self):
        frame = frame_with_x([3, 1, 4, 1, 5])
        mask = np.array([True, False, True, False, False])
        assert FabricAggregate("x", "sum").evaluate(frame, GEO, mask=mask) == 7
        assert FabricAggregate("x", "count").evaluate(frame, GEO, mask=mask) == 2

    def test_empty_input(self):
        frame = frame_with_x([])
        assert FabricAggregate("x", "sum").evaluate(frame, GEO) == 0
        assert FabricAggregate("x", "min").evaluate(frame, GEO) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(GeometryError):
            FabricAggregate("x", "median")
