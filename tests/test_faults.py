"""Fault injection, retry/breaker policies, and graceful degradation.

The transparency contract under test: a query through the RM engine with
injected fabric faults returns *identical* results to the rowstore
engine over the same base data, with the ledger pricing the detour —
no silent wrong answers, no unhandled exceptions.
"""

import numpy as np
import pytest

from repro import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    RelationalMemoryEngine,
    RetryPolicy,
    RowStoreEngine,
    TransactionManager,
    run_transaction,
)
from repro.core.ledger import CostLedger
from repro.db import Column, Table, TableSchema
from repro.db.types import INT64
from repro.errors import (
    ConfigurationError,
    DeviceTimeoutError,
    FabricFaultError,
    FaultError,
    FlashReadError,
    ReproError,
    StorageError,
    WriteConflictError,
)
from repro.faults import (
    DEVICE_TIMEOUT,
    FABRIC_CONFIGURE,
    FABRIC_SITES,
    FLASH_READ,
    STORAGE_ENGINE,
)
from repro.hw.config import default_platform
from repro.hw.engine import RelationalMemoryEngineModel
from repro.storage import ColumnArchive, FlashDevice, TieredFabric
from repro.workloads.tpch import Q6, generate_lineitem


@pytest.fixture(scope="module")
def lineitem():
    return generate_lineitem(4_000)


# ----------------------------------------------------------------------
# Error taxonomy.
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_fault_errors_are_repro_errors(self):
        for exc in (FabricFaultError, DeviceTimeoutError, FlashReadError):
            assert issubclass(exc, FaultError)
            assert issubclass(exc, ReproError)

    def test_flash_read_is_also_storage_error(self):
        assert issubclass(FlashReadError, StorageError)


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector.
# ----------------------------------------------------------------------
class TestInjector:
    def test_same_seed_identical_schedule(self):
        def schedule(seed):
            inj = FaultInjector(FaultPlan.uniform(0.3, seed=seed))
            out = []
            for _ in range(50):
                for site in FABRIC_SITES:
                    out.append(inj.should_fault(site))
            return out

        assert schedule(42) == schedule(42)
        assert schedule(42) != schedule(43)

    def test_zero_rate_never_fires(self):
        inj = FaultInjector(FaultPlan.uniform(0.0))
        assert not any(inj.should_fault(FABRIC_CONFIGURE) for _ in range(200))
        assert inj.total_fired == 0
        assert inj.checks[FABRIC_CONFIGURE] == 200

    def test_rate_one_always_fires(self):
        inj = FaultInjector(FaultPlan(rates={FLASH_READ: 1.0}))
        assert all(inj.should_fault(FLASH_READ) for _ in range(10))
        # Other sites stay silent.
        assert not inj.should_fault(DEVICE_TIMEOUT)

    def test_max_faults_budget(self):
        inj = FaultInjector(FaultPlan(rates={FLASH_READ: 1.0}, max_faults=2))
        fired = [inj.should_fault(FLASH_READ) for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_check_raises_mapped_error(self):
        inj = FaultInjector(FaultPlan(rates={FLASH_READ: 1.0}))
        with pytest.raises(FlashReadError):
            inj.check(FLASH_READ)
        inj2 = FaultInjector(FaultPlan(rates={STORAGE_ENGINE: 1.0}))
        with pytest.raises(DeviceTimeoutError):
            inj2.check(STORAGE_ENGINE)

    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(rates={"no.such.site": 0.5})
        with pytest.raises(ConfigurationError):
            FaultPlan(rates={FLASH_READ: 1.5})
        with pytest.raises(ConfigurationError):
            FaultPlan(max_faults=-1)
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultPlan()).should_fault("bogus")


# ----------------------------------------------------------------------
# RetryPolicy.
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_bounded_jitter(self):
        policy = RetryPolicy(base=100.0, multiplier=2.0, cap=1600.0, jitter=0.25, seed=9)
        for attempt in range(12):
            raw = min(100.0 * 2.0**attempt, 1600.0)
            delay = policy.backoff(attempt)
            assert raw <= delay <= raw * 1.25

    def test_no_jitter_is_deterministic_exponential(self):
        policy = RetryPolicy(base=10.0, multiplier=3.0, cap=1e9, jitter=0.0)
        assert [policy.backoff(a) for a in range(4)] == [10.0, 30.0, 90.0, 270.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)


# ----------------------------------------------------------------------
# CircuitBreaker.
# ----------------------------------------------------------------------
class TestBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3, cooldown=2)
        b.record_failure()
        b.record_failure()
        assert b.state is BreakerState.CLOSED
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.times_opened == 1

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state is BreakerState.CLOSED

    def test_open_denies_then_half_opens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=3)
        b.record_failure()
        assert b.state is BreakerState.OPEN
        denied = [b.allow() for _ in range(3)]
        assert denied == [False, False, False]
        assert b.state is BreakerState.HALF_OPEN
        assert b.allow()  # the recovery trial

    def test_half_open_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=1)
        b.record_failure()
        b.allow()
        assert b.state is BreakerState.HALF_OPEN
        b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=1)
        b.record_failure()
        b.allow()
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.times_opened == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=0)


# ----------------------------------------------------------------------
# Engine-model validation (the satellite bugfix).
# ----------------------------------------------------------------------
class TestTransformValidation:
    def make(self):
        return RelationalMemoryEngineModel(default_platform())

    def test_qualifying_rows_beyond_nrows_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().transform(
                nrows=10, row_stride=64, out_bytes_per_row=16, qualifying_rows=11
            )

    def test_negative_qualifying_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().transform(
                nrows=10, row_stride=64, out_bytes_per_row=16, qualifying_rows=-1
            )

    def test_negative_nrows_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().transform(nrows=-5, row_stride=64, out_bytes_per_row=16)

    def test_boundary_values_accepted(self):
        r = self.make().transform(
            nrows=10, row_stride=64, out_bytes_per_row=16, qualifying_rows=10
        )
        assert r.out_bytes == 160
        r0 = self.make().transform(
            nrows=10, row_stride=64, out_bytes_per_row=16, qualifying_rows=0
        )
        assert r0.out_bytes == 0


# ----------------------------------------------------------------------
# Graceful degradation: RM faults → rowstore answers, ledger shows it.
# ----------------------------------------------------------------------
class TestDegradedExecution:
    def test_hard_fault_falls_back_byte_identical(self, lineitem):
        catalog, _ = lineitem
        ref = RowStoreEngine(catalog).execute(Q6)
        rm = RelationalMemoryEngine(
            catalog, fault_injector=FaultInjector(FaultPlan.uniform(1.0, seed=5))
        )
        res = rm.execute(Q6)
        assert res.degraded
        assert res.engine == "rm"
        assert rm.fallbacks == 1
        assert rm.access_path == "degraded-rowstore-scan"
        assert res.ledger.get(CostLedger.DEGRADED) > 0
        assert "degraded" in res.plan
        assert res.result.names == ref.result.names
        for name in ref.result.names:
            a, b = ref.result.columns[name], res.result.columns[name]
            assert a.tobytes() == b.tobytes()

    def test_transient_fault_retries_then_succeeds(self, lineitem):
        catalog, _ = lineitem
        # Two faults then a healthy fabric: the retry budget absorbs them.
        inj = FaultInjector(FaultPlan.uniform(1.0, seed=2, max_faults=2))
        rm = RelationalMemoryEngine(
            catalog,
            fault_injector=inj,
            breaker=CircuitBreaker(failure_threshold=10),
        )
        res = rm.execute(Q6)
        assert not res.degraded
        assert rm.fallbacks == 0
        assert rm.faults_seen == 2
        assert res.ledger.get(CostLedger.RETRY) > 0
        clean = RelationalMemoryEngine(catalog).execute(Q6)
        assert res.result.columns["revenue"][0] == clean.result.columns["revenue"][0]
        # The retry penalty makes the faulted run strictly more expensive.
        assert res.cycles > clean.cycles

    def test_breaker_short_circuits_after_sustained_faults(self, lineitem):
        catalog, _ = lineitem
        inj = FaultInjector(FaultPlan.uniform(1.0, seed=1))
        rm = RelationalMemoryEngine(
            catalog,
            fault_injector=inj,
            retry_policy=RetryPolicy(retries=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=100),
        )
        rm.execute(Q6)  # trips the breaker (2 consecutive failures)
        assert rm.breaker.state is BreakerState.OPEN
        checks_before = dict(inj.checks)
        res = rm.execute(Q6)  # breaker open: no fabric attempt at all
        assert res.degraded
        assert inj.checks == checks_before
        assert res.ledger.get(CostLedger.DEGRADED) > 0

    def test_fallback_disabled_raises(self, lineitem):
        catalog, _ = lineitem
        rm = RelationalMemoryEngine(
            catalog,
            fault_injector=FaultInjector(FaultPlan.uniform(1.0, seed=4)),
            fallback=False,
        )
        with pytest.raises(FaultError):
            rm.execute(Q6)

    def test_aggregate_pushdown_path_also_degrades(self, lineitem):
        catalog, _ = lineitem
        ref = RowStoreEngine(catalog).execute(Q6)
        rm = RelationalMemoryEngine(
            catalog,
            pushdown=True,
            aggregate_pushdown=True,
            fault_injector=FaultInjector(FaultPlan.uniform(1.0, seed=8)),
        )
        res = rm.execute(Q6)
        assert res.degraded
        assert res.result.columns["revenue"][0] == ref.result.columns["revenue"][0]

    def test_clean_engine_untouched_by_machinery(self, lineitem):
        catalog, _ = lineitem
        res = RelationalMemoryEngine(catalog).execute(Q6)
        assert not res.degraded
        assert res.ledger.get(CostLedger.RETRY) == 0
        assert res.ledger.get(CostLedger.DEGRADED) == 0


# ----------------------------------------------------------------------
# Storage tier: flash retries and host-decompress degradation.
# ----------------------------------------------------------------------
class TestTieredDegradation:
    def make_archive(self, nrows=2_000):
        _, table = generate_lineitem(nrows)
        return table, ColumnArchive.from_table(table)

    def test_flash_read_retries_then_succeeds(self):
        table, archive = self.make_archive()
        flash = FlashDevice(
            fault_injector=FaultInjector(
                FaultPlan(rates={FLASH_READ: 1.0}, max_faults=2)
            )
        )
        fabric = TieredFabric(archive, flash=flash)
        warm, report = fabric.materialize_rows()
        assert report.retries == 2
        assert report.retry_us > 0
        assert not report.degraded
        assert report.total_us > report.device_us

    def test_flash_read_exhausts_budget_and_raises(self):
        _, archive = self.make_archive()
        flash = FlashDevice(
            fault_injector=FaultInjector(FaultPlan(rates={FLASH_READ: 1.0}))
        )
        fabric = TieredFabric(archive, flash=flash, retry_policy=RetryPolicy(retries=2))
        with pytest.raises(FlashReadError):
            fabric.materialize_rows()

    def test_storage_engine_fault_degrades_to_host_decompress(self):
        table, archive = self.make_archive()
        flash = FlashDevice(
            fault_injector=FaultInjector(FaultPlan(rates={STORAGE_ENGINE: 1.0}))
        )
        fabric = TieredFabric(archive, flash=flash)
        warm, report = fabric.materialize_rows()
        assert report.degraded
        assert fabric.degraded_runs == 1
        # Host decompression is slower than the in-storage engine.
        clean_fabric = TieredFabric(archive)
        _, clean = clean_fabric.materialize_rows()
        assert report.decompress_us > clean.decompress_us
        # The rows themselves are identical — correctness preserved.
        for name in table.schema.column_names:
            assert np.array_equal(warm.column_values(name), table.column_values(name))


# ----------------------------------------------------------------------
# run_transaction: conflict-abort auto-retry.
# ----------------------------------------------------------------------
def _accounts_table():
    schema = TableSchema("accounts", [Column("balance", INT64)], mvcc=True)
    return Table(schema, capacity=16)


class TestRunTransaction:
    def test_commits_and_returns(self):
        mgr = TransactionManager()
        table = _accounts_table()
        slot = run_transaction(mgr, lambda txn: txn.insert(table, {"balance": 100}))
        assert mgr.stats.committed == 1
        assert int(table.begin_ts[slot]) > 0

    def test_retries_conflict_then_succeeds(self):
        mgr = TransactionManager()
        table = _accounts_table()
        seed = mgr.begin()
        seed_slot = seed.insert(table, {"balance": 100})
        mgr.commit(seed)

        attempts = []

        def bump(txn):
            # First attempt loses the race: a rival supersedes the row
            # between our snapshot and our write.
            current = int(np.flatnonzero(table.end_ts == np.iinfo(np.int64).max)[0])
            if not attempts:
                rival = mgr.begin()
                rival.update(table, current, {"balance": 150})
                mgr.commit(rival)
            attempts.append(current)
            return txn.update(table, current, {"balance": 200})

        run_transaction(mgr, bump)
        assert len(attempts) == 2
        assert mgr.stats.retries == 1
        assert mgr.stats.backoff_cycles > 0
        assert mgr.stats.conflicts >= 1

    def test_exhausted_budget_reraises(self):
        mgr = TransactionManager()

        def always_conflict(txn):
            raise WriteConflictError("synthetic permanent conflict")

        with pytest.raises(WriteConflictError):
            run_transaction(mgr, always_conflict, retries=2)
        assert mgr.stats.retries == 2
        assert mgr.stats.aborted == 3

    def test_fn_may_commit_itself(self):
        mgr = TransactionManager()
        table = _accounts_table()

        def insert_and_commit(txn):
            slot = txn.insert(table, {"balance": 7})
            mgr.commit(txn)
            return slot

        slot = run_transaction(mgr, insert_and_commit)
        assert mgr.stats.committed == 1
        assert int(table.begin_ts[slot]) > 0


# ----------------------------------------------------------------------
# Fast path: a disarmed injector must be (nearly) free on hot paths.
# ----------------------------------------------------------------------
class TestDisarmedFastPath:
    def test_zero_rate_plan_is_disarmed(self):
        assert not FaultInjector(FaultPlan()).armed
        assert not FaultInjector(FaultPlan(rates={FLASH_READ: 0.0})).armed
        assert not FaultInjector(
            FaultPlan(rates={FLASH_READ: 0.5}, max_faults=0)
        ).armed
        assert FaultInjector(FaultPlan(rates={FLASH_READ: 0.5})).armed

    def test_disarmed_injector_not_consulted_on_hot_path(self):
        """Call-site gates skip ``check`` entirely when disarmed, so the
        hot path never pays the rate lookup / RNG / counter work."""
        inj = FaultInjector(FaultPlan(rates={DEVICE_TIMEOUT: 0.0}))
        model = RelationalMemoryEngineModel(default_platform(), fault_injector=inj)
        for _ in range(50):
            model.transform(nrows=1000, row_stride=64, out_bytes_per_row=16)
        assert inj.checks == {}

    def test_disarmed_overhead_below_five_percent(self):
        """The disarmed predicate on the transform hot path costs <5%
        versus no injector at all (min-of-trials to suppress CI noise)."""
        import time as _time

        baseline = RelationalMemoryEngineModel(default_platform())
        disarmed = RelationalMemoryEngineModel(
            default_platform(), fault_injector=FaultInjector(FaultPlan())
        )
        calls = 3000

        def _trial(model):
            t0 = _time.perf_counter()
            for _ in range(calls):
                model.transform(nrows=500, row_stride=64, out_bytes_per_row=16)
            return _time.perf_counter() - t0

        _trial(baseline), _trial(disarmed)  # warm-up
        base = min(_trial(baseline) for _ in range(5))
        gated = min(_trial(disarmed) for _ in range(5))
        assert gated < base * 1.05, f"disarmed overhead {gated / base - 1:.1%}"
