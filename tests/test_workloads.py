"""Tests for the workload generators (synthetic, TPC-H, HTAP driver)."""

import numpy as np
import pytest

from repro.db.plan import bind
from repro.db.sql import parse
from repro.errors import ConfigurationError
from repro.workloads.htap import HtapDriver
from repro.workloads.synthetic import (
    make_wide_table,
    projection_selection_query,
    projectivity_query,
    wide_schema,
)
from repro.workloads.tpch import (
    Q1,
    Q1_COLUMNS,
    Q6,
    Q6_COLUMNS,
    generate_lineitem,
    lineitem_schema,
    rows_for_target_bytes,
)


class TestSynthetic:
    def test_schema_shape(self):
        schema = wide_schema(ncols=16, row_bytes=64)
        assert schema.row_stride == 64
        assert len(schema.user_columns) == 16

    def test_too_many_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            wide_schema(ncols=20, row_bytes=64)

    def test_generator_deterministic(self):
        _, a = make_wide_table(nrows=100, seed=3)
        catalog2, b = make_wide_table(nrows=100, seed=3)
        assert np.array_equal(a.frame, b.frame)

    def test_generator_seeds_differ(self):
        _, a = make_wide_table(nrows=100, seed=3)
        _, b = make_wide_table(nrows=100, seed=4, name="wide2")
        assert not np.array_equal(a.frame, b.frame)

    def test_projectivity_query_shape(self):
        catalog, _ = make_wide_table(nrows=10)
        b = bind(parse(projectivity_query(5)), catalog)
        assert len(b.referenced_columns) == 5

    def test_projectivity_query_validates(self):
        with pytest.raises(ConfigurationError):
            projectivity_query(0)

    def test_selection_query_distinct_columns(self):
        catalog, _ = make_wide_table(nrows=10, ncols=20, row_bytes=128)
        b = bind(parse(projection_selection_query(3, 4)), catalog)
        assert len(b.selection_columns) == 4
        assert len(b.projection_columns) == 3
        assert not set(b.selection_columns) & set(b.projection_columns)

    def test_selection_query_overall_selectivity(self):
        catalog, table = make_wide_table(nrows=50_000, ncols=20, row_bytes=128)
        for s in (1, 4, 8):
            sql = projection_selection_query(2, s, overall_selectivity=0.5)
            b = bind(parse(sql), catalog)
            cols = {n: table.column_values(n) for n in b.referenced_columns}
            mask = b.where.eval_vector(cols)
            assert mask.mean() == pytest.approx(0.5, abs=0.08)

    def test_selectivity_bounds(self):
        with pytest.raises(ConfigurationError):
            projection_selection_query(1, 1, overall_selectivity=1.5)


class TestTpch:
    def test_schema_matches_tpch_lineitem(self):
        schema = lineitem_schema()
        assert len(schema.user_columns) == 16
        assert schema.column("l_quantity").dtype.scale == 2
        assert schema.column("l_comment").dtype.width == 44

    def test_generator_domains(self):
        _, table = generate_lineitem(2_000)
        qty = table.column_values("l_quantity")
        assert qty.min() >= 1 and qty.max() <= 50
        disc = table.column("l_discount")
        assert disc.min() >= 0 and disc.max() <= 10
        flags = set(np.unique(table.column_values("l_returnflag")).tolist())
        assert flags <= {b"A", b"N", b"R"}

    def test_returnflag_linestatus_correlation(self):
        _, table = generate_lineitem(5_000)
        status = table.column_values("l_linestatus")
        flag = table.column_values("l_returnflag")
        # dbgen semantics: 'O' (shipped after the cutoff) implies the item
        # was received after it too -> flag 'N'; 'R'/'A' only occur with 'F'.
        assert (flag[status == b"O"] == b"N").all()
        assert set(np.unique(flag[status == b"F"]).tolist()) <= {b"A", b"N", b"R"}
        # The narrow shipped-before/received-after band gives a small but
        # present N/F group (Q1's fourth group).
        nf = int(((flag == b"N") & (status == b"F")).sum())
        assert 0 < nf < len(flag) * 0.05

    def test_determinism(self):
        _, a = generate_lineitem(500, seed=9)
        cat2, b = generate_lineitem(500, seed=9)
        assert np.array_equal(a.frame, b.frame)

    def test_q6_selectivity_in_tpch_range(self):
        catalog, table = generate_lineitem(50_000)
        b = bind(parse(Q6), catalog)
        cols = {n: table.column_values(n) for n in b.referenced_columns}
        sel = b.where.eval_vector(cols).mean()
        assert 0.005 < sel < 0.05  # TPC-H Q6 qualifies ~2% of lineitem

    def test_q1_selectivity_high(self):
        catalog, table = generate_lineitem(20_000)
        b = bind(parse(Q1), catalog)
        cols = {n: table.column_values(n) for n in b.referenced_columns}
        assert b.where.eval_vector(cols).mean() > 0.9

    def test_q1_produces_four_groups(self):
        catalog, table = generate_lineitem(20_000)
        from repro.db.engines import RowStoreEngine

        res = RowStoreEngine(catalog).execute(Q1)
        groups = {(r[0], r[1]) for r in res.result.rows()}
        assert groups == {("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")}

    def test_rows_for_target_bytes(self):
        per_row = lineitem_schema().bytes_of(Q6_COLUMNS)
        assert rows_for_target_bytes(per_row * 1000, Q6_COLUMNS) == 1000
        assert rows_for_target_bytes(1, Q1_COLUMNS) == 1


class TestHtapDriver:
    def test_mixed_run_properties(self):
        driver = HtapDriver(initial_rows=300, seed=2)
        stats = driver.run_mixed(rounds=2, txns_per_round=15)
        assert stats.commits >= 1 + 30 - stats.aborts
        assert stats.analytic_runs == 2
        assert len(stats.freshness_lag) == 2
        # The first analytic round sees everything ingested since setup.
        assert stats.freshness_lag[0] > 0
        assert stats.conversion_cycles > 0
        assert set(stats.engine_cycles) == {"row", "column", "rm"}

    def test_engines_agree_each_round(self):
        driver = HtapDriver(initial_rows=200, seed=3)
        driver.run_oltp_burst(10)
        results = driver.run_analytics()
        from repro.db.exec import results_equal

        assert results_equal(results["row"].result, results["column"].result)
        assert results_equal(results["row"].result, results["rm"].result)
