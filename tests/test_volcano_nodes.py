"""Direct tests of the Volcano iterator nodes (the reference executor's
own building blocks deserve their own coverage)."""

import numpy as np
import pytest

from repro.db.expr import ColumnRef, Compare, Literal
from repro.db.plan.binder import BoundOutput
from repro.db.sql.nodes import OrderItem
from repro.db.exec.volcano import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
)


def scan(**columns):
    return ScanNode({k: np.asarray(v) for k, v in columns.items()})


class TestNodes:
    def test_scan_emits_rows(self):
        rows = list(scan(a=[1, 2], b=[10, 20]))
        assert rows == [{"a": 1, "b": 10}, {"a": 2, "b": 20}]

    def test_filter(self):
        node = FilterNode(scan(a=[1, 2, 3]), Compare(">", ColumnRef("a"), Literal(1)))
        assert [r["a"] for r in node] == [2, 3]

    def test_project_carries_hidden_columns(self):
        node = ProjectNode(
            scan(a=[1, 2], b=[5, 6]),
            outputs=(BoundOutput(name="a", kind="expr", expr=ColumnRef("a")),),
            carry=("b",),
        )
        rows = list(node)
        assert rows[0] == {"a": 1, "b": 5}

    def test_join_inner_semantics(self):
        left = scan(k=[1, 2, 3])
        right = scan(k2=[2, 3, 3], w=[20, 30, 31])
        node = JoinNode(left, right, "k", "k2")
        rows = list(node)
        assert len(rows) == 3  # key 2 matches once, key 3 twice
        assert {r["w"] for r in rows} == {20, 30, 31}

    def test_aggregate_global_empty_input(self):
        node = AggregateNode(
            scan(a=np.zeros(0, dtype=np.int64)),
            outputs=(BoundOutput(name="n", kind="count", expr=None),),
            group_by=(),
        )
        rows = list(node)
        assert rows == [{"n": 0}]

    def test_aggregate_min_max_avg(self):
        outputs = (
            BoundOutput(name="lo", kind="min", expr=ColumnRef("a")),
            BoundOutput(name="hi", kind="max", expr=ColumnRef("a")),
            BoundOutput(name="m", kind="avg", expr=ColumnRef("a")),
        )
        node = AggregateNode(scan(a=[4, 1, 7]), outputs=outputs, group_by=())
        (row,) = list(node)
        assert (row["lo"], row["hi"], row["m"]) == (1, 7, 4.0)

    def test_sort_stability_across_keys(self):
        node = SortNode(
            scan(a=[1, 1, 2], b=[9, 3, 5]),
            order_by=(
                OrderItem(expr=ColumnRef("a"), descending=False),
                OrderItem(expr=ColumnRef("b"), descending=True),
            ),
        )
        rows = list(node)
        assert [(r["a"], r["b"]) for r in rows] == [(1, 9), (1, 3), (2, 5)]

    def test_limit_stops_early(self):
        node = LimitNode(scan(a=list(range(100))), limit=3)
        assert len(list(node)) == 3

    def test_limit_zero(self):
        node = LimitNode(scan(a=[1, 2]), limit=0)
        assert list(node) == []

    def test_distinct_sorts_output(self):
        node = DistinctNode(scan(a=[3, 1, 3, 2, 1]), names=("a",))
        assert [r["a"] for r in node] == [1, 2, 3]

    def test_nodes_are_reiterable(self):
        node = FilterNode(scan(a=[1, 2, 3]), Compare(">", ColumnRef("a"), Literal(0)))
        assert len(list(node)) == 3
        assert len(list(node)) == 3  # a second pass re-opens the pipeline
