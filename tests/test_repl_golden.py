"""Golden-transcript tests for the SQL REPL.

Each script under ``SCRIPTS`` is fed to :func:`repro.repl.run_script`
and the full transcript — prompts, tables, errors, plans — must match
the checked-in file in ``tests/golden/sql/``. The simulation is
deterministic, so even EXPLAIN ANALYZE cycle counts are stable; after
an intentional output change, regenerate with::

    pytest tests/test_repl_golden.py --update-golden
"""

from pathlib import Path

import pytest

from repro.repl import run_script

GOLDEN_DIR = Path(__file__).parent / "golden" / "sql"

SCRIPTS = {
    "basic": """\
CREATE TABLE pets (id INT32, species CHAR(8), grams INT32);
INSERT INTO pets (id, species, grams) VALUES
  (1, 'cat', 4200), (2, 'dog', 9100), (3, 'cat', 3800),
  (4, 'gecko', 55), (5, 'dog', 30100), (6, 'cat', 5100);
\\dt
\\d pets
SELECT species AS species, count(*) AS n, avg(grams) AS avg_grams
  FROM pets GROUP BY species ORDER BY n DESC;
UPDATE pets SET grams = grams + 100 WHERE species = 'cat';
DELETE FROM pets WHERE grams < 100;
SELECT id AS id, grams AS grams FROM pets ORDER BY grams DESC LIMIT 3;
SELECT missing FROM pets;
\\q
""",
    "transactions": """\
CREATE TABLE acct (id INT32, bal INT32);
INSERT INTO acct (id, bal) VALUES (1, 100), (2, 50);
BEGIN;
UPDATE acct SET bal = bal - 30 WHERE id = 1;
ROLLBACK;
SELECT id AS id, bal AS bal FROM acct ORDER BY id;
BEGIN;
UPDATE acct SET bal = bal - 30 WHERE id = 1;
COMMIT;
SELECT id AS id, bal AS bal FROM acct ORDER BY id;
COMMIT;
""",
    "trace": """\
\\trace
CREATE TABLE t (id INT32, v INT32);
INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30);
SELECT sum(v) AS total FROM t;
\\trace
\\q
""",
    "explain": """\
CREATE TABLE t (id INT32, v INT32, tag CHAR(4));
INSERT INTO t (id, v, tag) VALUES (1, 10, 'oak'), (2, 20, 'elm'), (3, 30, 'oak');
EXPLAIN SELECT tag AS t0, sum(v) AS total FROM t GROUP BY tag HAVING total > 15;
EXPLAIN UPDATE t SET v = 0 WHERE id = 2;
\\timing
SELECT count(*) AS n FROM t;
\\q
""",
}


@pytest.mark.parametrize("name", sorted(SCRIPTS))
def test_repl_transcript_matches_golden(name, request):
    transcript = run_script(SCRIPTS[name])
    path = GOLDEN_DIR / f"{name}.txt"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(transcript)
    assert path.exists(), (
        f"golden file {path} missing — generate with --update-golden"
    )
    assert transcript == path.read_text()


def test_explain_analyze_transcript_has_span_tree():
    """EXPLAIN ANALYZE in the shell renders the recorded span tree.

    Cycle numbers are deterministic but cost-model-sensitive, so this
    checks structure rather than snapshotting the full text."""
    transcript = run_script(
        "CREATE TABLE t (id INT32, v INT32);\n"
        "INSERT INTO t (id, v) VALUES (1, 10), (2, 20);\n"
        "EXPLAIN ANALYZE SELECT sum(v) AS s FROM t;\n"
    )
    for marker in ("sql.analyze", "sql.bind", "sql.plan", "sql.exec"):
        assert marker in transcript


def test_run_script_without_echo_drops_prompts():
    out = run_script(
        "CREATE TABLE t (id INT32);\n"
        "INSERT INTO t (id) VALUES (1);\n"
        "SELECT id AS one FROM t;\n",
        echo=False,
    )
    assert "repro=>" not in out
    assert "(1 row)" in out
