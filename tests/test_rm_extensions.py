"""Tests for the RM engine extensions: aggregation pushdown (§IV-B) and
the auto (hybrid) consumption mode (§III-B)."""

import numpy as np
import pytest

from repro.db.engines import RelationalMemoryEngine
from repro.db.exec import results_equal
from repro.workloads.synthetic import make_wide_table, projectivity_query
from repro.workloads.tpch import Q6, generate_lineitem


@pytest.fixture(scope="module")
def wide():
    return make_wide_table(nrows=20_000, seed=21)


class TestAggregatePushdown:
    def engine(self, catalog):
        return RelationalMemoryEngine(catalog, pushdown=True, aggregate_pushdown=True)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT sum(c1) AS s FROM wide WHERE c0 < 500000",
            "SELECT count(*) AS n FROM wide WHERE c3 < 100000",
            "SELECT min(c2) AS lo FROM wide",
            "SELECT max(c2) AS hi FROM wide WHERE c1 > 100",
            "SELECT sum(c5) AS s FROM wide",
        ],
    )
    def test_answers_match_scan_path(self, wide, sql):
        catalog, _ = wide
        fast = self.engine(catalog).execute(sql)
        plain = RelationalMemoryEngine(catalog).execute(sql)
        assert results_equal(fast.result, plain.result)

    def test_fabric_path_is_cheaper(self, wide):
        catalog, _ = wide
        sql = "SELECT sum(c1) AS s FROM wide WHERE c0 < 500000"
        engine = self.engine(catalog)
        fast = engine.execute(sql)
        plain = RelationalMemoryEngine(catalog).execute(sql)
        assert fast.cycles < plain.cycles
        assert engine.fabric_answered == 1
        assert "Fabric-Aggregate" in fast.plan

    def test_decimal_aggregate_rescaled(self):
        catalog, table = generate_lineitem(5_000)
        engine = RelationalMemoryEngine(
            catalog, pushdown=True, aggregate_pushdown=True
        )
        sql = "SELECT sum(l_extendedprice) AS s FROM lineitem WHERE l_quantity < 10"
        fast = engine.execute(sql)
        plain = RelationalMemoryEngine(catalog).execute(sql)
        assert engine.fabric_answered == 1
        assert fast.result.scalar() == pytest.approx(plain.result.scalar(), rel=1e-9)

    @pytest.mark.parametrize(
        "sql",
        [
            # grouping cannot reduce to one accumulator
            "SELECT c0, sum(c1) AS s FROM wide GROUP BY c0",
            # avg is not a single hardware accumulator here
            "SELECT avg(c1) AS a FROM wide",
            # expression argument (needs a multiplier, not a comparator)
            "SELECT sum(c1 * c2) AS s FROM wide",
            # two aggregates
            "SELECT sum(c1) AS s, count(*) AS n FROM wide",
            # residual predicate (column-vs-column is not pushable)
            "SELECT sum(c1) AS s FROM wide WHERE c0 < c2",
        ],
    )
    def test_falls_back_when_not_expressible(self, wide, sql):
        catalog, _ = wide
        engine = self.engine(catalog)
        res = engine.execute(sql)
        assert engine.fabric_answered == 0
        plain = RelationalMemoryEngine(catalog).execute(sql)
        assert results_equal(res.result, plain.result)

    def test_mvcc_visibility_respected(self, mvcc_catalog):
        from repro.db.mvcc import TransactionManager

        catalog, table = mvcc_catalog
        manager = TransactionManager()
        txn = manager.begin()
        for i in range(40):
            txn.insert(table, {"id": i, "balance": 10})
        manager.commit(txn)
        snapshot = manager.now
        txn2 = manager.begin()
        txn2.insert(table, {"id": 99, "balance": 1000})
        manager.commit(txn2)
        engine = RelationalMemoryEngine(
            catalog, pushdown=True, aggregate_pushdown=True
        )
        old = engine.execute(
            "SELECT sum(balance) AS s FROM accounts", snapshot_ts=snapshot
        )
        assert old.result.scalar() == 400
        assert engine.fabric_answered == 1


class TestAutoConsumption:
    def test_auto_never_worse_than_either_mode(self, wide):
        catalog, _ = wide
        for k in (1, 4, 8):
            sql = projectivity_query(k)
            auto = RelationalMemoryEngine(catalog, consumption="auto").execute(sql)
            scalar = RelationalMemoryEngine(catalog, consumption="scalar").execute(sql)
            vector = RelationalMemoryEngine(catalog, consumption="vector").execute(sql)
            assert auto.cycles <= min(scalar.cycles, vector.cycles) + 1e-6
            assert results_equal(auto.result, scalar.result)

    def test_auto_records_choice(self, wide):
        catalog, _ = wide
        engine = RelationalMemoryEngine(catalog, consumption="auto")
        engine.execute(projectivity_query(4))
        assert engine.last_consumption in ("scalar", "vector")

    def test_auto_on_tpch_q6(self):
        catalog, _ = generate_lineitem(10_000)
        auto = RelationalMemoryEngine(catalog, consumption="auto").execute(Q6)
        scalar = RelationalMemoryEngine(catalog, consumption="scalar").execute(Q6)
        assert auto.cycles <= scalar.cycles
        assert results_equal(auto.result, scalar.result)
