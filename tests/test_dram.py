"""Tests for the DRAM bank/open-row model and the AXI bus."""

import pytest

from repro.hw.bus import AxiBus, AxiConfig
from repro.hw.config import DramConfig
from repro.hw.dram import Dram


def make(banks=4, row_bytes=512):
    return Dram(DramConfig(banks=banks, row_bytes=row_bytes))


class TestOpenRow:
    def test_first_access_is_row_miss(self):
        dram = make()
        cost = dram.access_line(0)
        assert cost == dram.config.row_miss_cycles
        assert dram.stats.row_misses == 1

    def test_same_row_hits(self):
        dram = make(row_bytes=512)  # 8 lines per row
        dram.access_line(0)
        assert dram.access_line(1) == dram.config.row_hit_cycles
        assert dram.stats.row_hits == 1

    def test_row_conflict_misses(self):
        dram = make(banks=1, row_bytes=512)
        dram.access_line(0)
        dram.access_line(8)  # next row, same (only) bank
        assert dram.stats.row_misses == 2

    def test_different_banks_keep_rows_open(self):
        dram = make(banks=2, row_bytes=512)
        dram.access_line(0)   # row 0, bank 0
        dram.access_line(8)   # row 1, bank 1
        assert dram.access_line(1) == dram.config.row_hit_cycles
        assert dram.access_line(9) == dram.config.row_hit_cycles


class TestBatchAndStream:
    def test_stream_cost_linear(self):
        dram = make()
        assert dram.stream_cost(10) == 10 * dram.config.stream_cycles_per_line

    def test_batch_overlaps_across_banks(self):
        dram = make(banks=4, row_bytes=512)
        # Four accesses in four distinct banks: cost of one, not four.
        lines = [0, 8, 16, 24]
        cost = dram.batch_cost(lines)
        assert cost == dram.config.row_miss_cycles

    def test_batch_serializes_within_bank(self):
        dram = make(banks=4, row_bytes=512)
        lines = [0, 32, 64]  # rows 0, 4, 8 -> all bank 0
        cost = dram.batch_cost(lines)
        assert cost == 3 * dram.config.row_miss_cycles

    def test_gather_cost_divides_by_banks(self):
        dram = make(banks=8)
        assert dram.gather_cost(80) == pytest.approx(
            80 * dram.config.row_hit_cycles / 8
        )

    def test_gather_zero(self):
        assert make().gather_cost(0) == 0.0

    def test_reset_clears(self):
        dram = make()
        dram.access_line(0)
        dram.reset()
        assert dram.stats.accesses == 0
        assert dram.access_line(0) == dram.config.row_miss_cycles

    def test_traffic_counted(self):
        dram = make()
        dram.access_line(0)
        dram.stream_cost(3)
        assert dram.stats.lines_transferred == 4
        assert dram.stats.bytes_transferred == 4 * 64


class TestAxiBus:
    def test_single_burst(self):
        bus = AxiBus(AxiConfig())
        # 64 bytes = 4 beats of 16B, one burst.
        cycles = bus.burst_cycles(64)
        assert cycles == 4 + 4 * 1
        assert bus.stats.bursts == 1
        assert bus.stats.beats == 4

    def test_multi_burst(self):
        bus = AxiBus(AxiConfig(max_beats_per_burst=4))
        cycles = bus.burst_cycles(128)  # 8 beats -> 2 bursts
        assert bus.stats.bursts == 2
        assert cycles == 2 * 4 + 8

    def test_zero_bytes_free(self):
        bus = AxiBus()
        assert bus.burst_cycles(0) == 0

    def test_scatter_pipelines(self):
        bus = AxiBus()
        cycles = bus.scatter_cycles(100, 8)  # 100 narrow requests
        # One handshake then one issue cycle per request.
        assert cycles == 4 + 100
        assert bus.stats.bursts == 100

    def test_scatter_wide_requests(self):
        bus = AxiBus()
        cycles = bus.scatter_cycles(10, 32)  # 2 beats per request
        assert cycles == 4 + 10 * 2
