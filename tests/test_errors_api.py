"""Error hierarchy and public API surface checks."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_write_conflict_is_transaction_error(self):
        assert issubclass(errors.WriteConflictError, errors.TransactionError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.GeometryError("x")
        with pytest.raises(errors.ReproError):
            raise errors.WriteConflictError("y")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports_resolve(self):
        import repro.bench as bench
        import repro.core as core
        import repro.db as db
        import repro.hw as hw
        import repro.storage as storage
        import repro.workloads as workloads

        for module in (bench, core, db, hw, storage, workloads):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_public_items_documented(self):
        """Every public class/function reachable from the top level has a
        docstring — the documentation deliverable, enforced."""
        import inspect

        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"undocumented public items: {missing}"

    def test_module_docstrings_everywhere(self):
        import importlib
        import pkgutil

        undocumented = []
        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert not undocumented, f"modules without docstrings: {undocumented}"
