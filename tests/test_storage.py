"""Tests for the flash device, the SSD read path, and Relational Storage."""

import numpy as np
import pytest

from repro.core.selection import CompareOp, FabricAggregate, FabricFilter, FabricPredicate
from repro.db import Column, Table, TableSchema
from repro.db.types import INT64
from repro.storage import FlashConfig, FlashDevice, RelationalStorage, SsdTable
from repro.errors import StorageError
from repro.workloads.tpch import generate_lineitem


@pytest.fixture
def device_table():
    schema = TableSchema("kv", [Column("k", INT64), Column("v", INT64)])
    table = Table(schema)
    rng = np.random.default_rng(8)
    table.append_arrays(
        {"k": np.arange(10_000, dtype=np.int64), "v": rng.integers(0, 100, 10_000)}
    )
    return SsdTable(table)


class TestFlashDevice:
    def test_zero_pages_free(self):
        assert FlashDevice().read_pages_us(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            FlashDevice().read_pages_us(-1)
        with pytest.raises(StorageError):
            FlashDevice().host_transfer_us(-1)

    def test_monotonic_in_pages(self):
        dev = FlashDevice()
        times = [FlashDevice().read_pages_us(n) for n in (1, 8, 64, 512)]
        assert times == sorted(times)

    def test_channel_parallelism_helps(self):
        narrow = FlashDevice(FlashConfig(channels=1)).read_pages_us(256)
        wide = FlashDevice(FlashConfig(channels=8)).read_pages_us(256)
        assert wide < narrow / 4

    def test_die_parallelism_overlaps_array_reads(self):
        few = FlashDevice(FlashConfig(dies_per_channel=1)).read_pages_us(256)
        many = FlashDevice(FlashConfig(dies_per_channel=8)).read_pages_us(256)
        assert many <= few

    def test_host_transfer_linear(self):
        dev = FlashDevice()
        assert dev.host_transfer_us(2_000_000) == pytest.approx(
            2 * dev.host_transfer_us(1_000_000)
        )

    def test_stats_accumulate(self):
        dev = FlashDevice()
        dev.read_pages_us(10)
        dev.read_pages_us(5)
        assert dev.pages_read == 15


class TestSsdTable:
    def test_rows_per_page(self, device_table):
        assert device_table.rows_per_page == 4096 // 16
        assert device_table.total_pages == int(np.ceil(10_000 / 256))

    def test_scan_ships_all_pages(self, device_table):
        frame, report = device_table.scan_rows()
        assert report.pages_read == device_table.total_pages
        assert report.host_bytes == report.pages_read * 4096
        assert frame.shape[0] == 10_000

    def test_point_read(self, device_table):
        row, report = device_table.read_row(7)
        assert row["k"] == 7
        assert report.pages_read == 1

    def test_point_read_bounds(self, device_table):
        with pytest.raises(StorageError):
            device_table.read_row(10_000)

    def test_oversized_rows_rejected(self):
        schema = TableSchema(
            "fat", [Column(f"c{i}", INT64) for i in range(600)]
        )
        with pytest.raises(StorageError):
            SsdTable(Table(schema))


class TestRelationalStorage:
    def test_projection_reduces_host_bytes(self, device_table):
        rs = RelationalStorage(device_table)
        table = device_table.table
        geo = table.schema.geometry(["v"])
        group = rs.configure(table.frame, geo)
        assert group.report.host_bytes == 10_000 * 8
        assert group.report.host_bytes < group.report.baseline_host_bytes
        assert np.array_equal(group.column("v"), table.column_values("v"))

    def test_selection_in_device(self, device_table):
        rs = RelationalStorage(device_table)
        table = device_table.table
        geo = table.schema.geometry(["k", "v"])
        flt = FabricFilter.of(FabricPredicate("v", CompareOp.LT, 10))
        group = rs.configure(table.frame, geo, fabric_filter=flt)
        expected = int((table.column_values("v") < 10).sum())
        assert len(group) == expected
        assert (group.column("v") < 10).all()

    def test_selection_on_unprojected_field(self, device_table):
        rs = RelationalStorage(device_table)
        table = device_table.table
        geo = table.schema.geometry(["k"])
        flt = FabricFilter.of(FabricPredicate("v", CompareOp.GE, 90))
        group = rs.configure(
            table.frame, geo, base_geometry=table.schema.full_geometry(), fabric_filter=flt
        )
        expected = int((table.column_values("v") >= 90).sum())
        assert len(group) == expected

    def test_aggregate_ships_one_value(self, device_table):
        rs = RelationalStorage(device_table)
        table = device_table.table
        value, report = rs.aggregate(
            table.schema.full_geometry(), FabricAggregate("v", "sum")
        )
        assert value == table.column_values("v").sum()
        assert report.host_bytes == 8

    def test_device_still_reads_all_pages(self, device_table):
        """Near-data processing saves link traffic, not array reads."""
        rs = RelationalStorage(device_table)
        table = device_table.table
        group = rs.configure(table.frame, table.schema.geometry(["v"]))
        assert group.report.pages_read == device_table.total_pages

    def test_pipeline_total_is_max_stage(self, device_table):
        rs = RelationalStorage(device_table)
        table = device_table.table
        r = rs.configure(table.frame, table.schema.geometry(["v"])).report
        assert r.total_us == max(r.device_us, r.engine_us, r.link_us)

    def test_mismatched_frame_rejected(self, device_table):
        rs = RelationalStorage(device_table)
        table = device_table.table
        with pytest.raises(StorageError):
            rs.configure(table.frame[:10], table.schema.geometry(["v"]))

    def test_lineitem_q6_style_pushdown(self):
        catalog, table = generate_lineitem(5_000)
        rs = RelationalStorage(SsdTable(table))
        geo = table.schema.geometry(["l_extendedprice", "l_discount"])
        flt = FabricFilter.of(
            FabricPredicate("l_discount", CompareOp.GE, 5),
            FabricPredicate("l_discount", CompareOp.LE, 7),
            FabricPredicate("l_quantity", CompareOp.LT, 2400),
        )
        group = rs.configure(
            table.frame, geo, base_geometry=table.schema.full_geometry(), fabric_filter=flt
        )
        disc = table.column("l_discount")
        qty = table.column("l_quantity")
        expected = int(((disc >= 5) & (disc <= 7) & (qty < 2400)).sum())
        assert len(group) == expected
        saved = group.report.host_bytes_saved / group.report.baseline_host_bytes
        assert saved > 0.9
