"""Tests for the SQL lexer and parser."""

import pytest

from repro.db.expr import And, Between, BinOp, ColumnRef, Compare, Literal, Not, Or
from repro.db.sql import Aggregate, parse, tokenize
from repro.db.sql.lexer import TokenKind
from repro.errors import SqlError


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("SELECT a, 1.5 FROM t")
        kinds = [t.kind for t in toks]
        assert kinds == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.SYMBOL,
            TokenKind.NUMBER,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_case_insensitive_keywords(self):
        toks = tokenize("SeLeCt A_b")
        assert toks[0].is_keyword("select")
        assert toks[1].text == "a_b"

    def test_two_char_operators(self):
        toks = tokenize("a <= b >= c <> d != e")
        symbols = [t.text for t in toks if t.kind is TokenKind.SYMBOL]
        assert symbols == ["<=", ">=", "<>", "<>"]

    def test_string_literal(self):
        toks = tokenize("select 'hello world'")
        assert toks[1].kind is TokenKind.STRING
        assert toks[1].text == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("select 'oops")

    def test_comments_skipped(self):
        toks = tokenize("select a -- trailing comment\nfrom t")
        texts = [t.text for t in toks if t.kind is not TokenKind.EOF]
        assert texts == ["select", "a", "from", "t"]

    def test_garbage_rejected(self):
        with pytest.raises(SqlError):
            tokenize("select #")


class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert stmt.table == "t"
        assert [i.expr.name for i in stmt.items] == ["a", "b"]

    def test_aliases(self):
        stmt = parse("SELECT a AS x, sum(b) AS total FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "total"
        assert isinstance(stmt.items[1].expr, Aggregate)

    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM t")
        agg = stmt.items[0].expr
        assert agg.func == "count" and agg.arg is None

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse("SELECT (a + b) * 2 FROM t").items[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_where_and_or_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a < 1 AND b > 2 OR c = 3")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.terms[0], And)

    def test_not(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, Not)

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 3")
        assert isinstance(stmt.where, Between)

    def test_date_literal_folds_to_days(self):
        stmt = parse("SELECT a FROM t WHERE d >= date '1970-01-11'")
        assert stmt.where.right == Literal(10)

    def test_date_arithmetic_with_interval(self):
        stmt = parse(
            "SELECT a FROM t WHERE d <= date '1970-02-01' - interval '10' day"
        )
        expr = stmt.where.right
        assert isinstance(expr, BinOp) and expr.op == "-"
        assert expr.left == Literal(31) and expr.right == Literal(10)

    def test_bad_date_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE d > date '99-99-99'")

    def test_group_order_limit(self):
        stmt = parse(
            "SELECT g, sum(a) AS s FROM t GROUP BY g ORDER BY g DESC, s LIMIT 5"
        )
        assert stmt.group_by == ("g",)
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == 5

    def test_join(self):
        stmt = parse("SELECT a FROM t JOIN u ON k = k2 WHERE a > 0")
        assert stmt.join.table == "u"
        assert (stmt.join.left_col, stmt.join.right_col) == ("k", "k2")

    def test_string_comparison(self):
        stmt = parse("SELECT a FROM t WHERE flag = 'N'")
        assert stmt.where.right == Literal("N")

    def test_trailing_garbage_rejected(self):
        # "banana" alone would be a table alias now; two trailing idents
        # can never parse.
        with pytest.raises(SqlError):
            parse("SELECT a FROM t banana split")

    def test_table_alias(self):
        stmt = parse("SELECT t.a FROM things t")
        assert stmt.table == "things"
        assert stmt.alias == "t"
        assert stmt.items[0].expr.qualifier == "t"

    def test_missing_from_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a")

    def test_limit_requires_number(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t LIMIT x")

    def test_negative_handling_via_subtraction(self):
        expr = parse("SELECT 0 - a FROM t").items[0].expr
        assert expr.op == "-" and expr.left == Literal(0)
