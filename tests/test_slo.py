"""SLO burn-rate monitoring: the multi-window alert logic, event
routing, the offline twin, and the serving front-door integration."""

import pytest

from repro.chaos import overload_config, overload_specs
from repro.errors import ConfigurationError
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    SloMonitor,
    SloObjective,
    windowed_burn_rates,
)
from repro.obs.journal import EV_SLO_BREACH, EV_SLO_RECOVER
from repro.obs.slo import AVAILABILITY, LATENCY
from repro.serve import ServeScheduler, submit_open_loop, synthetic_executor


def small_objective(**overrides):
    """An availability objective with toy windows for hand-driven tests:
    10% error budget, fast window 10 cycles, slow window 100."""
    kw = dict(
        tenant="a",
        objective=AVAILABILITY,
        target=0.9,
        fast_window_cycles=10.0,
        slow_window_cycles=100.0,
        fast_burn=5.0,
        slow_burn=2.0,
    )
    kw.update(overrides)
    return SloObjective(**kw)


# ----------------------------------------------------------------------
# Objective validation.
# ----------------------------------------------------------------------
class TestObjectiveValidation:
    def test_target_must_be_a_fraction(self):
        for bad in (0.0, 1.0, 1.2, -0.1):
            with pytest.raises(ConfigurationError):
                SloObjective(tenant="a", target=bad)

    def test_objective_kind_checked(self):
        with pytest.raises(ConfigurationError):
            SloObjective(tenant="a", objective="throughput")

    def test_fast_window_must_be_shorter(self):
        with pytest.raises(ConfigurationError):
            small_objective(fast_window_cycles=100.0, slow_window_cycles=100.0)

    def test_burn_thresholds_positive(self):
        with pytest.raises(ConfigurationError):
            small_objective(fast_burn=0.0)

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ConfigurationError):
            SloMonitor([small_objective(), small_objective()])

    def test_error_budget(self):
        assert small_objective(target=0.99).error_budget == pytest.approx(0.01)


# ----------------------------------------------------------------------
# The multi-window alert logic.
# ----------------------------------------------------------------------
class TestBurnRateWindows:
    def test_fast_window_alone_does_not_breach(self):
        monitor = SloMonitor([small_objective()])
        state = monitor.state("a", AVAILABILITY)
        # A long healthy history fills the slow window...
        for t in range(40):
            monitor.observe("a", float(t), answered=True)
        # ...then a short burst of failures saturates the fast window.
        for t in range(95, 100):
            monitor.observe("a", float(t), answered=False)
        assert state.burn_fast >= 5.0  # "it is happening now"
        assert state.burn_slow < 2.0   # "but it is not sustained"
        assert not state.in_breach
        assert state.breaches_total == 0

    def test_breach_enters_when_both_windows_burn(self):
        journal = FlightRecorder()
        monitor = SloMonitor([small_objective()], journal=journal)
        state = monitor.state("a", AVAILABILITY)
        for t in range(40):
            monitor.observe("a", float(t), answered=True)
        # Sustained failure: the good history ages out of the slow
        # window while bad events keep landing.
        for t in range(95, 145):
            monitor.observe("a", float(t), answered=False)
        assert state.in_breach
        assert state.breaches_total == 1
        breach = next(
            e for e in journal.events() if e.kind == EV_SLO_BREACH
        )
        assert breach.attrs["tenant"] == "a"
        assert breach.attrs["objective"] == AVAILABILITY
        assert breach.attrs["burn_fast"] >= 5.0

    def test_breach_exits_on_fast_window_hysteresis(self):
        journal = FlightRecorder()
        monitor = SloMonitor([small_objective()], journal=journal)
        state = monitor.state("a", AVAILABILITY)
        for t in range(40):
            monitor.observe("a", float(t), answered=True)
        for t in range(95, 145):
            monitor.observe("a", float(t), answered=False)
        assert state.in_breach
        # Recovery: the fast window cools; the slow window's long memory
        # is still hot, but it never holds an alert open on its own.
        for t in range(145, 165):
            monitor.observe("a", float(t), answered=True)
        assert not state.in_breach
        assert state.burn_slow >= 2.0  # sustained damage still visible
        assert any(e.kind == EV_SLO_RECOVER for e in journal.events())
        # Re-entering later counts a fresh breach.
        for t in range(165, 215):
            monitor.observe("a", float(t), answered=False)
        assert state.in_breach and state.breaches_total == 2


class TestEventRouting:
    def test_latency_objective_sees_only_answered(self):
        monitor = SloMonitor(
            [small_objective(objective=LATENCY, latency_threshold_cycles=100.0)]
        )
        state = monitor.state("a", LATENCY)
        monitor.observe("a", 1.0, latency_cycles=50.0, answered=True)
        monitor.observe("a", 2.0, latency_cycles=500.0, answered=True)
        monitor.observe("a", 3.0, answered=False)  # no latency to judge
        assert state.events_total == 2
        assert state.bad_total == 1

    def test_availability_objective_sees_everything(self):
        monitor = SloMonitor([small_objective()])
        state = monitor.state("a", AVAILABILITY)
        monitor.observe("a", 1.0, latency_cycles=10.0**9, answered=True)
        monitor.observe("a", 2.0, answered=False)
        assert state.events_total == 2
        assert state.bad_total == 1  # slow-but-answered is not bad here

    def test_unknown_tenant_ignored(self):
        monitor = SloMonitor([small_objective()])
        monitor.observe("nobody", 1.0, answered=False)
        assert monitor.state("a", AVAILABILITY).events_total == 0
        assert not monitor.in_breach("nobody", AVAILABILITY)

    def test_breaches_total_aggregates(self):
        monitor = SloMonitor(
            [small_objective(), small_objective(tenant="b")]
        )
        for tenant in ("a", "b"):
            for t in range(300, 350):
                monitor.observe(tenant, float(t), answered=False)
        assert monitor.breaches_total == 2


# ----------------------------------------------------------------------
# The offline twin.
# ----------------------------------------------------------------------
class _Series:
    def __init__(self, ticks, series):
        self.ticks = ticks
        self.series = series


class TestWindowedBurnRates:
    def test_matches_hand_computation(self):
        series = _Series(
            ticks=[0.0, 10.0, 20.0, 30.0],
            series={
                "bad": [0.0, 5.0, 5.0, 10.0],
                "total": [0.0, 10.0, 20.0, 30.0],
            },
        )
        out = windowed_burn_rates(series, "bad", "total", 0.9, 15.0)
        assert out[0] is None  # no traffic yet
        assert out[1] == pytest.approx(5.0)   # 5/10 bad over 10% budget
        assert out[2] == pytest.approx(2.5)
        assert out[3] == pytest.approx(2.5)   # windowed: deltas past t=10

    def test_missing_series_yields_nones(self):
        series = _Series(ticks=[0.0, 1.0], series={"total": [1.0, 2.0]})
        assert windowed_burn_rates(series, "bad", "total", 0.9, 10.0) == [
            None,
            None,
        ]

    def test_target_validated(self):
        series = _Series(ticks=[], series={})
        with pytest.raises(ConfigurationError):
            windowed_burn_rates(series, "b", "t", 1.5, 10.0)


# ----------------------------------------------------------------------
# Front-door integration: every resolved request feeds the monitor and
# the slo_* series land in the sampled metrics.
# ----------------------------------------------------------------------
class TestServeIntegration:
    def test_storm_feeds_monitor_and_metrics(self):
        config = overload_config()
        journal = FlightRecorder()
        slo = SloMonitor(
            [
                SloObjective(tenant="app1", objective=LATENCY),
                SloObjective(tenant="app1", objective=AVAILABILITY),
            ]
        )
        metrics = MetricsRegistry()
        sampler = metrics.attach_sampler(interval_cycles=1_000_000.0)
        scheduler = ServeScheduler(
            config,
            synthetic_executor(seed=11),
            metrics=metrics,
            journal=journal,
            slo=slo,
        )
        # The scheduler backfills its journal into the monitor so SLO
        # transitions land in the same flight recorder.
        assert slo.journal is journal
        submit_open_loop(
            scheduler, overload_specs(), 4_000_000.0, seed=11
        )
        scheduler.run_until_drained()
        sampler.sample_now()
        lat = slo.state("app1", LATENCY)
        avail = slo.state("app1", AVAILABILITY)
        assert lat.events_total > 0
        assert avail.events_total >= lat.events_total  # sees unanswered too
        names = set(sampler.series.series)
        assert any(n.startswith("slo_burn_rate_fast{") for n in names)
        assert any(n.startswith("slo_in_breach{") for n in names)
        assert any(n.startswith("journal_events_total") for n in names)
        # Admission decisions were journaled with the serve clock.
        assert journal.counts.get("serve.admission", 0) > 0
