"""Property tests for the weighted-fair queue (start-time fair queueing).

Three invariants the serving layer leans on, pinned over randomized
push/pop interleavings:

* **deterministic** — the service order is a pure function of the push
  sequence; replaying it yields byte-identical pops;
* **work-conserving** — ``pop`` returns an item whenever any eligible
  flow is non-empty, and only returns None when every queued flow is
  filtered out;
* **starvation-free** — however the competitors are weighted, a
  backlogged flow is served within a bounded number of dispatches: its
  fixed head tag is eventually the minimum because every new competitor
  arrival tags at or above the advancing virtual time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ExecutionError
from repro.serve import WeightedFairQueue

FLOWS = ("f0", "f1", "f2", "f3")

#: One random push: (flow index, weight, cost).
push_st = st.tuples(
    st.integers(min_value=0, max_value=len(FLOWS) - 1),
    st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
)

#: An interleaved script of pushes (tuples) and pops (None).
script_st = st.lists(
    st.one_of(push_st, st.none()), min_size=1, max_size=120
)


def run_script(script):
    """Execute a push/pop script; returns the sequence of pop results."""
    q = WeightedFairQueue()
    seq = 0
    popped = []
    for step in script:
        if step is None:
            got = q.pop()
            popped.append(None if got is None else (got[0], got[1]))
        else:
            idx, weight, cost = step
            q.push(FLOWS[idx], weight, cost, f"item{seq}")
            seq += 1
    # Drain whatever remains so every script checks full-order equality.
    while len(q):
        key, item = q.pop()
        popped.append((key, item))
    return popped


# ----------------------------------------------------------------------
# Determinism.
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(script=script_st)
def test_deterministic_replay(script):
    assert run_script(script) == run_script(script)


# ----------------------------------------------------------------------
# Work conservation.
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(script=script_st)
def test_work_conserving(script):
    """pop() yields an item iff some eligible flow has one, and the
    total popped equals the total pushed."""
    q = WeightedFairQueue()
    pushes = pops = 0
    for step in script:
        if step is None:
            before = len(q)
            got = q.pop()
            if before > 0:
                assert got is not None, "pop returned None with queued work"
                pops += 1
                assert len(q) == before - 1
            else:
                assert got is None
        else:
            idx, weight, cost = step
            q.push(FLOWS[idx], weight, cost, object())
            pushes += 1
    while q.pop() is not None:
        pops += 1
    assert pops == pushes
    assert len(q) == 0


@settings(max_examples=100, deadline=None)
@given(script=st.lists(push_st, min_size=1, max_size=60))
def test_blocked_is_not_empty(script):
    """Filtering every flow out returns None without losing items."""
    q = WeightedFairQueue()
    for idx, weight, cost in script:
        q.push(FLOWS[idx], weight, cost, object())
    n = len(q)
    assert q.pop(eligible=lambda key: False) is None
    assert len(q) == n  # nothing silently dropped
    served = 0
    while q.pop(eligible=lambda key: True) is not None:
        served += 1
    assert served == n


# ----------------------------------------------------------------------
# Starvation freedom.
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    victim_weight=st.floats(min_value=0.25, max_value=2.0),
    rival_weight=st.floats(min_value=1.0, max_value=8.0),
    cost=st.floats(min_value=100.0, max_value=10_000.0),
    data=st.data(),
)
def test_backlogged_flow_served_within_bound(
    victim_weight, rival_weight, cost, data
):
    """A queued low-weight item is served within the SFQ bound even when
    a high-weight rival pushes a new item before every single pop."""
    q = WeightedFairQueue()
    q.push("victim", victim_weight, cost, "starved?")
    victim_tag = q.head_tag("victim")
    # The rival may never overtake more often than the weight ratio
    # (+1 for the in-flight item) allows: each rival item costs
    # cost/rival_weight of virtual time, and once virtual time passes
    # the victim's fixed tag the victim's head is the strict minimum.
    bound = int(victim_tag / (cost / rival_weight)) + 2
    dispatches = 0
    while True:
        rival_cost = data.draw(
            st.floats(min_value=cost, max_value=cost * 4), label="rival_cost"
        )
        q.push("rival", rival_weight, rival_cost, "rival")
        key, item = q.pop()
        dispatches += 1
        if key == "victim":
            break
        assert dispatches <= bound, (
            f"victim starved: {dispatches} dispatches > bound {bound}"
        )


@settings(max_examples=100, deadline=None)
@given(script=st.lists(push_st, min_size=2, max_size=60))
def test_every_flow_eventually_served(script):
    """Draining a mixed backlog serves every non-empty flow."""
    q = WeightedFairQueue()
    pushed_flows = set()
    for idx, weight, cost in script:
        q.push(FLOWS[idx], weight, cost, object())
        pushed_flows.add(FLOWS[idx])
    served = set()
    while True:
        got = q.pop()
        if got is None:
            break
        served.add(got[0])
    assert served == pushed_flows


# ----------------------------------------------------------------------
# Virtual time and tag mechanics (example-based edges).
# ----------------------------------------------------------------------
class TestMechanics:
    def test_weights_split_service_proportionally(self):
        # Equal costs, 3:1 weights: over 8 dispatches the heavy flow
        # gets ~3x the service of the light one.
        q = WeightedFairQueue()
        for _ in range(12):
            q.push("heavy", 3.0, 300.0, "h")
            q.push("light", 1.0, 300.0, "l")
        first8 = [q.pop()[0] for _ in range(8)]
        assert first8.count("heavy") == 6
        assert first8.count("light") == 2

    def test_ties_break_on_flow_key(self):
        q = WeightedFairQueue()
        q.push("b", 1.0, 100.0, "second")
        q.push("a", 1.0, 100.0, "first")  # same tag, smaller key
        assert q.pop() == ("a", "first")
        assert q.pop() == ("b", "second")

    def test_virtual_time_never_rewinds(self):
        q = WeightedFairQueue()
        q.push("a", 1.0, 100.0, "small-tag")
        q.push("b", 1.0, 900.0, "big-tag")
        # Serve b first (a ineligible): virtual time jumps to b's tag...
        q.pop(eligible=lambda key: key == "b")
        vt = q.virtual_time
        assert vt == 900.0
        # ...and serving a afterwards must not rewind it.
        q.pop()
        assert q.virtual_time >= vt

    def test_drain_if_preserves_survivor_order(self):
        q = WeightedFairQueue()
        for i in range(6):
            q.push("a", 1.0, 100.0, i)
        removed = q.drain_if(lambda item: item % 2 == 0)
        assert [item for _, item in removed] == [0, 2, 4]
        assert [q.pop()[1] for _ in range(3)] == [1, 3, 5]
        assert len(q) == 0

    def test_depth_and_flows(self):
        q = WeightedFairQueue()
        assert q.depth("a") == 0
        q.push("a", 1.0, 1.0, "x")
        q.push("c", 1.0, 1.0, "y")
        assert q.depth("a") == 1
        assert q.flows() == ["a", "c"]

    def test_validation(self):
        q = WeightedFairQueue()
        with pytest.raises(ConfigurationError):
            q.push("a", 0.0, 1.0, "x")
        with pytest.raises(ConfigurationError):
            q.push("a", 1.0, -1.0, "x")
        with pytest.raises(ExecutionError):
            q.head_tag("empty")
