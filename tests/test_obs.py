"""The observability spine: span trees, the null fast path, the
EXPLAIN ANALYZE renderer, and Chrome trace-event export."""

import json

import pytest

from repro.db.engines import (
    ColumnStoreEngine,
    RelationalMemoryEngine,
    RowStoreEngine,
)
from repro.errors import ExecutionError
from repro.obs import NULL_SPAN, Span, Tracer, active, maybe_span
from repro.workloads.tpch import Q6, generate_lineitem

N_ROWS = 2_000


def _q6_result(engine_cls, tracer=None, memory_model="analytic", nrows=N_ROWS):
    catalog, _ = generate_lineitem(nrows=nrows, seed=7)
    engine = engine_cls(catalog, memory_model=memory_model, tracer=tracer)
    return engine.execute(Q6)


# ----------------------------------------------------------------------
# Span tree mechanics.
# ----------------------------------------------------------------------
class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", layer="test") as root:
            with tracer.span("a") as a:
                tracer.record("cpu", 10.0)
            with tracer.span("b"):
                with tracer.span("b1"):
                    tracer.record("cpu", 5.0)
        assert tracer.last is root
        assert [c.name for c in root.children] == ["a", "b"]
        assert a.parent is root
        assert root.children[1].children[0].name == "b1"
        assert root.total_cycles == 15.0
        assert root.self_cycles == 0.0

    def test_depth_and_walk(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("mid"):
                with tracer.span("leaf") as leaf:
                    pass
        assert root.depth == 0
        assert leaf.depth == 2
        assert [s.name for s in root.walk()] == ["root", "mid", "leaf"]

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ExecutionError):
            outer.__exit__(None, None, None)

    def test_charge_outside_any_span_is_dropped(self):
        tracer = Tracer()
        tracer.record("cpu", 99.0)  # no open span: ledger-only charge
        with tracer.span("root") as root:
            tracer.record("cpu", 1.0)
        assert root.total_cycles == 1.0

    def test_duration_is_at_least_as_wide_as_children(self):
        root = Span("root")
        child = Span("device", parent=root)
        child.set_duration(1_000.0)
        assert child.duration_cycles == 1_000.0
        assert root.duration_cycles == 1_000.0  # parent stretches to fit

    def test_counters_accumulate(self):
        span = Span("s")
        span.add_counter("hits", 3)
        span.add_counters({"hits": 2, "misses": 1})
        assert span.counters == {"hits": 5.0, "misses": 1.0}


# ----------------------------------------------------------------------
# The null fast path (mirrors FaultInjector.armed).
# ----------------------------------------------------------------------
class TestNullPath:
    def test_maybe_span_without_tracer_is_null(self):
        with maybe_span(None, "anything", table="t") as span:
            span.set_attrs(rows_out=1)
            span.add_counter("x", 1)
            span.set_duration(5.0)
        assert span is NULL_SPAN

    def test_disabled_tracer_is_null(self):
        tracer = Tracer(enabled=False)
        with maybe_span(tracer, "x") as span:
            pass
        assert span is NULL_SPAN
        assert active(tracer) is None
        assert active(None) is None
        assert active(Tracer()) is not None

    def test_engines_return_no_trace_without_tracer(self):
        out = _q6_result(RowStoreEngine, tracer=None, nrows=500)
        assert out.trace is None

    def test_noop_tracer_overhead_below_five_percent(self):
        """A disabled tracer on the trace-mode Q6 hot path costs <5%
        versus no tracer at all (min-of-trials to suppress CI noise)."""
        import time as _time

        catalog, _ = generate_lineitem(nrows=1_000, seed=7)
        baseline = RowStoreEngine(catalog, memory_model="trace")
        gated = RowStoreEngine(
            catalog, memory_model="trace", tracer=Tracer(enabled=False)
        )

        def _trial(engine):
            t0 = _time.perf_counter()
            engine.execute(Q6)
            return _time.perf_counter() - t0

        _trial(baseline), _trial(gated)  # warm-up
        # Interleave trials so machine-load drift hits both arms, and
        # give a noisy round a second chance: a real hot-path cost
        # reproduces across rounds, scheduler jitter does not.
        for _round in range(3):
            pairs = [(_trial(baseline), _trial(gated)) for _ in range(7)]
            base = min(b for b, _ in pairs)
            noop = min(n for _, n in pairs)
            if noop < base * 1.05:
                return
        assert noop < base * 1.05, f"no-op tracer overhead {noop / base - 1:.1%}"


# ----------------------------------------------------------------------
# Traces from real queries.
# ----------------------------------------------------------------------
class TestQueryTraces:
    @pytest.mark.parametrize(
        "engine_cls", [RowStoreEngine, ColumnStoreEngine, RelationalMemoryEngine]
    )
    def test_trace_shape(self, engine_cls):
        out = _q6_result(engine_cls, tracer=Tracer())
        trace = out.trace
        assert trace is not None
        query = trace.find("query")
        assert query is not None
        assert query.attrs["table"] == "lineitem"
        scan = trace.find("scan")
        assert scan.attrs["rows_in"] == N_ROWS
        agg = trace.find("aggregate")
        assert agg is not None and agg.self_cycles > 0

    def test_scan_probe_counters_in_trace_mode(self):
        out = _q6_result(RowStoreEngine, tracer=Tracer(), memory_model="trace")
        scan = out.trace.find("scan")
        assert scan.counters["l1_misses"] > 0
        assert scan.counters["dram_lines"] > 0

    def test_render_explain_analyze(self):
        out = _q6_result(RowStoreEngine, tracer=Tracer(), memory_model="trace")
        text = out.trace.render()
        assert "query" in text and "scan" in text and "aggregate" in text
        assert "total:" in text
        assert "L1" in text  # cache column populated in trace mode

    def test_rm_dispatch_trace(self):
        out = _q6_result(RelationalMemoryEngine, tracer=Tracer())
        dispatch = out.trace.root
        assert dispatch.name == "dispatch"
        assert out.trace.find("fabric.transform") is not None
        assert out.trace.find("fabric.refresh") is not None


# ----------------------------------------------------------------------
# Chrome trace-event export.
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_schema(self):
        out = _q6_result(RowStoreEngine, tracer=Tracer(), memory_model="trace")
        doc = json.loads(out.trace.to_chrome_json())
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events, "empty trace"
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "M"}
        complete = [e for e in events if e["ph"] == "X"]
        for e in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_children_nest_within_parents(self):
        out = _q6_result(ColumnStoreEngine, tracer=Tracer())
        doc = json.loads(out.trace.to_chrome_json())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        root = max(complete, key=lambda e: e["dur"])
        for e in complete:
            assert e["ts"] >= root["ts"]
            assert e["ts"] + e["dur"] <= root["ts"] + root["dur"] + 1e-6

    def test_json_is_serializable_with_numpy_attrs(self):
        out = _q6_result(RowStoreEngine, tracer=Tracer())
        # Round-trip through the serializer must not choke on numpy ints
        # carried in span attrs (rows_out comes from np.count_nonzero).
        json.loads(out.trace.to_chrome_json(indent=2))
