"""Tests for cost estimation, the optimizer, and the design advisor."""

import pytest

from repro.db.advisor import (
    WorkloadQuery,
    advise_partitions,
    affinity_matrix,
    fabric_cost,
    partition_cost,
)
from repro.db.index import build_index
from repro.db.plan.cost import CostModel, estimate_selectivity
from repro.db.plan.optimizer import Optimizer
from repro.db.plan import bind
from repro.db.sql import parse
from repro.db.engines import all_engines
from repro.workloads.synthetic import (
    make_wide_table,
    projection_selection_query,
    projectivity_query,
)


class TestSelectivityRules:
    def test_rules(self):
        from repro.db.expr import (
            And,
            Between,
            ColumnRef,
            Compare,
            Literal,
            Not,
            Or,
        )

        eq = Compare("=", ColumnRef("a"), Literal(1))
        rng = Compare("<", ColumnRef("a"), Literal(1))
        assert estimate_selectivity(None) == 1.0
        assert estimate_selectivity(eq) == 0.05
        assert estimate_selectivity(rng) == 0.33
        assert estimate_selectivity(And(terms=(rng, rng))) == pytest.approx(0.33**2)
        assert estimate_selectivity(Not(eq)) == pytest.approx(0.95)
        between = Between(ColumnRef("a"), Literal(1), Literal(2))
        assert estimate_selectivity(between) == 0.25
        either = Or(terms=(eq, eq))
        assert estimate_selectivity(either) == pytest.approx(1 - 0.95**2)


class TestEstimatesTrackMeasurements:
    """The estimator must *rank* access paths the way measured ledgers do."""

    @pytest.mark.parametrize(
        "sql_builder",
        [
            lambda: projectivity_query(1),
            lambda: projectivity_query(8),
            lambda: projection_selection_query(5, 3),
        ],
    )
    def test_ranking_agrees_with_measurement(self, sql_builder):
        catalog, _ = make_wide_table(nrows=60_000)
        sql = sql_builder()
        model = CostModel()
        bound_q = bind(parse(sql), catalog)
        estimates = {
            "row": model.estimate_row_scan(bound_q).cycles,
            "column": model.estimate_column_scan(bound_q).cycles,
            "rm": model.estimate_ephemeral_scan(bound_q).cycles,
        }
        measured = {
            name: engine.execute(sql).cycles
            for name, engine in all_engines(catalog).items()
        }
        est_order = sorted(estimates, key=estimates.get)
        meas_order = sorted(measured, key=measured.get)
        assert est_order[0] == meas_order[0]


class TestOptimizer:
    def test_fastest_solution_constructed(self):
        catalog, _ = make_wide_table(nrows=60_000)
        decision = Optimizer(catalog).choose(projectivity_query(8))
        assert decision.winner == "ephemeral-scan"
        assert decision.speedup_vs_worst > 1
        assert "Ephemeral" in decision.plan

    def test_fabric_off_falls_back(self):
        catalog, _ = make_wide_table(nrows=60_000)
        decision = Optimizer(catalog, fabric_available=False).choose(
            projectivity_query(8)
        )
        assert decision.winner in ("scan", "column-scan")
        assert "ephemeral-scan" not in decision.estimates

    def test_index_chosen_for_point_query(self):
        catalog, table = make_wide_table(nrows=60_000)
        catalog.add_index("wide", "c0", build_index(table, "c0"))
        decision = Optimizer(catalog).choose(
            "SELECT c1 FROM wide WHERE c0 = 12345"
        )
        assert decision.winner == "index(c0)"

    def test_index_not_offered_for_range(self):
        catalog, table = make_wide_table(nrows=60_000)
        catalog.add_index("wide", "c0", build_index(table, "c0"))
        decision = Optimizer(catalog).choose(
            "SELECT c1 FROM wide WHERE c0 < 12345"
        )
        assert "index(c0)" not in decision.estimates

    def test_accepts_bound_query(self):
        catalog, _ = make_wide_table(nrows=10_000)
        bound_q = bind(parse(projectivity_query(2)), catalog)
        decision = Optimizer(catalog).choose(bound_q)
        assert decision.winner in decision.estimates


class TestAdvisor:
    def schema(self):
        from repro.workloads.synthetic import wide_schema

        return wide_schema(ncols=8, row_bytes=32)

    def test_affinity_matrix_counts_coaccess(self):
        schema = self.schema()
        workload = [WorkloadQuery(("c0", "c1"), 3.0), WorkloadQuery(("c1", "c2"), 1.0)]
        aff = affinity_matrix(schema, workload)
        assert aff[("c0", "c1")] == 3.0
        assert aff[("c1", "c2")] == 1.0
        assert ("c0", "c2") not in aff

    def test_partition_cost_full_fragments(self):
        schema = self.schema()
        parts = [frozenset({"c0", "c1"}), frozenset({"c2"})]
        workload = [WorkloadQuery(("c0",), 1.0)]
        # Reads the whole {c0,c1} fragment: 8 bytes per row.
        assert partition_cost(schema, parts, workload, nrows=10) == 80

    def test_multi_fragment_stitch_surcharge(self):
        schema = self.schema()
        parts = [frozenset({"c0"}), frozenset({"c1"})]
        workload = [WorkloadQuery(("c0", "c1"), 1.0)]
        cost = partition_cost(schema, parts, workload, nrows=10)
        assert cost == 10 * 8 + 10 * 8  # two 4B fragments + 8B/row stitch

    def test_fabric_cost_is_exact_bytes(self):
        schema = self.schema()
        workload = [WorkloadQuery(("c0", "c3"), 2.0)]
        assert fabric_cost(schema, workload, nrows=100) == 2 * 100 * 8

    def test_advisor_groups_coaccessed_columns(self):
        schema = self.schema()
        workload = [
            WorkloadQuery(("c0", "c1"), 20.0),
            WorkloadQuery(("c2", "c3"), 10.0),
        ]
        report = advise_partitions(schema, workload, nrows=1000)
        groups = {tuple(sorted(p)) for p in report.partitions}
        assert ("c0", "c1") in groups
        assert ("c2", "c3") in groups

    def test_fabric_never_worse_than_any_layout(self):
        schema = self.schema()
        workload = [
            WorkloadQuery(("c0", "c1"), 10.0),
            WorkloadQuery(("c1", "c2", "c5"), 5.0),
            WorkloadQuery(tuple(f"c{i}" for i in range(8)), 1.0),
        ]
        report = advise_partitions(schema, workload, nrows=1000)
        assert report.fabric_cost <= report.partitioned_cost
        assert report.fabric_cost <= report.row_layout_cost
        assert report.fabric_cost <= report.column_layout_cost

    def test_advisor_beats_naive_layouts_on_skewed_workload(self):
        schema = self.schema()
        workload = [WorkloadQuery(("c0", "c1"), 100.0), WorkloadQuery(("c7",), 1.0)]
        report = advise_partitions(schema, workload, nrows=1000)
        assert report.partitioned_cost <= report.row_layout_cost
        assert report.partitioned_cost <= report.column_layout_cost

    def test_summary_renders(self):
        schema = self.schema()
        report = advise_partitions(schema, [WorkloadQuery(("c0",), 1.0)], nrows=10)
        assert "fabric" in report.summary()
