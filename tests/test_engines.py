"""Integration tests across the three engines: identical answers,
coherent cost accounting, MVCC snapshots, pushdown, consumption modes."""

import numpy as np
import pytest

from repro.core.ledger import CostLedger
from repro.db.engines import (
    ColumnStoreEngine,
    RelationalMemoryEngine,
    RowStoreEngine,
    all_engines,
)
from repro.db.exec import results_equal
from repro.db.mvcc import TransactionManager
from repro.errors import ExecutionError
from repro.workloads.synthetic import (
    make_wide_table,
    projection_selection_query,
    projectivity_query,
)

QUERIES = [
    projectivity_query(1),
    projectivity_query(6),
    projection_selection_query(2, 3),
    "SELECT c0, c1 FROM wide WHERE c2 < 100000 ORDER BY c0 LIMIT 9",
    "SELECT c3, count(*) AS n FROM wide WHERE c3 < 5 GROUP BY c3 ORDER BY c3",
]


class TestAnswerEquality:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_all_engines_agree(self, wide_catalog, sql):
        catalog, _ = wide_catalog
        engines = all_engines(catalog)
        results = {name: e.execute(sql) for name, e in engines.items()}
        assert results_equal(results["row"].result, results["column"].result)
        assert results_equal(results["row"].result, results["rm"].result)

    def test_rm_pushdown_same_answers(self, wide_catalog):
        catalog, _ = wide_catalog
        sql = projection_selection_query(3, 2)
        plain = RelationalMemoryEngine(catalog, pushdown=False).execute(sql)
        pushed = RelationalMemoryEngine(catalog, pushdown=True).execute(sql)
        assert results_equal(plain.result, pushed.result)

    def test_rm_vector_consumption_same_answers(self, wide_catalog):
        catalog, _ = wide_catalog
        sql = projectivity_query(5)
        scalar = RelationalMemoryEngine(catalog, consumption="scalar").execute(sql)
        vector = RelationalMemoryEngine(catalog, consumption="vector").execute(sql)
        assert results_equal(scalar.result, vector.result)

    def test_bad_consumption_mode(self, wide_catalog):
        catalog, _ = wide_catalog
        with pytest.raises(ExecutionError):
            RelationalMemoryEngine(catalog, consumption="quantum")


class TestCostAccounting:
    def test_ledger_buckets_non_negative(self, wide_catalog):
        catalog, _ = wide_catalog
        for engine in all_engines(catalog).values():
            res = engine.execute(projection_selection_query(4, 2))
            assert all(v >= 0 for v in res.ledger.buckets.values())
            assert res.cycles > 0

    def test_row_traffic_is_full_table(self, wide_catalog):
        catalog, table = wide_catalog
        res = RowStoreEngine(catalog).execute(projectivity_query(2))
        assert res.ledger.dram_bytes == table.nbytes

    def test_rm_traffic_below_row_traffic(self, wide_catalog):
        catalog, table = wide_catalog
        sql = projectivity_query(3)
        row = RowStoreEngine(catalog).execute(sql)
        rm = RelationalMemoryEngine(catalog).execute(sql)
        assert rm.ledger.dram_bytes < row.ledger.dram_bytes

    def test_rm_ledger_has_fabric_buckets(self, wide_catalog):
        catalog, _ = wide_catalog
        res = RelationalMemoryEngine(catalog).execute(projectivity_query(2))
        assert CostLedger.CONFIGURE in res.ledger.buckets

    def test_qualifying_rows_reported(self, wide_catalog):
        catalog, table = wide_catalog
        res = RowStoreEngine(catalog).execute(projection_selection_query(1, 1))
        assert 0 < res.qualifying_rows < res.visible_rows == table.nrows

    def test_plan_rendered_per_engine(self, wide_catalog):
        catalog, _ = wide_catalog
        sql = projectivity_query(2)
        assert "Scan" in RowStoreEngine(catalog).execute(sql).plan
        assert "Ephemeral" in RelationalMemoryEngine(catalog).execute(sql).plan

    def test_rm_wider_projection_costs_more(self, wide_catalog):
        catalog, _ = wide_catalog
        engine = RelationalMemoryEngine(catalog)
        narrow = engine.execute(projectivity_query(1)).cycles
        wide = engine.execute(projectivity_query(9)).cycles
        assert wide > narrow


class TestColumnReplica:
    def test_replica_syncs_once_until_mutation(self, wide_catalog):
        catalog, table = wide_catalog
        engine = ColumnStoreEngine(catalog)
        engine.execute(projectivity_query(1))
        engine.execute(projectivity_query(2))
        replica = engine.replica_of(table)
        assert replica.sync_count == 1
        table.set_value(0, "c0", 1)
        engine.execute(projectivity_query(1))
        assert replica.sync_count == 2

    def test_conversion_cost_charged_outside_queries(self, wide_catalog):
        catalog, _ = wide_catalog
        engine = ColumnStoreEngine(catalog)
        engine.execute(projectivity_query(1))
        assert engine.conversion_ledger.get("layout_conversion") > 0

    def test_stale_replica_freshness_metric(self, wide_catalog):
        catalog, table = wide_catalog
        engine = ColumnStoreEngine(catalog)
        engine.execute(projectivity_query(1))
        replica = engine.replica_of(table)
        assert replica.stale_rows == 0
        table.append_row({f"c{i}": 0 for i in range(16)})
        assert replica.stale_rows == 1

    def test_fresh_answers_after_update(self, wide_catalog):
        """COL must re-convert and then agree with ROW on updated data."""
        catalog, table = wide_catalog
        sql = projectivity_query(1)
        engines = all_engines(catalog)
        before = engines["column"].execute(sql).result.scalar()
        table.set_value(0, "c0", 999_999_999 % 2**31)
        after_col = engines["column"].execute(sql).result.scalar()
        after_row = engines["row"].execute(sql).result.scalar()
        assert after_col == after_row != before


class TestMvccSnapshots:
    def test_snapshot_reads_are_stable(self, mvcc_catalog):
        catalog, table = mvcc_catalog
        manager = TransactionManager()
        txn = manager.begin()
        for i in range(50):
            txn.insert(table, {"id": i, "balance": 100})
        manager.commit(txn)

        snapshot = manager.now
        writer = manager.begin()
        slots = writer.visible_slots(table)
        writer.update(table, int(slots[0]), {"balance": 999})
        manager.commit(writer)

        sql = "SELECT sum(balance) AS s FROM accounts"
        for engine in all_engines(catalog).values():
            old = engine.execute(sql, snapshot_ts=snapshot)
            new = engine.execute(sql, snapshot_ts=manager.now)
            assert old.result.scalar() == 50 * 100
            assert new.result.scalar() == 49 * 100 + 999

    def test_engines_agree_under_snapshots(self, mvcc_catalog):
        catalog, table = mvcc_catalog
        manager = TransactionManager()
        txn = manager.begin()
        for i in range(30):
            txn.insert(table, {"id": i, "balance": i * 10})
        manager.commit(txn)
        txn2 = manager.begin()
        txn2.insert(table, {"id": 99, "balance": 5})
        manager.commit(txn2)

        sql = "SELECT count(*) AS n, sum(balance) AS s FROM accounts WHERE balance >= 0"
        for ts in (1, manager.now):
            results = [
                e.execute(sql, snapshot_ts=ts).result
                for e in all_engines(catalog).values()
            ]
            assert results_equal(results[0], results[1])
            assert results_equal(results[0], results[2])

    def test_uncommitted_rows_invisible(self, mvcc_catalog):
        catalog, table = mvcc_catalog
        manager = TransactionManager()
        txn = manager.begin()
        txn.insert(table, {"id": 1, "balance": 7})
        # Not committed: nothing visible at any snapshot.
        for engine in all_engines(catalog).values():
            res = engine.execute(
                "SELECT count(*) AS n FROM accounts", snapshot_ts=manager.now
            )
            assert res.result.scalar() == 0
        manager.commit(txn)

    def test_visible_rows_reported(self, mvcc_catalog):
        catalog, table = mvcc_catalog
        manager = TransactionManager()
        txn = manager.begin()
        for i in range(10):
            txn.insert(table, {"id": i, "balance": 1})
        manager.commit(txn)
        txn = manager.begin()
        txn.delete(table, 0)
        manager.commit(txn)
        res = RowStoreEngine(catalog).execute(
            "SELECT count(*) AS n FROM accounts", snapshot_ts=manager.now
        )
        assert res.result.scalar() == 9
