"""Tests for the pack/unpack dataflow (the fabric's functional half)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.geometry import DataGeometry, FieldSlice
from repro.core.packer import (
    decode_field,
    decode_frame_field,
    pack,
    unpack,
)
from repro.errors import GeometryError

GEO = DataGeometry(
    row_stride=32,
    fields=(
        FieldSlice("key", 0, 8, "<i8"),
        FieldSlice("val", 16, 4, "<i4"),
        FieldSlice("tag", 28, 2),
    ),
)


def frame(nrows=20, stride=32, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(nrows, stride), dtype=np.uint8)


class TestPack:
    def test_shape_and_density(self):
        packed = pack(frame(), GEO)
        assert packed.shape == (20, 14)
        assert packed.flags["C_CONTIGUOUS"]

    def test_bytes_relocated_exactly(self):
        f = frame()
        packed = pack(f, GEO)
        assert np.array_equal(packed[:, 0:8], f[:, 0:8])
        assert np.array_equal(packed[:, 8:12], f[:, 16:20])
        assert np.array_equal(packed[:, 12:14], f[:, 28:30])

    def test_row_mask_selects(self):
        f = frame()
        mask = np.zeros(20, dtype=bool)
        mask[[1, 5, 7]] = True
        packed = pack(f, GEO, row_mask=mask)
        assert packed.shape[0] == 3
        assert np.array_equal(packed[0, 0:8], f[1, 0:8])

    def test_empty_mask_gives_zero_rows(self):
        packed = pack(frame(), GEO, row_mask=np.zeros(20, dtype=bool))
        assert packed.shape == (0, 14)

    def test_single_field_geometry(self):
        g = DataGeometry(row_stride=32, fields=(FieldSlice("a", 4, 4),))
        f = frame()
        packed = pack(f, g)
        assert np.array_equal(packed, f[:, 4:8])

    def test_frame_validation(self):
        with pytest.raises(GeometryError):
            pack(np.zeros((4, 16), dtype=np.uint8), GEO)  # wrong stride
        with pytest.raises(GeometryError):
            pack(np.zeros((4, 32), dtype=np.int32), GEO)  # wrong dtype
        with pytest.raises(GeometryError):
            pack(np.zeros(32, dtype=np.uint8), GEO)  # wrong rank

    def test_source_frame_untouched(self):
        """Ephemeral semantics: packing never mutates the base image."""
        f = frame()
        before = f.copy()
        pack(f, GEO)
        assert np.array_equal(f, before)


class TestUnpack:
    def test_roundtrip_on_selected_bytes(self):
        f = frame()
        restored = unpack(pack(f, GEO), GEO)
        for fld in GEO.fields:
            assert np.array_equal(
                restored[:, fld.offset : fld.end], f[:, fld.offset : fld.end]
            )

    def test_untouched_bytes_filled(self):
        restored = unpack(pack(frame(), GEO), GEO, fill=0xAB)
        assert (restored[:, 8:16] == 0xAB).all()

    def test_bad_packed_shape(self):
        with pytest.raises(GeometryError):
            unpack(np.zeros((5, 99), dtype=np.uint8), GEO)


class TestDecode:
    def test_decode_typed_field(self):
        f = frame()
        packed = pack(f, GEO)
        keys = decode_field(packed, GEO, "key")
        expected = np.ascontiguousarray(f[:, 0:8]).view("<i8").reshape(-1)
        assert np.array_equal(keys, expected)

    def test_decode_opaque_field(self):
        f = frame()
        tags = decode_field(pack(f, GEO), GEO, "tag")
        assert tags.shape == (20, 2)
        assert np.array_equal(tags, f[:, 28:30])

    def test_decode_frame_field_matches_packed_decode(self):
        f = frame()
        a = decode_frame_field(f, GEO, "val")
        b = decode_field(pack(f, GEO), GEO, "val")
        assert np.array_equal(a, b)


@st.composite
def frame_and_geometry(draw):
    stride = draw(st.sampled_from([16, 32, 64]))
    nrows = draw(st.integers(min_value=0, max_value=50))
    f = draw(
        hnp.arrays(dtype=np.uint8, shape=(nrows, stride), elements=st.integers(0, 255))
    )
    n_fields = draw(st.integers(min_value=1, max_value=4))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=stride),
                min_size=2 * n_fields,
                max_size=2 * n_fields,
                unique=True,
            )
        )
    )
    fields = []
    for i in range(0, len(cuts) - 1, 2):
        if cuts[i + 1] > cuts[i]:
            fields.append(FieldSlice(f"f{i}", cuts[i], cuts[i + 1] - cuts[i]))
    if not fields:
        fields = [FieldSlice("f0", 0, 4)]
    return f, DataGeometry(row_stride=stride, fields=tuple(fields))


class TestProperties:
    @given(frame_and_geometry())
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_roundtrip(self, fg):
        f, g = fg
        restored = unpack(pack(f, g), g)
        for fld in g.fields:
            assert np.array_equal(
                restored[:, fld.offset : fld.end], f[:, fld.offset : fld.end]
            )

    @given(frame_and_geometry(), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60, deadline=None)
    def test_masked_pack_equals_pack_of_masked_frame(self, fg, seed):
        f, g = fg
        rng = np.random.default_rng(seed)
        mask = rng.random(f.shape[0]) < 0.5
        assert np.array_equal(pack(f, g, row_mask=mask), pack(f[mask], g))

    @given(frame_and_geometry())
    @settings(max_examples=60, deadline=None)
    def test_packed_bytes_are_exactly_selected_bytes(self, fg):
        f, g = fg
        packed = pack(f, g)
        manual = np.concatenate(
            [f[:, fld.offset : fld.end] for fld in g.fields], axis=1
        ) if len(g.fields) > 1 else f[:, g.fields[0].offset : g.fields[0].end]
        assert np.array_equal(packed, manual)
