"""Deterministic fault injection and the resilience primitives around it.

The paper sells Relational Fabric as *transparent*: a query must keep
working when the fabric is saturated, misconfigured, or absent, because
the single row-oriented copy of the data is always there to fall back on
(§III, §V). Production offload engines (Polynesia, Farview) make the
same argument: the software path is the availability story. This module
supplies the machinery to *test* that story:

* :class:`FaultPlan` / :class:`FaultInjector` — a seed-driven schedule of
  device faults. Devices consult the injector at named **sites**
  (``fabric.configure``, ``flash.read``, ...) and raise the mapped
  :class:`~repro.errors.FaultError` subclass when the schedule says so.
  The schedule is a pure function of ``(seed, sequence of checks)``, so
  a failing chaos run replays exactly.
* :class:`RetryPolicy` — exponential backoff with bounded, seeded jitter.
  Unit-agnostic: callers interpret the returned delay as CPU cycles
  (memory fabric) or microseconds (storage fabric).
* :class:`CircuitBreaker` — per-device closed → open → half-open gate
  over consecutive failures, so a dead fabric stops burning retry budget
  on every query and is re-probed only occasionally.

None of this costs anything when no injector is configured: every hook
is a ``None`` check.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Type

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    DeviceTimeoutError,
    FabricFaultError,
    FaultError,
    FlashReadError,
    ReproError,
    ShardCrashError,
    ShardPartitionError,
    ShardStallError,
    TenantThrottledError,
    WalCorruptionError,
)

# ----------------------------------------------------------------------
# Fault sites: where a device consults the injector.
# ----------------------------------------------------------------------
#: Geometry programming rejected by the fabric.
FABRIC_CONFIGURE = "fabric.configure"
#: On-fabric buffer refill timed out under contention.
FABRIC_REFILL = "fabric.refill"
#: A packed cache line failed its integrity check.
FABRIC_CORRUPT = "fabric.corrupt"
#: AXI bus / DRAM gather deadline missed.
DEVICE_TIMEOUT = "device.timeout"
#: NAND page read failed (uncorrectable ECC).
FLASH_READ = "flash.read"
#: In-storage transformation engine busy or hung.
STORAGE_ENGINE = "storage.engine"
#: A WAL append crashed mid-record: only a prefix reached the media.
WAL_TORN = "wal.torn"
#: A WAL flush lost power mid-flight: a suffix of the *buffered* bytes
#: never reached the media (partial flush — may span whole records).
WAL_FLUSH = "wal.flush"
#: A stored WAL byte came back with a flipped bit (detected by CRC).
WAL_BITFLIP = "wal.bitflip"
#: The overload manager sheds an otherwise-admittable request (chaos:
#: forces graceful shedding even when queues are healthy).
SERVE_SHED = "serve.shed"
#: A deadline check observes a skewed clock, expiring a request early
#: (the skew magnitude comes from :meth:`FaultInjector.draw`).
SERVE_CLOCK_SKEW = "serve.clock_skew"
#: A shard worker process dies mid-request (the worker calls
#: ``os._exit``, so not even finalizers run — a real fault domain loss).
SHARD_CRASH = "shard.crash"
#: A shard worker hangs past the coordinator's RPC deadline before
#: answering (the stalled reply may arrive later and must be discarded).
SHARD_STALL = "shard.stall"
#: A message to or from a shard worker is silently dropped (replication
#: deltas vanish; the replica diverges until LSN fencing catches it).
SHARD_PARTITION = "shard.partition"

#: Sites that *shape* data instead of raising: the log device consults
#: :meth:`FaultInjector.should_fault` and applies the corruption itself
#: (truncating the tail, dropping flushed bytes, flipping a bit), so the
#: failure surfaces later, at recovery — exactly like real storage.
WAL_SITES = (WAL_TORN, WAL_FLUSH, WAL_BITFLIP)

#: Every site a :class:`FaultPlan` may name, with the error it raises.
SITE_ERRORS: Mapping[str, Tuple[Type[ReproError], str]] = {
    FABRIC_CONFIGURE: (FabricFaultError, "fabric rejected the geometry configuration"),
    FABRIC_REFILL: (FabricFaultError, "on-fabric buffer refill timed out"),
    FABRIC_CORRUPT: (FabricFaultError, "packed cache line failed its integrity check"),
    DEVICE_TIMEOUT: (DeviceTimeoutError, "device missed its response deadline"),
    FLASH_READ: (FlashReadError, "NAND page read failed uncorrectable ECC"),
    STORAGE_ENGINE: (DeviceTimeoutError, "in-storage transformation engine timed out"),
    WAL_TORN: (WalCorruptionError, "WAL append torn mid-record"),
    WAL_FLUSH: (WalCorruptionError, "WAL flush lost buffered bytes"),
    WAL_BITFLIP: (WalCorruptionError, "stored WAL byte read back corrupted"),
    SERVE_SHED: (TenantThrottledError, "overload manager shed the request"),
    SERVE_CLOCK_SKEW: (DeadlineExceededError, "deadline clock skewed past budget"),
    SHARD_CRASH: (ShardCrashError, "shard worker process died mid-request"),
    SHARD_STALL: (ShardStallError, "shard worker stalled past its RPC deadline"),
    SHARD_PARTITION: (ShardPartitionError, "message to/from shard worker dropped"),
}

#: All fabric-side sites, for "make the memory fabric flaky" plans.
FABRIC_SITES = (FABRIC_CONFIGURE, FABRIC_REFILL, FABRIC_CORRUPT, DEVICE_TIMEOUT)

#: Serving-layer sites. Like :data:`WAL_SITES` these shape behaviour
#: instead of raising from inside a device: the scheduler consults
#: :meth:`FaultInjector.should_fault` on its armed fast path and records
#: the mapped error as the request's typed resolution.
SERVE_SITES = (SERVE_SHED, SERVE_CLOCK_SKEW)

#: Shard fault-domain sites. Data-shaping, like :data:`WAL_SITES`: the
#: *worker* consults :meth:`FaultInjector.should_fault` on its armed fast
#: path and enacts the failure itself (``os._exit`` for a crash, a sleep
#: past the deadline for a stall, a dropped message for a partition), so
#: the coordinator only ever observes the symptom — a dead pipe, a
#: missing reply, a stale replica — exactly like a real distributed
#: system.
SHARD_SITES = (SHARD_CRASH, SHARD_STALL, SHARD_PARTITION)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative fault schedule: per-site probabilities plus a seed.

    ``rates`` maps a site name to the per-check fault probability in
    ``[0, 1]``. ``max_faults`` optionally bounds the total number of
    faults fired (a "burst then recover" chaos shape); ``None`` means
    unbounded. The same plan always produces the same schedule for the
    same sequence of checks.
    """

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)
    max_faults: Optional[int] = None

    def __post_init__(self):
        for site, rate in self.rates.items():
            if site not in SITE_ERRORS:
                raise ConfigurationError(
                    f"unknown fault site {site!r}; known: {sorted(SITE_ERRORS)}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate}"
                )
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigurationError(f"max_faults must be >= 0, got {self.max_faults}")

    @classmethod
    def uniform(
        cls,
        rate: float,
        sites: Tuple[str, ...] = FABRIC_SITES,
        seed: int = 0,
        max_faults: Optional[int] = None,
    ) -> "FaultPlan":
        """One rate across ``sites`` (default: all memory-fabric sites)."""
        return cls(seed=seed, rates={s: rate for s in sites}, max_faults=max_faults)


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically.

    Devices call :meth:`check` at their fault sites; when the seeded
    schedule fires, the site's mapped :class:`~repro.errors.FaultError`
    subclass is raised. Counters record every consultation and every
    fault for chaos-run reporting.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.checks: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        #: Optional :class:`~repro.obs.FlightRecorder`; every fired fault
        #: is journaled (kind ``fault.fired``) when one is attached.
        self.journal = None
        #: True iff this plan can ever fire. Hot paths gate their check —
        #: including any detail-string formatting — behind
        #: ``inj is not None and inj.armed`` so a disarmed injector costs
        #: one attribute read per scan, not per-access bookkeeping. Note
        #: the counters in :attr:`checks` are then *not* advanced; call
        #: :meth:`should_fault` directly when auditing consultation counts.
        self.armed = any(r > 0.0 for r in plan.rates.values()) and (
            plan.max_faults is None or plan.max_faults > 0
        )

    @property
    def total_fired(self) -> int:
        """Faults raised so far, across all sites."""
        return sum(self.fired.values())

    def should_fault(self, site: str) -> bool:
        """Advance the schedule for one consultation of ``site``."""
        if site not in SITE_ERRORS:
            raise ConfigurationError(f"unknown fault site {site!r}")
        self.checks[site] = self.checks.get(site, 0) + 1
        rate = self.plan.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if (
            self.plan.max_faults is not None
            and self.total_fired >= self.plan.max_faults
        ):
            return False
        if self._rng.random() >= rate:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        if self.journal is not None:
            self.journal.record(
                "fault.fired", site=site, count=self.fired[site]
            )
        return True

    def check(self, site: str, detail: str = "") -> None:
        """Raise the site's fault error if the schedule fires."""
        if self.should_fault(site):
            exc_type, message = SITE_ERRORS[site]
            raise exc_type(f"{message}{f' ({detail})' if detail else ''} [site={site}]")

    def draw(self, n: int) -> int:
        """A deterministic integer in ``[0, n)`` from the plan's stream.

        Data-shaping sites (:data:`WAL_SITES`) need not just *whether* a
        fault fires but *where* — the torn offset, the flipped bit. Drawing
        from the same seeded stream keeps the whole chaos schedule a pure
        function of ``(seed, sequence of consultations)``.
        """
        if n <= 0:
            raise ConfigurationError(f"draw needs a positive bound, got {n}")
        return self._rng.randrange(n)


class RetryPolicy:
    """Exponential backoff with bounded, seeded jitter.

    ``backoff(attempt)`` returns ``min(base * multiplier**attempt, cap)``
    plus a uniform jitter in ``[0, jitter * delay]`` — never more than
    ``cap * (1 + jitter)`` total, so a chaos run's worst-case retry
    penalty is computable up front. Units are the caller's (CPU cycles
    for the memory fabric, microseconds for the storage fabric).
    """

    def __init__(
        self,
        retries: int = 3,
        base: float = 20_000.0,
        multiplier: float = 2.0,
        cap: float = 2_000_000.0,
        jitter: float = 0.25,
        seed: int = 0,
    ):
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if base < 0 or cap < 0:
            raise ConfigurationError("backoff base and cap must be >= 0")
        if multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {jitter}")
        self.retries = retries
        self.base = base
        self.multiplier = multiplier
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        raw = min(self.base * self.multiplier**attempt, self.cap)
        return raw + raw * self.jitter * self._rng.random()


class BreakerState(enum.Enum):
    """Circuit-breaker life cycle: CLOSED (healthy) → OPEN (failing,
    short-circuit to the fallback) → HALF_OPEN (probing recovery)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker guarding one device.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` denies ``cooldown`` calls (each a query that goes
    straight to the software path), then half-opens and admits a single
    trial. Trial success closes the breaker; trial failure re-opens it.
    The simulation has no wall clock, so the cooldown is counted in
    denied calls rather than seconds — same shape, deterministic.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: int = 8):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 1:
            raise ConfigurationError(f"cooldown must be >= 1, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._denied_since_open = 0
        #: Times the breaker tripped CLOSED/HALF_OPEN → OPEN.
        self.times_opened = 0
        #: Optional :class:`~repro.obs.FlightRecorder`; open/close
        #: transitions are journaled when one is attached.
        self.journal = None

    def allow(self) -> bool:
        """May the protected device be attempted right now?"""
        if self.state is BreakerState.OPEN:
            self._denied_since_open += 1
            if self._denied_since_open >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
            return False
        return True

    def record_success(self) -> None:
        """The protected device answered: close and reset."""
        self._consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            if self.journal is not None:
                self.journal.record(
                    "breaker.close", from_state=self.state.value
                )
            self.state = BreakerState.CLOSED

    def record_failure(self) -> None:
        """The protected device faulted; may trip the breaker open."""
        self._consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
        elif (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        if self.journal is not None:
            self.journal.record(
                "breaker.open",
                from_state=self.state.value,
                consecutive_failures=self._consecutive_failures,
            )
        self.state = BreakerState.OPEN
        self._denied_since_open = 0
        self.times_opened += 1
