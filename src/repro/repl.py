"""``python -m repro.repl`` — the interactive SQL shell.

A psql-flavoured front end over the one statement pipeline
(:class:`repro.db.sql.Session`): multi-line statements accumulate until
a terminating ``;``, results print as aligned tables, ``EXPLAIN`` shows
the optimizer's plan, and ``EXPLAIN ANALYZE`` renders the span tree of
the actual run — the same tracer output every other layer uses.

Backslash commands (``\\help`` lists them) handle the shell-side verbs:
``\\dt`` lists tables, ``\\d t`` describes one, ``\\timing`` toggles
per-statement simulated-cycle reporting, ``\\q`` quits.

The same machinery is scriptable — ``--file script.sql`` or stdin runs a
script and exits — and :func:`run_script` returns the session transcript
as a string, which is what the golden-file tests snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional

from repro.db.sql.pipeline import Session, StatementResult, split_statements
from repro.errors import ReproError
from repro.obs import MetricsRegistry, Tracer

PROMPT = "repro=> "
CONTINUE = "repro-> "


# ----------------------------------------------------------------------
# Result rendering.
# ----------------------------------------------------------------------
def _fmt_cell(value) -> str:
    if isinstance(value, float):
        # Trim float noise but keep .0 so numeric columns read as numeric.
        text = f"{value:.6f}".rstrip("0")
        return text + "0" if text.endswith(".") else text
    return str(value)


def render_table(names, rows) -> str:
    """Aligned psql-style table with a ``(N rows)`` footer."""
    cells = [[_fmt_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(name)), *(len(r[i]) for r in cells)) if cells else len(str(name))
        for i, name in enumerate(names)
    ]
    header = " | ".join(str(n).ljust(w) for n, w in zip(names, widths))
    rule = "-+-".join("-" * w for w in widths)
    lines = [f" {header}".rstrip(), f"-{rule}-"]
    for row in cells:
        lines.append(
            (" " + " | ".join(c.ljust(w) for c, w in zip(row, widths))).rstrip()
        )
    n = len(rows)
    lines.append(f"({n} row{'' if n == 1 else 's'})")
    return "\n".join(lines)


_DML_TAGS = {"insert": "INSERT", "update": "UPDATE", "delete": "DELETE"}


def format_result(result: StatementResult, timing: bool = False) -> str:
    """One statement's terminal output (sans trailing newline)."""
    if result.kind == "select":
        out = render_table(result.names, result.rows)
    elif result.kind in _DML_TAGS:
        out = f"{_DML_TAGS[result.kind]} {result.rows_affected}"
    elif result.kind == "explain":
        out = result.plan or ""
    else:
        out = result.kind.upper().replace("CREATE", "CREATE TABLE").replace(
            "DROP", "DROP TABLE"
        )
    if timing:
        out += f"\nTime: {result.cycles:.0f} simulated cycles"
    return out


# ----------------------------------------------------------------------
# The shell.
# ----------------------------------------------------------------------
class Repl:
    """Line-at-a-time shell state: statement buffering + meta commands."""

    def __init__(
        self,
        session: Optional[Session] = None,
        write: Optional[Callable[[str], None]] = None,
    ):
        self.session = session if session is not None else Session(tracer=Tracer())
        self.write = write if write is not None else _stdout_write
        self.timing = False
        self.done = False
        self._buffer: List[str] = []

    @property
    def prompt(self) -> str:
        return CONTINUE if self._buffer else PROMPT

    def feed(self, line: str) -> None:
        """Consume one input line: buffer, execute, or run a meta command."""
        stripped = line.strip()
        if stripped.startswith("\\"):
            # Meta commands run immediately, even mid-statement (psql-like);
            # the statement buffer is left intact.
            self._meta(stripped)
            return
        if not self._buffer and not stripped:
            return
        self._buffer.append(line)
        text = "\n".join(self._buffer)
        cut = _last_terminator(text)
        if cut is None:
            return
        head, rest = text[: cut + 1], text[cut + 1 :].strip()
        self._buffer = []
        for sql in split_statements(head):
            self._run(sql)
        if rest:  # same-line trailing input ("SELECT 1; \q")
            self.feed(rest)

    def _run(self, sql: str) -> None:
        try:
            result = self.session.execute(sql)
        except ReproError as exc:
            self.write(f"ERROR: {exc}")
            return
        self.write(format_result(result, self.timing))

    # ------------------------------------------------------------------
    # Backslash commands.
    # ------------------------------------------------------------------
    def _meta(self, command: str) -> None:
        parts = command.split()
        name, args = parts[0], parts[1:]
        if name in ("\\q", "\\quit"):
            self.done = True
        elif name == "\\timing":
            self.timing = not self.timing
            self.write(f"Timing is {'on' if self.timing else 'off'}.")
        elif name == "\\dt":
            tables = sorted(
                self.session.catalog.tables(), key=lambda t: t.schema.name
            )
            if not tables:
                self.write("No tables.")
                return
            rows = [(t.schema.name, t.nrows) for t in tables]
            self.write(render_table(("table", "rows"), rows))
        elif name == "\\d":
            if not args:
                self.write("\\d needs a table name")
                return
            try:
                table = self.session.catalog.table(args[0])
            except ReproError as exc:
                self.write(f"ERROR: {exc}")
                return
            rows = [
                (c.name, c.dtype.name, c.dtype.width)
                for c in table.schema.columns
            ]
            self.write(render_table(("column", "type", "bytes"), rows))
            if table.schema.mvcc:
                self.write("MVCC: versioned rows (begin_ts/end_ts stamps)")
        elif name == "\\trace":
            trace = self.session.last_trace
            if trace is None:
                self.write("No trace recorded.")
            else:
                self.write(trace.render())
        elif name in ("\\help", "\\?"):
            self.write(
                "\\q           quit\n"
                "\\dt          list tables\n"
                "\\d TABLE     describe a table\n"
                "\\timing      toggle simulated-cycle timing\n"
                "\\trace       span tree of the last statement\n"
                "\\help        this help\n"
                "Statements end with ';'. EXPLAIN / EXPLAIN ANALYZE work."
            )
        else:
            self.write(f"unknown command {name!r} — try \\help")


def _stdout_write(text: str) -> None:
    print(text)


def _last_terminator(text: str) -> Optional[int]:
    """Index of the last statement-terminating ``;`` in ``text``, or None
    (quote-aware: a ``;`` inside a string literal does not terminate)."""
    in_string = False
    last = None
    for i, ch in enumerate(text):
        if ch == "'":
            in_string = not in_string
        elif ch == ";" and not in_string:
            last = i
    return last


# ----------------------------------------------------------------------
# Script mode (the golden tests drive this).
# ----------------------------------------------------------------------
def run_script(
    text: str,
    session: Optional[Session] = None,
    echo: bool = True,
) -> str:
    """Run ``text`` as shell input, returning the transcript.

    With ``echo`` each input line appears prefixed by the prompt it
    would have shown interactively, so the transcript reads like a
    recorded session — the format the golden files under
    ``tests/golden/sql/`` store.
    """
    chunks: List[str] = []
    repl = Repl(session=session, write=lambda s: chunks.append(s))
    for line in text.splitlines():
        if echo:
            chunks.append(repl.prompt + line)
        repl.feed(line)
        if repl.done:
            break
    return "\n".join(chunks) + "\n"


# ----------------------------------------------------------------------
# Bootstrap datasets.
# ----------------------------------------------------------------------
_DEMO_SCRIPT = """
CREATE TABLE pets (id INT32, species CHAR(8), grams INT32);
INSERT INTO pets (id, species, grams) VALUES
  (1, 'cat', 4200), (2, 'dog', 9100), (3, 'cat', 3800),
  (4, 'gecko', 55), (5, 'dog', 30100), (6, 'cat', 5100);
"""


def _load_demo(session: Session) -> None:
    for sql in split_statements(_DEMO_SCRIPT):
        session.execute(sql)


def _load_tpch(session: Session, scale_rows: int) -> None:
    from repro.workloads.tpch import generate_orders, generate_lineitem

    _, lineitem = generate_lineitem(scale_rows, catalog=session.catalog)
    generate_orders(lineitem, catalog=session.catalog)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.repl",
        description="Interactive SQL shell over the repro statement pipeline.",
    )
    parser.add_argument(
        "--demo", action="store_true", help="preload a small demo table"
    )
    parser.add_argument(
        "--tpch",
        action="store_true",
        help="preload generated TPC-H lineitem + orders",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=10_000,
        help="lineitem rows for --tpch (default 10000)",
    )
    parser.add_argument(
        "--exec-mode",
        choices=("vector", "volcano"),
        default="vector",
        help="engine execution mode",
    )
    parser.add_argument(
        "--file", help="run this SQL script instead of reading stdin"
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus exposition on exit",
    )
    args = parser.parse_args(argv)

    metrics = MetricsRegistry() if args.metrics else None
    session = Session(
        tracer=Tracer(), metrics=metrics, exec_mode=args.exec_mode
    )
    if args.demo:
        _load_demo(session)
    if args.tpch:
        _load_tpch(session, args.rows)

    if args.file:
        with open(args.file) as f:
            sys.stdout.write(run_script(f.read(), session=session, echo=False))
    elif not sys.stdin.isatty():
        sys.stdout.write(run_script(sys.stdin.read(), session=session))
    else:
        repl = Repl(session=session)
        print("repro SQL shell — \\help for help, \\q to quit.")
        while not repl.done:
            try:
                line = input(repl.prompt)
            except EOFError:
                print()
                break
            except KeyboardInterrupt:
                print()
                continue
            repl.feed(line)
    session.close()
    if metrics is not None:
        sys.stdout.write(metrics.to_prometheus())
    return 0


if __name__ == "__main__":
    sys.exit(main())
