"""Cycle ledger: where did a query's simulated time go?

Every engine run fills one :class:`CostLedger` with named buckets so the
benchmark harness and the examples can report not just totals but the
*decomposition* the paper argues about (data movement vs compute vs
fabric overheads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CostLedger:
    """Accumulates CPU cycles into named buckets plus traffic counters."""

    buckets: Dict[str, float] = field(default_factory=dict)
    dram_bytes: float = 0.0

    # Canonical bucket names used across the engines.
    CPU = "cpu"
    MEMORY = "memory"
    FABRIC = "fabric_produce"
    STALL = "fabric_stall"
    CONFIGURE = "fabric_configure"
    RECONSTRUCT = "tuple_reconstruction"
    #: Backoff waits + wasted fabric work while retrying injected faults.
    RETRY = "fault_retry"
    #: Cycles attributable to running degraded (software fallback path).
    DEGRADED = "degraded_fallback"
    #: Write-ahead-log appends (encode + simulated NAND program time).
    WAL_APPEND = "wal_append"
    #: Checkpoint snapshot serialization + device write.
    WAL_CHECKPOINT = "wal_checkpoint"
    #: Log read-back, checksum validation, and redo during recovery.
    WAL_RECOVERY = "wal_recovery"

    def charge(self, bucket: str, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"negative charge {cycles} to {bucket!r}")
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + cycles

    def charge_traffic(self, nbytes: float) -> None:
        self.dram_bytes += nbytes

    @property
    def total_cycles(self) -> float:
        return sum(self.buckets.values())

    def get(self, bucket: str) -> float:
        return self.buckets.get(bucket, 0.0)

    def merge(self, other: "CostLedger") -> None:
        for name, cycles in other.buckets.items():
            self.charge(name, cycles)
        self.dram_bytes += other.dram_bytes

    def breakdown(self) -> Dict[str, float]:
        """Bucket → fraction of the total, for reports."""
        total = self.total_cycles
        if total == 0:
            return {}
        return {name: cycles / total for name, cycles in sorted(self.buckets.items())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.0f}" for k, v in sorted(self.buckets.items()))
        return f"CostLedger({inner}, dram_bytes={self.dram_bytes:.0f})"
