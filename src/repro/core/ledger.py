"""Cycle ledger: where did a query's simulated time go?

Every engine run fills one :class:`CostLedger` with named buckets so the
benchmark harness and the examples can report not just totals but the
*decomposition* the paper argues about (data movement vs compute vs
fabric overheads).

A ledger can carry a :class:`repro.obs.Tracer`; every charge is then
*also* recorded as an event on the tracer's currently-open span, giving
the hierarchical attribution of :mod:`repro.obs` without changing the
flat accounting in any way — the dict accumulation below is exactly what
it was before spans existed, so totals stay bit-identical whether or not
a tracer is attached (property-tested in
``tests/test_trace_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import MetricsRegistry, Tracer


@dataclass
class CostLedger:
    """Accumulates CPU cycles into named buckets plus traffic counters."""

    buckets: Dict[str, float] = field(default_factory=dict)
    dram_bytes: float = 0.0
    #: Optional observability hook: charges dual-write to this tracer's
    #: current span. Excluded from equality — two ledgers with the same
    #: buckets are the same cost, traced or not.
    tracer: Optional["Tracer"] = field(default=None, compare=False, repr=False)
    #: Optional metrics hook: every charge advances this registry's
    #: *simulated clock* (driving its time-series sampler). Like the
    #: tracer, excluded from equality and a pure observer — the dict
    #: accumulation below never changes.
    metrics: Optional["MetricsRegistry"] = field(
        default=None, compare=False, repr=False
    )

    # Canonical bucket names used across the engines.
    CPU = "cpu"
    MEMORY = "memory"
    FABRIC = "fabric_produce"
    STALL = "fabric_stall"
    CONFIGURE = "fabric_configure"
    RECONSTRUCT = "tuple_reconstruction"
    #: Backoff waits + wasted fabric work while retrying injected faults.
    RETRY = "fault_retry"
    #: Cycles attributable to running degraded (software fallback path).
    DEGRADED = "degraded_fallback"
    #: Write-ahead-log appends (encode + simulated NAND program time).
    WAL_APPEND = "wal_append"
    #: Checkpoint snapshot serialization + device write.
    WAL_CHECKPOINT = "wal_checkpoint"
    #: Log read-back, checksum validation, and redo during recovery.
    WAL_RECOVERY = "wal_recovery"
    #: Serving front door: simulated time while admitted requests run.
    SERVE_EXEC = "serve_execute"
    #: Serving front door: simulated time with every slot idle (waiting
    #: on the open-loop arrival process).
    SERVE_IDLE = "serve_idle"
    #: Query-fragment compilation on a code-cache miss (paper §III-B).
    PLAN_COMPILE = "plan_compile"
    #: Scatter-gather: bytes a shard fragment reads off its base table
    #: (touched columns + MVCC stamps, priced per visible-candidate row).
    DIST_SCAN = "dist_scan"
    #: Scatter-gather: predicate evaluation on a shard (per row x term).
    DIST_FILTER = "dist_filter"
    #: Scatter-gather: partial aggregation / projection on a shard (per
    #: qualifying row).
    DIST_AGG = "dist_agg"
    #: Scatter-gather: coordinator-side merge of shard partials. All four
    #: dist buckets charge *integer* cycle amounts proportional to data
    #: only (never to shard count, retries, or hedges), so their sums are
    #: bit-identical across 1/2/8-shard runs of the same plan.
    DIST_GATHER = "dist_gather"

    #: Every bucket the simulator charges, in report order. ``breakdown``
    #: returns all of them — including zeros — so reports never silently
    #: drop a dimension.
    KNOWN_BUCKETS = (
        CPU,
        MEMORY,
        FABRIC,
        STALL,
        CONFIGURE,
        RECONSTRUCT,
        RETRY,
        DEGRADED,
        WAL_APPEND,
        WAL_CHECKPOINT,
        WAL_RECOVERY,
        SERVE_EXEC,
        SERVE_IDLE,
        PLAN_COMPILE,
        DIST_SCAN,
        DIST_FILTER,
        DIST_AGG,
        DIST_GATHER,
    )

    def charge(self, bucket: str, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"negative charge {cycles} to {bucket!r}")
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + cycles
        if self.tracer is not None:
            self.tracer.record(bucket, cycles)
        if self.metrics is not None:
            self.metrics.advance(cycles)

    def charge_traffic(self, nbytes: float) -> None:
        self.dram_bytes += nbytes
        if self.tracer is not None:
            self.tracer.record_traffic(nbytes)

    @property
    def total_cycles(self) -> float:
        return sum(self.buckets.values())

    def get(self, bucket: str) -> float:
        return self.buckets.get(bucket, 0.0)

    def merge(self, other: "CostLedger") -> None:
        for name, cycles in other.buckets.items():
            self.charge(name, cycles)
        self.dram_bytes += other.dram_bytes

    def breakdown(self) -> Dict[str, float]:
        """Bucket → fraction of the total, for reports.

        Always covers every :data:`KNOWN_BUCKETS` entry (plus any ad-hoc
        bucket actually charged); on a zero-total ledger every fraction
        is 0.0 rather than the dict being empty, so degraded/empty runs
        still render a full table.
        """
        total = self.total_cycles
        names = list(self.KNOWN_BUCKETS)
        names.extend(sorted(set(self.buckets) - set(names)))
        if total == 0:
            return {name: 0.0 for name in names}
        return {name: self.buckets.get(name, 0.0) / total for name in names}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.0f}" for k, v in sorted(self.buckets.items()))
        return f"CostLedger({inner}, dram_bytes={self.dram_bytes:.0f})"
