"""Data geometries: byte-exact descriptors of arbitrary column groups.

A *data geometry* (paper Section II, "accessing arbitrary data
geometries") names any subset of bytes of a row-major relational frame:
which byte ranges of each row are wanted and how wide a row is. The
Relational Fabric hardware is programmed with exactly this information —
"fine-grained information on the exact byte-wise location of data items"
(Section IV-A) — so the geometry is the contract between the software
stack and the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class FieldSlice:
    """One column's byte range within a row, plus how to decode it.

    ``dtype`` is a numpy dtype string (e.g. ``"<i8"``) when the field is a
    fixed-width scalar, or ``None`` for opaque bytes (CHAR payloads).
    """

    name: str
    offset: int
    width: int
    dtype: Optional[str] = None

    def __post_init__(self):
        if self.offset < 0:
            raise GeometryError(f"field {self.name!r}: negative offset {self.offset}")
        if self.width <= 0:
            raise GeometryError(f"field {self.name!r}: non-positive width {self.width}")
        if self.dtype is not None and np.dtype(self.dtype).itemsize != self.width:
            raise GeometryError(
                f"field {self.name!r}: dtype {self.dtype} itemsize "
                f"{np.dtype(self.dtype).itemsize} != width {self.width}"
            )

    @property
    def end(self) -> int:
        return self.offset + self.width


@dataclass(frozen=True)
class DataGeometry:
    """An ordered group of non-overlapping field slices over one row layout.

    The packed output row places the fields back to back in declaration
    order; :meth:`packed_offset_of` gives each field's position there.
    """

    row_stride: int
    fields: Tuple[FieldSlice, ...]

    def __post_init__(self):
        if self.row_stride <= 0:
            raise GeometryError(f"non-positive row stride {self.row_stride}")
        if not self.fields:
            raise GeometryError("a geometry needs at least one field")
        seen = set()
        for f in self.fields:
            if f.end > self.row_stride:
                raise GeometryError(
                    f"field {f.name!r} [{f.offset}, {f.end}) exceeds row "
                    f"stride {self.row_stride}"
                )
            if f.name in seen:
                raise GeometryError(f"duplicate field name {f.name!r}")
            seen.add(f.name)
        for a, b in zip(
            sorted(self.fields, key=lambda f: f.offset),
            sorted(self.fields, key=lambda f: f.offset)[1:],
        ):
            if b.offset < a.end:
                raise GeometryError(
                    f"fields {a.name!r} and {b.name!r} overlap "
                    f"([{a.offset},{a.end}) vs [{b.offset},{b.end}))"
                )

    @property
    def packed_width(self) -> int:
        """Bytes per row of the packed (transformed) layout."""
        return sum(f.width for f in self.fields)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> FieldSlice:
        for f in self.fields:
            if f.name == name:
                return f
        raise GeometryError(f"no field named {name!r} in geometry")

    def packed_offset_of(self, name: str) -> int:
        """Byte offset of ``name`` within the packed output row."""
        offset = 0
        for f in self.fields:
            if f.name == name:
                return offset
            offset += f.width
        raise GeometryError(f"no field named {name!r} in geometry")

    def packed_field(self, name: str) -> FieldSlice:
        """The field slice relocated to its packed-layout position."""
        f = self.field(name)
        return FieldSlice(f.name, self.packed_offset_of(name), f.width, f.dtype)

    def subset(self, names: Iterable[str]) -> "DataGeometry":
        """A new geometry over the same rows keeping only ``names``."""
        wanted = list(names)
        return DataGeometry(
            row_stride=self.row_stride,
            fields=tuple(self.field(n) for n in wanted),
        )

    def selectivity_of_bytes(self) -> float:
        """Fraction of each row the geometry ships (the data-movement win)."""
        return self.packed_width / self.row_stride


def full_row_geometry(row_stride: int, name: str = "row") -> DataGeometry:
    """The degenerate geometry selecting every byte (row-wise access)."""
    return DataGeometry(
        row_stride=row_stride,
        fields=(FieldSlice(name=name, offset=0, width=row_stride),),
    )
