"""Relational Fabric core: geometries, the packer, ephemeral variables,
fabric interfaces, MVCC visibility filtering, and pushed-down selection."""

from repro.core.ephemeral import EphemeralColumnGroup, Visibility
from repro.core.fabric import RelationalFabric, RelationalMemory, configure
from repro.core.geometry import DataGeometry, FieldSlice, full_row_geometry
from repro.core.ledger import CostLedger
from repro.core.mvcc_filter import (
    LIVE_TS,
    NEVER_TS,
    latest_mask,
    visible_mask,
    visible_mask_batched,
)
from repro.core.packer import (
    decode_field,
    decode_frame_field,
    pack,
    unpack,
)
from repro.core.tensor import MatrixSlice, TensorFabric, matrix_geometry
from repro.core.selection import (
    CompareOp,
    FabricAggregate,
    FabricFilter,
    FabricPredicate,
)

__all__ = [
    "CompareOp",
    "CostLedger",
    "DataGeometry",
    "EphemeralColumnGroup",
    "FabricAggregate",
    "FabricFilter",
    "FabricPredicate",
    "FieldSlice",
    "LIVE_TS",
    "MatrixSlice",
    "TensorFabric",
    "matrix_geometry",
    "NEVER_TS",
    "RelationalFabric",
    "RelationalMemory",
    "Visibility",
    "configure",
    "decode_field",
    "decode_frame_field",
    "full_row_geometry",
    "latest_mask",
    "pack",
    "unpack",
    "visible_mask",
    "visible_mask_batched",
]
