"""Selection (and aggregation) pushed into the fabric — paper Section IV-B.

"Pushing Other Relational Operators": beyond projection, the fabric can
evaluate simple comparisons per row and emit only qualifying rows, or even
reduce a column group to an aggregate, so the ephemeral variable contains
"only the required data or the aggregation result".

A :class:`FabricPredicate` is deliberately restricted to what cheap
comparator hardware can do: one field against one constant, or a
conjunction of such terms (:class:`FabricFilter`). Anything richer stays
on the CPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.core.geometry import DataGeometry
from repro.core.packer import decode_frame_field
from repro.errors import GeometryError

Number = Union[int, float]


class CompareOp(enum.Enum):
    """Comparator operations realizable as single hardware comparators."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    def apply(self, values: np.ndarray, constant: Number) -> np.ndarray:
        if self is CompareOp.LT:
            return values < constant
        if self is CompareOp.LE:
            return values <= constant
        if self is CompareOp.GT:
            return values > constant
        if self is CompareOp.GE:
            return values >= constant
        if self is CompareOp.EQ:
            return values == constant
        return values != constant


@dataclass(frozen=True)
class FabricPredicate:
    """``field <op> constant`` evaluated by a fabric comparator."""

    field: str
    op: CompareOp
    constant: Number

    def evaluate(self, frame: np.ndarray, geometry: DataGeometry) -> np.ndarray:
        values = decode_frame_field(frame, geometry, self.field)
        if values.ndim != 1:
            raise GeometryError(
                f"fabric predicates need scalar fields; {self.field!r} is opaque"
            )
        return self.op.apply(values, self.constant)


@dataclass(frozen=True)
class FabricFilter:
    """A conjunction of fabric predicates (ANDed comparator outputs)."""

    predicates: Tuple[FabricPredicate, ...]

    @classmethod
    def of(cls, *predicates: FabricPredicate) -> "FabricFilter":
        return cls(predicates=tuple(predicates))

    def __len__(self) -> int:
        return len(self.predicates)

    def evaluate(self, frame: np.ndarray, geometry: DataGeometry) -> np.ndarray:
        mask = np.ones(frame.shape[0], dtype=bool)
        for pred in self.predicates:
            mask &= pred.evaluate(frame, geometry)
        return mask

    def fields(self) -> Tuple[str, ...]:
        return tuple(p.field for p in self.predicates)


@dataclass(frozen=True)
class FabricAggregate:
    """A reduction the fabric can compute over one field of the stream.

    Supported kinds mirror simple adder/comparator trees: ``sum``,
    ``min``, ``max``, ``count``.
    """

    field: str
    kind: str  # "sum" | "min" | "max" | "count"

    _KINDS = ("sum", "min", "max", "count")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise GeometryError(f"unsupported fabric aggregate {self.kind!r}")

    def evaluate(
        self, frame: np.ndarray, geometry: DataGeometry, mask: np.ndarray = None
    ) -> Number:
        if self.kind == "count":
            n = frame.shape[0] if mask is None else int(np.count_nonzero(mask))
            return n
        values = decode_frame_field(frame, geometry, self.field)
        if mask is not None:
            values = values[mask]
        if values.size == 0:
            return 0 if self.kind == "sum" else None
        if self.kind == "sum":
            return values.sum(dtype=np.float64 if values.dtype.kind == "f" else np.int64)
        if self.kind == "min":
            return values.min()
        return values.max()
