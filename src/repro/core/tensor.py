"""Ephemeral slices of matrices and tensors (paper §VII, Q1).

"data transformation has great potential for other data-intensive
applications over multi-dimensional data (matrix/tensor slicing and
vectorized operations on matrix/tensor slices)" — the same hardware that
turns rows into column groups turns row-major matrices into dense
submatrices: a matrix row is just a wide tuple whose "columns" are
element ranges.

:func:`slice_matrix` builds the geometry for an arbitrary
``[row_lo:row_hi, col_lo:col_hi]`` window, runs the packer for the bytes
and the engine model for the cost, and returns both. The data-movement
win is identical in kind to the relational one: a legacy fetch drags
whole matrix rows through the caches; the fabric ships only the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.geometry import DataGeometry, FieldSlice
from repro.core.packer import pack
from repro.errors import GeometryError
from repro.hw.config import PlatformConfig, default_platform
from repro.hw.engine import RelationalMemoryEngineModel, RmTransformReport


def matrix_geometry(
    ncols: int, itemsize: int, col_lo: int, col_hi: int
) -> DataGeometry:
    """Geometry selecting columns ``[col_lo, col_hi)`` of a row-major
    matrix with ``ncols`` elements of ``itemsize`` bytes per row."""
    if not 0 <= col_lo < col_hi <= ncols:
        raise GeometryError(
            f"column window [{col_lo}, {col_hi}) outside matrix of {ncols} columns"
        )
    return DataGeometry(
        row_stride=ncols * itemsize,
        fields=(
            FieldSlice(
                name="window",
                offset=col_lo * itemsize,
                width=(col_hi - col_lo) * itemsize,
            ),
        ),
    )


@dataclass
class MatrixSlice:
    """A dense submatrix served by the fabric, with its cost report."""

    values: np.ndarray
    report: RmTransformReport

    @property
    def shape(self) -> Tuple[int, int]:
        return self.values.shape

    @property
    def bytes_shipped(self) -> int:
        return self.report.out_bytes

    def legacy_bytes(self, full_row_bytes: int) -> int:
        """Bytes a row-granular legacy fetch of the same rows would move."""
        return self.values.shape[0] * full_row_bytes


class TensorFabric:
    """The fabric specialized for multi-dimensional slicing."""

    def __init__(self, platform: Optional[PlatformConfig] = None):
        self.platform = platform or default_platform()
        self.engine = RelationalMemoryEngineModel(self.platform)

    def slice_matrix(
        self,
        matrix: np.ndarray,
        rows: Tuple[int, int],
        cols: Tuple[int, int],
    ) -> MatrixSlice:
        """Dense copy of ``matrix[rows[0]:rows[1], cols[0]:cols[1]]``
        with fabric cost accounting.

        ``matrix`` must be 2-D, C-contiguous, of a fixed-width dtype.
        """
        if matrix.ndim != 2:
            raise GeometryError(f"need a 2-D matrix, got {matrix.ndim}-D")
        if not matrix.flags["C_CONTIGUOUS"]:
            raise GeometryError("matrix must be row-major (C-contiguous)")
        row_lo, row_hi = rows
        if not 0 <= row_lo <= row_hi <= matrix.shape[0]:
            raise GeometryError(f"row window {rows} outside {matrix.shape}")
        itemsize = matrix.dtype.itemsize
        geometry = matrix_geometry(matrix.shape[1], itemsize, cols[0], cols[1])

        frame = matrix[row_lo:row_hi].view(np.uint8).reshape(
            row_hi - row_lo, matrix.shape[1] * itemsize
        )
        packed = pack(frame, geometry)
        values = (
            np.ascontiguousarray(packed)
            .view(matrix.dtype)
            .reshape(row_hi - row_lo, cols[1] - cols[0])
        )
        report = self.engine.transform(
            nrows=row_hi - row_lo,
            row_stride=geometry.row_stride,
            out_bytes_per_row=geometry.packed_width,
        )
        return MatrixSlice(values=values, report=report)

    def slice_tensor_3d(
        self,
        tensor: np.ndarray,
        planes: Tuple[int, int],
        rows: Tuple[int, int],
        cols: Tuple[int, int],
    ) -> MatrixSlice:
        """3-D window: a row-major tensor is a matrix of (plane*row)
        super-rows; the plane and row windows select super-rows, the
        column window is the per-super-row geometry."""
        if tensor.ndim != 3:
            raise GeometryError(f"need a 3-D tensor, got {tensor.ndim}-D")
        p_lo, p_hi = planes
        r_lo, r_hi = rows
        if not (0 <= p_lo <= p_hi <= tensor.shape[0]):
            raise GeometryError(f"plane window {planes} outside {tensor.shape}")
        # Slice each selected plane's row window; the fabric treats the
        # selected super-rows as one streamed request.
        parts = []
        total_report = None
        for p in range(p_lo, p_hi):
            part = self.slice_matrix(tensor[p], (r_lo, r_hi), cols)
            parts.append(part.values)
            total_report = (
                part.report
                if total_report is None
                else _merge_reports(total_report, part.report)
            )
        if not parts:
            raise GeometryError("empty plane window")
        values = np.stack(parts)
        return MatrixSlice(values=values, report=total_report)


def _merge_reports(a: RmTransformReport, b: RmTransformReport) -> RmTransformReport:
    return RmTransformReport(
        nrows=a.nrows + b.nrows,
        out_bytes=a.out_bytes + b.out_bytes,
        out_lines=a.out_lines + b.out_lines,
        produce_cycles=a.produce_cycles + b.produce_cycles,
        refill_stall_cycles=a.refill_stall_cycles + b.refill_stall_cycles,
        configure_cycles=a.configure_cycles,  # one configuration
        dram_bytes_touched=a.dram_bytes_touched + b.dram_bytes_touched,
        refills=a.refills + b.refills,
    )
