"""Hardware timestamp visibility filtering (paper Section III-C).

Every row of the base data carries two timestamp fields: ``begin_ts`` set
at insertion (start of validity) and ``end_ts`` set on deletion or
replacement (end of validity). "Every time the API is accessed, it
generates the column groups that contain the valid rows at the time of
the query" — the comparison happens *in the fabric*, so shipping only
valid versions costs the CPU nothing.

This module is the functional half (the masks); the timing half is the
``mvcc_filter=True`` path of :class:`repro.hw.engine.RelationalMemoryEngineModel`.
"""

from __future__ import annotations

import numpy as np

#: end_ts value meaning "still the live version".
LIVE_TS = np.iinfo(np.int64).max

#: begin_ts value of a slot that has never held a row.
NEVER_TS = np.iinfo(np.int64).max


def visible_mask(
    begin_ts: np.ndarray, end_ts: np.ndarray, snapshot_ts: int
) -> np.ndarray:
    """Rows valid at ``snapshot_ts``: ``begin_ts <= ts < end_ts``.

    Both timestamp arrays are int64, one entry per row slot; uncommitted
    rows carry ``begin_ts == NEVER_TS`` and are invisible to everyone.
    """
    return (begin_ts <= snapshot_ts) & (snapshot_ts < end_ts)


#: Rows per visibility batch: 64Ki slots keep both timestamp slices and
#: the mask inside L2 (64Ki * (8+8+1) bytes ≈ 1.1 MB).
DEFAULT_VISIBILITY_BATCH = 1 << 16


def visible_mask_batched(
    begin_ts: np.ndarray,
    end_ts: np.ndarray,
    snapshot_ts: int,
    batch_rows: int = DEFAULT_VISIBILITY_BATCH,
) -> np.ndarray:
    """:func:`visible_mask` computed in bounded row batches.

    Bit-identical output; the batching bounds the working set (two
    timestamp slices plus the mask slice stay cache-resident per batch)
    and writes each comparison straight into the output mask instead of
    materializing full-length temporaries. Engines use this so the
    visibility pass follows the same batch discipline as the trace-mode
    line kernel.
    """
    n = len(begin_ts)
    if batch_rows < 1:
        batch_rows = n or 1
    out = np.empty(n, dtype=bool)
    scratch = np.empty(min(batch_rows, n), dtype=bool)
    for start in range(0, n, batch_rows):
        stop = min(start + batch_rows, n)
        chunk = out[start:stop]
        np.less_equal(begin_ts[start:stop], snapshot_ts, out=chunk)
        s = scratch[: stop - start]
        np.greater(end_ts[start:stop], snapshot_ts, out=s)
        chunk &= s
    return out


def latest_mask(begin_ts: np.ndarray, end_ts: np.ndarray) -> np.ndarray:
    """Rows that are the current live version (read-committed latest)."""
    return (begin_ts != NEVER_TS) & (end_ts == LIVE_TS)


def version_count(begin_ts: np.ndarray, end_ts: np.ndarray) -> int:
    """How many row slots hold some committed version (live or dead)."""
    return int(np.count_nonzero(begin_ts != NEVER_TS))
