"""The row→packed-line dataflow of the fabric, bit-exact.

This is the *functional* half of the hardware: given a row-major frame
and a :class:`~repro.core.geometry.DataGeometry`, produce the densely
packed byte image the CPU would observe through an ephemeral variable.
The *timing* half lives in :mod:`repro.hw.engine`; keeping them separate
lets tests verify byte-exactness independently of cost calibration.

Frames are ``numpy`` arrays of shape ``(nrows, row_stride)`` and dtype
``uint8`` — the simulated main-memory image of a row-oriented table.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.geometry import DataGeometry
from repro.errors import GeometryError


def check_frame(frame: np.ndarray, geometry: DataGeometry) -> None:
    """Validate that ``frame`` is a row image matching ``geometry``."""
    if frame.ndim != 2:
        raise GeometryError(f"frame must be 2-D (rows × bytes), got {frame.ndim}-D")
    if frame.dtype != np.uint8:
        raise GeometryError(f"frame dtype must be uint8, got {frame.dtype}")
    if frame.shape[1] != geometry.row_stride:
        raise GeometryError(
            f"frame row width {frame.shape[1]} != geometry stride {geometry.row_stride}"
        )


def pack(
    frame: np.ndarray,
    geometry: DataGeometry,
    row_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Transform rows to the packed column-group layout.

    Returns a C-contiguous ``(n_selected, packed_width)`` uint8 array —
    the byte stream the fabric pushes toward the CPU cache. With
    ``row_mask`` (boolean, one entry per row) only qualifying rows are
    emitted, modelling selection or MVCC visibility pushed into the
    fabric.
    """
    check_frame(frame, geometry)
    src = frame if row_mask is None else frame[row_mask]
    parts = [src[:, f.offset : f.end] for f in geometry.fields]
    if len(parts) == 1:
        return np.ascontiguousarray(parts[0])
    return np.ascontiguousarray(np.concatenate(parts, axis=1))


def unpack(
    packed: np.ndarray,
    geometry: DataGeometry,
    fill: int = 0,
) -> np.ndarray:
    """Inverse of :func:`pack` for verification: scatter packed bytes back
    into a full-stride frame, filling untouched bytes with ``fill``.
    """
    if packed.ndim != 2 or packed.shape[1] != geometry.packed_width:
        raise GeometryError(
            f"packed image must be (n, {geometry.packed_width}), got {packed.shape}"
        )
    out = np.full((packed.shape[0], geometry.row_stride), fill, dtype=np.uint8)
    cursor = 0
    for f in geometry.fields:
        out[:, f.offset : f.end] = packed[:, cursor : cursor + f.width]
        cursor += f.width
    return out


def decode_field(packed: np.ndarray, geometry: DataGeometry, name: str) -> np.ndarray:
    """Decode one field of a packed image into a typed numpy array.

    Opaque (``dtype=None``) fields come back as ``(n, width)`` uint8.
    """
    f = geometry.packed_field(name)
    raw = np.ascontiguousarray(packed[:, f.offset : f.end])
    if f.dtype is None:
        return raw
    return raw.view(np.dtype(f.dtype)).reshape(-1)


def decode_frame_field(frame: np.ndarray, geometry: DataGeometry, name: str) -> np.ndarray:
    """Decode one field straight out of a row-major frame (the strided
    access path used by the row- and column-store baselines)."""
    check_frame(frame, geometry)
    f = geometry.field(name)
    raw = np.ascontiguousarray(frame[:, f.offset : f.end])
    if f.dtype is None:
        return raw
    return raw.view(np.dtype(f.dtype)).reshape(-1)
