"""The Relational Fabric interface and its in-memory instance.

``configure()`` is the paper's API (Figure 3, line 25): hand the fabric a
base table and the geometry of the columns you want, get back an
ephemeral variable whose reads behave as if the packed layout already
existed in memory.

Two instances exist in this reproduction:

* :class:`RelationalMemory` (here) — the fabric between CPU and DRAM;
* :class:`repro.storage.smartssd.RelationalStorage` — the fabric inside a
  computational SSD, sharing this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.core.ephemeral import EphemeralColumnGroup, Visibility
from repro.core.geometry import DataGeometry
from repro.core.selection import FabricFilter
from repro.errors import GeometryError
from repro.faults import FABRIC_CONFIGURE, FaultInjector
from repro.hw.config import PlatformConfig, default_platform
from repro.hw.engine import RelationalMemoryEngineModel
from repro.obs import Tracer, maybe_span


class RelationalFabric(ABC):
    """Anything that can serve ephemeral column groups over row data."""

    @abstractmethod
    def configure(
        self,
        frame: np.ndarray,
        geometry: DataGeometry,
        base_geometry: Optional[DataGeometry] = None,
        fabric_filter: Optional[FabricFilter] = None,
        visibility: Optional[Visibility] = None,
    ) -> EphemeralColumnGroup:
        """Create an ephemeral variable over ``frame`` with ``geometry``."""


class RelationalMemory(RelationalFabric):
    """The in-memory fabric instance (paper Sections II and IV-A).

    One engine model is shared across all ephemeral variables configured
    through the same ``RelationalMemory``, mirroring the single hardware
    engine multiplexed across queries.
    """

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.platform = platform or default_platform()
        self.fault_injector = fault_injector
        self.engine = RelationalMemoryEngineModel(
            self.platform, fault_injector=fault_injector
        )
        #: Observability hook: configure/refresh/pack open spans here.
        self.tracer = tracer

    def configure(
        self,
        frame: np.ndarray,
        geometry: DataGeometry,
        base_geometry: Optional[DataGeometry] = None,
        fabric_filter: Optional[FabricFilter] = None,
        visibility: Optional[Visibility] = None,
    ) -> EphemeralColumnGroup:
        with maybe_span(
            self.tracer,
            "fabric.geometry",
            layer="fabric",
            columns=",".join(geometry.field_names),
        ):
            if self.fault_injector is not None and self.fault_injector.armed:
                self.fault_injector.check(
                    FABRIC_CONFIGURE, detail=",".join(geometry.field_names)
                )
            if fabric_filter is not None and base_geometry is None:
                # Predicates must be resolvable; default to the projected
                # geometry and fail early if a field is missing.
                base_geometry = geometry
                for name in fabric_filter.fields():
                    geometry.field(name)  # raises GeometryError when absent
            group = EphemeralColumnGroup(
                frame=frame,
                geometry=geometry,
                engine=self.engine,
                fabric_filter=fabric_filter,
                visibility=visibility,
                tracer=self.tracer,
            )
            group._filter_geometry = base_geometry or geometry
        return group


def configure(
    frame: np.ndarray,
    geometry: DataGeometry,
    platform: Optional[PlatformConfig] = None,
    **kwargs,
) -> EphemeralColumnGroup:
    """Module-level convenience mirroring the C API in the paper's Fig. 3:
    ``cg = configure(the_table, QUERY)``."""
    return RelationalMemory(platform).configure(frame, geometry, **kwargs)
