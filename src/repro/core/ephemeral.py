"""Ephemeral variables: non-materialized aliases of column groups.

The paper's key API (Section II): an ephemeral variable names a subset of
columns of a row-major table; it is "never instantiated in main memory.
Instead, upon accessing such a variable, the underlying machinery is set
in motion and generates an on-the-fly projection of the requested columns
according to the format that maximizes data locality."

In this reproduction the *simulated memory image* (the row frame) is
indeed never altered — an :class:`EphemeralColumnGroup` computes the
packed byte stream on access (the Python-side array standing in for the
lines the fabric pushes toward the cache) and records the hardware cost
report of producing it. Re-reading after the base data or the snapshot
changed just means calling :meth:`refresh`, exactly like re-touching the
variable on the prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.geometry import DataGeometry
from repro.core.mvcc_filter import visible_mask
from repro.core.packer import decode_field, pack
from repro.core.selection import FabricFilter
from repro.errors import GeometryError
from repro.faults import FABRIC_CORRUPT
from repro.hw.engine import RelationalMemoryEngineModel, RmTransformReport
from repro.obs import Tracer, maybe_span


@dataclass(frozen=True)
class Visibility:
    """MVCC visibility inputs: per-row timestamps plus the snapshot."""

    begin_ts: np.ndarray
    end_ts: np.ndarray
    snapshot_ts: int


class EphemeralColumnGroup:
    """A read-only, densely packed alias of a column group.

    Created through :meth:`repro.core.fabric.RelationalMemory.configure`;
    not meant to be constructed directly.
    """

    def __init__(
        self,
        frame: np.ndarray,
        geometry: DataGeometry,
        engine: RelationalMemoryEngineModel,
        fabric_filter: Optional[FabricFilter] = None,
        visibility: Optional[Visibility] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._frame = frame
        self.geometry = geometry
        self._engine = engine
        self._filter = fabric_filter
        self._visibility = visibility
        self._tracer = tracer
        self._packed: Optional[np.ndarray] = None
        self._report: Optional[RmTransformReport] = None
        self._refreshes = 0

    # ------------------------------------------------------------------
    # Transformation machinery.
    # ------------------------------------------------------------------
    def refresh(self) -> "EphemeralColumnGroup":
        """(Re)run the on-the-fly transformation against the base frame."""
        with maybe_span(
            self._tracer,
            "fabric.refresh",
            layer="fabric",
            rows_in=self._frame.shape[0],
        ) as span:
            mask = self._current_mask()
            qualifying = None if mask is None else int(np.count_nonzero(mask))
            with maybe_span(self._tracer, "fabric.pack", layer="fabric"):
                self._packed = pack(self._frame, self.geometry, row_mask=mask)
            self._report = self._engine.transform(
                nrows=self._frame.shape[0],
                row_stride=self.geometry.row_stride,
                out_bytes_per_row=self.geometry.packed_width,
                qualifying_rows=qualifying,
                mvcc_filter=self._visibility is not None,
                fabric_predicates=len(self._filter) if self._filter else 0,
            )
            span.set_attrs(rows_out=self._packed.shape[0])
            span.add_counters(
                {
                    "refills": self._report.refills,
                    "out_bytes": self._report.out_bytes,
                    "fabric_dram_bytes": self._report.dram_bytes_touched,
                }
            )
            # The fabric pipeline's extent on the timeline (produce +
            # stalls); the consuming engine charges the exposed share.
            span.set_duration(
                self._report.produce_cycles + self._report.refill_stall_cycles
            )
            # The fabric checksums every packed line it pushes toward the
            # cache; a corrupt line is detected (never silently served) and
            # surfaces as a fabric fault the caller may retry.
            injector = self._engine.fault_injector
            if injector is not None and injector.armed:
                injector.check(
                    FABRIC_CORRUPT, detail=f"{self._packed.shape[0]} lines"
                )
            self._refreshes += 1
        return self

    def _current_mask(self) -> Optional[np.ndarray]:
        mask: Optional[np.ndarray] = None
        if self._visibility is not None:
            v = self._visibility
            mask = visible_mask(v.begin_ts, v.end_ts, v.snapshot_ts)
        if self._filter is not None:
            fmask = self._filter.evaluate(self._frame, self._base_geometry())
            mask = fmask if mask is None else (mask & fmask)
        return mask

    def _base_geometry(self) -> DataGeometry:
        # Predicates may reference fields outside the projected group; the
        # filter is evaluated against the base layout, which shares the
        # row stride. Field lookup happens via the filter's own fields, so
        # the projected geometry suffices when they coincide; otherwise the
        # caller passes a filter whose fields exist in the base geometry
        # attached at configure time.
        return self._filter_geometry

    @property
    def packed(self) -> np.ndarray:
        """The packed byte image (``(n, packed_width)`` uint8)."""
        if self._packed is None:
            self.refresh()
        return self._packed

    @property
    def report(self) -> RmTransformReport:
        """Hardware cost report of the most recent transformation."""
        if self._report is None:
            self.refresh()
        return self._report

    @property
    def refreshes(self) -> int:
        return self._refreshes

    # ------------------------------------------------------------------
    # Read API — what the CPU sees.
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of (visible, qualifying) rows in the group."""
        return self.packed.shape[0]

    def __len__(self) -> int:
        return self.length

    @property
    def packed_width(self) -> int:
        return self.geometry.packed_width

    def column(self, name: str) -> np.ndarray:
        """One field of the group as a typed numpy array."""
        return decode_field(self.packed, self.geometry, name)

    def columns(self) -> Dict[str, np.ndarray]:
        """All fields, decoded."""
        return {f.name: self.column(f.name) for f in self.geometry.fields}

    def __getitem__(self, i: int) -> Dict[str, object]:
        """Row access, like indexing the ephemeral struct array in Fig. 3."""
        if not 0 <= i < self.length:
            raise IndexError(i)
        row = {}
        cursor = 0
        packed = self.packed
        for f in self.geometry.fields:
            raw = packed[i, cursor : cursor + f.width]
            if f.dtype is None:
                row[f.name] = bytes(raw)
            else:
                row[f.name] = np.ascontiguousarray(raw).view(np.dtype(f.dtype))[0]
            cursor += f.width
        return row

    def __iter__(self) -> Iterator[Dict[str, object]]:
        for i in range(self.length):
            yield self[i]

    # Wired by the fabric at configure time (filter fields may live
    # outside the projected geometry).
    _filter_geometry: DataGeometry = None
