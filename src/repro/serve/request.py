"""Requests, tenant quotas, and the serving-layer configuration.

A :class:`Request` is the unit the front door schedules: a tenant's ask
to run one OLTP point transaction or one OLAP scan, carrying a priority
lane, a cost estimate (simulated cycles), and an optional absolute
deadline on the serve clock. Every request is resolved exactly once with
a :class:`Resolution` whose :class:`Outcome` says how it ended —
answered, answered degraded, throttled, shed, or deadline-expired — so
the chaos oracle can account for the whole population.

:class:`TenantConfig` / :class:`ServeConfig` are frozen declarative
configs, validated eagerly like :class:`repro.faults.FaultPlan`: a bad
quota is a :class:`~repro.errors.ConfigurationError` at construction,
never a mystery mid-run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, ReproError

#: The two priority lanes the front door schedules.
OLTP_LANE = "oltp"
OLAP_LANE = "olap"
LANES = (OLTP_LANE, OLAP_LANE)


class Outcome(enum.Enum):
    """How a request's life ended. Exactly one per request."""

    #: Admitted, dispatched, answered at full fidelity.
    COMPLETED = "completed"
    #: Admitted, dispatched while the overload breaker was open: answered
    #: from a sampled/partial scan and marked degraded (PR 1 discipline).
    DEGRADED = "degraded"
    #: Rejected at admission: the tenant's token bucket could not cover
    #: the cost estimate (:class:`~repro.errors.TenantThrottledError`).
    THROTTLED = "throttled"
    #: Rejected at admission: queue cap reached, or the ``serve.shed``
    #: chaos site forced a graceful shed.
    SHED = "shed"
    #: Admitted but its deadline passed before dispatch
    #: (:class:`~repro.errors.DeadlineExceededError`).
    EXPIRED = "expired"


#: Outcomes that consumed an admission slot (were enqueued).
ADMITTED_OUTCOMES = (Outcome.COMPLETED, Outcome.DEGRADED, Outcome.EXPIRED)
#: Outcomes rejected at the door.
REJECTED_OUTCOMES = (Outcome.THROTTLED, Outcome.SHED)


@dataclass(frozen=True)
class Request:
    """One unit of admitted-or-rejected work, immutable once submitted."""

    req_id: int
    tenant: str
    lane: str
    #: Absolute arrival time on the serve clock (simulated cycles).
    arrival: float
    #: The admission controller's cycle estimate — what the token bucket
    #: charges and the fair queue weighs.
    cost_estimate: float
    #: Absolute deadline (serve-clock cycles), or None for best-effort.
    deadline: Optional[float] = None
    #: Opaque payload handed to the executor (a SQL string, txn spec...).
    payload: Any = None
    #: Distributed trace identity (:class:`repro.obs.TraceContext`), or
    #: None — the scheduler stamps one at submit when tracing is on, so
    #: serve.* spans and downstream shard executions share a trace_id.
    ctx: Any = None


@dataclass
class Resolution:
    """The single terminal record of one request."""

    request: Request
    outcome: Outcome
    #: When the request resolved, on the serve clock.
    resolved_at: float
    #: Simulated cycles the execution occupied a slot (0 for rejections).
    service_cycles: float = 0.0
    #: The typed error for rejected/expired requests, None otherwise.
    error: Optional[ReproError] = None
    #: Executor payload for answered requests (an ExecutionResult, say).
    answer: Any = None

    @property
    def latency_cycles(self) -> float:
        """Submit-to-resolve latency on the serve clock."""
        return self.resolved_at - self.request.arrival


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant isolation contract.

    ``rate_cycles_per_interval`` refills the tenant's token bucket (in
    estimated execution cycles) every ``ServeConfig.interval_cycles``;
    ``burst_cycles`` caps the bucket. ``max_concurrency`` bounds the
    tenant's simultaneously-executing requests; ``weight`` is its share
    in the weighted-fair queue.
    """

    tenant_id: str
    weight: float = 1.0
    max_concurrency: int = 2
    rate_cycles_per_interval: float = 1_000_000.0
    burst_cycles: float = 2_000_000.0

    def __post_init__(self):
        if not self.tenant_id:
            raise ConfigurationError("tenant_id must be non-empty")
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: weight must be > 0, got {self.weight}"
            )
        if self.max_concurrency < 1:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: max_concurrency must be >= 1, "
                f"got {self.max_concurrency}"
            )
        if self.rate_cycles_per_interval <= 0:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: rate_cycles_per_interval must be "
                f"> 0, got {self.rate_cycles_per_interval}"
            )
        if self.burst_cycles < self.rate_cycles_per_interval:
            raise ConfigurationError(
                f"tenant {self.tenant_id!r}: burst_cycles must be >= one "
                f"interval's refill ({self.rate_cycles_per_interval}), "
                f"got {self.burst_cycles}"
            )


@dataclass(frozen=True)
class ServeConfig:
    """The whole front door: tenants, global limits, overload policy."""

    tenants: Tuple[TenantConfig, ...]
    #: Requests executing simultaneously across all tenants.
    global_concurrency: int = 4
    #: Token-bucket refill interval (simulated cycles) — the same grid
    #: the metrics :class:`~repro.obs.metrics.Sampler` ticks on.
    interval_cycles: float = 1_000_000.0
    #: Per-(tenant, lane) queue cap; arrivals beyond it are shed.
    max_queue_depth: int = 64
    #: Lane share in the fair queue (multiplied into the tenant weight).
    #: OLTP outweighs OLAP but never strictly preempts it, so the
    #: starvation-freedom bound holds across lanes too.
    lane_weights: Mapping[str, float] = field(
        default_factory=lambda: {OLTP_LANE: 4.0, OLAP_LANE: 1.0}
    )
    #: Overload breaker: when the queued cost estimate crosses ``enter``,
    #: OLAP dispatches run degraded (sampled) until it falls below
    #: ``exit`` — hysteresis, like the device circuit breaker.
    degrade_enter_queued_cycles: float = 8_000_000.0
    degrade_exit_queued_cycles: float = 2_000_000.0
    #: Fraction of the full OLAP cost a degraded (sampled) answer pays.
    olap_degraded_fraction: float = 0.125
    #: Largest clock skew the ``serve.clock_skew`` chaos site may inject
    #: into one deadline check.
    max_clock_skew_cycles: int = 500_000
    #: Keep the per-request event log for the chaos oracle. Costs one
    #: append per lifecycle step; long benches may disable it.
    record_events: bool = True

    def __post_init__(self):
        if not self.tenants:
            raise ConfigurationError("ServeConfig needs at least one tenant")
        seen = set()
        for t in self.tenants:
            if t.tenant_id in seen:
                raise ConfigurationError(f"duplicate tenant {t.tenant_id!r}")
            seen.add(t.tenant_id)
        if self.global_concurrency < 1:
            raise ConfigurationError(
                f"global_concurrency must be >= 1, got {self.global_concurrency}"
            )
        if self.interval_cycles <= 0:
            raise ConfigurationError(
                f"interval_cycles must be > 0, got {self.interval_cycles}"
            )
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        for lane in LANES:
            if self.lane_weights.get(lane, 0.0) <= 0:
                raise ConfigurationError(
                    f"lane_weights must cover {lane!r} with a positive weight"
                )
        if self.degrade_exit_queued_cycles > self.degrade_enter_queued_cycles:
            raise ConfigurationError(
                "degrade_exit_queued_cycles must be <= degrade_enter_queued_cycles"
            )
        if not 0.0 < self.olap_degraded_fraction <= 1.0:
            raise ConfigurationError(
                f"olap_degraded_fraction must be in (0, 1], "
                f"got {self.olap_degraded_fraction}"
            )
        if self.max_clock_skew_cycles < 1:
            raise ConfigurationError(
                f"max_clock_skew_cycles must be >= 1, got {self.max_clock_skew_cycles}"
            )

    def tenant(self, tenant_id: str) -> TenantConfig:
        for t in self.tenants:
            if t.tenant_id == tenant_id:
                return t
        raise ConfigurationError(f"unknown tenant {tenant_id!r}")

    @property
    def tenant_ids(self) -> Tuple[str, ...]:
        return tuple(t.tenant_id for t in self.tenants)


# ----------------------------------------------------------------------
# Event log (consumed by repro.serve.oracle).
# ----------------------------------------------------------------------
#: Event kinds, in lifecycle order.
EV_SUBMIT = "submit"
EV_THROTTLE = "throttle"
EV_SHED = "shed"
EV_ADMIT = "admit"
EV_DISPATCH = "dispatch"
EV_COMPLETE = "complete"
EV_EXPIRE = "expire"


@dataclass(frozen=True)
class Event:
    """One step of one request's lifecycle, on the serve clock.

    ``data`` carries kind-specific facts the oracle re-derives against:
    token balances at admission, the forced flag on sheds, the injected
    skew on expiries, the service cycles on completions.
    """

    kind: str
    t: float
    req_id: int
    tenant: str
    lane: str
    data: Dict[str, float] = field(default_factory=dict)
