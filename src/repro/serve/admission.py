"""Admission control: per-tenant token buckets and queue caps.

The controller answers one question per arrival — *may this request join
the queue?* — with three possible verdicts:

* **admit** — the tenant's token bucket covers the cost estimate; the
  estimate is deducted immediately (pessimistic accounting the chaos
  oracle can replay exactly);
* **throttle** — the bucket cannot cover it; the verdict carries a
  ``retry_after_cycles`` hint computed from the refill rate, surfaced as
  :class:`~repro.errors.TenantThrottledError`;
* **shed** — the (tenant, lane) queue is at its cap, or the
  ``serve.shed`` chaos site forced a graceful shed.

Token buckets refill continuously: ``rate_cycles_per_interval`` tokens
per ``interval_cycles`` of the serve clock, capped at ``burst_cycles``.
All arithmetic is plain float accumulation on deterministic inputs, so
the same arrival schedule always yields the same verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, TenantThrottledError
from repro.serve.request import Request, ServeConfig, TenantConfig

#: Admission verdicts.
ADMIT = "admit"
THROTTLE = "throttle"
SHED = "shed"


class TokenBucket:
    """A continuously-refilling cycle budget for one tenant."""

    __slots__ = ("rate", "interval", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, interval: float, burst: float):
        if rate <= 0 or interval <= 0 or burst <= 0:
            raise ConfigurationError(
                f"token bucket needs positive rate/interval/burst, "
                f"got {rate}/{interval}/{burst}"
            )
        self.rate = rate
        self.interval = interval
        self.burst = burst
        #: Buckets start full so a fresh tenant can burst immediately.
        self.tokens = burst
        self.last_refill = 0.0

    def refill(self, now: float) -> None:
        if now < self.last_refill:
            raise ConfigurationError(
                f"token bucket clock moved backwards: {now} < {self.last_refill}"
            )
        self.tokens = min(
            self.burst,
            self.tokens + self.rate * (now - self.last_refill) / self.interval,
        )
        self.last_refill = now

    def try_take(self, now: float, amount: float) -> bool:
        """Deduct ``amount`` if covered; refills to ``now`` first."""
        self.refill(now)
        if self.tokens + 1e-9 < amount:  # float-safe: never throttle on epsilon
            return False
        self.tokens -= amount
        return True

    def retry_after(self, amount: float) -> float:
        """Cycles until the bucket (as of the last refill) covers ``amount``."""
        deficit = amount - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit * self.interval / self.rate


@dataclass
class Verdict:
    """One admission decision plus its supporting facts."""

    action: str  # ADMIT | THROTTLE | SHED
    #: Cycles until a throttled tenant's bucket covers the request.
    retry_after_cycles: float = 0.0
    #: True when the shed was forced by the ``serve.shed`` chaos site.
    forced: bool = False
    #: Bucket balance after the decision (admits deduct, others don't).
    tokens_after: float = 0.0

    def error(self, request: Request) -> Optional[TenantThrottledError]:
        """The typed error a rejected request resolves with."""
        if self.action == THROTTLE:
            return TenantThrottledError(
                f"tenant {request.tenant!r} over cycle quota "
                f"(request {request.req_id}, est {request.cost_estimate:.0f} "
                f"cycles); retry after {self.retry_after_cycles:.0f} cycles",
                retry_after_cycles=self.retry_after_cycles,
            )
        if self.action == SHED:
            reason = (
                "chaos site serve.shed fired"
                if self.forced
                else f"queue for ({request.tenant}, {request.lane}) is full"
            )
            return TenantThrottledError(
                f"request {request.req_id} shed: {reason} [site=serve.shed]",
                retry_after_cycles=self.retry_after_cycles,
            )
        return None


class AdmissionController:
    """Applies every tenant's quota at the door."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._buckets: Dict[str, TokenBucket] = {
            t.tenant_id: TokenBucket(
                t.rate_cycles_per_interval, config.interval_cycles, t.burst_cycles
            )
            for t in config.tenants
        }

    def bucket(self, tenant_id: str) -> TokenBucket:
        if tenant_id not in self._buckets:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}")
        return self._buckets[tenant_id]

    def tenant(self, tenant_id: str) -> TenantConfig:
        return self.config.tenant(tenant_id)

    def decide(
        self,
        request: Request,
        now: float,
        queue_depth: int,
        forced_shed: bool = False,
    ) -> Verdict:
        """The admission verdict for one arrival.

        Order matters and the oracle replays it: a forced (chaos) shed is
        checked first — it models the overload manager dropping work
        before any bookkeeping — then the queue cap, then the token
        bucket. Only an admit mutates the bucket.
        """
        bucket = self.bucket(request.tenant)
        bucket.refill(now)
        if forced_shed:
            return Verdict(SHED, forced=True, tokens_after=bucket.tokens,
                           retry_after_cycles=self.config.interval_cycles)
        if queue_depth >= self.config.max_queue_depth:
            return Verdict(SHED, tokens_after=bucket.tokens,
                           retry_after_cycles=self.config.interval_cycles)
        if not bucket.try_take(now, request.cost_estimate):
            return Verdict(
                THROTTLE,
                retry_after_cycles=bucket.retry_after(request.cost_estimate),
                tokens_after=bucket.tokens,
            )
        return Verdict(ADMIT, tokens_after=bucket.tokens)
