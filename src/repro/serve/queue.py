"""Deterministic weighted-fair queueing (start-time fair queueing).

One flow per (lane, tenant). Each pushed item gets a virtual **finish
tag**::

    start  = max(virtual_time, last_finish[flow])
    finish = start + cost / weight

and :meth:`WeightedFairQueue.pop` always serves the eligible flow whose
head item holds the smallest finish tag, advancing virtual time to that
tag. Ties break on the flow key (lexicographic), so the whole order is a
pure function of the push sequence — no wall clock, no randomness.

Properties the property tests pin (``tests/test_serve_queue.py``):

* **deterministic** — identical push/pop sequences yield identical
  service orders;
* **work-conserving** — ``pop`` returns an item whenever any eligible
  flow is non-empty;
* **starvation-free** — a backlogged flow's head tag is fixed while
  competitors' new arrivals tag at or above current virtual time, so
  every non-empty flow is served within a bounded number of dispatches
  (the classic SFQ bound: at most ``ceil(weight_j / weight_i * cost_i /
  cost_j)``-ish dispatches of each competitor j can precede flow i).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.errors import ConfigurationError, ExecutionError

#: A flow key — (lane, tenant) at the serving layer, anything hashable
#: and orderable here.
FlowKey = Hashable


class WeightedFairQueue:
    """SFQ over named flows with per-item costs and per-flow weights."""

    def __init__(self):
        self._queues: Dict[FlowKey, Deque[Tuple[float, object]]] = {}
        self._last_finish: Dict[FlowKey, float] = {}
        self._virtual = 0.0
        self._len = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def depth(self, key: FlowKey) -> int:
        q = self._queues.get(key)
        return len(q) if q else 0

    def flows(self) -> List[FlowKey]:
        """Non-empty flow keys, sorted (the deterministic tie order)."""
        return sorted(k for k, q in self._queues.items() if q)

    @property
    def virtual_time(self) -> float:
        return self._virtual

    # ------------------------------------------------------------------
    # The queue discipline.
    # ------------------------------------------------------------------
    def push(self, key: FlowKey, weight: float, cost: float, item: object) -> float:
        """Enqueue ``item`` on flow ``key``; returns its finish tag."""
        if weight <= 0:
            raise ConfigurationError(f"flow {key!r}: weight must be > 0, got {weight}")
        if cost < 0:
            raise ConfigurationError(f"flow {key!r}: cost must be >= 0, got {cost}")
        start = max(self._virtual, self._last_finish.get(key, 0.0))
        finish = start + cost / weight
        self._last_finish[key] = finish
        self._queues.setdefault(key, deque()).append((finish, item))
        self._len += 1
        return finish

    def pop(
        self, eligible: Optional[Callable[[FlowKey], bool]] = None
    ) -> Optional[Tuple[FlowKey, object]]:
        """Serve the eligible flow with the smallest head finish tag.

        ``eligible`` lets the scheduler skip flows whose tenant is at its
        concurrency cap without losing their queue position (the skipped
        flow's tags are untouched; it is simply not a candidate this
        round). Returns None when no eligible flow has work — the caller
        distinguishes "empty" (``len() == 0``) from "blocked".
        """
        best_key: Optional[FlowKey] = None
        best_tag = 0.0
        for key in sorted(k for k, q in self._queues.items() if q):
            if eligible is not None and not eligible(key):
                continue
            tag = self._queues[key][0][0]
            if best_key is None or tag < best_tag:
                best_key, best_tag = key, tag
        if best_key is None:
            return None
        tag, item = self._queues[best_key].popleft()
        self._len -= 1
        # Virtual time never runs backwards: a flow served out of tag
        # order (because smaller-tag flows were ineligible) must not
        # rewind the clock for everyone else.
        self._virtual = max(self._virtual, tag)
        return best_key, item

    def drain_if(
        self, predicate: Callable[[object], bool]
    ) -> List[Tuple[FlowKey, object]]:
        """Remove every queued item matching ``predicate`` (deadline
        sweeps), preserving each survivor's position and tag."""
        removed: List[Tuple[FlowKey, object]] = []
        for key in sorted(self._queues):
            q = self._queues[key]
            if not q:
                continue
            kept: Deque[Tuple[float, object]] = deque()
            for tag, item in q:
                if predicate(item):
                    removed.append((key, item))
                    self._len -= 1
                else:
                    kept.append((tag, item))
            self._queues[key] = kept
        return removed

    def head_tag(self, key: FlowKey) -> float:
        q = self._queues.get(key)
        if not q:
            raise ExecutionError(f"flow {key!r} is empty")
        return q[0][0]
