"""The multi-tenant serving front door: admit → queue → execute.

:class:`ServeScheduler` is a deterministic discrete-event scheduler on
the *simulated* clock. Sessions submit :class:`~repro.serve.request.
Request`\\ s (open-loop: arrivals carry absolute timestamps); the
:class:`~repro.serve.admission.AdmissionController` applies per-tenant
quotas at the door, a :class:`~repro.serve.queue.WeightedFairQueue`
interleaves tenants and lanes, and up to ``global_concurrency`` admitted
requests execute simultaneously, each occupying a slot for the cycles
its executor reports.

Determinism rules (the chaos harness depends on all three):

* every queue/heap is keyed ``(time, req_id)`` with ids assigned in
  submit order — no iteration-order or hash dependence;
* the only randomness is the seeded :class:`~repro.faults.FaultInjector`
  (consulted in loop order) and whatever the caller seeds its workload
  generator with;
* the clock advances **only** through :meth:`CostLedger.charge`
  (``serve_execute`` while any slot is busy, ``serve_idle`` otherwise),
  so an attached :class:`~repro.obs.MetricsRegistry` samples the run on
  exactly the same grid every time.

Overload behaviour: a breaker-style degraded mode watches the queued
cost estimate; past ``degrade_enter_queued_cycles`` every OLAP dispatch
runs sampled (``Outcome.DEGRADED``, cost scaled by
``olap_degraded_fraction``) until the backlog drains below the exit
threshold — OLAP gets cheaper instead of OLTP getting starved. Deadline
misses resolve as :class:`~repro.errors.DeadlineExceededError`, quota
misses as :class:`~repro.errors.TenantThrottledError` with a
``retry_after_cycles`` hint (compose it with a ``RetryPolicy`` via
:func:`throttle_backoff`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ledger import CostLedger
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ExecutionError,
)
from repro.faults import SERVE_CLOCK_SKEW, SERVE_SHED, FaultInjector, RetryPolicy
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    Tracer,
    active,
    active_metrics,
    fmt_name,
    new_trace_id,
)
from repro.obs.journal import EV_ADMISSION, active_journal
from repro.obs.span import maybe_span
from repro.serve.admission import ADMIT, THROTTLE, AdmissionController, Verdict
from repro.serve.queue import WeightedFairQueue
from repro.serve.request import (
    EV_ADMIT,
    EV_COMPLETE,
    EV_DISPATCH,
    EV_EXPIRE,
    EV_SHED,
    EV_SUBMIT,
    EV_THROTTLE,
    LANES,
    Event,
    Outcome,
    Request,
    Resolution,
    ServeConfig,
)

#: What an executor returns for one dispatched request.
@dataclass
class ExecOutcome:
    """Service cost and answer of one executed request."""

    #: Simulated cycles the request occupies its slot.
    cycles: float
    #: True when the answer was produced from a sampled/partial scan.
    degraded: bool = False
    #: Opaque answer handed back on the resolution.
    payload: Any = None


#: ``executor(request, degrade_hint) -> ExecOutcome``. ``degrade_hint``
#: is True when the overload breaker asks for a sampled OLAP answer.
Executor = Callable[[Request, bool], ExecOutcome]


def throttle_backoff(policy: RetryPolicy, error, attempt: int) -> float:
    """Compose a throttle's retry-after hint with a retry policy.

    The server's ``retry_after_cycles`` is a *floor* — retrying sooner
    is guaranteed to throttle again — while the policy contributes its
    seeded exponential growth and jitter on top, so stampedes still
    spread out.
    """
    hint = float(getattr(error, "retry_after_cycles", 0.0) or 0.0)
    return max(policy.backoff(attempt), hint)


@dataclass
class LaneStats:
    """Counters and samples for one (tenant, lane) pair."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    degraded: int = 0
    throttled: int = 0
    shed: int = 0
    expired: int = 0
    #: Submit-to-answer latency of every answered request (cycles).
    latencies: List[float] = field(default_factory=list)
    #: Admission-to-dispatch wait of every dispatched request (cycles).
    queue_waits: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))

    def to_dict(self) -> Dict[str, float]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "throttled": self.throttled,
            "shed": self.shed,
            "expired": self.expired,
            "p50_cycles": self.percentile(50),
            "p99_cycles": self.percentile(99),
            "mean_queue_cycles": (
                float(np.mean(self.queue_waits)) if self.queue_waits else 0.0
            ),
        }


@dataclass
class ServeReport:
    """Everything one drained run produced, keyed for the bench gate."""

    stats: Dict[Tuple[str, str], LaneStats]
    resolutions: Dict[int, Resolution]
    events: List[Event]
    sim_cycles: float = 0.0
    busy_cycles: float = 0.0
    idle_cycles: float = 0.0
    degraded_mode_entries: int = 0

    def lane(self, tenant: str, lane: str) -> LaneStats:
        return self.stats.get((tenant, lane), LaneStats())

    def oltp_p99(self) -> float:
        """Worst p99 across every tenant's OLTP lane — the bound the
        overload chaos harness enforces."""
        return max(
            (s.percentile(99) for (t, lane), s in self.stats.items()
             if lane == "oltp"),
            default=0.0,
        )

    def to_dict(self) -> dict:
        tenants: Dict[str, dict] = {}
        for (tenant, lane), s in sorted(self.stats.items()):
            tenants.setdefault(tenant, {})[lane] = s.to_dict()
        return {
            "tenants": tenants,
            "oltp_p99_cycles": self.oltp_p99(),
            "sim_cycles": self.sim_cycles,
            "busy_cycles": self.busy_cycles,
            "idle_cycles": self.idle_cycles,
            "utilization": (
                self.busy_cycles / self.sim_cycles if self.sim_cycles else 0.0
            ),
            "degraded_mode_entries": self.degraded_mode_entries,
            "requests": len(self.resolutions),
        }


class ServeScheduler:
    """Deterministic simulated-time front door over an executor."""

    def __init__(
        self,
        config: ServeConfig,
        executor: Executor,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        fault_injector: Optional[FaultInjector] = None,
        journal=None,
        slo=None,
    ):
        self.config = config
        self.executor = executor
        self.tracer = tracer
        self.metrics = active_metrics(metrics)
        #: Flight recorder for admission verdicts and SLO transitions.
        self.journal = active_journal(journal)
        #: Optional :class:`~repro.obs.SloMonitor`; fed on every terminal
        #: outcome (answered → latency objectives, rejected/expired →
        #: availability objectives). Breaches land in the journal.
        self.slo = slo
        if (
            self.slo is not None
            and self.journal is not None
            and getattr(self.slo, "journal", None) is None
        ):
            self.slo.journal = self.journal
        #: The serve clock: advanced only through this ledger, so the
        #: metrics sampler ticks on the same simulated grid.
        self.ledger = CostLedger(tracer=active(tracer), metrics=self.metrics)
        self.clock = 0.0
        self.admission = AdmissionController(config)
        self.queue = WeightedFairQueue()
        #: Armed fast path, same discipline as the engines: one attribute
        #: read when chaos is off, zero injector consultations.
        self._inj = (
            fault_injector
            if fault_injector is not None and fault_injector.armed
            else None
        )
        self._next_id = 0
        self._arrivals: List[Tuple[float, int, Request]] = []
        self._running: List[Tuple[float, int, Request, ExecOutcome, float]] = []
        self._running_per_tenant: Dict[str, int] = {
            t: 0 for t in config.tenant_ids
        }
        #: Sum of queued cost estimates — what the overload breaker watches.
        self.queued_cost = 0.0
        self.degraded_mode = False
        self.degraded_mode_entries = 0
        self.stats: Dict[Tuple[str, str], LaneStats] = {}
        self.resolutions: Dict[int, Resolution] = {}
        self.events: List[Event] = []
        self._m_latency: Dict[Tuple[str, str], Any] = {}
        self._m_queue_wait: Dict[Tuple[str, str], Any] = {}
        if self.metrics is not None:
            self._register_metrics()

    # ------------------------------------------------------------------
    # Metrics wiring (satellite: serve collectors).
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        from repro.obs.collectors import (
            register_journal,
            register_serve,
            register_slo,
        )

        if self.slo is not None:
            register_slo(self.metrics, self.slo)
        if self.journal is not None:
            register_journal(self.metrics, self.journal)
        for t in self.config.tenant_ids:
            for lane in LANES:
                self._m_latency[(t, lane)] = self.metrics.histogram(
                    fmt_name("serve_latency", tenant=t, lane=lane),
                    help="Submit-to-answer latency (simulated cycles)",
                    first_bound=1024.0,
                )
                self._m_queue_wait[(t, lane)] = self.metrics.histogram(
                    fmt_name("serve_time_in_queue", tenant=t, lane=lane),
                    help="Admission-to-dispatch wait (simulated cycles)",
                    first_bound=1024.0,
                )
        register_serve(self.metrics, self)

    # ------------------------------------------------------------------
    # Small helpers.
    # ------------------------------------------------------------------
    def _stats(self, tenant: str, lane: str) -> LaneStats:
        key = (tenant, lane)
        if key not in self.stats:
            self.stats[key] = LaneStats()
        return self.stats[key]

    def _event(self, kind: str, req: Request, **data: float) -> None:
        if self.config.record_events:
            self.events.append(
                Event(kind, self.clock, req.req_id, req.tenant, req.lane,
                      dict(data))
            )

    def _resolve(
        self,
        req: Request,
        outcome: Outcome,
        service_cycles: float = 0.0,
        error=None,
        answer=None,
    ) -> None:
        if req.req_id in self.resolutions:
            raise ExecutionError(
                f"request {req.req_id} resolved twice ({outcome})"
            )
        self.resolutions[req.req_id] = Resolution(
            request=req,
            outcome=outcome,
            resolved_at=self.clock,
            service_cycles=service_cycles,
            error=error,
            answer=answer,
        )

    def _weight(self, req: Request) -> float:
        return (
            self.config.lane_weights[req.lane]
            * self.config.tenant(req.tenant).weight
        )

    def _update_breaker(self) -> None:
        if not self.degraded_mode:
            if self.queued_cost > self.config.degrade_enter_queued_cycles:
                self.degraded_mode = True
                self.degraded_mode_entries += 1
        elif self.queued_cost <= self.config.degrade_exit_queued_cycles:
            self.degraded_mode = False

    # ------------------------------------------------------------------
    # Submission (open loop: arrivals may be anywhere in the future).
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        lane: str,
        cost_estimate: float,
        arrival: Optional[float] = None,
        deadline_budget: Optional[float] = None,
        payload: Any = None,
        ctx: Any = None,
    ) -> Request:
        """Register one request; admission happens when the clock reaches
        its arrival. ``deadline_budget`` is relative to the arrival.

        ``ctx`` is an optional :class:`~repro.obs.TraceContext`; when
        tracing is on and none is given, a fresh one is stamped so every
        serve.* span (and anything the executor fans out to) shares one
        trace_id end to end."""
        if lane not in LANES:
            raise ConfigurationError(f"unknown lane {lane!r}; known: {LANES}")
        self.config.tenant(tenant)  # validates the tenant id
        if cost_estimate <= 0:
            raise ConfigurationError(
                f"cost_estimate must be > 0, got {cost_estimate}"
            )
        at = self.clock if arrival is None else float(arrival)
        if at < self.clock:
            raise ConfigurationError(
                f"arrival {at} is in the past (clock {self.clock})"
            )
        if deadline_budget is not None and deadline_budget <= 0:
            raise ConfigurationError(
                f"deadline_budget must be > 0, got {deadline_budget}"
            )
        if (
            ctx is None
            and self.tracer is not None
            and self.tracer.enabled
        ):
            ctx = TraceContext(
                trace_id=new_trace_id("s"), parent="serve.execute"
            )
        req = Request(
            req_id=self._next_id,
            tenant=tenant,
            lane=lane,
            arrival=at,
            cost_estimate=float(cost_estimate),
            deadline=None if deadline_budget is None else at + deadline_budget,
            payload=payload,
            ctx=ctx,
        )
        self._next_id += 1
        heapq.heappush(self._arrivals, (at, req.req_id, req))
        return req

    # ------------------------------------------------------------------
    # The event loop.
    # ------------------------------------------------------------------
    def run_until_drained(self) -> ServeReport:
        """Run until every submitted request has resolved."""
        while True:
            self._process_arrivals()
            self._sweep_deadlines()
            self._dispatch()
            next_times: List[float] = []
            if self._arrivals:
                next_times.append(self._arrivals[0][0])
            if self._running:
                next_times.append(self._running[0][0])
            if not next_times:
                if len(self.queue):
                    raise ExecutionError(
                        "scheduler wedged: queued work with no running "
                        "requests and no arrivals"
                    )  # pragma: no cover - defended by dispatch logic
                break
            self._advance(min(next_times))
        return self.report()

    def report(self) -> ServeReport:
        return ServeReport(
            stats=self.stats,
            resolutions=self.resolutions,
            events=self.events,
            sim_cycles=self.clock,
            busy_cycles=self.ledger.get(CostLedger.SERVE_EXEC),
            idle_cycles=self.ledger.get(CostLedger.SERVE_IDLE),
            degraded_mode_entries=self.degraded_mode_entries,
        )

    def _advance(self, to: float) -> None:
        """Move the serve clock, charging the ledger (which drives the
        metrics sampler), then retire completions that became due."""
        if to < self.clock:
            raise ExecutionError(
                f"clock would move backwards: {to} < {self.clock}"
            )  # pragma: no cover - heap discipline prevents it
        dt = to - self.clock
        if dt > 0:
            bucket = (
                CostLedger.SERVE_EXEC if self._running else CostLedger.SERVE_IDLE
            )
            self.ledger.charge(bucket, dt)
        self.clock = to
        while self._running and self._running[0][0] <= self.clock:
            _, _, req, out, dispatched_at = heapq.heappop(self._running)
            self._complete(req, out, dispatched_at)

    def _process_arrivals(self) -> None:
        while self._arrivals and self._arrivals[0][0] <= self.clock:
            _, _, req = heapq.heappop(self._arrivals)
            self._admit(req)

    def _admit(self, req: Request) -> None:
        s = self._stats(req.tenant, req.lane)
        s.submitted += 1
        self._event(
            EV_SUBMIT, req,
            cost_estimate=req.cost_estimate,
            deadline=-1.0 if req.deadline is None else req.deadline,
        )
        forced = bool(
            self._inj is not None and self._inj.should_fault(SERVE_SHED)
        )
        depth = self.queue.depth((req.lane, req.tenant))
        with maybe_span(
            self.tracer, "serve.admit",
            tenant=req.tenant, lane=req.lane, request=req.req_id,
            trace_id=req.ctx.trace_id if req.ctx is not None else "",
        ) as span:
            verdict: Verdict = self.admission.decide(
                req, self.clock, depth, forced_shed=forced
            )
            span.set_attrs(action=verdict.action)
        if self.journal is not None:
            self.journal.record(
                EV_ADMISSION,
                cycles=self.clock,
                tenant=req.tenant,
                lane=req.lane,
                request=req.req_id,
                action=verdict.action,
                forced=forced,
            )
        if verdict.action == ADMIT:
            s.admitted += 1
            self.queue.push(
                (req.lane, req.tenant), self._weight(req), req.cost_estimate, req
            )
            self.queued_cost += req.cost_estimate
            self._update_breaker()
            self._event(
                EV_ADMIT, req,
                tokens_after=verdict.tokens_after,
                cost_estimate=req.cost_estimate,
                depth_after=depth + 1,
            )
            return
        error = verdict.error(req)
        if verdict.action == THROTTLE:
            s.throttled += 1
            self._event(
                EV_THROTTLE, req,
                retry_after=verdict.retry_after_cycles,
                tokens=verdict.tokens_after,
            )
            self._resolve(req, Outcome.THROTTLED, error=error)
        else:
            s.shed += 1
            self._event(
                EV_SHED, req,
                forced=1.0 if verdict.forced else 0.0,
                depth=float(depth),
            )
            self._resolve(req, Outcome.SHED, error=error)
        if self.slo is not None:
            self.slo.observe(req.tenant, self.clock, answered=False)

    def _sweep_deadlines(self) -> None:
        """Expire queued requests whose deadline already passed (no skew
        here — the chaos site only perturbs dispatch-time checks)."""
        expired = self.queue.drain_if(
            lambda item: item.deadline is not None and self.clock > item.deadline
        )
        for _, req in expired:
            self._expire(req, skew=0.0)

    def _expire(self, req: Request, skew: float, uncount: bool = True) -> None:
        """Resolve a queued request as deadline-expired. ``uncount`` is
        False when the dispatch path already removed its queued cost."""
        if uncount:
            self.queued_cost -= req.cost_estimate
            self._update_breaker()
        s = self._stats(req.tenant, req.lane)
        s.expired += 1
        self._event(EV_EXPIRE, req, skew=skew, deadline=req.deadline)
        self._resolve(
            req,
            Outcome.EXPIRED,
            error=DeadlineExceededError(
                f"request {req.req_id} ({req.tenant}/{req.lane}) missed its "
                f"deadline {req.deadline:.0f} at clock {self.clock:.0f}"
                + (f" (+{skew:.0f} skew) [site=serve.clock_skew]" if skew else "")
            ),
        )
        if self.slo is not None:
            self.slo.observe(req.tenant, self.clock, answered=False)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def running_for(self, tenant: str) -> int:
        return self._running_per_tenant.get(tenant, 0)

    def _dispatch(self) -> None:
        while (
            len(self.queue)
            and self.running_count < self.config.global_concurrency
        ):
            popped = self.queue.pop(
                eligible=lambda key: (
                    self._running_per_tenant[key[1]]
                    < self.config.tenant(key[1]).max_concurrency
                )
            )
            if popped is None:  # every queued tenant is at its cap
                break
            _, req = popped
            self.queued_cost -= req.cost_estimate
            self._update_breaker()
            skew = 0.0
            if req.deadline is not None:
                if self._inj is not None and self._inj.should_fault(
                    SERVE_CLOCK_SKEW
                ):
                    skew = float(
                        self._inj.draw(self.config.max_clock_skew_cycles)
                    )
                if self.clock + skew > req.deadline:
                    self._expire(req, skew=skew, uncount=False)
                    continue
            degrade = self.degraded_mode and req.lane == "olap"
            wait = self.clock - req.arrival
            s = self._stats(req.tenant, req.lane)
            s.queue_waits.append(wait)
            if self.metrics is not None:
                self._m_queue_wait[(req.tenant, req.lane)].observe(wait)
            with maybe_span(
                self.tracer, "serve.queue",
                tenant=req.tenant, lane=req.lane, request=req.req_id,
            ) as qspan:
                qspan.set_duration(wait)
                qspan.set_attrs(wait_cycles=wait)
            self._event(
                EV_DISPATCH, req,
                wait_cycles=wait,
                degraded=1.0 if degrade else 0.0,
            )
            with maybe_span(
                self.tracer, "serve.execute",
                tenant=req.tenant, lane=req.lane, request=req.req_id,
                degraded=degrade,
                trace_id=req.ctx.trace_id if req.ctx is not None else "",
            ) as espan:
                out = self.executor(req, degrade)
                if not isinstance(out, ExecOutcome) or out.cycles < 0:
                    raise ExecutionError(
                        f"executor returned invalid outcome {out!r} for "
                        f"request {req.req_id}"
                    )
                espan.set_duration(out.cycles)
                espan.set_attrs(service_cycles=out.cycles)
            self._running_per_tenant[req.tenant] += 1
            heapq.heappush(
                self._running,
                (self.clock + out.cycles, req.req_id, req, out, self.clock),
            )

    def _complete(self, req: Request, out: ExecOutcome, dispatched_at: float) -> None:
        self._running_per_tenant[req.tenant] -= 1
        s = self._stats(req.tenant, req.lane)
        latency = self.clock - req.arrival
        s.latencies.append(latency)
        if out.degraded:
            s.degraded += 1
        else:
            s.completed += 1
        if self.metrics is not None:
            self._m_latency[(req.tenant, req.lane)].observe(latency)
        self._event(
            EV_COMPLETE, req,
            service_cycles=out.cycles,
            degraded=1.0 if out.degraded else 0.0,
        )
        self._resolve(
            req,
            Outcome.DEGRADED if out.degraded else Outcome.COMPLETED,
            service_cycles=out.cycles,
            answer=out.payload,
        )
        if self.slo is not None:
            self.slo.observe(
                req.tenant, self.clock,
                latency_cycles=latency, answered=True,
            )
        # A finished request frees capacity mid-advance; fill it before
        # time moves again so the queue never idles with a free slot.
        self._process_arrivals()
        self._dispatch()
