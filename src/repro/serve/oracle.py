"""Brute-force verification of a serve run's event log.

The scheduler in :mod:`repro.serve.scheduler` is a heap-and-tag machine
optimised for the event loop; this module re-derives every invariant it
claims from nothing but the :class:`~repro.serve.request.Event` log and
the :class:`~repro.serve.request.ServeConfig`, with the dumbest possible
bookkeeping — plain dicts and one linear pass. The chaos harness runs
both and treats any divergence as a failure, the same shadow-oracle
pattern the WAL recovery tests use.

Invariants checked (each violation is one human-readable string):

* **conservation** — every submitted request reaches exactly one
  terminal event, every admit reaches dispatch or expire, every dispatch
  reaches complete; nothing resolves twice, nothing is lost;
* **token buckets** — replaying the continuous refill shows every admit
  was covered and every throttle genuinely wasn't; balances never go
  negative or above burst;
* **concurrency** — per-tenant and global in-flight counts never exceed
  their caps (and never go negative);
* **queue caps** — a non-forced shed only ever happens against a
  genuinely full (tenant, lane) queue;
* **deadlines** — expiries really were past deadline (given the recorded
  skew) and dispatches never ran a request already past its deadline;
* **degraded mode** — replaying the queued-cost breaker reproduces
  exactly which dispatches were degraded (and only OLAP ones were);
* **clock sanity** — event timestamps never run backwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.serve.request import (
    EV_ADMIT,
    EV_COMPLETE,
    EV_DISPATCH,
    EV_EXPIRE,
    EV_SHED,
    EV_SUBMIT,
    EV_THROTTLE,
    OLAP_LANE,
    Event,
    ServeConfig,
)

#: Events that end a request's life.
TERMINAL_KINDS = (EV_THROTTLE, EV_SHED, EV_COMPLETE, EV_EXPIRE)

#: Float slop for replayed bucket balances (pure-sum arithmetic drift).
EPS = 1e-6


class _Bucket:
    """The oracle's own token bucket: same math, independent code path."""

    def __init__(self, rate: float, interval: float, burst: float):
        self.rate = rate
        self.interval = interval
        self.burst = burst
        self.tokens = burst
        self.at = 0.0

    def refill(self, now: float) -> None:
        self.tokens = min(
            self.burst, self.tokens + self.rate * (now - self.at) / self.interval
        )
        self.at = now


class ServeOracle:
    """Replays an event log against a config; collects violations."""

    def __init__(self, config: ServeConfig):
        self.config = config

    def verify(self, events: List[Event]) -> List[str]:
        """Every invariant violation found in ``events`` (empty == clean)."""
        cfg = self.config
        bad: List[str] = []

        buckets: Dict[str, _Bucket] = {
            t.tenant_id: _Bucket(
                t.rate_cycles_per_interval, cfg.interval_cycles, t.burst_cycles
            )
            for t in cfg.tenants
        }
        submit: Dict[int, Event] = {}
        terminal: Dict[int, Event] = {}
        admitted: Set[int] = set()
        dispatched: Set[int] = set()
        queue_depth: Dict[Tuple[str, str], int] = {}
        running: Dict[str, int] = {t: 0 for t in cfg.tenant_ids}
        running_total = 0
        queued_cost = 0.0
        degraded_mode = False
        last_t: Optional[float] = None

        def breaker() -> None:
            nonlocal degraded_mode
            if not degraded_mode:
                if queued_cost > cfg.degrade_enter_queued_cycles:
                    degraded_mode = True
            elif queued_cost <= cfg.degrade_exit_queued_cycles:
                degraded_mode = False

        for i, ev in enumerate(events):
            rid = ev.req_id
            where = f"event {i} ({ev.kind} req {rid} t={ev.t:.0f})"
            if last_t is not None and ev.t < last_t - EPS:
                bad.append(f"{where}: clock ran backwards ({ev.t} < {last_t})")
            last_t = ev.t

            if ev.kind == EV_SUBMIT:
                if rid in submit:
                    bad.append(f"{where}: request submitted twice")
                submit[rid] = ev
                continue

            sub = submit.get(rid)
            if sub is None:
                bad.append(f"{where}: lifecycle event before submit")
                continue
            cost = sub.data["cost_estimate"]
            deadline = sub.data["deadline"]  # -1.0 == none
            tenant = ev.tenant
            key = (tenant, ev.lane)

            if ev.kind in TERMINAL_KINDS:
                if rid in terminal:
                    bad.append(
                        f"{where}: second terminal event "
                        f"(first was {terminal[rid].kind})"
                    )
                    continue
                terminal[rid] = ev

            if ev.kind == EV_ADMIT:
                if rid in admitted:
                    bad.append(f"{where}: admitted twice")
                admitted.add(rid)
                b = buckets[tenant]
                b.refill(ev.t)
                if b.tokens + EPS < cost:
                    bad.append(
                        f"{where}: admitted with insufficient tokens "
                        f"({b.tokens:.1f} < {cost:.1f})"
                    )
                b.tokens -= cost
                if b.tokens < -EPS:
                    bad.append(f"{where}: bucket went negative ({b.tokens:.1f})")
                rec = ev.data.get("tokens_after")
                if rec is not None and abs(rec - b.tokens) > max(
                    EPS, 1e-9 * b.burst
                ):
                    bad.append(
                        f"{where}: recorded balance {rec:.3f} != replayed "
                        f"{b.tokens:.3f}"
                    )
                queue_depth[key] = queue_depth.get(key, 0) + 1
                if queue_depth[key] > cfg.max_queue_depth:
                    bad.append(
                        f"{where}: queue {key} over cap "
                        f"({queue_depth[key]} > {cfg.max_queue_depth})"
                    )
                queued_cost += cost
                breaker()

            elif ev.kind == EV_THROTTLE:
                b = buckets[tenant]
                b.refill(ev.t)
                if b.tokens + EPS >= cost:
                    bad.append(
                        f"{where}: throttled with sufficient tokens "
                        f"({b.tokens:.1f} >= {cost:.1f})"
                    )

            elif ev.kind == EV_SHED:
                forced = ev.data.get("forced", 0.0) >= 1.0
                if not forced and queue_depth.get(key, 0) < cfg.max_queue_depth:
                    bad.append(
                        f"{where}: non-forced shed with queue {key} at "
                        f"{queue_depth.get(key, 0)}/{cfg.max_queue_depth}"
                    )

            elif ev.kind == EV_DISPATCH:
                if rid not in admitted:
                    bad.append(f"{where}: dispatched without admission")
                if rid in dispatched:
                    bad.append(f"{where}: dispatched twice")
                dispatched.add(rid)
                queue_depth[key] = queue_depth.get(key, 0) - 1
                if queue_depth[key] < 0:
                    bad.append(f"{where}: queue {key} depth went negative")
                queued_cost -= cost
                breaker()
                if deadline >= 0 and ev.t > deadline + EPS:
                    bad.append(
                        f"{where}: dispatched past deadline "
                        f"({ev.t:.0f} > {deadline:.0f})"
                    )
                expect_degraded = degraded_mode and ev.lane == OLAP_LANE
                got_degraded = ev.data.get("degraded", 0.0) >= 1.0
                if got_degraded != expect_degraded:
                    bad.append(
                        f"{where}: degraded flag {got_degraded} but replayed "
                        f"breaker says {expect_degraded} "
                        f"(queued_cost {queued_cost:.0f})"
                    )
                if got_degraded and ev.lane != OLAP_LANE:
                    bad.append(f"{where}: non-OLAP request ran degraded")
                running[tenant] = running.get(tenant, 0) + 1
                running_total += 1
                cap = cfg.tenant(tenant).max_concurrency
                if running[tenant] > cap:
                    bad.append(
                        f"{where}: tenant {tenant!r} over concurrency "
                        f"({running[tenant]} > {cap})"
                    )
                if running_total > cfg.global_concurrency:
                    bad.append(
                        f"{where}: global concurrency exceeded "
                        f"({running_total} > {cfg.global_concurrency})"
                    )

            elif ev.kind == EV_COMPLETE:
                if rid not in dispatched:
                    bad.append(f"{where}: completed without dispatch")
                else:
                    running[tenant] = running.get(tenant, 0) - 1
                    running_total -= 1
                    if running[tenant] < 0 or running_total < 0:
                        bad.append(f"{where}: running count went negative")

            elif ev.kind == EV_EXPIRE:
                if rid not in admitted:
                    bad.append(f"{where}: expired without admission")
                if rid in dispatched:
                    bad.append(f"{where}: expired after dispatch")
                queue_depth[key] = queue_depth.get(key, 0) - 1
                if queue_depth[key] < 0:
                    bad.append(f"{where}: queue {key} depth went negative")
                queued_cost -= cost
                breaker()
                skew = ev.data.get("skew", 0.0)
                if deadline < 0:
                    bad.append(f"{where}: expired a request with no deadline")
                elif ev.t + skew <= deadline + EPS:
                    bad.append(
                        f"{where}: expired before deadline "
                        f"({ev.t:.0f} + skew {skew:.0f} <= {deadline:.0f})"
                    )

            else:
                bad.append(f"{where}: unknown event kind {ev.kind!r}")

        # ------------------------------------------------------------------
        # End-of-log conservation.
        # ------------------------------------------------------------------
        for rid in submit:
            if rid not in terminal:
                bad.append(f"request {rid} never resolved")
        for rid in admitted:
            end = terminal.get(rid)
            if end is not None and end.kind not in (EV_COMPLETE, EV_EXPIRE):
                bad.append(
                    f"request {rid} admitted but terminal event is {end.kind}"
                )
        for rid in dispatched:
            end = terminal.get(rid)
            if end is not None and end.kind != EV_COMPLETE:
                bad.append(
                    f"request {rid} dispatched but terminal event is {end.kind}"
                )
        for rid, end in terminal.items():
            if end.kind in (EV_COMPLETE, EV_EXPIRE) and rid not in admitted:
                bad.append(f"request {rid} ended {end.kind} without admission")
        if running_total != 0:
            bad.append(f"{running_total} requests still in flight at end of log")
        for key, depth in queue_depth.items():
            if depth != 0:
                bad.append(f"queue {key} still holds {depth} requests at end")
        return bad
