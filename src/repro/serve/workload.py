"""Synthetic serving workloads: executors and open-loop arrival streams.

The chaos harness and ``benchmarks/bench_serve.py`` need load that is
(a) open-loop — arrival times fixed up front, so an overloaded server
cannot slow its own offered load down, which is exactly the regime where
admission control earns its keep — and (b) a pure function of the seed.

Both pieces draw from per-request / per-stream ``numpy`` generators
seeded ``[seed, index]``, so one request's cost never depends on how
many requests ran before it: the scheduler may reorder work freely and
every draw stays identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.request import LANES, OLTP_LANE, Request
from repro.serve.scheduler import ExecOutcome, Executor, ServeScheduler


def synthetic_executor(
    seed: int = 0,
    oltp_cycles: Tuple[float, float] = (4_000.0, 40_000.0),
    olap_cycles: Tuple[float, float] = (400_000.0, 4_000_000.0),
    degraded_fraction: float = 0.125,
) -> Executor:
    """An executor whose service time is a seeded draw per request.

    OLTP requests cost uniform ``oltp_cycles``, OLAP uniform
    ``olap_cycles``; a degraded (sampled) OLAP dispatch pays
    ``degraded_fraction`` of its full draw. The draw is keyed
    ``[seed, req_id]`` so it is independent of dispatch order.
    """
    if not 0.0 < degraded_fraction <= 1.0:
        raise ConfigurationError(
            f"degraded_fraction must be in (0, 1], got {degraded_fraction}"
        )

    def execute(request: Request, degrade: bool) -> ExecOutcome:
        rng = np.random.default_rng([seed, request.req_id])
        lo, hi = oltp_cycles if request.lane == OLTP_LANE else olap_cycles
        cycles = float(rng.uniform(lo, hi))
        if degrade:
            cycles *= degraded_fraction
        return ExecOutcome(cycles=cycles, degraded=degrade)

    return execute


@dataclass(frozen=True)
class LoadSpec:
    """One tenant's open-loop arrival process on one lane.

    Arrivals are Poisson with mean spacing ``mean_interarrival_cycles``,
    modulated by a square-wave burst pattern: every ``burst_every_cycles``
    a burst of ``burst_len_cycles`` begins during which the arrival rate
    is multiplied by ``burst_factor`` (1.0 == no bursts). ``cost_cycles``
    bounds the *estimate* the admission controller charges — the executor
    prices actual service separately, as in any real estimator.
    """

    tenant_id: str
    lane: str
    mean_interarrival_cycles: float
    cost_cycles: Tuple[float, float]
    burst_every_cycles: float = 0.0
    burst_len_cycles: float = 0.0
    burst_factor: float = 1.0
    deadline_budget_cycles: Optional[float] = None

    def __post_init__(self):
        if self.lane not in LANES:
            raise ConfigurationError(
                f"unknown lane {self.lane!r}; known: {LANES}"
            )
        if self.mean_interarrival_cycles <= 0:
            raise ConfigurationError(
                f"mean_interarrival_cycles must be > 0, "
                f"got {self.mean_interarrival_cycles}"
            )
        lo, hi = self.cost_cycles
        if not 0 < lo <= hi:
            raise ConfigurationError(
                f"cost_cycles must satisfy 0 < lo <= hi, got {self.cost_cycles}"
            )
        if self.burst_factor < 1.0:
            raise ConfigurationError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_factor > 1.0 and (
            self.burst_every_cycles <= 0
            or not 0 < self.burst_len_cycles <= self.burst_every_cycles
        ):
            raise ConfigurationError(
                "bursty specs need 0 < burst_len_cycles <= burst_every_cycles"
            )
        if (
            self.deadline_budget_cycles is not None
            and self.deadline_budget_cycles <= 0
        ):
            raise ConfigurationError(
                f"deadline_budget_cycles must be > 0, "
                f"got {self.deadline_budget_cycles}"
            )

    def in_burst(self, t: float) -> bool:
        if self.burst_factor <= 1.0 or self.burst_every_cycles <= 0:
            return False
        return (t % self.burst_every_cycles) < self.burst_len_cycles


def submit_open_loop(
    scheduler: ServeScheduler,
    specs: List[LoadSpec],
    horizon_cycles: float,
    seed: int = 0,
) -> List[Request]:
    """Materialise every spec's arrivals up to ``horizon_cycles`` and
    submit them. Stream ``i`` draws from ``default_rng([seed, i])`` so
    adding or removing a spec never perturbs the others."""
    if horizon_cycles <= 0:
        raise ConfigurationError(
            f"horizon_cycles must be > 0, got {horizon_cycles}"
        )
    submitted: List[Request] = []
    for i, spec in enumerate(specs):
        rng = np.random.default_rng([seed, i])
        t = 0.0
        while True:
            rate_scale = spec.burst_factor if spec.in_burst(t) else 1.0
            t += float(
                rng.exponential(spec.mean_interarrival_cycles / rate_scale)
            )
            if t >= horizon_cycles:
                break
            lo, hi = spec.cost_cycles
            submitted.append(
                scheduler.submit(
                    tenant=spec.tenant_id,
                    lane=spec.lane,
                    cost_estimate=float(rng.uniform(lo, hi)),
                    arrival=t,
                    deadline_budget=spec.deadline_budget_cycles,
                )
            )
    return submitted
