"""repro.serve — the multi-tenant serving front door.

Everything in front of the engines: per-tenant admission control (token
buckets + queue caps), deadline enforcement, weighted-fair queueing
across tenants and priority lanes, and breaker-style graceful
degradation under overload. All of it runs on the same simulated clock
as the rest of the stack — the scheduler's ledger charges drive the
metrics :class:`~repro.obs.metrics.Sampler` — so a seeded run is
bit-identical every time and the chaos oracle
(:class:`~repro.serve.oracle.ServeOracle`) can replay the whole event
log brute-force.

Quick use::

    from repro.serve import (
        ServeConfig, TenantConfig, ServeScheduler, synthetic_executor,
    )

    config = ServeConfig(tenants=(
        TenantConfig("app", weight=4.0),
        TenantConfig("analytics", weight=1.0),
    ))
    sched = ServeScheduler(config, synthetic_executor(seed=7))
    sched.submit("app", "oltp", cost_estimate=20_000, arrival=0.0,
                 deadline_budget=2_000_000)
    sched.submit("analytics", "olap", cost_estimate=2_000_000, arrival=0.0)
    report = sched.run_until_drained()
    print(report.lane("app", "oltp").to_dict())
"""

from repro.serve.admission import (
    ADMIT,
    SHED,
    THROTTLE,
    AdmissionController,
    TokenBucket,
    Verdict,
)
from repro.serve.oracle import ServeOracle
from repro.serve.queue import WeightedFairQueue
from repro.serve.request import (
    ADMITTED_OUTCOMES,
    EV_ADMIT,
    EV_COMPLETE,
    EV_DISPATCH,
    EV_EXPIRE,
    EV_SHED,
    EV_SUBMIT,
    EV_THROTTLE,
    LANES,
    OLAP_LANE,
    OLTP_LANE,
    REJECTED_OUTCOMES,
    Event,
    Outcome,
    Request,
    Resolution,
    ServeConfig,
    TenantConfig,
)
from repro.serve.scheduler import (
    ExecOutcome,
    Executor,
    LaneStats,
    ServeReport,
    ServeScheduler,
    throttle_backoff,
)
from repro.serve.workload import LoadSpec, submit_open_loop, synthetic_executor

__all__ = [
    "ADMIT",
    "ADMITTED_OUTCOMES",
    "AdmissionController",
    "EV_ADMIT",
    "EV_COMPLETE",
    "EV_DISPATCH",
    "EV_EXPIRE",
    "EV_SHED",
    "EV_SUBMIT",
    "EV_THROTTLE",
    "Event",
    "ExecOutcome",
    "Executor",
    "LANES",
    "LaneStats",
    "LoadSpec",
    "OLAP_LANE",
    "OLTP_LANE",
    "Outcome",
    "REJECTED_OUTCOMES",
    "Request",
    "Resolution",
    "SHED",
    "ServeConfig",
    "ServeOracle",
    "ServeReport",
    "ServeScheduler",
    "THROTTLE",
    "TenantConfig",
    "TokenBucket",
    "Verdict",
    "WeightedFairQueue",
    "submit_open_loop",
    "synthetic_executor",
    "throttle_backoff",
]
