"""Multi-way-join TPC-H shapes: Q3-class and Q14-class queries.

The vectorized executor's headline workloads (ISSUE 7): a three-table
shipping-priority query (Q3: lineitem ⋈ orders ⋈ customer with grouped
revenue, sorted and limited) and a promotion-revenue query (Q14:
lineitem ⋈ part with a conditional aggregate). Both run through the
same SQL front door as Q1/Q6, on every engine, in every exec mode.

The dimension generators extend :mod:`repro.workloads.tpch`: ``customer``
parents every ``o_custkey`` and ``part`` parents every ``l_partkey``, so
both foreign keys are total, as dbgen guarantees.

Dialect substitutions (documented, DESIGN.md §11): no ``LIKE``, so Q14's
``p_type LIKE 'PROMO%'`` becomes equality against one generated promo
type (``p_type`` is drawn from a small closed set, keeping the promo
fraction realistic); the final ``100 * promo / total`` ratio is left to
the caller since the dialect has no aggregate-over-aggregate arithmetic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.db.catalog import Catalog
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import CHAR, DECIMAL, INT32, INT64
from repro.workloads.tpch import generate_lineitem, generate_orders


def customer_schema(mvcc: bool = False) -> TableSchema:
    """The TPC-H customer layout (fixed-width CHARs, comment shortened)."""
    return TableSchema(
        "customer",
        [
            Column("c_custkey", INT64),
            Column("c_name", CHAR(18)),
            Column("c_address", CHAR(25)),
            Column("c_nationkey", INT32),
            Column("c_phone", CHAR(15)),
            Column("c_acctbal", DECIMAL(2)),
            Column("c_mktsegment", CHAR(10)),
            Column("c_comment", CHAR(32)),
        ],
        row_align=8,
        mvcc=mvcc,
    )


_SEGMENTS = (b"AUTOMOBILE", b"BUILDING", b"FURNITURE", b"MACHINERY", b"HOUSEHOLD")


def generate_customer(
    orders: Table,
    catalog: Optional[Catalog] = None,
    seed: int = 19920103,
) -> Table:
    """Generate the customer parent of every distinct ``o_custkey`` in
    ``orders`` (total foreign key, as in TPC-H)."""
    catalog = catalog or Catalog()
    schema = customer_schema()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(seed)

    custkeys = np.unique(orders.column("o_custkey"))
    n = len(custkeys)
    table.append_arrays(
        {
            "c_custkey": custkeys,
            "c_name": np.full(n, b"Customer#000000001", dtype="S18"),
            "c_address": np.full(n, b"generated address", dtype="S25"),
            "c_nationkey": rng.integers(0, 25, n, dtype=np.int32),
            "c_phone": np.full(n, b"11-111-111-1111", dtype="S15"),
            "c_acctbal": rng.integers(-99_999, 1_000_000, n, dtype=np.int64),
            "c_mktsegment": rng.choice(np.array(_SEGMENTS, dtype="S10"), n),
            "c_comment": np.full(n, b"generated customer", dtype="S32"),
        }
    )
    return table


def part_schema(mvcc: bool = False) -> TableSchema:
    """The TPC-H part layout (fixed-width CHARs, comment shortened)."""
    return TableSchema(
        "part",
        [
            Column("p_partkey", INT64),
            Column("p_name", CHAR(32)),
            Column("p_mfgr", CHAR(25)),
            Column("p_brand", CHAR(10)),
            Column("p_type", CHAR(25)),
            Column("p_size", INT32),
            Column("p_container", CHAR(10)),
            Column("p_retailprice", DECIMAL(2)),
            Column("p_comment", CHAR(14)),
        ],
        row_align=8,
        mvcc=mvcc,
    )


#: p_type values; one in six parts is the promo type Q14 keys on — in
#: line with dbgen, where PROMO* is one of five type prefixes.
PROMO_TYPE = b"PROMO ANODIZED TIN"
_TYPES = (
    PROMO_TYPE,
    b"STANDARD POLISHED BRASS",
    b"SMALL PLATED COPPER",
    b"MEDIUM BURNISHED NICKEL",
    b"LARGE BRUSHED STEEL",
    b"ECONOMY ANODIZED PEWTER",
)
_CONTAINERS = (b"SM CASE", b"MED BOX", b"LG DRUM", b"JUMBO JAR")


def generate_part(
    lineitem: Table,
    catalog: Optional[Catalog] = None,
    seed: int = 19920104,
) -> Table:
    """Generate the part parent of every distinct ``l_partkey`` in
    ``lineitem`` (total foreign key, as in TPC-H)."""
    catalog = catalog or Catalog()
    schema = part_schema()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(seed)

    partkeys = np.unique(lineitem.column("l_partkey"))
    n = len(partkeys)
    table.append_arrays(
        {
            "p_partkey": partkeys,
            "p_name": np.full(n, b"generated part", dtype="S32"),
            "p_mfgr": np.full(n, b"Manufacturer#1", dtype="S25"),
            "p_brand": np.full(n, b"Brand#11", dtype="S10"),
            "p_type": rng.choice(np.array(_TYPES, dtype="S25"), n),
            "p_size": rng.integers(1, 51, n, dtype=np.int32),
            "p_container": rng.choice(np.array(_CONTAINERS, dtype="S10"), n),
            "p_retailprice": rng.integers(90_000, 200_001, n, dtype=np.int64),
            "p_comment": np.full(n, b"generated", dtype="S14"),
        }
    )
    return table


def generate_tpch_analytics(
    nrows_lineitem: int, seed: int = 19920101
) -> Tuple[Catalog, Table, Table, Table, Table]:
    """One catalog holding a consistent lineitem + orders + customer +
    part star, sized by the fact table's row count."""
    catalog, lineitem = generate_lineitem(nrows_lineitem, seed=seed)
    orders = generate_orders(lineitem, catalog=catalog, seed=seed + 1)
    customer = generate_customer(orders, catalog=catalog, seed=seed + 2)
    part = generate_part(lineitem, catalog=catalog, seed=seed + 3)
    return catalog, lineitem, orders, customer, part


#: TPC-H Q3 — the shipping-priority query: a three-way join with grouped
#: revenue, ordered and limited. The hot shape for the vectorized join
#: chain (two probe phases feeding one grouped aggregation).
Q3 = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate,
       o_shippriority
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < date '1995-03-15'
  AND l_shipdate > date '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

#: TPC-H Q14 — the promotion-effect query: join to part, split revenue by
#: a predicate on the joined side. ``LIKE 'PROMO%'`` is substituted with
#: equality against :data:`PROMO_TYPE` (the dialect has no LIKE); the
#: promo ratio is ``100 * promo_revenue / total_revenue``, computed by
#: the caller.
Q14 = """
SELECT sum((p_type = 'PROMO ANODIZED TIN') * l_extendedprice * (1 - l_discount))
           AS promo_revenue,
       sum(l_extendedprice * (1 - l_discount)) AS total_revenue
FROM lineitem
JOIN part ON l_partkey = p_partkey
WHERE l_shipdate >= date '1995-09-01'
  AND l_shipdate < date '1995-10-01'
"""

#: Fact-table columns each query touches (target-column sizing, like
#: Q1_COLUMNS / Q6_COLUMNS).
Q3_COLUMNS = ("l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")
Q14_COLUMNS = ("l_partkey", "l_extendedprice", "l_discount", "l_shipdate")
