"""Synthetic wide-table workloads for Figures 5 and 6.

The paper's microbenchmarks use a row of 4-byte columns padded to a fixed
row width (Figure 5: "projectivity from 1 to 11 columns for 4-byte wide
columns and 64-byte wide rows"). :func:`make_wide_table` builds exactly
that shape; the query builders produce the projection and
projection+selection kernels of Figures 5 and 6.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.db.catalog import Catalog
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import INT32
from repro.errors import ConfigurationError

#: Upper bound of the uniform column values (exclusive).
VALUE_RANGE = 1_000_000


def wide_schema(
    ncols: int = 16, row_bytes: int = 64, name: str = "wide"
) -> TableSchema:
    """``ncols`` 4-byte INT32 columns padded to ``row_bytes`` per row."""
    if ncols * 4 > row_bytes:
        raise ConfigurationError(
            f"{ncols} 4-byte columns do not fit a {row_bytes}-byte row"
        )
    cols = [Column(f"c{i}", INT32) for i in range(ncols)]
    return TableSchema(name, cols, row_align=row_bytes)


def make_wide_table(
    nrows: int,
    ncols: int = 16,
    row_bytes: int = 64,
    name: str = "wide",
    seed: int = 42,
    catalog: Optional[Catalog] = None,
) -> Tuple[Catalog, Table]:
    """Build and bulk-load the wide table; returns (catalog, table)."""
    catalog = catalog or Catalog()
    schema = wide_schema(ncols=ncols, row_bytes=row_bytes, name=name)
    table = catalog.create_table(schema)
    rng = np.random.default_rng(seed)
    table.append_arrays(
        {
            f"c{i}": rng.integers(0, VALUE_RANGE, nrows, dtype=np.int32)
            for i in range(ncols)
        }
    )
    return catalog, table


def projectivity_query(k: int, name: str = "wide") -> str:
    """The Figure 5 kernel: sum over the first ``k`` columns (projectivity
    = k, no selection)."""
    if k < 1:
        raise ConfigurationError("projectivity must be >= 1")
    total = " + ".join(f"c{i}" for i in range(k))
    return f"SELECT sum({total}) AS total FROM {name}"


def projection_selection_query(
    n_projected: int,
    n_selection: int,
    overall_selectivity: float = 0.5,
    name: str = "wide",
) -> str:
    """The Figure 6 kernel: sum over ``n_projected`` columns under a
    conjunction over ``n_selection`` *distinct* further columns.

    Per-conjunct thresholds are set so the overall qualifying fraction is
    roughly ``overall_selectivity`` regardless of ``n_selection`` (each
    conjunct passes ``selectivity ** (1/s)`` of uniform values).
    """
    if n_projected < 1 or n_selection < 1:
        raise ConfigurationError("need at least one projected and one selection column")
    if not 0.0 < overall_selectivity < 1.0:
        raise ConfigurationError("overall selectivity must be in (0, 1)")
    total = " + ".join(f"c{i}" for i in range(n_projected))
    per_conjunct = overall_selectivity ** (1.0 / n_selection)
    threshold = int(per_conjunct * VALUE_RANGE)
    terms = [
        f"c{n_projected + j} < {threshold}" for j in range(n_selection)
    ]
    return (
        f"SELECT sum({total}) AS total FROM {name} WHERE " + " AND ".join(terms)
    )
