"""Workload generators: synthetic wide tables, TPC-H lineitem, HTAP mix."""

from repro.workloads.synthetic import (
    make_wide_table,
    projection_selection_query,
    projectivity_query,
    wide_schema,
)
from repro.workloads.tpch import (
    Q1,
    Q1_COLUMNS,
    Q6,
    Q6_COLUMNS,
    QJOIN,
    generate_lineitem,
    generate_orders,
    generate_tpch,
    lineitem_schema,
    orders_schema,
    rows_for_target_bytes,
)

__all__ = [
    "Q1",
    "Q1_COLUMNS",
    "Q6",
    "Q6_COLUMNS",
    "QJOIN",
    "generate_lineitem",
    "generate_orders",
    "generate_tpch",
    "orders_schema",
    "lineitem_schema",
    "make_wide_table",
    "projection_selection_query",
    "projectivity_query",
    "rows_for_target_bytes",
    "wide_schema",
]
