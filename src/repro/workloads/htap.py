"""HTAP driver: interleaved OLTP transactions and analytic snapshots.

The paper's headline scenario — fresh transactional data, analyzed
in place, with no duplicated layouts. The driver runs an order-ledger
style write mix through the MVCC manager while periodically firing an
analytic query at each engine, measuring:

* **freshness lag** — rows the column-store replica has not converted
  yet (zero for the row engine and the fabric, which read base data);
* **conversion cost** — cycles the column engine burns re-materializing
  its copy;
* **abort rate** — write-write conflicts under snapshot isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.db.catalog import Catalog
from repro.db.engines import ColumnStoreEngine, RelationalMemoryEngine, RowStoreEngine
from repro.db.mvcc import TransactionManager
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import DECIMAL, INT64
from repro.errors import WriteConflictError
from repro.hw.config import PlatformConfig
from repro.obs import MetricsRegistry, active_metrics


def orders_schema(name: str = "orders") -> TableSchema:
    """A slim order ledger with MVCC bookkeeping."""
    return TableSchema(
        name,
        [
            Column("o_id", INT64),
            Column("o_customer", INT64),
            Column("o_amount", DECIMAL(2)),
            Column("o_status", INT64),  # 0=open, 1=paid, 2=shipped
        ],
        mvcc=True,
    )


@dataclass
class HtapStats:
    inserts: int = 0
    updates: int = 0
    commits: int = 0
    aborts: int = 0
    analytic_runs: int = 0
    #: Per analytic round: rows the COL replica was missing at query time.
    freshness_lag: List[int] = field(default_factory=list)
    conversion_cycles: float = 0.0
    engine_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_freshness_lag(self) -> float:
        return (
            sum(self.freshness_lag) / len(self.freshness_lag)
            if self.freshness_lag
            else 0.0
        )


class HtapDriver:
    """Runs the mixed workload against all three engines."""

    ANALYTIC_SQL = (
        "SELECT o_status, sum(o_amount) AS revenue, count(*) AS n "
        "FROM orders WHERE o_amount > 50 GROUP BY o_status ORDER BY o_status"
    )

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        seed: int = 7,
        initial_rows: int = 2000,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.catalog = Catalog()
        self.platform = platform
        self.table: Table = self.catalog.create_table(orders_schema())
        #: One shared registry across the manager and all three engines,
        #: so the whole HTAP run lands in a single time series. The clock
        #: is driven by the analytic query ledgers plus the column
        #: store's conversion ledger (the in-memory OLTP path charges no
        #: cycles of its own).
        self.metrics = active_metrics(metrics)
        self.manager = TransactionManager(metrics=metrics)
        self.rng = np.random.default_rng(seed)
        self.stats = HtapStats()
        self.engines = {
            "row": RowStoreEngine(self.catalog, platform, metrics=metrics),
            "column": ColumnStoreEngine(self.catalog, platform, metrics=metrics),
            "rm": RelationalMemoryEngine(self.catalog, platform, metrics=metrics),
        }
        if self.metrics is not None:
            from repro.obs.collectors import register_version_chains

            register_version_chains(self.metrics, self.table, "o_id")
        self._next_order = 0
        self._seed_rows(initial_rows)

    def _seed_rows(self, n: int) -> None:
        txn = self.manager.begin()
        for _ in range(n):
            txn.insert(self.table, self._new_order())
        self.manager.commit(txn)
        self.stats.inserts += n
        self.stats.commits += 1

    def _new_order(self) -> dict:
        self._next_order += 1
        return {
            "o_id": self._next_order,
            "o_customer": int(self.rng.integers(1, 500)),
            "o_amount": float(self.rng.uniform(1, 200)),
            "o_status": 0,
        }

    # ------------------------------------------------------------------
    # Workload steps.
    # ------------------------------------------------------------------
    def run_oltp_burst(self, n_txns: int, updates_per_txn: int = 2) -> None:
        """Each transaction inserts one order and advances a few others."""
        for _ in range(n_txns):
            txn = self.manager.begin()
            try:
                new_slot = txn.insert(self.table, self._new_order())
                self.stats.inserts += 1
                # visible_slots includes our own pending insert, which
                # update() refuses to touch (it has no committed version
                # to supersede) — advance only pre-existing orders.
                live = txn.visible_slots(self.table)
                live = live[live != new_slot]
                if len(live):
                    picks = self.rng.choice(live, size=min(updates_per_txn, len(live)), replace=False)
                    # One decode + gather for every picked slot, instead of
                    # re-decoding the column once per update.
                    statuses = self.table.column_values("o_status")[picks]
                    for slot, status in zip(picks, statuses):
                        txn.update(
                            self.table,
                            int(slot),
                            {"o_status": min(int(status) + 1, 2)},
                        )
                        self.stats.updates += 1
                self.manager.commit(txn)
                self.stats.commits += 1
            except WriteConflictError:
                self.stats.aborts += 1

    def run_analytics(self) -> Dict[str, object]:
        """Fire the analytic query at every engine on a fresh snapshot."""
        snapshot = self.manager.now
        results = {}
        col_engine: ColumnStoreEngine = self.engines["column"]
        replica = col_engine.replica_of(self.table)
        self.stats.freshness_lag.append(replica.stale_rows)
        before = col_engine.conversion_ledger.total_cycles
        for name, engine in self.engines.items():
            res = engine.execute(self.ANALYTIC_SQL, snapshot_ts=snapshot)
            results[name] = res
            self.stats.engine_cycles[name] = (
                self.stats.engine_cycles.get(name, 0.0) + res.cycles
            )
        self.stats.conversion_cycles += (
            col_engine.conversion_ledger.total_cycles - before
        )
        self.stats.analytic_runs += 1
        return results

    def run_mixed(self, rounds: int = 5, txns_per_round: int = 50) -> HtapStats:
        """The full HTAP loop: OLTP burst, then analytics, repeated."""
        for _ in range(rounds):
            self.run_oltp_burst(txns_per_round)
            self.run_analytics()
        return self.stats

    # ------------------------------------------------------------------
    # The served front door (repro.serve).
    # ------------------------------------------------------------------
    #: Cycles the serving cost model charges one OLTP transaction: the
    #: in-memory MVCC path is not priced by the engines, so the front
    #: door prices it per statement (insert + each update).
    OLTP_STATEMENT_CYCLES = 2_500.0

    @property
    def serve_engine(self):
        """The engine the served OLAP lane executes on.

        Built lazily with ``metrics=None``: the serve scheduler already
        advances the shared registry's clock for every cycle of service
        time, so the engine's own ledger must not advance it again. It
        *does* share the driver's tracer hook via the scheduler's
        ``serve.execute`` span, under which its spans nest.
        """
        if not hasattr(self, "_serve_engine"):
            self._serve_engine = RowStoreEngine(
                self.catalog, self.platform, metrics=None
            )
        return self._serve_engine

    def serve_executor(self, tracer=None):
        """An :data:`repro.serve.scheduler.Executor` over this driver.

        OLTP requests run one real transaction (insert + two updates)
        through the MVCC manager; OLAP requests run the analytic query on
        :attr:`serve_engine` against a fresh snapshot. A degraded OLAP
        dispatch models a sampled scan: the answer is computed but only
        ``olap_degraded_fraction``-style cost is charged by the caller's
        config — here the executor scales the engine's priced cycles.
        """
        from repro.serve.request import OLAP_LANE
        from repro.serve.scheduler import ExecOutcome

        if tracer is not None:
            self.serve_engine.tracer = tracer

        def execute(request, degrade):
            if request.lane == OLAP_LANE:
                res = self.serve_engine.execute(
                    self.ANALYTIC_SQL, snapshot_ts=self.manager.now
                )
                cycles = res.cycles
                if degrade:
                    cycles *= float(request.payload or 0.125)
                return ExecOutcome(cycles=cycles, degraded=degrade, payload=res)
            before = self.stats.updates
            self.run_oltp_burst(1)
            statements = 1 + (self.stats.updates - before)
            return ExecOutcome(cycles=self.OLTP_STATEMENT_CYCLES * statements)

        return execute

    def run_served(
        self,
        config,
        specs,
        horizon_cycles: float,
        seed: int = 0,
        tracer=None,
        fault_injector=None,
    ):
        """Drive the whole stack through the multi-tenant front door.

        Builds a :class:`repro.serve.ServeScheduler` whose executor runs
        real transactions and real analytic queries on this driver,
        submits every :class:`repro.serve.LoadSpec` open-loop up to
        ``horizon_cycles``, and drains. Returns the ``ServeReport``.
        """
        from repro.serve.scheduler import ServeScheduler
        from repro.serve.workload import submit_open_loop

        scheduler = ServeScheduler(
            config,
            self.serve_executor(tracer=tracer),
            metrics=self.metrics,
            tracer=tracer,
            fault_injector=fault_injector,
        )
        submit_open_loop(scheduler, specs, horizon_cycles, seed=seed)
        return scheduler.run_until_drained()
