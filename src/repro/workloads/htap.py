"""HTAP driver: interleaved OLTP transactions and analytic snapshots.

The paper's headline scenario — fresh transactional data, analyzed
in place, with no duplicated layouts. The driver runs an order-ledger
style write mix through the MVCC manager while periodically firing an
analytic query at each engine, measuring:

* **freshness lag** — rows the column-store replica has not converted
  yet (zero for the row engine and the fabric, which read base data);
* **conversion cost** — cycles the column engine burns re-materializing
  its copy;
* **abort rate** — write-write conflicts under snapshot isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.db.catalog import Catalog
from repro.db.engines import ColumnStoreEngine, RelationalMemoryEngine, RowStoreEngine
from repro.db.mvcc import TransactionManager
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import DECIMAL, INT64
from repro.errors import WriteConflictError
from repro.hw.config import PlatformConfig
from repro.obs import MetricsRegistry, active_metrics


def orders_schema(name: str = "orders") -> TableSchema:
    """A slim order ledger with MVCC bookkeeping."""
    return TableSchema(
        name,
        [
            Column("o_id", INT64),
            Column("o_customer", INT64),
            Column("o_amount", DECIMAL(2)),
            Column("o_status", INT64),  # 0=open, 1=paid, 2=shipped
        ],
        mvcc=True,
    )


@dataclass
class HtapStats:
    inserts: int = 0
    updates: int = 0
    commits: int = 0
    aborts: int = 0
    analytic_runs: int = 0
    #: Per analytic round: rows the COL replica was missing at query time.
    freshness_lag: List[int] = field(default_factory=list)
    conversion_cycles: float = 0.0
    engine_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_freshness_lag(self) -> float:
        return (
            sum(self.freshness_lag) / len(self.freshness_lag)
            if self.freshness_lag
            else 0.0
        )


class HtapDriver:
    """Runs the mixed workload against all three engines."""

    ANALYTIC_SQL = (
        "SELECT o_status, sum(o_amount) AS revenue, count(*) AS n "
        "FROM orders WHERE o_amount > 50 GROUP BY o_status ORDER BY o_status"
    )

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        seed: int = 7,
        initial_rows: int = 2000,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.catalog = Catalog()
        self.table: Table = self.catalog.create_table(orders_schema())
        #: One shared registry across the manager and all three engines,
        #: so the whole HTAP run lands in a single time series. The clock
        #: is driven by the analytic query ledgers plus the column
        #: store's conversion ledger (the in-memory OLTP path charges no
        #: cycles of its own).
        self.metrics = active_metrics(metrics)
        self.manager = TransactionManager(metrics=metrics)
        self.rng = np.random.default_rng(seed)
        self.stats = HtapStats()
        self.engines = {
            "row": RowStoreEngine(self.catalog, platform, metrics=metrics),
            "column": ColumnStoreEngine(self.catalog, platform, metrics=metrics),
            "rm": RelationalMemoryEngine(self.catalog, platform, metrics=metrics),
        }
        if self.metrics is not None:
            from repro.obs.collectors import register_version_chains

            register_version_chains(self.metrics, self.table, "o_id")
        self._next_order = 0
        self._seed_rows(initial_rows)

    def _seed_rows(self, n: int) -> None:
        txn = self.manager.begin()
        for _ in range(n):
            txn.insert(self.table, self._new_order())
        self.manager.commit(txn)
        self.stats.inserts += n
        self.stats.commits += 1

    def _new_order(self) -> dict:
        self._next_order += 1
        return {
            "o_id": self._next_order,
            "o_customer": int(self.rng.integers(1, 500)),
            "o_amount": float(self.rng.uniform(1, 200)),
            "o_status": 0,
        }

    # ------------------------------------------------------------------
    # Workload steps.
    # ------------------------------------------------------------------
    def run_oltp_burst(self, n_txns: int, updates_per_txn: int = 2) -> None:
        """Each transaction inserts one order and advances a few others."""
        for _ in range(n_txns):
            txn = self.manager.begin()
            try:
                txn.insert(self.table, self._new_order())
                self.stats.inserts += 1
                live = txn.visible_slots(self.table)
                if len(live):
                    picks = self.rng.choice(live, size=min(updates_per_txn, len(live)), replace=False)
                    for slot in picks:
                        status = int(self.table.column_values("o_status")[slot])
                        txn.update(self.table, int(slot), {"o_status": min(status + 1, 2)})
                        self.stats.updates += 1
                self.manager.commit(txn)
                self.stats.commits += 1
            except WriteConflictError:
                self.stats.aborts += 1

    def run_analytics(self) -> Dict[str, object]:
        """Fire the analytic query at every engine on a fresh snapshot."""
        snapshot = self.manager.now
        results = {}
        col_engine: ColumnStoreEngine = self.engines["column"]
        replica = col_engine.replica_of(self.table)
        self.stats.freshness_lag.append(replica.stale_rows)
        before = col_engine.conversion_ledger.total_cycles
        for name, engine in self.engines.items():
            res = engine.execute(self.ANALYTIC_SQL, snapshot_ts=snapshot)
            results[name] = res
            self.stats.engine_cycles[name] = (
                self.stats.engine_cycles.get(name, 0.0) + res.cycles
            )
        self.stats.conversion_cycles += (
            col_engine.conversion_ledger.total_cycles - before
        )
        self.stats.analytic_runs += 1
        return results

    def run_mixed(self, rounds: int = 5, txns_per_round: int = 50) -> HtapStats:
        """The full HTAP loop: OLTP burst, then analytics, repeated."""
        for _ in range(rounds):
            self.run_oltp_burst(txns_per_round)
            self.run_analytics()
        return self.stats
