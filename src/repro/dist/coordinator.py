"""The scatter-gather coordinator: planning, fencing, hedging, degrading.

:class:`ShardCluster` owns one :class:`~repro.db.sharding.ShardedTable`
(the authoritative state, always at the coordinator) and one worker per
shard — each an independent fault domain (:mod:`repro.dist.worker`). Two
modes:

- **bench** (default): shards are read-only; workers fork-inherit their
  shard's table copy-on-write. No WALs, no fencing.
- **durable**: every shard gets its own write-ahead log and transaction
  manager; workers are :class:`~repro.dist.replica.ShardReplica` stubs
  booted from the shard's WAL image and kept fresh by fire-and-forget
  delta replication. Queries carry the shard's durable LSN as a *fence*:
  a replica that silently missed a delta (the ``shard.partition`` site)
  answers ``stale`` and is restarted from the log instead of serving
  stale rows.

A query scatters one ``exec`` per overlapping shard
(:meth:`~repro.db.sharding.ShardedTable.shards_for_range` prunes), then
gathers under a per-shard deadline-bounded state machine
(:meth:`ShardCluster._await_shard`):

- worker death → restart (durable: recover from WAL) and resend;
- deadline expiry → kill the suspect, restart, resend — up to
  ``retries`` resends;
- optional hedging: after ``hedge_after_s`` a second incarnation runs
  the same fragment; first response wins, ties broken deterministically
  toward the lowest incarnation (contender poll order);
- past the retry budget the shard's key range is declared missing. With
  ``allow_partial=True`` the query degrades to a typed partial
  (:attr:`DistResult.missing_ranges`); otherwise it raises
  :class:`~repro.errors.PartialResultError` carrying the same ranges and
  the partial answer — degraded loudly, never silently (PR 1's
  discipline).

Cost accounting keeps the bit-identity contract of
:mod:`repro.dist.plan`: the per-query ledger charges only the
data-proportional ``dist_*`` buckets, in shard order; retries, hedges,
timeouts, and recoveries land in :class:`DistQueryStats` /
:class:`ClusterStats` — observability, not cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.ledger import CostLedger
from repro.db.mvcc import TransactionManager
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.db.wal import WriteAheadLog
from repro.dist.plan import (
    DistPlan,
    DistResult,
    ShardPartial,
    execute_fragment,
    merge_partials,
)
from repro.dist.worker import (
    BOOT_REQ_ID,
    InlineShardHost,
    ProcessShardHost,
    WorkerBoot,
)
from repro.errors import ExecutionError, PartialResultError, WorkerTimeoutError
from repro.obs import TraceContext, maybe_span, new_trace_id
from repro.obs.distctx import graft_partial
from repro.obs.journal import (
    EV_HEDGE_WIN,
    EV_PARTIAL_RESULT,
    EV_SHARD_KILL,
    EV_SHARD_RESTART,
    EV_SHARD_STALE,
    EV_SHARD_TIMEOUT,
    active_journal,
)

__all__ = ["DistConfig", "ClusterStats", "ShardCluster"]


@dataclass(frozen=True)
class DistConfig:
    """Coordinator policy knobs (wall-clock seconds throughout)."""

    #: Per-attempt RPC deadline; expiry kills and restarts the worker.
    deadline_s: float = 5.0
    #: How long a (re)started worker gets to ack its boot.
    boot_deadline_s: float = 10.0
    #: Resends after the first attempt before a shard is declared missing.
    retries: int = 2
    #: Launch a hedge incarnation after this long with no reply
    #: (None = hedging off).
    hedge_after_s: Optional[float] = None
    #: Poll granularity while awaiting replies.
    poll_s: float = 0.02
    #: Run workers in-process (deterministic, no real fault domains).
    inline: bool = False
    #: Fault-injection schedule, fanned out per worker (see WorkerBoot).
    fault_rates: Mapping[str, float] = field(default_factory=dict)
    fault_seed: int = 0
    fault_max: Optional[int] = None
    fault_shards: Optional[FrozenSet[int]] = None
    fault_incarnations: Optional[FrozenSet[int]] = None
    #: How long an injected shard.stall sleeps before answering.
    stall_s: float = 0.25


@dataclass
class ClusterStats:
    """Cumulative fault-handling counters, across every query — the feed
    for the ``dist_*`` metrics collectors. All wall-clock phenomena live
    here, outside the bit-identity contract."""

    queries_total: int = 0
    partial_results_total: int = 0
    rpcs_total: int = 0
    timeouts_total: int = 0
    hedges_total: int = 0
    hedge_wins_total: int = 0
    restarts_total: int = 0
    recoveries_total: int = 0
    stale_fences_total: int = 0
    kills_total: int = 0
    rows_shipped_total: int = 0
    recovered_bytes_total: int = 0
    replicated_bytes_total: int = 0


class ShardCluster:
    """Shard workers + the scatter-gather front end over one relation."""

    def __init__(
        self,
        sharded: ShardedTable,
        config: Optional[DistConfig] = None,
        durable: bool = False,
        tracer=None,
        journal=None,
    ):
        if durable and not sharded.schema.mvcc:
            raise ExecutionError(
                "durable clusters need an MVCC schema (begin/end stamps "
                "drive WAL redo)"
            )
        self.sharded = sharded
        self.config = config or DistConfig()
        self.durable = durable
        self.tracer = tracer
        #: Flight recorder for fault-handling decisions (restart, kill,
        #: stale fence, hedge win, timeout, partial result). Folded to
        #: None when disabled, so hot paths pay one is-None check.
        self.journal = active_journal(journal)
        self.stats = ClusterStats()
        #: Cross-query cost accumulation (plain ledger; per-query ledgers
        #: merge into it so traced/untraced runs accumulate identically).
        self.ledger = CostLedger()
        nshards = len(sharded.shards)
        self._hosts: List[Optional[Any]] = [None] * nshards
        self._incarnations = [0] * nshards
        self._sent_lsn = [0] * nshards
        self._next_req_id = 0
        if durable:
            self._wals: List[WriteAheadLog] = [
                WriteAheadLog() for _ in range(nshards)
            ]
            self._managers: List[TransactionManager] = [
                TransactionManager(wal=wal) for wal in self._wals
            ]
        else:
            self._wals = []
            self._managers = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "ShardCluster":
        for i in range(len(self._hosts)):
            if self._hosts[i] is None:
                self._hosts[i], _info = self._spawn(i)
        return self

    def close(self) -> None:
        for i, host in enumerate(self._hosts):
            if host is not None:
                host.close()
                self._hosts[i] = None

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def schema(self):
        return self.sharded.schema

    @property
    def shard_key(self) -> str:
        return self.sharded.shard_key

    def table_for(self, index: int) -> Table:
        """The authoritative (coordinator-side) table of one shard."""
        return self.sharded.shards[index]

    def manager_for(self, index: int) -> TransactionManager:
        if not self.durable:
            raise ExecutionError("bench-mode clusters have no transactions")
        return self._managers[index]

    def incarnation_of(self, index: int) -> int:
        return self._incarnations[index]

    def workers_alive(self) -> int:
        return sum(
            1 for h in self._hosts if h is not None and h.alive()
        )

    def attach_metrics(self, registry, **labels) -> None:
        """Register the ``dist_*`` collector series on ``registry``."""
        from repro.obs.collectors import register_dist

        register_dist(registry, self, **labels)

    # ------------------------------------------------------------------
    # Worker management.
    # ------------------------------------------------------------------
    def _spawn(self, i: int) -> Tuple[Any, Dict[str, Any]]:
        cfg = self.config
        inc = self._incarnations[i]
        if self.durable:
            boot = WorkerBoot(
                shard_index=i,
                incarnation=inc,
                schema=self.schema,
                wal_image=self._wals[i].device.media(),
                fault_seed=cfg.fault_seed,
                fault_rates=cfg.fault_rates,
                fault_max=cfg.fault_max,
                fault_shards=cfg.fault_shards,
                fault_incarnations=cfg.fault_incarnations,
                stall_s=cfg.stall_s,
            )
        else:
            boot = WorkerBoot(
                shard_index=i,
                incarnation=inc,
                table=self.sharded.shards[i],
                fault_seed=cfg.fault_seed,
                fault_rates=cfg.fault_rates,
                fault_max=cfg.fault_max,
                fault_shards=cfg.fault_shards,
                fault_incarnations=cfg.fault_incarnations,
                stall_s=cfg.stall_s,
            )
        host_cls = InlineShardHost if cfg.inline else ProcessShardHost
        host = host_cls(boot)
        ack = host.poll(cfg.boot_deadline_s)
        if ack is None or ack[0] != BOOT_REQ_ID or ack[1] != "booted":
            host.kill()
            raise WorkerTimeoutError(
                f"shard {i} worker (incarnation {inc}) did not ack boot "
                f"within {cfg.boot_deadline_s:g}s"
            )
        info = ack[2]
        if self.durable:
            self._sent_lsn[i] = self._wals[i].durable_bytes
            recovery = info.get("recovery")
            if recovery is not None:
                self.stats.recovered_bytes_total += recovery["bytes_applied"]
        return host, info

    def _restart(self, i: int, stats=None, tracer=None) -> None:
        """Kill shard *i*'s worker and bring up the next incarnation,
        recovered from the shard's durable log (durable mode)."""
        host = self._hosts[i]
        if host is not None:
            host.kill()
            host.close()
        self._incarnations[i] += 1
        with maybe_span(
            tracer, "dist.recovery", layer="dist",
            shard=i, incarnation=self._incarnations[i],
        ) as span:
            self._hosts[i], info = self._spawn(i)
            recovery = info.get("recovery")
            if recovery is not None:
                span.set_attrs(
                    bytes_applied=recovery.get("bytes_applied", 0),
                    records_applied=recovery.get("records_applied", 0),
                )
        self.stats.restarts_total += 1
        if stats is not None:
            stats.restarts += 1
        if self.durable:
            self.stats.recoveries_total += 1
            if stats is not None:
                stats.recoveries += 1
        if self.journal is not None:
            self.journal.record(
                EV_SHARD_RESTART,
                shard=i,
                incarnation=self._incarnations[i],
                durable=self.durable,
            )

    def kill_shard(self, index: int) -> None:
        """The chaos harness's hammer: SIGKILL one fault domain."""
        host = self._hosts[index]
        if host is not None:
            host.kill()
        self.stats.kills_total += 1
        if self.journal is not None:
            self.journal.record(
                EV_SHARD_KILL,
                shard=index,
                incarnation=self._incarnations[index],
            )

    # ------------------------------------------------------------------
    # Durable-mode writes + replication.
    # ------------------------------------------------------------------
    def insert(self, values: Mapping[str, object]) -> Tuple[int, int]:
        """Route one row through a single-shard transaction; replicate."""
        index = self.sharded.shard_of(int(values[self.shard_key]))
        manager = self.manager_for(index)
        txn = manager.begin()
        slot = txn.insert(self.sharded.shards[index], values)
        manager.commit(txn)
        self.replicate(index)
        return index, slot

    def replicate(self, index: Optional[int] = None) -> None:
        """Fire-and-forget: ship newly durable WAL bytes to the replicas.

        Flushes the WAL tail first so the replica's *physical* slot
        layout tracks the authoritative shard exactly — advisory ABORT
        and staged WRITE records included — which is what makes replica
        answers byte-identical (scan counts and all), not merely
        visibility-equal. Loss is still tolerated by design — the
        coordinator advances its ``sent`` cursor unconditionally, and a
        replica that missed a delta is caught by the LSN fence on its
        next query.
        """
        if not self.durable:
            return
        indexes = range(len(self._hosts)) if index is None else (index,)
        for i in indexes:
            self._wals[i].flush()
            durable = self._wals[i].durable_bytes
            sent = self._sent_lsn[i]
            if durable <= sent:
                continue
            delta = self._wals[i].device.media()[sent:durable]
            host = self._hosts[i]
            if host is not None:
                host.send(("apply", delta, sent))
            self.stats.replicated_bytes_total += len(delta)
            self._sent_lsn[i] = durable

    def _fence(self, i: int) -> Optional[int]:
        return self._wals[i].durable_bytes if self.durable else None

    def _rid(self) -> int:
        self._next_req_id += 1
        return self._next_req_id

    def default_snapshot(self) -> int:
        """A timestamp covering every committed transaction, cluster-wide."""
        if not self._managers:
            return 0
        return max(m.now for m in self._managers)

    # ------------------------------------------------------------------
    # The query path.
    # ------------------------------------------------------------------
    def query(
        self,
        plan: DistPlan,
        snapshot_ts: Optional[int] = None,
        allow_partial: bool = False,
        tracer=None,
        metrics=None,
    ) -> DistResult:
        """Scatter ``plan`` over the overlapping shards and gather.

        Raises :class:`PartialResultError` (carrying the merged partial
        and the missing key ranges) when shards stay silent past the
        retry budget, unless ``allow_partial=True`` — then the same
        information comes back as a degraded :class:`DistResult`.
        """
        tracer = tracer if tracer is not None else self.tracer
        # Ship any WAL tail first: the LSN fence below pins each shard's
        # answer to the authoritative durable state at scatter time.
        self.replicate()
        ts = self.default_snapshot() if snapshot_ts is None else snapshot_ts
        ledger = CostLedger(tracer=tracer, metrics=metrics)
        self.stats.queries_total += 1
        # The cross-process identity: shipped with every exec so workers
        # record their span trees under it (repro.obs.distctx).
        ctx = (
            TraceContext(trace_id=new_trace_id())
            if tracer is not None and tracer.enabled
            else None
        )
        result: DistResult
        with maybe_span(
            tracer, "dist.query", layer="dist", mode="scatter-gather",
            trace_id=ctx.trace_id if ctx is not None else "",
        ):
            indexes = self.sharded.shards_for_range(plan.key_low, plan.key_high)
            stats_partials = self._scatter_gather(
                indexes, plan, ts, tracer, ctx
            )
            stats, partials, missing = stats_partials
            with maybe_span(tracer, "dist.gather", layer="dist"):
                result = merge_partials(partials, plan, ledger)
        result.stats = stats
        stats.shards_planned = len(indexes)
        stats.shards_answered = len(partials)
        self.stats.rows_shipped_total += result.rows_qualifying
        self.ledger.merge(ledger)
        if missing:
            result.missing_ranges = tuple(missing)
            result.degraded = True
            self.stats.partial_results_total += 1
            if self.journal is not None:
                self.journal.record(
                    EV_PARTIAL_RESULT,
                    missing=len(missing),
                    planned=len(indexes),
                    ranges=str(missing),
                    allowed=allow_partial,
                )
            if not allow_partial:
                if self.journal is not None:
                    self.journal.auto_dump(
                        f"PartialResultError: {len(missing)} of "
                        f"{len(indexes)} shard ranges unanswered"
                    )
                raise PartialResultError(
                    f"{len(missing)} of {len(indexes)} shard ranges "
                    f"unanswered after {self.config.retries} retries: "
                    f"{missing}",
                    missing_ranges=missing,
                    partial=result,
                )
        return result

    def run_serial(
        self, plan: DistPlan, snapshot_ts: Optional[int] = None
    ) -> DistResult:
        """Coordinator-local reference execution: the same fragments over
        the authoritative shard tables, no workers, no faults. The
        correctness oracle for every chaos scenario."""
        ts = self.default_snapshot() if snapshot_ts is None else snapshot_ts
        indexes = self.sharded.shards_for_range(plan.key_low, plan.key_high)
        partials = [
            execute_fragment(self.sharded.shards[i], plan, ts, shard_index=i)
            for i in indexes
        ]
        result = merge_partials(partials, plan, CostLedger())
        result.stats.shards_planned = len(indexes)
        result.stats.shards_answered = len(indexes)
        return result

    # ------------------------------------------------------------------
    # The per-shard await state machine.
    # ------------------------------------------------------------------
    def _exec_msg(self, i, rid, plan, ts, ctx) -> tuple:
        """The exec message for one shard attempt. Untraced statements
        keep the legacy 5-tuple; traced ones append the shard's child
        TraceContext (old workers would simply ignore a 6th element)."""
        if ctx is None:
            return ("exec", rid, plan, ts, self._fence(i))
        return (
            "exec", rid, plan, ts, self._fence(i),
            ctx.child(i, self._incarnations[i]),
        )

    def _scatter_gather(self, indexes, plan, ts, tracer, ctx=None):
        from repro.dist.plan import DistQueryStats

        stats = DistQueryStats()
        pending: Dict[int, Tuple[Any, int]] = {}
        with maybe_span(
            tracer, "dist.scatter", layer="dist", shards=len(indexes)
        ):
            for i in indexes:
                host = self._hosts[i]
                rid = self._rid()
                if host is not None and host.send(
                    self._exec_msg(i, rid, plan, ts, ctx)
                ):
                    stats.attempts += 1
                    self.stats.rpcs_total += 1
                    pending[i] = (host, rid)
        partials: List[ShardPartial] = []
        missing: List[Tuple[Optional[int], Optional[int]]] = []
        for i in indexes:
            with maybe_span(
                tracer, "dist.shard_exec", layer="dist", shard=i
            ):
                partial = self._await_shard(
                    i, plan, ts, stats, first=pending.get(i),
                    tracer=tracer, ctx=ctx,
                )
            if partial is None:
                missing.append(self._missing_range(i, plan))
            else:
                partials.append(partial)
        return stats, partials, missing

    def _missing_range(
        self, i: int, plan: DistPlan
    ) -> Tuple[Optional[int], Optional[int]]:
        """The silent shard's key range, clipped to the plan's range."""
        lo, hi = self.sharded.shard_bounds(i)
        if plan.key_low is not None:
            lo = plan.key_low if lo is None else max(lo, plan.key_low)
        if plan.key_high is not None:
            hi = plan.key_high if hi is None else min(hi, plan.key_high)
        return lo, hi

    def _await_shard(
        self,
        i: int,
        plan: DistPlan,
        ts: int,
        stats,
        first: Optional[Tuple[Any, int]] = None,
        tracer=None,
        ctx=None,
    ) -> Optional[ShardPartial]:
        """Deadline-bounded await of one shard, with restart + hedging.

        Contenders are ``(host, req_id, is_hedge)`` in incarnation order;
        polling walks that order, which *is* the deterministic tie-break
        (two ready replies → the lowest incarnation wins).
        """
        cfg = self.config
        valid_rids: set = set()
        contenders: List[Tuple[Any, int, bool]] = []
        if first is not None:
            contenders.append((first[0], first[1], False))
            valid_rids.add(first[1])
        hedged = False

        for attempt in range(cfg.retries + 1):
            if not contenders:
                host = self._hosts[i]
                if host is None or not host.alive():
                    try:
                        self._restart(i, stats, tracer=tracer)
                    except WorkerTimeoutError:
                        continue  # burn the attempt, try again
                    host = self._hosts[i]
                rid = self._rid()
                if not host.send(self._exec_msg(i, rid, plan, ts, ctx)):
                    self._restart(i, stats, tracer=tracer)
                    continue
                stats.attempts += 1
                self.stats.rpcs_total += 1
                contenders.append((host, rid, False))
                valid_rids.add(rid)

            deadline = time.monotonic() + cfg.deadline_s
            hedge_at = (
                time.monotonic() + cfg.hedge_after_s
                if cfg.hedge_after_s is not None
                else None
            )
            while contenders and time.monotonic() < deadline:
                for entry in list(contenders):
                    host, rid, is_hedge = entry
                    reply = host.poll(cfg.poll_s / len(contenders))
                    if reply is None:
                        if not host.alive():
                            contenders.remove(entry)
                        continue
                    tag, status, payload = reply
                    if tag not in valid_rids:
                        continue  # stray (e.g. duplicate boot ack)
                    if status == "ok":
                        if is_hedge:
                            stats.hedge_wins += 1
                            self.stats.hedge_wins_total += 1
                            self._promote(i, host)
                            if self.journal is not None:
                                self.journal.record(
                                    EV_HEDGE_WIN,
                                    shard=i,
                                    incarnation=host.incarnation,
                                )
                        graft_partial(
                            tracer, getattr(payload, "spans", None),
                            remote_pid=2 + i,
                            remote_tid=1 + host.incarnation,
                            hedge_winner=is_hedge,
                        )
                        self._collect_losers(
                            i, contenders, winner=host,
                            valid_rids=valid_rids, tracer=tracer,
                        )
                        self._reap_losers(i, contenders, winner=host)
                        return payload
                    if status == "stale":
                        stats.stale_fences += 1
                        self.stats.stale_fences_total += 1
                        if self.journal is not None:
                            self.journal.record(
                                EV_SHARD_STALE,
                                shard=i,
                                incarnation=host.incarnation,
                                applied_lsn=payload,
                                expected_lsn=self._fence(i),
                            )
                        contenders.remove(entry)
                        if not is_hedge:
                            # Force the restart-from-log on the next
                            # attempt: the primary's replica diverged.
                            self._kill_host(i, host)
                        continue
                    if status == "error":
                        self._reap_losers(i, contenders, winner=host)
                        raise ExecutionError(
                            f"shard {i} fragment failed: {payload}"
                        )
                if (
                    hedge_at is not None
                    and not hedged
                    and contenders
                    and time.monotonic() >= hedge_at
                ):
                    hedge = self._spawn_hedge(i)
                    if hedge is not None:
                        rid = self._rid()
                        if hedge.send(self._exec_msg(i, rid, plan, ts, ctx)):
                            stats.hedges += 1
                            self.stats.hedges_total += 1
                            stats.attempts += 1
                            self.stats.rpcs_total += 1
                            contenders.append((hedge, rid, True))
                            valid_rids.add(rid)
                        else:
                            hedge.close()
                    hedged = True
            if contenders:
                # Deadline expired with live-but-silent contenders:
                # stalled or partitioned. Kill the suspects and restart.
                stats.timeouts += 1
                self.stats.timeouts_total += 1
                if self.journal is not None:
                    self.journal.record(
                        EV_SHARD_TIMEOUT,
                        shard=i,
                        attempt=attempt,
                        contenders=len(contenders),
                        deadline_s=cfg.deadline_s,
                    )
            for host, _rid, _h in contenders:
                self._kill_host(i, host)
            contenders.clear()
        return None

    def _spawn_hedge(self, i: int):
        """A fresh incarnation racing the (suspected-stalled) primary."""
        self._incarnations[i] += 1
        try:
            host, _info = self._spawn(i)
        except WorkerTimeoutError:
            return None
        if self.durable:
            self.stats.recoveries_total += 1
        return host

    def _promote(self, i: int, winner) -> None:
        """A hedge won: it becomes the shard's primary worker. The old
        primary is still in the contender list and is reaped there."""
        self._hosts[i] = winner

    def _collect_losers(
        self, i: int, contenders, winner, valid_rids, tracer
    ) -> None:
        """One non-blocking poll per hedge loser before the reap: a loser
        that *also* finished gets its span batch grafted (tagged
        ``hedge_loser=True``) so the trace shows the redundant work.
        Grafted spans are counters-only, so losers never double-charge
        the ledger — the winner's partial is the only one merged."""
        if tracer is None or not tracer.enabled:
            return
        for host, rid, _is_hedge in contenders:
            if host is winner:
                continue
            reply = host.poll(0.0)
            if reply is None:
                continue
            tag, status, payload = reply
            if tag not in valid_rids or status != "ok":
                continue
            graft_partial(
                tracer, getattr(payload, "spans", None),
                remote_pid=2 + i,
                remote_tid=1 + host.incarnation,
                hedge_loser=True,
            )

    def _reap_losers(self, i: int, contenders, winner) -> None:
        for host, _rid, _is_hedge in contenders:
            if host is not winner:
                self._kill_host(i, host)

    def _kill_host(self, i: int, host) -> None:
        """Retire a suspect worker; the slot respawns lazily on demand."""
        host.kill()
        host.close()
        if self._hosts[i] is host:
            self._hosts[i] = None
