"""Incremental WAL-replay replica: one shard's recoverable state.

A shard worker does not receive a copy of the coordinator's table object
— it receives the shard's *write-ahead log*, the same byte stream the
durability layer already trusts (PR 3). :class:`ShardReplica` replays
that stream with exactly the redo rules full recovery uses
(:func:`repro.db.wal.redo_write` / :func:`repro.db.wal.redo_commit`),
but incrementally: ``boot`` replays an initial image, ``apply_delta``
appends later flushed records as the coordinator replicates them.

The replica is *LSN-fenced*: it tracks ``applied_lsn`` — the byte offset
into the shard's log it has fully applied — and refuses any delta that
does not start exactly there. A dropped replication message (the
``shard.partition`` fault site) therefore never produces a silently
stale answer: the replica's LSN stops advancing, the coordinator's next
query carries the durable LSN as a fence, and the mismatch surfaces as a
typed ``stale`` reply that triggers restart-from-log.

Equivalence with :func:`repro.db.wal.recover` is the contract: booting a
replica from a log image yields the same visible rows as recovering that
image (property-tested in ``tests/test_dist.py``), because both walk the
same records through the same redo helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.ledger import CostLedger
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.db.wal import (
    DECODE_CYCLES_PER_BYTE,
    WalRecord,
    WalRecordType,
    scan_records,
)
from repro.db.wal import redo_commit, redo_write
from repro.errors import WalCorruptionError

__all__ = ["ReplicaStats", "ShardReplica"]


@dataclass
class ReplicaStats:
    """What replay cost, for the boot ack and the recovery benchmark."""

    records_applied: int = 0
    bytes_applied: int = 0
    commits_applied: int = 0
    aborts_applied: int = 0
    #: Simulated decode+redo cycles, integer (bytes x integer rate).
    recovery_cycles: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "records_applied": self.records_applied,
            "bytes_applied": self.bytes_applied,
            "commits_applied": self.commits_applied,
            "aborts_applied": self.aborts_applied,
            "recovery_cycles": self.recovery_cycles,
        }


@dataclass
class ShardReplica:
    """One shard's table, rebuilt and kept current from its WAL stream."""

    schema: TableSchema
    ledger: CostLedger = field(default_factory=CostLedger)
    #: Byte offset into the shard's log applied so far (the fence).
    applied_lsn: int = 0
    #: Highest commit timestamp replayed; queries at or above this
    #: snapshot see every transaction the log delivered.
    clock: int = 0
    stats: ReplicaStats = field(default_factory=ReplicaStats)

    def __post_init__(self) -> None:
        self.tables: Dict[str, Table] = {self.schema.name: Table(self.schema)}
        #: txn_id -> WRITE intents not yet committed or aborted. Intents
        #: are materialized invisibly on arrival (same as recovery), so a
        #: delta that ends mid-transaction leaves no visible trace.
        self._live: Dict[int, List[WalRecord]] = {}

    @property
    def table(self) -> Table:
        return self.tables[self.schema.name]

    def boot(self, image: bytes) -> ReplicaStats:
        """Replay a full log image from offset zero (worker cold start)."""
        if self.applied_lsn != 0:
            raise WalCorruptionError(
                "boot on a replica that already applied "
                f"{self.applied_lsn} bytes"
            )
        self.apply_delta(image, base_lsn=0)
        return self.stats

    def apply_delta(self, delta: bytes, base_lsn: int) -> bool:
        """Apply a contiguous flushed-record slice of the shard's log.

        Returns ``False`` (and applies nothing) when ``base_lsn`` is not
        exactly the next unapplied byte — an out-of-order or duplicated
        replication message. The coordinator treats a frozen
        ``applied_lsn`` as staleness, never as silent data loss.
        """
        if base_lsn != self.applied_lsn:
            return False
        if not delta:
            return True
        records, stop = scan_records(delta)
        if stop != len(delta):
            # Replication ships only durable whole records; a short scan
            # means the stream itself is damaged, not a torn tail.
            raise WalCorruptionError(
                f"replication delta not record-aligned: scan stopped at "
                f"byte {stop} of {len(delta)}"
            )
        for rec, _end in records:
            self._apply(rec)
        self.applied_lsn += len(delta)
        self.stats.bytes_applied += len(delta)
        cycles = int(DECODE_CYCLES_PER_BYTE * len(delta))
        self.stats.recovery_cycles += cycles
        self.ledger.charge(CostLedger.WAL_RECOVERY, cycles)
        return True

    def _apply(self, rec: WalRecord) -> None:
        self.stats.records_applied += 1
        if rec.type is WalRecordType.BEGIN:
            self._live[rec.txn_id] = []
            self.clock = max(self.clock, rec.start_ts)
        elif rec.type is WalRecordType.WRITE:
            redo_write(self.tables, {self.schema.name: self.schema}, rec)
            self._live.setdefault(rec.txn_id, []).append(rec)
        elif rec.type is WalRecordType.COMMIT:
            intents = self._live.pop(rec.txn_id, None)
            if intents is not None:
                redo_commit(self.tables, intents, rec.commit_ts)
                self.stats.commits_applied += 1
            self.clock = max(self.clock, rec.commit_ts)
        elif rec.type is WalRecordType.ABORT:
            self._live.pop(rec.txn_id, None)
            self.stats.aborts_applied += 1
        else:
            # Cluster shards never checkpoint/truncate their logs; a
            # CHECKPOINT in the stream means the fence arithmetic (byte
            # offsets from zero) no longer holds.
            raise WalCorruptionError(
                f"unsupported record type {rec.type!r} in replication stream"
            )

    def live_intents(self) -> int:
        """Open (uncommitted) transactions currently materialized."""
        return len(self._live)
