"""Shard executor workers: one process (or inline stub) per fault domain.

A worker owns exactly one shard's state — either a fork-inherited
read-only :class:`~repro.db.table.Table` (bench mode: copy-on-write,
zero serialization) or a :class:`~repro.dist.replica.ShardReplica`
booted from the shard's WAL image (durable mode). It answers a tiny
message protocol over a duplex pipe:

- ``("exec", req_id, plan, snapshot_ts, expected_lsn[, ctx])`` — run
  :func:`~repro.dist.plan.execute_fragment`; replies ``(req_id, "ok",
  ShardPartial)``, or ``(req_id, "stale", applied_lsn)`` when the LSN
  fence fails (a partitioned replica missed deltas). The optional
  trailing ``ctx`` (:class:`~repro.obs.TraceContext`) marks a traced
  statement: the worker then records its own span tree under a local
  tracer and ships it back wire-encoded on ``ShardPartial.spans``.
- ``("apply", delta, base_lsn)`` — fire-and-forget WAL replication; no
  reply ever (loss is what the fence exists to catch).
- ``("ping", req_id)`` — liveness + fence probe.
- ``("exit",)`` — clean shutdown.

Fault sites (:data:`repro.faults.SHARD_SITES`) are consulted once per
request in a fixed order — partition (drop the message), crash
(``os._exit``), stall (sleep, then answer late) — so a chaos schedule is
a pure function of ``(seed, shard, incarnation, request sequence)``. The
per-worker injector seed is derived with the same splitmix64 mix the
parallel bench harness uses, so restarted incarnations draw fresh,
non-overlapping schedules.

Two transports share one runtime (:class:`_ShardRuntime`):
:class:`ProcessShardHost` forks a real OS process (true fault domain:
``shard.crash`` is ``SIGKILL``-grade), while :class:`InlineShardHost`
runs the identical logic synchronously in-process — deterministic and
cheap, which is what the hypothesis bit-identity tests want.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.bench.parallel import derive_seed
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.dist.plan import execute_fragment
from repro.dist.replica import ShardReplica
from repro.obs.distctx import span_to_wire
from repro.obs.span import Tracer, maybe_span
from repro.faults import (
    SHARD_CRASH,
    SHARD_PARTITION,
    SHARD_STALL,
    FaultInjector,
    FaultPlan,
)

__all__ = [
    "WorkerBoot",
    "ProcessShardHost",
    "InlineShardHost",
    "CRASH_EXIT_CODE",
    "BOOT_REQ_ID",
]

#: Exit status a worker dies with when ``shard.crash`` fires — distinct
#: from 0 (clean) and from Python tracebacks (1), so the coordinator can
#: tell an injected crash from a worker bug in reports.
CRASH_EXIT_CODE = 23

#: req_id carried by the unsolicited boot acknowledgement.
BOOT_REQ_ID = -1

#: Mixes shard identity and incarnation into one injector stream index.
#: 1009 (prime, > any plausible incarnation count) keeps (shard, inc)
#: pairs collision-free.
_SEED_STRIDE = 1009


@dataclass(frozen=True)
class WorkerBoot:
    """Everything a worker needs to come up, shipped at fork time.

    Exactly one of ``table`` (fork-inherit mode) or ``schema`` (WAL
    replay mode) must be set. Under the fork start method the payload is
    inherited copy-on-write, so a large read-only table costs nothing.
    """

    shard_index: int
    incarnation: int = 0
    table: Optional[Table] = None
    schema: Optional[TableSchema] = None
    wal_image: bytes = b""
    fault_seed: int = 0
    fault_rates: Mapping[str, float] = field(default_factory=dict)
    fault_max: Optional[int] = None
    #: Restrict arming to these shard indexes (None = all shards).
    fault_shards: Optional[FrozenSet[int]] = None
    #: Restrict arming to these incarnations (None = all). ``{0}`` gives
    #: the classic "first attempt stalls, restarted worker is healthy".
    fault_incarnations: Optional[FrozenSet[int]] = None
    #: How long ``shard.stall`` sleeps before answering (wall seconds).
    stall_s: float = 0.25

    def __post_init__(self) -> None:
        if (self.table is None) == (self.schema is None):
            raise ValueError(
                "WorkerBoot needs exactly one of table= (fork-inherit) "
                "or schema= (WAL replay)"
            )


def _build_injector(boot: WorkerBoot) -> FaultInjector:
    rates = dict(boot.fault_rates)
    if boot.fault_shards is not None and boot.shard_index not in boot.fault_shards:
        rates = {}
    if (
        boot.fault_incarnations is not None
        and boot.incarnation not in boot.fault_incarnations
    ):
        rates = {}
    seed = derive_seed(
        boot.fault_seed, boot.shard_index * _SEED_STRIDE + boot.incarnation
    )
    return FaultInjector(
        FaultPlan(seed=seed, rates=rates, max_faults=boot.fault_max)
    )


def _worker_span(tracer, ctx, runtime: "_ShardRuntime", expected_lsn):
    """The per-attempt root span a traced exec records itself under.

    Carries the fault-domain identity (shard, incarnation), the request's
    trace id, and the LSN fence facts — everything the coordinator needs
    to show *which* attempt of *which* incarnation produced the answer.
    """
    return maybe_span(
        tracer,
        "worker.exec",
        layer="dist",
        shard=runtime.boot.shard_index,
        incarnation=runtime.boot.incarnation,
        trace_id=ctx.trace_id if ctx is not None else "",
        applied_lsn=runtime.applied_lsn,
        expected_lsn=expected_lsn,
    )


class _ShardRuntime:
    """Transport-independent worker logic: state + message handling.

    ``handle`` returns ``(action, delay_s, reply)`` where ``action`` is
    one of ``"reply"`` (send ``reply`` after ``delay_s``, reply may be
    None for fire-and-forget messages), ``"drop"`` (partition: send
    nothing), ``"crash"`` (the fault domain dies), or ``"exit"`` (clean
    shutdown requested).
    """

    def __init__(self, boot: WorkerBoot):
        self.boot = boot
        self.injector = _build_injector(boot)
        if boot.table is not None:
            self.replica: Optional[ShardReplica] = None
            self._table = boot.table
        else:
            assert boot.schema is not None
            self.replica = ShardReplica(boot.schema)
            if boot.wal_image:
                self.replica.boot(boot.wal_image)

    @property
    def table(self) -> Table:
        return self._table if self.replica is None else self.replica.table

    @property
    def applied_lsn(self) -> int:
        return 0 if self.replica is None else self.replica.applied_lsn

    def boot_info(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "shard_index": self.boot.shard_index,
            "incarnation": self.boot.incarnation,
            "applied_lsn": self.applied_lsn,
            "armed": self.injector.armed,
            "pid": os.getpid(),
        }
        if self.replica is not None:
            info["recovery"] = self.replica.stats.to_dict()
        return info

    def handle(self, msg: tuple) -> Tuple[str, float, Optional[tuple]]:
        kind = msg[0]
        if kind == "exit":
            return "exit", 0.0, None
        if kind == "ping":
            req_id = msg[1]
            return "reply", 0.0, (
                req_id,
                "ok",
                {
                    "applied_lsn": self.applied_lsn,
                    "incarnation": self.boot.incarnation,
                },
            )
        if kind == "apply":
            _, delta, base_lsn = msg
            inj = self.injector
            if inj.armed:
                if inj.should_fault(SHARD_PARTITION):
                    return "reply", 0.0, None  # delta silently lost
                if inj.should_fault(SHARD_CRASH):
                    return "crash", 0.0, None
            if self.replica is not None:
                self.replica.apply_delta(delta, base_lsn)
            return "reply", 0.0, None
        if kind == "exec":
            # The 6th element — a TraceContext — is optional so old
            # coordinators (5-tuple senders) keep working unchanged.
            _, req_id, plan, snapshot_ts, expected_lsn = msg[:5]
            ctx = msg[5] if len(msg) > 5 else None
            delay = 0.0
            stalled = False
            inj = self.injector
            if inj.armed:
                if inj.should_fault(SHARD_PARTITION):
                    return "drop", 0.0, None
                if inj.should_fault(SHARD_CRASH):
                    return "crash", 0.0, None
                if inj.should_fault(SHARD_STALL):
                    delay = self.boot.stall_s
                    stalled = True
            if expected_lsn is not None and self.applied_lsn != expected_lsn:
                return "reply", delay, (req_id, "stale", self.applied_lsn)
            # A carried context means the coordinator is tracing: record
            # this attempt's span tree on a worker-local tracer and ship
            # it back with the partial for grafting.
            tracer = Tracer() if ctx is not None else None
            try:
                with _worker_span(tracer, ctx, self, expected_lsn) as wspan:
                    if stalled:
                        wspan.set_attrs(stall_s=delay)
                    if inj.armed:
                        wspan.set_attrs(faults_fired=inj.total_fired)
                    partial = execute_fragment(
                        self.table,
                        plan,
                        snapshot_ts=snapshot_ts,
                        shard_index=self.boot.shard_index,
                        tracer=tracer,
                    )
            except Exception as exc:  # typed errors travel as reprs
                return "reply", delay, (
                    req_id,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                )
            partial.applied_lsn = self.applied_lsn
            if tracer is not None and tracer.last is not None:
                partial.spans = span_to_wire(tracer.last)
            return "reply", delay, (req_id, "ok", partial)
        return "reply", 0.0, (msg[1] if len(msg) > 1 else BOOT_REQ_ID,
                              "error", f"unknown message kind {kind!r}")


def _worker_main(
    boot: WorkerBoot, conn: multiprocessing.connection.Connection
) -> None:
    """Child-process entry: build the runtime, ack, serve until exit."""
    runtime = _ShardRuntime(boot)
    try:
        conn.send((BOOT_REQ_ID, "booted", runtime.boot_info()))
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                return
            action, delay, reply = runtime.handle(msg)
            if action == "exit":
                return
            if action == "crash":
                os._exit(CRASH_EXIT_CODE)
            if action == "drop":
                continue
            if delay > 0.0:
                time.sleep(delay)
            if reply is not None:
                conn.send(reply)
    except (BrokenPipeError, OSError):
        return  # coordinator went away; die quietly
    finally:
        conn.close()


class ProcessShardHost:
    """A shard worker in its own forked process — a real fault domain."""

    transport = "process"

    def __init__(self, boot: WorkerBoot):
        self.boot = boot
        ctx = multiprocessing.get_context("fork")
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main, args=(boot, child), daemon=True
        )
        self.proc.start()
        child.close()

    @property
    def shard_index(self) -> int:
        return self.boot.shard_index

    @property
    def incarnation(self) -> int:
        return self.boot.incarnation

    def alive(self) -> bool:
        return self.proc.is_alive()

    def send(self, msg: tuple) -> bool:
        """True iff the message reached the pipe (worker may still die)."""
        try:
            self.conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def poll(self, timeout_s: float) -> Optional[tuple]:
        """Next reply within ``timeout_s`` seconds, else None."""
        try:
            if self.conn.poll(timeout_s):
                return self.conn.recv()
        except (EOFError, OSError):
            return None
        return None

    def kill(self) -> None:
        """SIGKILL the worker — the chaos harness's shard-kill hammer."""
        self.proc.kill()

    def close(self) -> None:
        if self.proc.is_alive():
            self.send(("exit",))
            self.proc.join(timeout=2.0)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:  # already closed by an earlier retire path
            pass


class InlineShardHost:
    """The same worker logic, synchronous and in-process.

    ``send`` handles the message immediately; replies queue with a
    wall-clock ``deliver_at`` so stalls still arrive *late* (hedging
    stays testable) while the no-fault path is fully deterministic.
    A ``shard.crash`` marks the host dead instead of exiting.
    """

    transport = "inline"

    def __init__(self, boot: WorkerBoot):
        self.boot = boot
        self._runtime: Optional[_ShardRuntime] = _ShardRuntime(boot)
        self._queue: Deque[Tuple[float, tuple]] = deque()
        self._queue.append(
            (0.0, (BOOT_REQ_ID, "booted", self._runtime.boot_info()))
        )

    @property
    def shard_index(self) -> int:
        return self.boot.shard_index

    @property
    def incarnation(self) -> int:
        return self.boot.incarnation

    def alive(self) -> bool:
        return self._runtime is not None

    def send(self, msg: tuple) -> bool:
        if self._runtime is None:
            return False
        action, delay, reply = self._runtime.handle(msg)
        if action in ("exit", "crash"):
            self._runtime = None
            self._queue.clear()
            return action == "exit"
        if action == "drop" or reply is None:
            return True
        self._queue.append((time.monotonic() + delay, reply))
        return True

    def poll(self, timeout_s: float) -> Optional[tuple]:
        deadline = time.monotonic() + timeout_s
        while True:
            if self._queue:
                deliver_at, reply = self._queue[0]
                now = time.monotonic()
                if deliver_at <= now:
                    self._queue.popleft()
                    return reply
                wait = min(deliver_at, deadline) - now
            else:
                wait = deadline - time.monotonic()
            if wait <= 0.0:
                return None
            time.sleep(min(wait, 0.02))

    def kill(self) -> None:
        self._runtime = None
        self._queue.clear()

    def close(self) -> None:
        self._runtime = None
        self._queue.clear()
