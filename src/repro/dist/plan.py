"""Distributed query plans and the shard-local fragment executor.

The scatter-gather layer pushes *operators*, not rows, to the shards —
Farview-style offloading (PAPERS.md) over the fabric's ranged
column-group API: a :class:`DistPlan` names the key range, the
selections, and either a partial-aggregation shape or a projection, and
:func:`execute_fragment` evaluates it over one shard's base table. The
coordinator merges the resulting :class:`ShardPartial` objects with
:func:`merge_partials` in shard order.

**Bit-identity contract.** A plan's answer and its cost accounting must
not depend on how the relation is sharded:

* All arithmetic is integer: DECIMAL columns stay in their scaled-int
  raw form, aggregate values are products of affine integer terms
  (:class:`AggTerm`), and partial states merge with exact Python-int
  addition — associative and order-independent, unlike float sums.
* Every ledger charge is an integer number of cycles proportional only
  to *data* (rows scanned, terms evaluated, bytes shipped) — never to
  shard count, retries, or hedges — so the ``dist_*`` buckets sum to the
  same totals across 1-, 2-, and 8-shard runs (property-tested in
  ``tests/test_dist.py``).
* Merge order is shard order (key order), and grouped results are
  emitted in sorted group-key order, so :meth:`DistResult.to_bytes` is a
  canonical form: byte equality means the answers are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ledger import CostLedger
from repro.core.mvcc_filter import visible_mask
from repro.core.selection import CompareOp
from repro.db.table import Table
from repro.errors import PlanError
from repro.obs import maybe_span

__all__ = [
    "AggTerm",
    "AggSpec",
    "DistPredicate",
    "DistPlan",
    "ShardPartial",
    "DistQueryStats",
    "DistResult",
    "execute_fragment",
    "merge_partials",
    "execute_plan",
]

#: Cycles charged per predicate term per candidate row (compare + mask).
FILTER_CYCLES_PER_TERM = 2
#: Cycles charged per affine term of an aggregate per qualifying row
#: (multiply + add), plus this flat accumulate cost per aggregate.
AGG_CYCLES_PER_TERM = 2
AGG_CYCLES_ACCUMULATE = 2
#: Cycles per group-by column per qualifying row (hash/code assignment).
GROUP_CYCLES_PER_KEY = 4
#: Coordinator merge: cycles per output cell (group key or aggregate).
MERGE_CYCLES_PER_CELL = 8
#: Coordinator merge: cycles per gathered output row.
MERGE_CYCLES_PER_ROW = 2
#: MVCC begin/end stamps read per row during the visibility scan.
MVCC_STAMP_BYTES = 16

_AGG_KINDS = ("sum", "count", "min", "max")


@dataclass(frozen=True)
class AggTerm:
    """One affine factor of an aggregate's per-row value:
    ``const + coeff * column``. TPC-H's ``(1 - l_discount)`` over a
    DECIMAL(2) column becomes ``AggTerm("l_discount", coeff=-1,
    const=100)`` — exact scaled-int arithmetic, no floats."""

    column: str
    coeff: int = 1
    const: int = 0


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``kind`` over the product of ``terms``.

    ``count`` ignores its terms. The per-row value is the integer
    product of every term's affine value, so sums of DECIMAL products
    come back at the product of the operand scales (the caller rescales
    for display; the tests compare raw integers).
    """

    name: str
    kind: str
    terms: Tuple[AggTerm, ...] = ()

    def __post_init__(self):
        if self.kind not in _AGG_KINDS:
            raise PlanError(
                f"aggregate kind {self.kind!r} not in {_AGG_KINDS}"
            )
        if self.kind != "count" and not self.terms:
            raise PlanError(f"aggregate {self.name!r} ({self.kind}) needs terms")


@dataclass(frozen=True)
class DistPredicate:
    """One pushed-down selection: ``column <op> value``."""

    column: str
    op: CompareOp
    value: object


@dataclass(frozen=True)
class DistPlan:
    """A scatter-gather query over one sharded relation.

    Exactly one output shape: ``aggregates`` (with optional
    ``group_by``) for partial aggregation, or ``columns`` for a
    projection gather. ``key_low``/``key_high`` bound the shard key
    inclusively (``None`` = open) and drive shard pruning via
    :meth:`~repro.db.sharding.ShardedTable.shards_for_range`.
    """

    table: str
    key_column: str
    key_low: Optional[int] = None
    key_high: Optional[int] = None
    predicates: Tuple[DistPredicate, ...] = ()
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[AggSpec, ...] = ()
    columns: Tuple[str, ...] = ()

    def __post_init__(self):
        if bool(self.aggregates) == bool(self.columns):
            raise PlanError(
                "a DistPlan needs exactly one of aggregates=... (partial "
                "aggregation) or columns=... (projection gather)"
            )
        if self.group_by and not self.aggregates:
            raise PlanError("group_by requires aggregates")

    @property
    def filter_terms(self) -> int:
        """Predicate terms evaluated per candidate row (key bounds count)."""
        return (
            len(self.predicates)
            + (self.key_low is not None)
            + (self.key_high is not None)
        )


@dataclass
class ShardPartial:
    """One shard's contribution: partial state plus its cost buckets.

    Picklable — this is the worker→coordinator wire format. ``buckets``
    holds integer cycle counts the coordinator charges into the query
    ledger in shard order.
    """

    shard_index: int
    rows_scanned: int = 0
    rows_qualifying: int = 0
    buckets: Dict[str, int] = field(default_factory=dict)
    #: Aggregation mode: group-key tuple → one partial value per AggSpec.
    groups: Optional[Dict[Tuple, List[int]]] = None
    #: Gather mode: projected raw column arrays over qualifying rows.
    arrays: Optional[Dict[str, np.ndarray]] = None
    #: Replica LSN the fragment executed at (durable clusters).
    applied_lsn: int = 0
    #: Wire-encoded worker span tree (:func:`repro.obs.span_to_wire`),
    #: shipped back when the exec carried a TraceContext. Grafted by the
    #: coordinator under its awaiting ``dist.shard_exec`` span.
    spans: Optional[Dict] = None


@dataclass
class DistQueryStats:
    """Fault-handling telemetry for one scatter-gather query. Excluded
    from the bit-identity contract: hedges and timeouts are wall-clock
    phenomena."""

    shards_planned: int = 0
    shards_answered: int = 0
    attempts: int = 0
    timeouts: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    restarts: int = 0
    recoveries: int = 0
    stale_fences: int = 0


@dataclass
class DistResult:
    """A merged scatter-gather answer.

    ``groups`` (aggregation) is sorted by group key; ``arrays``
    (gather) concatenates shard outputs in shard order. ``degraded``
    marks a partial answer whose ``missing_ranges`` name the silent
    shard-key ranges (inclusive bounds, ``None`` = open end).
    """

    plan: DistPlan
    rows_scanned: int = 0
    rows_qualifying: int = 0
    groups: Optional[List[Tuple[Tuple, List[int]]]] = None
    arrays: Optional[Dict[str, np.ndarray]] = None
    ledger: CostLedger = field(default_factory=CostLedger)
    stats: DistQueryStats = field(default_factory=DistQueryStats)
    missing_ranges: Tuple[Tuple[Optional[int], Optional[int]], ...] = ()
    degraded: bool = False

    def to_bytes(self) -> bytes:
        """Canonical payload encoding: byte equality ⇔ identical answers.

        Covers the data payload and row counts — not the ledger (compare
        ``ledger.buckets`` directly) and not the wall-clock ``stats``.
        """
        parts: List[bytes] = [
            b"rows=%d/%d" % (self.rows_qualifying, self.rows_scanned)
        ]
        if self.groups is not None:
            for key, values in self.groups:
                parts.append(repr((key, values)).encode("utf-8"))
        if self.arrays is not None:
            for name in sorted(self.arrays):
                arr = self.arrays[name]
                parts.append(
                    b"%s:%s:" % (name.encode(), str(arr.dtype).encode())
                    + arr.tobytes()
                )
        if self.missing_ranges:
            parts.append(repr(self.missing_ranges).encode("utf-8"))
        return b"|".join(parts)


def _raw_column(table: Table, name: str) -> np.ndarray:
    """A column in exact raw form: scaled ints for DECIMAL, day numbers
    for DATE, ``S<w>`` bytes for CHAR — never floats."""
    col = table.schema.column(name)
    raw = table.column(name)
    if col.dtype.np_dtype is None:
        return raw.view(f"S{col.dtype.width}").reshape(-1)
    return raw


def _touched_columns(plan: DistPlan) -> Tuple[str, ...]:
    """Every column the fragment reads, deduplicated in first-use order."""
    seen: Dict[str, None] = {}
    if plan.key_low is not None or plan.key_high is not None:
        seen[plan.key_column] = None
    for pred in plan.predicates:
        seen[pred.column] = None
    for name in plan.group_by:
        seen[name] = None
    for agg in plan.aggregates:
        for term in agg.terms:
            seen[term.column] = None
    for name in plan.columns:
        seen[name] = None
    return tuple(seen)


def _group_codes(
    keys: List[np.ndarray],
) -> Tuple[List[Tuple], np.ndarray]:
    """Factorize the group-key columns: (sorted unique key tuples, codes)."""
    if len(keys) == 1:
        uniq, codes = np.unique(keys[0], return_inverse=True)
        return [(k.item(),) for k in uniq], codes.reshape(-1)
    rec = np.rec.fromarrays(keys, names=[f"k{i}" for i in range(len(keys))])
    uniq, codes = np.unique(rec, return_inverse=True)
    # .item() on a structured scalar yields a tuple of plain Python
    # values (bytes for CHAR fields, ints for numerics) — picklable and
    # deterministically orderable.
    return [row.item() for row in uniq], codes.reshape(-1)


def execute_fragment(
    table: Table,
    plan: DistPlan,
    snapshot_ts: int = 0,
    shard_index: int = 0,
    tracer=None,
) -> ShardPartial:
    """Evaluate ``plan`` over one shard's base table.

    Pure function of ``(table contents, plan, snapshot_ts)`` — the same
    code runs inside shard workers and in the coordinator's serial
    reference path, which is what makes "byte-identical to serial"
    testable rather than aspirational.

    ``tracer`` is the *worker-local* tracer of a traced distributed
    statement: the fragment's stage spans (``frag.scan``/``frag.filter``/
    ``frag.agg``/``frag.project``) record the same integer bucket charges
    the coordinator will account through :func:`merge_partials`. The
    coordinator's own paths (:func:`execute_plan`,
    ``ShardCluster.run_serial``) must NOT pass their tracer here — the
    charges would then appear twice in a replayed trace.
    """
    schema = table.schema
    n = table.nrows
    partial = ShardPartial(shard_index=shard_index, rows_scanned=n)
    buckets = partial.buckets

    with maybe_span(
        tracer, "frag.scan", layer="dist", table=schema.name, rows_in=n
    ):
        touched = _touched_columns(plan)
        width = sum(schema.column(c).dtype.width for c in touched)
        if schema.mvcc:
            width += MVCC_STAMP_BYTES
        buckets[CostLedger.DIST_SCAN] = n * width
        if tracer is not None:
            tracer.record(CostLedger.DIST_SCAN, buckets[CostLedger.DIST_SCAN])

    with maybe_span(
        tracer, "frag.filter", layer="dist",
        rows_in=n, terms=plan.filter_terms,
    ) as fspan:
        if schema.mvcc:
            mask = visible_mask(table.begin_ts, table.end_ts, snapshot_ts)
        else:
            mask = np.ones(n, dtype=bool)
        if plan.key_low is not None or plan.key_high is not None:
            key = _raw_column(table, plan.key_column)
            if plan.key_low is not None:
                mask &= key >= plan.key_low
            if plan.key_high is not None:
                mask &= key <= plan.key_high
        for pred in plan.predicates:
            mask &= pred.op.apply(_raw_column(table, pred.column), pred.value)
        buckets[CostLedger.DIST_FILTER] = (
            n * FILTER_CYCLES_PER_TERM * plan.filter_terms
        )
        if tracer is not None:
            tracer.record(
                CostLedger.DIST_FILTER, buckets[CostLedger.DIST_FILTER]
            )
        qualifying = int(np.count_nonzero(mask))
        partial.rows_qualifying = qualifying
        fspan.set_attrs(rows_out=qualifying)

    if plan.aggregates:
        per_row = GROUP_CYCLES_PER_KEY * len(plan.group_by) + sum(
            AGG_CYCLES_PER_TERM * len(a.terms) + AGG_CYCLES_ACCUMULATE
            for a in plan.aggregates
        )
        buckets[CostLedger.DIST_AGG] = qualifying * per_row
        with maybe_span(
            tracer, "frag.agg", layer="dist",
            rows_in=qualifying,
            group_by=len(plan.group_by),
            aggregates=len(plan.aggregates),
        ):
            if tracer is not None:
                tracer.record(
                    CostLedger.DIST_AGG, buckets[CostLedger.DIST_AGG]
                )
        partial.groups = {}
        if qualifying:
            if plan.group_by:
                keys = [_raw_column(table, c)[mask] for c in plan.group_by]
                tuples, codes = _group_codes(keys)
            else:
                tuples, codes = [()], np.zeros(qualifying, dtype=np.int64)
            ngroups = len(tuples)
            cols: List[np.ndarray] = []
            for agg in plan.aggregates:
                if agg.kind == "count":
                    cols.append(np.bincount(codes, minlength=ngroups))
                    continue
                vals = None
                for term in agg.terms:
                    col = schema.column(term.column)
                    if col.dtype.np_dtype is None:
                        raise PlanError(
                            f"aggregate {agg.name!r} references non-numeric "
                            f"column {term.column!r}"
                        )
                    factor = term.const + term.coeff * _raw_column(
                        table, term.column
                    )[mask].astype(np.int64)
                    vals = factor if vals is None else vals * factor
                if agg.kind == "sum":
                    acc = np.zeros(ngroups, dtype=np.int64)
                    np.add.at(acc, codes, vals)
                elif agg.kind == "min":
                    acc = np.full(ngroups, np.iinfo(np.int64).max)
                    np.minimum.at(acc, codes, vals)
                else:  # max
                    acc = np.full(ngroups, np.iinfo(np.int64).min)
                    np.maximum.at(acc, codes, vals)
                cols.append(acc)
            partial.groups = {
                tuples[g]: [int(c[g]) for c in cols] for g in range(ngroups)
            }
    else:
        out_bytes = sum(schema.column(c).dtype.width for c in plan.columns)
        buckets[CostLedger.DIST_AGG] = qualifying * out_bytes
        with maybe_span(
            tracer, "frag.project", layer="dist",
            rows_out=qualifying, columns=len(plan.columns),
        ):
            if tracer is not None:
                tracer.record(
                    CostLedger.DIST_AGG, buckets[CostLedger.DIST_AGG]
                )
        partial.arrays = {
            name: np.ascontiguousarray(_raw_column(table, name)[mask])
            for name in plan.columns
        }
    return partial


#: Bucket merge order at the coordinator — fixed so float accumulation
#: order is identical no matter which shard answered first.
_BUCKET_ORDER = (
    CostLedger.DIST_SCAN,
    CostLedger.DIST_FILTER,
    CostLedger.DIST_AGG,
)


def merge_partials(
    partials: Sequence[ShardPartial],
    plan: DistPlan,
    ledger: CostLedger,
) -> DistResult:
    """Merge shard partials (already in shard order) into one answer.

    Charges each partial's buckets into ``ledger`` in shard order, then
    the coordinator's own ``dist_gather`` merge cost. Aggregation
    partials combine with exact integer arithmetic; gather partials
    concatenate in shard order.
    """
    result = DistResult(plan=plan, ledger=ledger)
    for p in partials:
        result.rows_scanned += p.rows_scanned
        result.rows_qualifying += p.rows_qualifying
        for name in _BUCKET_ORDER:
            if name in p.buckets:
                ledger.charge(name, p.buckets[name])

    if plan.aggregates:
        acc: Dict[Tuple, List[Optional[int]]] = {}
        for p in partials:
            for key, values in (p.groups or {}).items():
                into = acc.get(key)
                if into is None:
                    acc[key] = list(values)
                    continue
                for j, agg in enumerate(plan.aggregates):
                    if agg.kind in ("sum", "count"):
                        into[j] += values[j]
                    elif agg.kind == "min":
                        into[j] = min(into[j], values[j])
                    else:
                        into[j] = max(into[j], values[j])
        result.groups = [(key, acc[key]) for key in sorted(acc)]
        cells = len(result.groups) * (len(plan.group_by) + len(plan.aggregates))
        ledger.charge(CostLedger.DIST_GATHER, MERGE_CYCLES_PER_CELL * cells)
    else:
        merged: Dict[str, np.ndarray] = {}
        for name in plan.columns:
            chunks = [p.arrays[name] for p in partials if p.arrays is not None]
            if chunks:
                merged[name] = np.concatenate(chunks)
            else:
                merged[name] = np.zeros(0, dtype=np.int64)
        result.arrays = merged
        ledger.charge(
            CostLedger.DIST_GATHER, MERGE_CYCLES_PER_ROW * result.rows_qualifying
        )
    return result


def execute_plan(
    table: Table,
    plan: DistPlan,
    snapshot_ts: int = 0,
    ledger: Optional[CostLedger] = None,
    tracer=None,
) -> DistResult:
    """The unsharded serial reference: one fragment, one merge.

    Because every fragment cost is data-proportional, this produces the
    same payload *and the same ledger buckets* as any sharded run over
    the same rows — the strongest form of "byte-identical to serial".
    """
    ledger = ledger if ledger is not None else CostLedger(tracer=tracer)
    with maybe_span(tracer, "dist.query", layer="dist", mode="serial"):
        partial = execute_fragment(table, plan, snapshot_ts, shard_index=0)
        result = merge_partials([partial], plan, ledger)
    result.stats.shards_planned = 1
    result.stats.shards_answered = 1
    return result
