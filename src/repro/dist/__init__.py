"""Fault-domain sharded execution: scatter-gather over shard workers.

The distributed layer of the repro stack (ISSUE 8): a coordinator
(:class:`~repro.dist.coordinator.ShardCluster`) plans scatter-gather
queries over a range-sharded relation, pushing projection, selection,
and partial aggregation down to per-shard workers — each an independent
fault domain with its own process, WAL, and recovery path. Results
merge byte-identically to serial execution; failures degrade loudly
(restart + recover, hedged retries, typed partial results), never
silently.
"""

from repro.dist.coordinator import ClusterStats, DistConfig, ShardCluster
from repro.errors import PartialResultError
from repro.dist.plan import (
    AggSpec,
    AggTerm,
    DistPlan,
    DistPredicate,
    DistQueryStats,
    DistResult,
    ShardPartial,
    execute_fragment,
    execute_plan,
    merge_partials,
)
from repro.dist.queries import dist_plan_for, q1_plan, q6_plan
from repro.dist.replica import ReplicaStats, ShardReplica
from repro.dist.worker import InlineShardHost, ProcessShardHost, WorkerBoot

__all__ = [
    "AggSpec",
    "AggTerm",
    "ClusterStats",
    "DistConfig",
    "DistPlan",
    "DistPredicate",
    "DistQueryStats",
    "DistResult",
    "InlineShardHost",
    "PartialResultError",
    "ProcessShardHost",
    "ReplicaStats",
    "ShardCluster",
    "ShardPartial",
    "ShardReplica",
    "WorkerBoot",
    "dist_plan_for",
    "execute_fragment",
    "execute_plan",
    "merge_partials",
    "q1_plan",
    "q6_plan",
]
