"""Canonical scatter-gather plans: TPC-H Q1 and Q6 over lineitem.

Both plans keep every value in exact scaled-int form (DECIMAL(2) raw
storage), so the aggregates below come back at composite scales:

- Q6 ``revenue`` = Σ extendedprice·discount → scale 10^-4 (cents ×
  hundredths).
- Q1 ``sum_disc_price`` = Σ extendedprice·(100 − discount) → 10^-4;
  ``sum_charge`` = Σ extendedprice·(100 − discount)·(100 + tax) → 10^-6.

Callers divide for display; the tests and the chaos oracle compare the
raw integers, which is what makes "byte-identical across shard counts"
a meaningful check rather than a float-tolerance one.

Both plans are keyed on ``l_orderkey`` — the sort key the TPC-H loader
emits and the natural range-sharding key — so an optional key range
exercises shard pruning and boundary-shard filtering.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.selection import CompareOp
from repro.db.expr import And, Between, BinOp, ColumnRef, Compare, Expr, Literal
from repro.db.plan.binder import BoundQuery
from repro.dist.plan import AggSpec, AggTerm, DistPlan, DistPredicate
from repro.errors import PlanError
from repro.workloads.tpch import _days

__all__ = ["dist_plan_for", "q1_plan", "q6_plan"]

#: Q1's date cutoff: shipdate <= 1998-12-01 - 90 days.
Q1_SHIP_CUTOFF = _days(1998, 12, 1) - 90
Q6_SHIP_LO = _days(1994, 1, 1)
Q6_SHIP_HI = _days(1995, 1, 1) - 1  # inclusive form of "< 1995-01-01"


# ----------------------------------------------------------------------
# The SQL bridge: BoundQuery → DistPlan, where expressible.
# ----------------------------------------------------------------------
_CMP_OPS = {
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
}
_CMP_FLIP = {
    CompareOp.LT: CompareOp.GT,
    CompareOp.LE: CompareOp.GE,
    CompareOp.GT: CompareOp.LT,
    CompareOp.GE: CompareOp.LE,
    CompareOp.EQ: CompareOp.EQ,
    CompareOp.NE: CompareOp.NE,
}


def _conjuncts(expr: Expr) -> List[Expr]:
    if isinstance(expr, And):
        out: List[Expr] = []
        for term in expr.terms:
            out.extend(_conjuncts(term))
        return out
    return [expr]


def _as_predicates(expr: Optional[Expr]) -> Tuple[DistPredicate, ...]:
    """WHERE as pushed-down ``col <op> int`` conjuncts, or PlanError."""
    if expr is None:
        return ()
    preds: List[DistPredicate] = []
    for term in _conjuncts(expr):
        if isinstance(term, Between):
            if not isinstance(term.term, ColumnRef) or not (
                isinstance(term.low, Literal) and isinstance(term.high, Literal)
            ):
                raise PlanError(f"cannot push down BETWEEN form {term}")
            preds.append(
                DistPredicate(term.term.name, CompareOp.GE, term.low.value)
            )
            preds.append(
                DistPredicate(term.term.name, CompareOp.LE, term.high.value)
            )
            continue
        if not isinstance(term, Compare):
            raise PlanError(f"cannot push down predicate {term}")
        op = _CMP_OPS.get(term.op)
        if op is None:
            raise PlanError(f"cannot push down operator {term.op!r}")
        left, right = term.left, term.right
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right, op = right, left, _CMP_FLIP[op]
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            raise PlanError(f"cannot push down predicate {term}")
        if not isinstance(right.value, int):
            raise PlanError(
                f"shard predicates are integer-only, got {right.value!r}"
            )
        preds.append(DistPredicate(left.name, op, right.value))
    return tuple(preds)


def _probe_affine(expr: Expr, column: str) -> Tuple[int, int]:
    """Extract ``(coeff, const)`` when ``expr`` is affine in ``column``
    with integer coefficients, else PlanError."""
    vals = []
    for x in (0, 1, 2):
        try:
            vals.append(expr.eval_row({column: x}))
        except Exception:
            raise PlanError(f"cannot evaluate factor {expr} for pushdown")
    const, at1, at2 = vals
    coeff = at1 - const
    if at2 - at1 != coeff:  # not linear
        raise PlanError(f"factor {expr} is not affine in {column!r}")
    if not (isinstance(coeff, int) and isinstance(const, int)):
        raise PlanError(f"factor {expr} is not integer-affine")
    return coeff, const


def _factors(expr: Expr) -> List[Expr]:
    """Split a top-level integer product into its factors."""
    if isinstance(expr, BinOp) and expr.op == "*":
        return _factors(expr.left) + _factors(expr.right)
    return [expr]


def _as_terms(expr: Expr, name: str) -> Tuple[AggTerm, ...]:
    """SUM argument as a product of integer-affine single-column terms."""
    terms: List[AggTerm] = []
    scale = 1
    for factor in _factors(expr):
        if isinstance(factor, Literal):
            if not isinstance(factor.value, int):
                raise PlanError(
                    f"aggregate {name!r}: non-integer factor {factor.value!r}"
                )
            scale *= factor.value
            continue
        cols = sorted(factor.columns())
        if len(cols) != 1:
            raise PlanError(
                f"aggregate {name!r}: factor {factor} must touch exactly "
                f"one column"
            )
        coeff, const = _probe_affine(factor, cols[0])
        terms.append(AggTerm(cols[0], coeff=coeff, const=const))
    if not terms:
        raise PlanError(f"aggregate {name!r} has no column factor")
    if scale != 1:
        first = terms[0]
        terms[0] = AggTerm(
            first.column, coeff=first.coeff * scale, const=first.const * scale
        )
    return tuple(terms)


def dist_plan_for(bound: BoundQuery, key_column: str) -> DistPlan:
    """Translate a bound single-table SELECT into a :class:`DistPlan`.

    The scatter-gather layer speaks a deliberately narrow, exactly-
    mergeable dialect; this raises :class:`~repro.errors.PlanError` for
    anything outside it (joins, HAVING, LIMIT/OFFSET, DISTINCT, avg,
    non-integer predicates, non-affine aggregate arguments, ORDER BY
    that is not an ascending group-key prefix). Callers fall back to
    single-node execution on PlanError — the SQL fuzzer uses this to
    route shardable statements through the cluster.
    """
    if bound.joins:
        raise PlanError("scatter-gather plans are single-table")
    if bound.having is not None:
        raise PlanError("HAVING is not pushed down")
    if bound.limit is not None or getattr(bound, "offset", None):
        raise PlanError("LIMIT/OFFSET are not distributed")
    if bound.distinct:
        raise PlanError("DISTINCT is not distributed")
    if bound.order_by:
        raise PlanError("ORDER BY is not distributed")

    predicates = _as_predicates(bound.where)
    aggregated = any(o.kind != "expr" for o in bound.outputs)
    if aggregated:
        specs: List[AggSpec] = []
        for out in bound.outputs:
            if out.kind == "expr":
                if not (
                    isinstance(out.expr, ColumnRef)
                    and out.expr.name in bound.group_by
                ):
                    raise PlanError(
                        f"output {out.name!r} must be a group key or an "
                        f"aggregate"
                    )
                continue
            if out.kind == "count" and out.expr is None:
                specs.append(AggSpec(out.name, "count"))
                continue
            if out.kind not in ("sum", "min", "max"):
                raise PlanError(f"aggregate {out.kind!r} is not distributed")
            specs.append(
                AggSpec(out.name, out.kind, _as_terms(out.expr, out.name))
            )
        return DistPlan(
            table=bound.table.schema.name,
            key_column=key_column,
            predicates=predicates,
            group_by=bound.group_by,
            aggregates=tuple(specs),
        )
    columns: List[str] = []
    for out in bound.outputs:
        if not isinstance(out.expr, ColumnRef):
            raise PlanError(
                f"gather output {out.name!r} must be a plain column"
            )
        columns.append(out.expr.name)
    return DistPlan(
        table=bound.table.schema.name,
        key_column=key_column,
        predicates=predicates,
        columns=tuple(columns),
    )


def q1_plan(
    key_low: Optional[int] = None, key_high: Optional[int] = None
) -> DistPlan:
    """TPC-H Q1: pricing summary by (returnflag, linestatus)."""
    ext = AggTerm("l_extendedprice")
    one_minus_disc = AggTerm("l_discount", coeff=-1, const=100)
    one_plus_tax = AggTerm("l_tax", coeff=1, const=100)
    return DistPlan(
        table="lineitem",
        key_column="l_orderkey",
        key_low=key_low,
        key_high=key_high,
        predicates=(
            DistPredicate("l_shipdate", CompareOp.LE, Q1_SHIP_CUTOFF),
        ),
        group_by=("l_returnflag", "l_linestatus"),
        aggregates=(
            AggSpec("sum_qty", "sum", (AggTerm("l_quantity"),)),
            AggSpec("sum_base_price", "sum", (ext,)),
            AggSpec("sum_disc_price", "sum", (ext, one_minus_disc)),
            AggSpec("sum_charge", "sum", (ext, one_minus_disc, one_plus_tax)),
            AggSpec("count_order", "count"),
        ),
    )


def q6_plan(
    key_low: Optional[int] = None, key_high: Optional[int] = None
) -> DistPlan:
    """TPC-H Q6: forecast revenue change (one global sum)."""
    return DistPlan(
        table="lineitem",
        key_column="l_orderkey",
        key_low=key_low,
        key_high=key_high,
        predicates=(
            DistPredicate("l_shipdate", CompareOp.GE, Q6_SHIP_LO),
            DistPredicate("l_shipdate", CompareOp.LE, Q6_SHIP_HI),
            DistPredicate("l_discount", CompareOp.GE, 5),
            DistPredicate("l_discount", CompareOp.LE, 7),
            DistPredicate("l_quantity", CompareOp.LT, 2400),
        ),
        aggregates=(
            AggSpec(
                "revenue",
                "sum",
                (AggTerm("l_extendedprice"), AggTerm("l_discount")),
            ),
        ),
    )
