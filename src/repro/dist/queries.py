"""Canonical scatter-gather plans: TPC-H Q1 and Q6 over lineitem.

Both plans keep every value in exact scaled-int form (DECIMAL(2) raw
storage), so the aggregates below come back at composite scales:

- Q6 ``revenue`` = Σ extendedprice·discount → scale 10^-4 (cents ×
  hundredths).
- Q1 ``sum_disc_price`` = Σ extendedprice·(100 − discount) → 10^-4;
  ``sum_charge`` = Σ extendedprice·(100 − discount)·(100 + tax) → 10^-6.

Callers divide for display; the tests and the chaos oracle compare the
raw integers, which is what makes "byte-identical across shard counts"
a meaningful check rather than a float-tolerance one.

Both plans are keyed on ``l_orderkey`` — the sort key the TPC-H loader
emits and the natural range-sharding key — so an optional key range
exercises shard pruning and boundary-shard filtering.
"""

from __future__ import annotations

from typing import Optional

from repro.core.selection import CompareOp
from repro.dist.plan import AggSpec, AggTerm, DistPlan, DistPredicate
from repro.workloads.tpch import _days

__all__ = ["q1_plan", "q6_plan"]

#: Q1's date cutoff: shipdate <= 1998-12-01 - 90 days.
Q1_SHIP_CUTOFF = _days(1998, 12, 1) - 90
Q6_SHIP_LO = _days(1994, 1, 1)
Q6_SHIP_HI = _days(1995, 1, 1) - 1  # inclusive form of "< 1995-01-01"


def q1_plan(
    key_low: Optional[int] = None, key_high: Optional[int] = None
) -> DistPlan:
    """TPC-H Q1: pricing summary by (returnflag, linestatus)."""
    ext = AggTerm("l_extendedprice")
    one_minus_disc = AggTerm("l_discount", coeff=-1, const=100)
    one_plus_tax = AggTerm("l_tax", coeff=1, const=100)
    return DistPlan(
        table="lineitem",
        key_column="l_orderkey",
        key_low=key_low,
        key_high=key_high,
        predicates=(
            DistPredicate("l_shipdate", CompareOp.LE, Q1_SHIP_CUTOFF),
        ),
        group_by=("l_returnflag", "l_linestatus"),
        aggregates=(
            AggSpec("sum_qty", "sum", (AggTerm("l_quantity"),)),
            AggSpec("sum_base_price", "sum", (ext,)),
            AggSpec("sum_disc_price", "sum", (ext, one_minus_disc)),
            AggSpec("sum_charge", "sum", (ext, one_minus_disc, one_plus_tax)),
            AggSpec("count_order", "count"),
        ),
    )


def q6_plan(
    key_low: Optional[int] = None, key_high: Optional[int] = None
) -> DistPlan:
    """TPC-H Q6: forecast revenue change (one global sum)."""
    return DistPlan(
        table="lineitem",
        key_column="l_orderkey",
        key_low=key_low,
        key_high=key_high,
        predicates=(
            DistPredicate("l_shipdate", CompareOp.GE, Q6_SHIP_LO),
            DistPredicate("l_shipdate", CompareOp.LE, Q6_SHIP_HI),
            DistPredicate("l_discount", CompareOp.GE, 5),
            DistPredicate("l_discount", CompareOp.LE, 7),
            DistPredicate("l_quantity", CompareOp.LT, 2400),
        ),
        aggregates=(
            AggSpec(
                "revenue",
                "sum",
                (AggTerm("l_extendedprice"), AggTerm("l_discount")),
            ),
        ),
    )
