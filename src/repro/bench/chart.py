"""Terminal-friendly ASCII charts for experiment series.

The harness prints tables for precision; these charts exist so a human
running ``python -m repro.bench`` can *see* the crossovers the paper
plots — a poor man's Figure 5 in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import Experiment

_MARKS = "*o+x#@%&"


def line_chart(
    exp: Experiment,
    labels: Optional[Sequence[str]] = None,
    width: int = 64,
    height: int = 16,
    logscale: bool = False,
) -> str:
    """Render selected series of ``exp`` as an ASCII scatter/line chart."""
    import math

    labels = list(labels) if labels is not None else list(exp.series)
    labels = [l for l in labels if l in exp.series]
    if not labels or not exp.x_values:
        return "(no data)"

    points: Dict[str, List[float]] = {}
    lo, hi = float("inf"), float("-inf")
    for label in labels:
        values = exp.series[label].values
        transformed = [
            math.log10(v) if logscale and v > 0 else v for v in values
        ]
        points[label] = transformed
        lo = min(lo, min(transformed))
        hi = max(hi, max(transformed))
    if hi == lo:
        hi = lo + 1.0

    n = len(exp.x_values)
    grid = [[" "] * width for _ in range(height)]
    for si, label in enumerate(labels):
        mark = _MARKS[si % len(_MARKS)]
        for i, v in enumerate(points[label]):
            if i >= n:
                break
            x = int(i / max(1, n - 1) * (width - 1))
            y = height - 1 - int((v - lo) / (hi - lo) * (height - 1))
            grid[y][x] = mark

    axis_hi = f"{10**hi:.3g}" if logscale else f"{hi:.3g}"
    axis_lo = f"{10**lo:.3g}" if logscale else f"{lo:.3g}"
    lines = [f"{exp.name}  ({exp.y_label}{', log scale' if logscale else ''})"]
    for row_idx, row in enumerate(grid):
        prefix = axis_hi if row_idx == 0 else (axis_lo if row_idx == height - 1 else "")
        lines.append(f"{prefix:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12
        + f"{exp.x_values[0]}  ...  {exp.x_values[-1]}   ({exp.x_label})"
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {label}" for i, label in enumerate(labels)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def side_by_side(blocks: Sequence[str], gap: int = 3) -> str:
    """Join multi-line text blocks horizontally (left-aligned, padded).

    The per-tenant serving charts use this so one terminal screen shows
    every tenant's latency panel in a row — interference reads as one
    panel spiking while its neighbours stay flat.
    """
    split = [b.splitlines() or [""] for b in blocks]
    widths = [max(len(line) for line in lines) for lines in split]
    rows = max(len(lines) for lines in split)
    out = []
    for r in range(rows):
        cells = []
        for lines, w in zip(split, widths):
            cell = lines[r] if r < len(lines) else ""
            cells.append(cell.ljust(w))
        out.append((" " * gap).join(cells).rstrip())
    return "\n".join(out)


def metrics_chart(
    series,
    names: Optional[Sequence[str]] = None,
    width: int = 64,
    height: int = 16,
    normalize: bool = True,
    panels: Optional[Sequence] = None,
) -> str:
    """Render series of a :class:`repro.obs.MetricsTimeSeries` over
    simulated time — the interference-over-time figure the HTAP bench
    emits.

    ``normalize`` scales each series to its own max so counters of very
    different magnitudes (version churn vs cache misses) share one
    canvas; the legend carries the true final value of each.

    ``panels`` switches to a multi-panel layout: a sequence of
    ``(title, names)`` pairs, each rendered as its own chart and joined
    side by side (see :func:`side_by_side`). ``names``/``width``/
    ``height`` then apply per panel.
    """
    if panels is not None:
        blocks = []
        for title, panel_names in panels:
            chart = metrics_chart(
                series, names=panel_names, width=width, height=height,
                normalize=normalize,
            )
            blocks.append(f"=== {title} ===\n{chart}")
        return side_by_side(blocks)
    if not series.ticks:
        return "(no samples)"
    names = list(names) if names is not None else sorted(series.series)[:4]
    names = [n for n in names if n in series.series]
    if not names:
        return "(no matching series)"

    exp = Experiment(
        name="metrics over simulated time",
        x_label="cycles",
        y_label="normalized value" if normalize else "value",
    )
    finals = {}
    for label in names:
        values = [v for v in series.series[label] if v is not None]
        peak = max((abs(v) for v in values), default=0.0)
        finals[label] = values[-1] if values else 0.0
        for tick, value in zip(series.ticks, series.series[label]):
            if value is None:
                continue
            y = value / peak if normalize and peak else value
            exp.add_point(f"{tick:g}", label, y)
    chart = line_chart(exp, labels=names, width=width, height=height)
    legend = "\n".join(
        f"  {label}: final={finals[label]:g}" for label in names
    )
    return chart + "\n" + legend


def tenant_latency_panels(
    series, metric: str = "serve_latency_p99"
) -> List:
    """Group a sampled run's per-tenant serving series into chart panels.

    Scans the time series for ``metric{...tenant="X"...}`` names and
    returns one ``(tenant, [series names])`` panel per tenant (sorted),
    ready for ``metrics_chart(series, panels=...)`` — the side-by-side
    view that makes cross-tenant interference visible at a glance.
    """
    import re

    by_tenant: Dict[str, List[str]] = {}
    for name in series.series:
        if not name.startswith(metric + "{"):
            continue
        m = re.search(r'tenant="([^"]+)"', name)
        if m:
            by_tenant.setdefault(m.group(1), []).append(name)
    return [(tenant, sorted(names)) for tenant, names in sorted(by_tenant.items())]


def slo_burn_panels(series) -> List:
    """Group a sampled run's ``slo_burn_rate_*`` series into chart panels.

    One ``("tenant SLO burn", [series names])`` panel per tenant, fast
    and slow windows side by side — rendered next to
    :func:`tenant_latency_panels` so a latency spike and the burn-rate
    alarm it feeds line up on the same simulated-time axis.
    """
    import re

    by_tenant: Dict[str, List[str]] = {}
    for name in series.series:
        base = name.split("{", 1)[0]
        if base not in ("slo_burn_rate_fast", "slo_burn_rate_slow"):
            continue
        m = re.search(r'tenant="([^"]+)"', name)
        if m:
            by_tenant.setdefault(m.group(1), []).append(name)
    return [
        (f"{tenant} SLO burn", sorted(names))
        for tenant, names in sorted(by_tenant.items())
    ]
