"""Multiprocessing fan-out for the benchmark harness.

Figure sweeps are embarrassingly parallel: every grid point rebuilds its
own tables and engines and reports plain floats. :func:`fanout` maps a
top-level worker over the points in a process pool while guaranteeing the
two properties the harness needs:

* **Determinism** — each point derives its RNG seed purely from
  ``(base_seed, point_index)`` via :func:`derive_seed` (a splitmix64
  round), never from pool scheduling, so serial and parallel runs produce
  byte-identical :class:`~repro.bench.harness.Experiment` contents.
* **Order preservation** — results come back in point order regardless of
  which worker finished first (``Pool.map``, not ``imap_unordered``).

Workers must be module-level functions taking one picklable argument
(``functools.partial`` over keyword arguments is fine). On platforms
without ``fork`` the pool falls back to the default start method; workers
therefore must not rely on inherited globals.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.bench.harness import Experiment
from repro.errors import WorkerTimeoutError

T = TypeVar("T")
R = TypeVar("R")

_MASK64 = (1 << 64) - 1


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-point seed: one splitmix64 round over
    ``base_seed + index``. Pure function — independent of scheduling,
    stable across processes and Python versions."""
    z = (base_seed + 0x9E3779B97F4A7C15 * (index + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def resolve_processes(processes: Optional[int], npoints: int) -> int:
    """Clamp a requested worker count: ``None``/0 → all cores, never more
    workers than points, at least one."""
    if processes is None or processes <= 0:
        processes = os.cpu_count() or 1
    return max(1, min(processes, npoints))


def fanout(
    worker: Callable[[T], R],
    points: Sequence[T],
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> List[R]:
    """Run ``worker`` over ``points``; results in point order.

    ``processes <= 1`` (after clamping) runs serially in-process — the
    reference behaviour the pool path must reproduce exactly.

    ``timeout_s`` bounds how long the harness waits on each point *after
    every earlier point has been collected* (so it is a per-worker bound,
    not a whole-run bound). On expiry the pool is terminated — a hung
    worker can never wedge a benchmark run — and the typed
    :class:`~repro.errors.WorkerTimeoutError` propagates. ``None`` keeps
    the historical unbounded join. The serial path ignores the timeout:
    there is no hung *process* to kill, and killing the caller's own
    interpreter mid-worker is not a recovery.
    """
    n = resolve_processes(processes, len(points))
    if n <= 1:
        return [worker(p) for p in points]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        ctx = multiprocessing.get_context()
    with ctx.Pool(n) as pool:
        if timeout_s is None:
            return pool.map(worker, points, chunksize=1)
        # imap preserves point order exactly like map; next(timeout=)
        # gives the bounded join that map's bare .get() never had.
        results: List[R] = []
        it = pool.imap(worker, points, chunksize=1)
        for index in range(len(points)):
            try:
                results.append(it.next(timeout=timeout_s))
            except multiprocessing.TimeoutError:
                pool.terminate()
                raise WorkerTimeoutError(
                    f"fanout worker for point {index} exceeded its "
                    f"{timeout_s:g}s timeout (pool terminated)"
                ) from None
        return results


def merge_experiments(parts: Sequence[Experiment], name: str = "") -> Experiment:
    """Merge per-point experiments (in point order) into one.

    Each part contributes its x-positions and series values; labels met
    in multiple parts append in order, exactly as a serial runner adding
    the same points would.
    """
    if not parts:
        raise ValueError("merge_experiments needs at least one part")
    first = parts[0]
    merged = Experiment(
        name=name or first.name,
        x_label=first.x_label,
        y_label=first.y_label,
        notes=first.notes,
    )
    for part in parts:
        for i, x in enumerate(part.x_values):
            for label, series in part.series.items():
                if i < len(series.values):
                    v = series.values[i]
                    if v == v:  # skip NaN padding
                        merged.add_point(x, label, v)
    return merged
