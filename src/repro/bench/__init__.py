"""Benchmark harness: experiment containers and per-figure runners."""

from repro.bench.chart import line_chart
from repro.bench.harness import Experiment, Grid, Series
from repro.bench.report import collect_sections, render_markdown, write_report
from repro.bench.figures import (
    FIG7_TARGET_MB,
    run_buffer_ablation,
    run_fig5,
    run_fig6,
    run_fig7,
    run_prefetcher_ablation,
    run_rm_clock_ablation,
)
from repro.bench.parallel import derive_seed, fanout, merge_experiments

__all__ = [
    "Experiment",
    "derive_seed",
    "fanout",
    "merge_experiments",
    "collect_sections",
    "line_chart",
    "render_markdown",
    "write_report",
    "FIG7_TARGET_MB",
    "Grid",
    "Series",
    "run_buffer_ablation",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_prefetcher_ablation",
    "run_rm_clock_ablation",
]
