"""Command-line front end: regenerate paper figures from a terminal.

Usage::

    python -m repro.bench fig5 [--nrows N]
    python -m repro.bench fig6 [--nrows N]
    python -m repro.bench fig7 [--scale 1/16]
    python -m repro.bench ablations
    python -m repro.bench all [--quick]
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.chart import line_chart
from repro.bench.figures import (
    run_buffer_ablation,
    run_fig5,
    run_fig6,
    run_fig7,
    run_prefetcher_ablation,
    run_rm_clock_ablation,
)


def _fig5(args) -> None:
    exp = run_fig5(nrows=args.nrows)
    print(exp.to_table())
    print()
    print(line_chart(exp, labels=["row", "column", "rm"]))


def _fig6(args) -> None:
    vs_row, vs_col = run_fig6(nrows=args.nrows, processes=args.processes)
    print(vs_row.to_table())
    print()
    print(vs_col.to_table())


def _fig7(args) -> None:
    for query in ("Q1", "Q6"):
        exp = run_fig7(query=query, scale=args.scale, processes=args.processes)
        print(exp.to_table())
        print()
        print(line_chart(exp, labels=["row", "column", "rm"], logscale=True))
        print()


def _ablations(args) -> None:
    for limit, exp in run_prefetcher_ablation(nrows=args.nrows).items():
        ratios = exp.ratio("column", "rm")
        crossing = next(
            (i + 1 for i, c in enumerate(ratios) if c >= 1.0), len(ratios) + 1
        )
        print(f"prefetcher max_streams={limit}: COL/RM crossover at k={crossing}")
    print()
    print(run_rm_clock_ablation(nrows=args.nrows).to_table())
    print()
    print(run_buffer_ablation(nrows=2 * args.nrows).to_table())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Relational Fabric paper's figures.",
    )
    parser.add_argument(
        "target",
        choices=["fig5", "fig6", "fig7", "ablations", "all", "report"],
        help="which experiment to run (or 'report' to consolidate results)",
    )
    parser.add_argument("--nrows", type=int, default=100_000)
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes for grid sweeps (0 = all cores)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1 / 16,
        help="fraction of the paper's Figure 7 data sizes",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller inputs for 'all'"
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.nrows = min(args.nrows, 30_000)
        args.scale = min(args.scale, 1 / 64)

    if args.target in ("fig5", "all"):
        _fig5(args)
        print()
    if args.target in ("fig6", "all"):
        _fig6(args)
        print()
    if args.target in ("fig7", "all"):
        _fig7(args)
    if args.target in ("ablations", "all"):
        _ablations(args)
    if args.target == "report":
        import os

        from repro.bench.report import write_report

        results = os.path.join("benchmarks", "results")
        out = write_report(results, os.path.join(results, "REPORT.md"))
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
