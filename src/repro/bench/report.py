"""Consolidated reproduction report from the saved bench results.

``pytest benchmarks/ --benchmark-only`` writes one text table per
experiment into ``benchmarks/results/``; this module folds them into a
single Markdown document (per-experiment sections plus a checklist of
which paper figures have fresh results) so a reviewer reads one file.

Exposed on the CLI as ``python -m repro.bench report``.
"""

from __future__ import annotations

import datetime
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.ledger import CostLedger

#: Experiment id → (result file stem, what the paper shows).
PAPER_FIGURES: Tuple[Tuple[str, str, str], ...] = (
    ("Figure 5", "fig5_projectivity", "normalized time vs projectivity (ROW/COL/RM)"),
    ("Figure 6a", "fig6a_rm_vs_row", "RM speedup vs ROW heatmap"),
    ("Figure 6b", "fig6b_rm_vs_col", "RM speedup vs COL heatmap"),
    ("Figure 7a", "fig7a_tpch_q1", "TPC-H Q1 time vs data size"),
    ("Figure 7b", "fig7b_tpch_q6", "TPC-H Q6 time vs data size"),
)

ABLATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("Prefetcher streams", "ablation_prefetcher", "crossover vs stream limit"),
    ("RM clock", "ablation_rm_clock", "fabric frequency sensitivity"),
    ("RM buffer", "ablation_rm_buffer", "refill stalls vs buffer size"),
    ("RM vs RMC", "ablation_rmc", "§IV-C integration"),
    ("MVCC in fabric", "ablation_mvcc", "§III-C hardware visibility"),
    ("Code cache", "ablation_codecache", "§III-B fragment reuse"),
    ("Storage pushdown", "storage_pushdown", "§IV-D Relational Storage"),
    ("Compression", "compression", "§III-D fabric compatibility"),
    ("HTAP", "htap", "freshness + conversion cost"),
    ("Tiered fabric", "tiered_fabric", "§VII Q3 composition"),
    ("Multicore", "multicore", "thread scaling walls"),
)


def format_breakdown(ledger: CostLedger) -> str:
    """Render a ledger's cost buckets, one line per bucket.

    Every known bucket appears even when nothing was charged to it — an
    explicit ``0 cycles`` line distinguishes "this stage ran for free"
    from "this stage was never priced", which a silently missing row
    cannot. Shares are printed only when there is a total to share.
    """
    breakdown = ledger.breakdown()
    total = ledger.total_cycles
    width = max(len(name) for name in breakdown)
    lines = []
    for name, cycles in breakdown.items():
        if cycles == 0.0:
            lines.append(f"{name:<{width}}  0 cycles")
        elif total:
            share = cycles / total
            lines.append(f"{name:<{width}}  {cycles:>14,.0f} cycles  ({share:6.1%})")
        else:  # pragma: no cover — nonzero bucket implies nonzero total
            lines.append(f"{name:<{width}}  {cycles:>14,.0f} cycles")
    lines.append(f"{'total':<{width}}  {total:>14,.0f} cycles")
    return "\n".join(lines)


@dataclass
class ReportSection:
    title: str
    description: str
    body: Optional[str]

    @property
    def present(self) -> bool:
        return self.body is not None


def _load(results_dir: str, stem: str) -> Optional[str]:
    path = os.path.join(results_dir, f"{stem}.txt")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return f.read().strip()


def collect_sections(results_dir: str) -> List[ReportSection]:
    """Load every known experiment's saved table (missing ones noted)."""
    sections = []
    for title, stem, description in PAPER_FIGURES + ABLATIONS:
        sections.append(
            ReportSection(
                title=title,
                description=description,
                body=_load(results_dir, stem),
            )
        )
    return sections


def render_markdown(results_dir: str, now: Optional[str] = None) -> str:
    """The consolidated reproduction report."""
    sections = collect_sections(results_dir)
    stamp = now or datetime.datetime.now().isoformat(timespec="seconds")
    figures = [s for s, meta in zip(sections, PAPER_FIGURES)]
    n_paper = len(PAPER_FIGURES)
    fresh = sum(1 for s in sections[:n_paper] if s.present)

    lines = [
        "# Relational Fabric — reproduction report",
        "",
        f"Generated {stamp} from `{results_dir}`.",
        "",
        f"Paper figures with fresh results: **{fresh}/{n_paper}**"
        " (run `pytest benchmarks/ --benchmark-only` to refresh).",
        "",
        "## Checklist",
        "",
        "| Experiment | What it reproduces | Result |",
        "|---|---|---|",
    ]
    for section in sections:
        status = "✓" if section.present else "missing"
        lines.append(f"| {section.title} | {section.description} | {status} |")
    lines.append("")
    for section in sections:
        if not section.present:
            continue
        lines.append(f"## {section.title} — {section.description}")
        lines.append("")
        lines.append("```")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: str, out_path: str) -> str:
    """Render and write the report; returns the output path."""
    text = render_markdown(results_dir)
    with open(out_path, "w") as f:
        f.write(text + "\n")
    return out_path
