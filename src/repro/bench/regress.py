"""Benchmark regression gating: diff BENCH_*.json against baselines.

The benches emit nested JSON (``BENCH_trace.json``,
``BENCH_recovery.json``); this module flattens each document to
dot-path numeric leaves, matches every path against an ordered tolerance
spec (first ``fnmatch`` wins), and classifies the current value against
the committed baseline:

* ``ok`` — within the rule's relative tolerance;
* ``improved`` — outside tolerance in the *good* direction (noted, never
  fatal);
* ``regression`` — outside tolerance in the bad direction, or a baseline
  metric missing from the current run;
* ``ignored`` — the rule says so (wall-clock seconds, host-dependent
  throughput: CI machines are too noisy to gate on; the *simulated*
  cycles/bytes/record counts are deterministic and gate tightly);
* ``new`` — present now, absent from the baseline (noted).

Direction semantics: ``lower_is_better`` flags only increases,
``higher_is_better`` only decreases, ``both`` any drift beyond
``rel_tol``. Booleans flatten to 0/1 so invariants like
``bit_identical`` gate exactly with ``rel_tol: 0``.

``scripts/bench_compare.py`` is the CLI; CI runs it as the
``bench-regress`` job with the spec in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional

__all__ = [
    "Tolerance",
    "Finding",
    "ComparisonReport",
    "flatten",
    "load_spec",
    "match_rule",
    "compare",
]

_DIRECTIONS = ("lower_is_better", "higher_is_better", "both", "ignore")


@dataclass(frozen=True)
class Tolerance:
    """One tolerance rule: a path glob, a budget, and a direction."""

    pattern: str
    rel_tol: float = 0.05
    direction: str = "both"

    def __post_init__(self):
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction {self.direction!r} not in {_DIRECTIONS}"
            )
        if self.rel_tol < 0:
            raise ValueError(f"rel_tol must be >= 0, got {self.rel_tol}")


#: Applied when no rule matches and the spec defines no default.
DEFAULT_RULE = Tolerance(pattern="*", rel_tol=0.05, direction="both")


@dataclass
class Finding:
    """One metric's verdict."""

    path: str
    status: str  # ok | improved | regression | ignored | new
    baseline: Optional[float] = None
    current: Optional[float] = None
    rel_delta: Optional[float] = None
    rule: Optional[str] = None
    note: str = ""

    def render(self) -> str:
        delta = (
            f"{self.rel_delta:+.1%}" if self.rel_delta is not None else "-"
        )
        base = "-" if self.baseline is None else f"{self.baseline:g}"
        cur = "-" if self.current is None else f"{self.current:g}"
        line = (
            f"{self.status.upper():10} {self.path}  "
            f"base={base} cur={cur} delta={delta}"
        )
        return line + (f"  [{self.note}]" if self.note else "")


@dataclass
class ComparisonReport:
    """All findings for one benchmark file."""

    name: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.status == "regression"]

    @property
    def failed(self) -> bool:
        return bool(self.regressions)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.status] = out.get(f.status, 0) + 1
        return out

    def render(self, verbose: bool = False) -> str:
        counts = ", ".join(
            f"{n} {status}" for status, n in sorted(self.counts().items())
        )
        lines = [f"== {self.name}: {counts or 'no metrics'} =="]
        for f in self.findings:
            if verbose or f.status in ("regression", "improved", "new"):
                lines.append("  " + f.render())
        return "\n".join(lines)

    def to_json_obj(self) -> dict:
        return {
            "name": self.name,
            "failed": self.failed,
            "counts": self.counts(),
            "findings": [vars(f) for f in self.findings],
        }


def flatten(doc, prefix: str = "") -> Dict[str, float]:
    """Nested JSON → ``dot.path[i] -> float`` for every numeric leaf.

    Booleans become 0.0/1.0; strings and nulls are skipped (they carry
    labels, not measurements).
    """
    out: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key in doc:
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(doc[key], path))
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            out.update(flatten(item, f"{prefix}[{i}]"))
    elif isinstance(doc, bool):
        out[prefix] = 1.0 if doc else 0.0
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


def load_spec(path: str) -> List[Tolerance]:
    """Load an ordered tolerance spec from JSON.

    Format: ``{"rules": [{"pattern": ..., "rel_tol": ..., "direction":
    ...}, ...], "default": {...}}``. Rules apply first-match-wins in
    file order; the default (appended as a ``*`` rule) catches the rest.
    """
    with open(path) as f:
        doc = json.load(f)
    rules = [Tolerance(**rule) for rule in doc.get("rules", [])]
    default = doc.get("default")
    if default is not None:
        rules.append(Tolerance(pattern="*", **default))
    return rules


def match_rule(path: str, rules: List[Tolerance]) -> Tolerance:
    for rule in rules:
        if fnmatchcase(path, rule.pattern):
            return rule
    return DEFAULT_RULE


def compare(
    name: str,
    baseline: dict,
    current: dict,
    rules: List[Tolerance],
) -> ComparisonReport:
    """Classify every flattened metric of ``current`` vs ``baseline``."""
    base_flat = flatten(baseline)
    cur_flat = flatten(current)
    report = ComparisonReport(name=name)

    for path in sorted(set(base_flat) | set(cur_flat)):
        rule = match_rule(path, rules)
        base = base_flat.get(path)
        cur = cur_flat.get(path)
        if rule.direction == "ignore":
            report.findings.append(
                Finding(path, "ignored", base, cur, rule=rule.pattern)
            )
            continue
        if base is None:
            report.findings.append(
                Finding(
                    path, "new", None, cur, rule=rule.pattern,
                    note="not in baseline",
                )
            )
            continue
        if cur is None:
            report.findings.append(
                Finding(
                    path, "regression", base, None, rule=rule.pattern,
                    note="metric disappeared from current run",
                )
            )
            continue

        if base == 0.0:
            rel = 0.0 if cur == 0.0 else float("inf")
        else:
            rel = (cur - base) / abs(base)
        within = abs(rel) <= rule.rel_tol
        if within:
            status = "ok"
        elif rule.direction == "lower_is_better":
            status = "regression" if rel > 0 else "improved"
        elif rule.direction == "higher_is_better":
            status = "regression" if rel < 0 else "improved"
        else:
            status = "regression"
        report.findings.append(
            Finding(
                path,
                status,
                base,
                cur,
                rel_delta=rel if rel != float("inf") else None,
                rule=rule.pattern,
                note="baseline was zero" if base == 0.0 and cur != 0.0 else "",
            )
        )
    return report
