"""Runners that regenerate every figure of the paper's evaluation (§V).

Each function runs the full simulated stack (generator → engines →
hardware models) and returns the harness structure holding the same
series/grids the paper plots. Absolute numbers are simulated-platform
cycles; the claims under test are the *shapes* (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.harness import Experiment, Grid
from repro.bench.parallel import derive_seed, fanout
from repro.db.engines import all_engines
from repro.hw.config import PlatformConfig, default_platform
from repro.hw.cpu import CpuCostModel
from repro.workloads.synthetic import (
    make_wide_table,
    projection_selection_query,
    projectivity_query,
)
from repro.workloads.tpch import (
    Q1,
    Q1_COLUMNS,
    Q6,
    Q6_COLUMNS,
    generate_lineitem,
    rows_for_target_bytes,
)
from repro.workloads.tpch_analytics import (
    Q3,
    Q3_COLUMNS,
    Q14,
    Q14_COLUMNS,
    generate_tpch_analytics,
)

#: Figure-7 query registry: SQL, target-column set for sizing, and
#: whether the point needs the full analytics star (joins) or just
#: lineitem.
FIG7_QUERIES = {
    "Q1": (Q1, Q1_COLUMNS, False),
    "Q6": (Q6, Q6_COLUMNS, False),
    "Q3": (Q3, Q3_COLUMNS, True),
    "Q14": (Q14, Q14_COLUMNS, True),
}

ENGINE_ORDER = ("row", "column", "rm")

#: Per-process engine cache for pool workers: grid points arriving in the
#: same worker process (or a serial run) reuse one table + engine set
#: instead of regenerating per point. Keyed by the full table/engine
#: config, so a new sweep with different parameters rebuilds.
_WIDE_CACHE: Dict[tuple, Dict[str, object]] = {}


def _wide_engines(
    nrows: int,
    ncols: int,
    row_bytes: int,
    seed: int,
    platform: Optional[PlatformConfig],
    memory_model: str,
):
    key = (nrows, ncols, row_bytes, seed, memory_model, platform)
    if key not in _WIDE_CACHE:
        _WIDE_CACHE.clear()  # one live config per process
        catalog, _ = make_wide_table(
            nrows=nrows, ncols=ncols, row_bytes=row_bytes, seed=seed
        )
        _WIDE_CACHE[key] = all_engines(
            catalog, platform or default_platform(), memory_model=memory_model
        )
    return _WIDE_CACHE[key]


def _fig6_point(args: tuple) -> Tuple[int, int, Dict[str, float]]:
    """One (selection, projection) grid point — top-level so it pickles."""
    s, p, nrows, ncols, row_bytes, seed, platform, memory_model = args
    engines = _wide_engines(nrows, ncols, row_bytes, seed, platform, memory_model)
    sql = projection_selection_query(p, s)
    return s, p, {name: engines[name].execute(sql).cycles for name in ENGINE_ORDER}


def _fig7_point(args: tuple) -> Tuple[float, int, float, Dict[str, float]]:
    """One data-size point: regenerate the data, run every engine."""
    mb, nrows, seed, sql, platform, memory_model, star = args
    platform = platform or default_platform()
    if star:
        catalog, table, *_ = generate_tpch_analytics(nrows, seed=seed)
    else:
        catalog, table = generate_lineitem(nrows=nrows, seed=seed)
    engines = all_engines(catalog, platform, memory_model=memory_model)
    cpu = CpuCostModel(platform.cpu)
    seconds = {
        name: cpu.seconds(engines[name].execute(sql).cycles)
        for name in ENGINE_ORDER
    }
    return mb, nrows, table.nbytes / 1024 / 1024, seconds


def run_fig5(
    nrows: int = 200_000,
    max_projectivity: int = 11,
    platform: Optional[PlatformConfig] = None,
    memory_model: str = "analytic",
) -> Experiment:
    """Figure 5: normalized execution time vs projectivity (1..11 of 16
    4-byte columns in 64-byte rows) for ROW / COL / RM."""
    platform = platform or default_platform()
    catalog, _ = make_wide_table(nrows=nrows, ncols=16, row_bytes=64)
    engines = all_engines(catalog, platform, memory_model=memory_model)
    exp = Experiment(
        name="fig5-projectivity",
        x_label="projectivity",
        y_label="normalized execution time",
        notes=f"nrows={nrows}, 16x INT32 columns, 64B rows",
    )
    raw: Dict[str, List[float]] = {name: [] for name in ENGINE_ORDER}
    for k in range(1, max_projectivity + 1):
        sql = projectivity_query(k)
        for name in ENGINE_ORDER:
            raw[name].append(engines[name].execute(sql).cycles)
    norm = max(raw["row"])  # the paper normalizes so ROW sits near 1.0
    for i, k in enumerate(range(1, max_projectivity + 1)):
        for name in ENGINE_ORDER:
            exp.add_point(k, name, raw[name][i] / norm)
    for name in ENGINE_ORDER:
        cycles = Experiment  # noqa: F841 - raw series kept alongside
        exp.series_for(f"{name}_cycles").values = raw[name]
    return exp


def run_fig6(
    nrows: int = 100_000,
    max_projected: int = 10,
    max_selection: int = 10,
    platform: Optional[PlatformConfig] = None,
    memory_model: str = "analytic",
    seed: int = 42,
    processes: Optional[int] = 1,
) -> Tuple[Grid, Grid]:
    """Figures 6a/6b: RM speedup vs ROW and vs COL over a grid of
    (#projected columns, #selection columns).

    ``processes`` fans the grid points out over a worker pool (``None``
    or 0 = all cores); every point is a pure function of the sweep
    parameters, so parallel results are identical to a serial run.
    """
    ncols = max_projected + max_selection
    row_bytes = max(64, ((ncols * 4 + 63) // 64) * 64)
    note = f"nrows={nrows}, {ncols}x INT32 columns, {row_bytes}B rows"
    vs_row = Grid(
        name="fig6a-rm-speedup-vs-row",
        row_label="#sel",
        col_label="#proj",
        notes=note,
    )
    vs_col = Grid(
        name="fig6b-rm-speedup-vs-col",
        row_label="#sel",
        col_label="#proj",
        notes=note,
    )
    points = [
        (s, p, nrows, ncols, row_bytes, seed, platform, memory_model)
        for s in range(1, max_selection + 1)
        for p in range(1, max_projected + 1)
    ]
    for s, p, cycles in fanout(_fig6_point, points, processes=processes):
        vs_row.set(s, p, cycles["row"] / cycles["rm"])
        vs_col.set(s, p, cycles["column"] / cycles["rm"])
    return vs_row, vs_col


#: Target-column sizes (MB) the paper sweeps in Figure 7, before scaling.
FIG7_TARGET_MB = (2, 4, 8, 16, 32, 64, 128)


def run_fig7(
    query: str = "Q6",
    target_mbs: Iterable[float] = FIG7_TARGET_MB,
    scale: float = 1 / 16,
    platform: Optional[PlatformConfig] = None,
    memory_model: str = "analytic",
    seed: int = 19920101,
    processes: Optional[int] = 1,
) -> Experiment:
    """Figures 7a/7b: TPC-H Q1/Q6 execution time vs data size.

    ``scale`` shrinks the paper's absolute sizes so a full sweep runs in
    CI time (a documented substitution — per-row costs are unchanged and
    every size remains far beyond the simulated LLC). Each point's
    lineitem data is generated from a seed derived purely from ``(seed,
    point index)``, so runs are reproducible and ``processes > 1``
    (``None``/0 = all cores) produces exactly the serial results.
    """
    if query not in FIG7_QUERIES:
        raise ValueError(
            f"query must be one of {sorted(FIG7_QUERIES)}, got {query!r}"
        )
    sql, columns, star = FIG7_QUERIES[query]
    exp = Experiment(
        name=f"fig7-tpch-{query.lower()}",
        x_label="target column MB (paper scale)",
        y_label="simulated seconds",
        notes=f"scale={scale:g} of the paper's sizes; lineitem rows regenerated per point",
    )
    points = []
    for i, mb in enumerate(target_mbs):
        nrows = rows_for_target_bytes(int(mb * 1024 * 1024 * scale), columns)
        points.append(
            (mb, nrows, derive_seed(seed, i), sql, platform, memory_model, star)
        )
    for mb, nrows, table_mb, seconds in fanout(
        _fig7_point, points, processes=processes
    ):
        for name in ENGINE_ORDER:
            exp.add_point(mb, name, seconds[name])
        exp.add_point(mb, "rows", nrows)
        exp.add_point(mb, "table_mb", table_mb)
    return exp


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §4): not in the paper, probing its mechanisms.
# ----------------------------------------------------------------------
def run_prefetcher_ablation(
    nrows: int = 150_000,
    stream_limits: Iterable[int] = (2, 4, 8),
    max_projectivity: int = 11,
) -> Dict[int, Experiment]:
    """Does the COL/RM crossover track the prefetcher stream limit?"""
    out = {}
    for limit in stream_limits:
        platform = default_platform().with_prefetcher(max_streams=limit)
        exp = run_fig5(
            nrows=nrows, max_projectivity=max_projectivity, platform=platform
        )
        exp.name = f"ablation-prefetcher-{limit}-streams"
        out[limit] = exp
    return out


def run_rm_clock_ablation(
    nrows: int = 150_000,
    clocks_mhz: Iterable[int] = (50, 100, 200, 400),
    projectivity: int = 6,
) -> Experiment:
    """RM sensitivity to the fabric clock (the prototype runs at 100 MHz)."""
    exp = Experiment(
        name="ablation-rm-clock",
        x_label="fabric MHz",
        y_label="simulated cycles",
        notes=f"projectivity={projectivity}, nrows={nrows}",
    )
    sql = projectivity_query(projectivity)
    for mhz in clocks_mhz:
        platform = default_platform().with_rm(freq_hz=mhz * 1_000_000)
        catalog, _ = make_wide_table(nrows=nrows, ncols=16, row_bytes=64)
        engines = all_engines(catalog, platform)
        for name in ENGINE_ORDER:
            exp.add_point(mhz, name, engines[name].execute(sql).cycles)
    return exp


def run_buffer_ablation(
    nrows: int = 400_000,
    buffer_kb: Iterable[int] = (64, 256, 1024, 2048, 8192),
    projectivity: int = 8,
) -> Experiment:
    """Effect of the on-fabric buffer size (refill stalls, §V)."""
    exp = Experiment(
        name="ablation-rm-buffer",
        x_label="buffer KB",
        y_label="simulated cycles (rm)",
        notes=f"projectivity={projectivity}, nrows={nrows}",
    )
    sql = projectivity_query(projectivity)
    for kb in buffer_kb:
        platform = default_platform().with_rm(buffer_bytes=kb * 1024)
        catalog, _ = make_wide_table(nrows=nrows, ncols=16, row_bytes=64)
        engines = all_engines(catalog, platform)
        result = engines["rm"].execute(sql)
        exp.add_point(kb, "rm", result.cycles)
        exp.add_point(kb, "refill_stall", result.ledger.get("fabric_stall"))
    return exp
