"""Runners that regenerate every figure of the paper's evaluation (§V).

Each function runs the full simulated stack (generator → engines →
hardware models) and returns the harness structure holding the same
series/grids the paper plots. Absolute numbers are simulated-platform
cycles; the claims under test are the *shapes* (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.harness import Experiment, Grid
from repro.db.engines import all_engines
from repro.hw.config import PlatformConfig, default_platform
from repro.hw.cpu import CpuCostModel
from repro.workloads.synthetic import (
    make_wide_table,
    projection_selection_query,
    projectivity_query,
)
from repro.workloads.tpch import (
    Q1,
    Q1_COLUMNS,
    Q6,
    Q6_COLUMNS,
    generate_lineitem,
    rows_for_target_bytes,
)

ENGINE_ORDER = ("row", "column", "rm")


def run_fig5(
    nrows: int = 200_000,
    max_projectivity: int = 11,
    platform: Optional[PlatformConfig] = None,
) -> Experiment:
    """Figure 5: normalized execution time vs projectivity (1..11 of 16
    4-byte columns in 64-byte rows) for ROW / COL / RM."""
    platform = platform or default_platform()
    catalog, _ = make_wide_table(nrows=nrows, ncols=16, row_bytes=64)
    engines = all_engines(catalog, platform)
    exp = Experiment(
        name="fig5-projectivity",
        x_label="projectivity",
        y_label="normalized execution time",
        notes=f"nrows={nrows}, 16x INT32 columns, 64B rows",
    )
    raw: Dict[str, List[float]] = {name: [] for name in ENGINE_ORDER}
    for k in range(1, max_projectivity + 1):
        sql = projectivity_query(k)
        for name in ENGINE_ORDER:
            raw[name].append(engines[name].execute(sql).cycles)
    norm = max(raw["row"])  # the paper normalizes so ROW sits near 1.0
    for i, k in enumerate(range(1, max_projectivity + 1)):
        for name in ENGINE_ORDER:
            exp.add_point(k, name, raw[name][i] / norm)
    for name in ENGINE_ORDER:
        cycles = Experiment  # noqa: F841 - raw series kept alongside
        exp.series_for(f"{name}_cycles").values = raw[name]
    return exp


def run_fig6(
    nrows: int = 100_000,
    max_projected: int = 10,
    max_selection: int = 10,
    platform: Optional[PlatformConfig] = None,
) -> Tuple[Grid, Grid]:
    """Figures 6a/6b: RM speedup vs ROW and vs COL over a grid of
    (#projected columns, #selection columns)."""
    platform = platform or default_platform()
    ncols = max_projected + max_selection
    row_bytes = max(64, ((ncols * 4 + 63) // 64) * 64)
    catalog, _ = make_wide_table(nrows=nrows, ncols=ncols, row_bytes=row_bytes)
    engines = all_engines(catalog, platform)
    note = f"nrows={nrows}, {ncols}x INT32 columns, {row_bytes}B rows"
    vs_row = Grid(
        name="fig6a-rm-speedup-vs-row",
        row_label="#sel",
        col_label="#proj",
        notes=note,
    )
    vs_col = Grid(
        name="fig6b-rm-speedup-vs-col",
        row_label="#sel",
        col_label="#proj",
        notes=note,
    )
    for s in range(1, max_selection + 1):
        for p in range(1, max_projected + 1):
            sql = projection_selection_query(p, s)
            cycles = {
                name: engines[name].execute(sql).cycles for name in ENGINE_ORDER
            }
            vs_row.set(s, p, cycles["row"] / cycles["rm"])
            vs_col.set(s, p, cycles["column"] / cycles["rm"])
    return vs_row, vs_col


#: Target-column sizes (MB) the paper sweeps in Figure 7, before scaling.
FIG7_TARGET_MB = (2, 4, 8, 16, 32, 64, 128)


def run_fig7(
    query: str = "Q6",
    target_mbs: Iterable[float] = FIG7_TARGET_MB,
    scale: float = 1 / 16,
    platform: Optional[PlatformConfig] = None,
) -> Experiment:
    """Figures 7a/7b: TPC-H Q1/Q6 execution time vs data size.

    ``scale`` shrinks the paper's absolute sizes so a full sweep runs in
    CI time (a documented substitution — per-row costs are unchanged and
    every size remains far beyond the simulated LLC).
    """
    if query not in ("Q1", "Q6"):
        raise ValueError(f"query must be Q1 or Q6, got {query!r}")
    sql, columns = (Q1, Q1_COLUMNS) if query == "Q1" else (Q6, Q6_COLUMNS)
    platform = platform or default_platform()
    cpu = CpuCostModel(platform.cpu)
    exp = Experiment(
        name=f"fig7-tpch-{query.lower()}",
        x_label="target column MB (paper scale)",
        y_label="simulated seconds",
        notes=f"scale={scale:g} of the paper's sizes; lineitem rows regenerated per point",
    )
    for mb in target_mbs:
        nrows = rows_for_target_bytes(int(mb * 1024 * 1024 * scale), columns)
        catalog, table = generate_lineitem(nrows=nrows)
        engines = all_engines(catalog, platform)
        for name in ENGINE_ORDER:
            result = engines[name].execute(sql)
            exp.add_point(mb, name, cpu.seconds(result.cycles))
        exp.add_point(mb, "rows", nrows)
        exp.add_point(mb, "table_mb", table.nbytes / 1024 / 1024)
    return exp


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §4): not in the paper, probing its mechanisms.
# ----------------------------------------------------------------------
def run_prefetcher_ablation(
    nrows: int = 150_000,
    stream_limits: Iterable[int] = (2, 4, 8),
    max_projectivity: int = 11,
) -> Dict[int, Experiment]:
    """Does the COL/RM crossover track the prefetcher stream limit?"""
    out = {}
    for limit in stream_limits:
        platform = default_platform().with_prefetcher(max_streams=limit)
        exp = run_fig5(
            nrows=nrows, max_projectivity=max_projectivity, platform=platform
        )
        exp.name = f"ablation-prefetcher-{limit}-streams"
        out[limit] = exp
    return out


def run_rm_clock_ablation(
    nrows: int = 150_000,
    clocks_mhz: Iterable[int] = (50, 100, 200, 400),
    projectivity: int = 6,
) -> Experiment:
    """RM sensitivity to the fabric clock (the prototype runs at 100 MHz)."""
    exp = Experiment(
        name="ablation-rm-clock",
        x_label="fabric MHz",
        y_label="simulated cycles",
        notes=f"projectivity={projectivity}, nrows={nrows}",
    )
    sql = projectivity_query(projectivity)
    for mhz in clocks_mhz:
        platform = default_platform().with_rm(freq_hz=mhz * 1_000_000)
        catalog, _ = make_wide_table(nrows=nrows, ncols=16, row_bytes=64)
        engines = all_engines(catalog, platform)
        for name in ENGINE_ORDER:
            exp.add_point(mhz, name, engines[name].execute(sql).cycles)
    return exp


def run_buffer_ablation(
    nrows: int = 400_000,
    buffer_kb: Iterable[int] = (64, 256, 1024, 2048, 8192),
    projectivity: int = 8,
) -> Experiment:
    """Effect of the on-fabric buffer size (refill stalls, §V)."""
    exp = Experiment(
        name="ablation-rm-buffer",
        x_label="buffer KB",
        y_label="simulated cycles (rm)",
        notes=f"projectivity={projectivity}, nrows={nrows}",
    )
    sql = projectivity_query(projectivity)
    for kb in buffer_kb:
        platform = default_platform().with_rm(buffer_bytes=kb * 1024)
        catalog, _ = make_wide_table(nrows=nrows, ncols=16, row_bytes=64)
        engines = all_engines(catalog, platform)
        result = engines["rm"].execute(sql)
        exp.add_point(kb, "rm", result.cycles)
        exp.add_point(kb, "refill_stall", result.ledger.get("fabric_stall"))
    return exp
