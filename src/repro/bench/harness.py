"""Experiment harness: run engine sweeps, collect series, print tables.

Every paper figure has a runner in :mod:`repro.bench.figures` returning an
:class:`Experiment`; the bench targets under ``benchmarks/`` and the
EXPERIMENTS.md generator both consume that one structure. The reported
quantity is **simulated time** (cycles of the modelled platform), not
host wall-clock — the host is running a simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs import Trace


def write_trace(trace: Trace, path: str, indent: int = 2) -> str:
    """Dump a query trace as Chrome trace-event JSON; returns the path.

    The file loads directly in Perfetto / ``chrome://tracing``. Bench
    targets use this to attach one representative trace per figure next
    to the result tables.
    """
    with open(path, "w") as f:
        f.write(trace.to_chrome_json(indent=indent))
        f.write("\n")
    return path


def trace_summary(trace: Trace, top: int = 5) -> Dict[str, float]:
    """The ``top`` spans by inclusive cycles — a flat dict for tables."""
    spans = sorted(
        trace.root.walk(), key=lambda s: s.total_cycles, reverse=True
    )
    return {s.name: s.total_cycles for s in spans[:top]}


@dataclass
class Series:
    """One labelled curve: y (and optional raw detail) over shared x."""

    label: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)


@dataclass
class Experiment:
    """A completed experiment: shared x-axis plus named series."""

    name: str
    x_label: str
    x_values: List[object] = field(default_factory=list)
    series: Dict[str, Series] = field(default_factory=dict)
    y_label: str = "simulated cycles"
    notes: str = ""

    def series_for(self, label: str) -> Series:
        if label not in self.series:
            self.series[label] = Series(label=label)
        return self.series[label]

    def add_point(self, x: object, label: str, value: float) -> None:
        """Record ``value`` for series ``label`` at x-position ``x``.

        Series may be sparse (not every series has a value at every x);
        missing positions render blank and are padded with NaN.
        """
        if x not in self.x_values:
            self.x_values.append(x)
        idx = self.x_values.index(x)
        series = self.series_for(label)
        while len(series.values) < idx:
            series.values.append(float("nan"))
        if len(series.values) == idx:
            series.values.append(value)
        else:
            series.values[idx] = value

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def to_table(self, fmt: str = "{:>12.4g}") -> str:
        """Fixed-width table: one row per x, one column per series."""
        labels = list(self.series)
        header = f"{self.x_label:>16} " + " ".join(f"{l:>12}" for l in labels)
        lines = [self.name, "=" * len(self.name), header, "-" * len(header)]
        for i, x in enumerate(self.x_values):
            cells = []
            for l in labels:
                vals = self.series[l].values
                present = i < len(vals) and vals[i] == vals[i]  # not NaN
                cells.append(fmt.format(vals[i]) if present else " " * 12)
            lines.append(f"{str(x):>16} " + " ".join(cells))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "x_label": self.x_label,
                "x_values": [str(x) for x in self.x_values],
                "y_label": self.y_label,
                "series": {l: s.values for l, s in self.series.items()},
                "notes": self.notes,
            },
            indent=2,
        )

    def ratio(self, numerator: str, denominator: str) -> List[float]:
        """Pointwise series ratio (speedups)."""
        a = self.series[numerator].values
        b = self.series[denominator].values
        return [x / y if y else float("inf") for x, y in zip(a, b)]


@dataclass
class Grid:
    """A 2-D sweep (the Figure 6 heatmaps): value[(row, col)]."""

    name: str
    row_label: str
    col_label: str
    rows: List[int] = field(default_factory=list)
    cols: List[int] = field(default_factory=list)
    values: Dict[tuple, float] = field(default_factory=dict)
    notes: str = ""

    def set(self, row: int, col: int, value: float) -> None:
        if row not in self.rows:
            self.rows.append(row)
        if col not in self.cols:
            self.cols.append(col)
        self.values[(row, col)] = value

    def get(self, row: int, col: int) -> float:
        return self.values[(row, col)]

    def to_table(self) -> str:
        header = f"{self.row_label + chr(92) + self.col_label:>8} " + " ".join(
            f"{c:>6}" for c in self.cols
        )
        lines = [self.name, "=" * len(self.name), header, "-" * len(header)]
        for r in reversed(self.rows):  # paper heatmaps grow upward
            cells = " ".join(f"{self.values[(r, c)]:>6.2f}" for c in self.cols)
            lines.append(f"{r:>8} {cells}")
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def region_mean(self, row_pred, col_pred) -> float:
        """Mean over cells whose row/col indices satisfy the predicates —
        used by shape assertions ("lower-left favours COL")."""
        cells = [
            v
            for (r, c), v in self.values.items()
            if row_pred(r) and col_pred(c)
        ]
        return sum(cells) / len(cells) if cells else float("nan")
