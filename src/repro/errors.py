"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class GeometryError(ReproError):
    """An invalid data geometry was requested (bad offsets, widths, overlap)."""


class ConfigurationError(ReproError):
    """A hardware or engine configuration is inconsistent or unsupported."""


class SchemaError(ReproError):
    """A table schema is malformed or a column reference cannot be resolved."""


class SqlError(ReproError):
    """SQL text could not be lexed, parsed, or bound against the catalog.

    Lexer- and parser-raised instances carry ``line``/``column`` (1-based)
    locating the offending token in the statement text; binder errors and
    programmatic uses leave them ``None``.
    """

    def __init__(self, message: str, *, line=None, column=None):
        super().__init__(message)
        self.line = line
        self.column = column


class PlanError(ReproError):
    """A logical or physical plan is invalid or cannot be constructed."""


class ExecutionError(ReproError):
    """A query plan failed during evaluation."""


class TransactionError(ReproError):
    """An MVCC transaction violated snapshot-isolation rules."""


class WriteConflictError(TransactionError):
    """First-committer-wins: a concurrent committed write touched the same row."""


class TransactionStateError(TransactionError):
    """An operation was attempted on a transaction in the wrong state."""


class CompressionError(ReproError):
    """A compression codec failed to encode or decode a payload."""


class StorageError(ReproError):
    """The simulated flash device rejected a request (bad address, size)."""


class IndexError_(ReproError):
    """A B+-tree operation failed (duplicate key under unique constraint)."""


class FaultError(ReproError):
    """Base class for injected hardware faults (see :mod:`repro.faults`).

    Catching ``FaultError`` separates transient device failures — which a
    resilient caller retries or degrades around — from programming errors
    and semantic errors, which must propagate.
    """


class FabricFaultError(FaultError):
    """The relational fabric failed mid-operation: a geometry configure
    was rejected, an on-fabric buffer refill timed out, or a packed cache
    line failed its integrity check."""


class DeviceTimeoutError(FaultError):
    """A simulated device (AXI bus, DRAM gather, in-storage engine) did
    not answer within its deadline."""


class FlashReadError(FaultError, StorageError):
    """A NAND page read failed (uncorrectable ECC, die offline).

    Also a :class:`StorageError` so existing storage-layer handlers keep
    seeing flash failures without knowing about fault injection.
    """


class ServeFaultError(FaultError):
    """Base class for serving-layer rejections (see :mod:`repro.serve`).

    These are *load-management* outcomes, not bugs: a resilient client
    catches :class:`~repro.errors.FaultError`, applies its
    :class:`~repro.faults.RetryPolicy`, and resubmits — exactly the
    discipline the device-fault errors established.
    """


class TenantThrottledError(ServeFaultError):
    """A tenant exceeded its admission quota (token bucket or queue cap).

    Carries ``retry_after_cycles`` — the simulated-cycle delay after
    which the tenant's token bucket will cover the request again. Clients
    compose it with a :class:`~repro.faults.RetryPolicy` via
    :func:`repro.serve.throttle_backoff` (the hint is a floor under the
    policy's seeded exponential backoff).
    """

    def __init__(self, message: str, retry_after_cycles: float = 0.0):
        super().__init__(message)
        self.retry_after_cycles = float(retry_after_cycles)


class DeadlineExceededError(ServeFaultError):
    """A request's deadline passed before it could be dispatched.

    Raised (or recorded as a typed resolution) by the serving front door
    when the simulated clock — possibly skewed by the
    ``serve.clock_skew`` chaos site — moved past the request's deadline
    while it waited in the fair queue.
    """


class ShardFaultError(FaultError):
    """Base class for shard fault-domain failures (see :mod:`repro.dist`).

    Each shard executor is an independent fault domain; these errors name
    the three ways it can betray the coordinator: dying outright,
    answering too late, or silently dropping messages.
    """


class ShardCrashError(ShardFaultError):
    """A shard worker process died mid-request (``shard.crash``).

    The coordinator restarts the worker and recovers the shard from its
    write-ahead log before retrying the subquery.
    """


class ShardStallError(ShardFaultError):
    """A shard worker exceeded its RPC deadline (``shard.stall``).

    Indistinguishable, from the coordinator's side, from a dead worker
    until the reply arrives — which is why hedged retries exist.
    """


class ShardPartitionError(ShardFaultError):
    """A message to or from a shard worker was dropped (``shard.partition``).

    A partitioned replica silently misses replicated deltas; the
    coordinator detects the divergence through LSN fencing on the next
    query and restarts the worker from the durable log.
    """


class WorkerTimeoutError(FaultError):
    """A fanned-out worker exceeded its per-point timeout.

    Raised by :func:`repro.bench.parallel.fanout` (which otherwise joins
    unboundedly) and by the scatter-gather coordinator's deadline-bounded
    RPCs. Typed under :class:`FaultError` so resilient callers retry or
    degrade exactly as they do for device faults.
    """


class PartialResultError(FaultError):
    """A scatter-gather query exhausted its retry budget on some shards.

    Rather than failing the whole query, the coordinator degrades to a
    *typed partial result*: ``partial`` holds the merged answer over the
    shards that responded and ``missing_ranges`` lists the shard-key
    ranges (inclusive ``(low, high)`` tuples, ``None`` for an open end)
    whose fault domains never answered. Mirrors the PR 1 degraded-fallback
    discipline: availability over completeness, but never silently.
    """

    def __init__(self, message: str, missing_ranges=(), partial=None):
        super().__init__(message)
        self.missing_ranges = tuple(missing_ranges)
        self.partial = partial


class WalCorruptionError(StorageError):
    """A write-ahead-log record failed validation on read-back.

    Raised by :func:`repro.db.wal.recover` when a record in the *middle*
    of the log fails its CRC32 checksum or carries an impossible header —
    evidence of media corruption rather than a crash. A damaged *tail*
    (torn final append) is expected after a crash and is discarded
    silently; corruption with valid records after it must never be: redo
    past it would silently drop committed transactions.
    """
