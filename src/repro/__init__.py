"""Relational Fabric reproduction (ICDE 2023): transparent near-data
row-to-column transformation, with the full simulated stack around it.

Layers (bottom up):

* :mod:`repro.hw` — caches, prefetcher, DRAM, AXI bus, CPU cost model,
  the Relational Memory engine model, platform presets;
* :mod:`repro.core` — the paper's contribution: data geometries, the
  packer, ephemeral variables, the fabric API, MVCC visibility filtering,
  pushed-down selection/aggregation;
* :mod:`repro.db` — relational substrate: schemas, row tables, SQL,
  planning/optimization, the three engines (ROW/COL/RM), MVCC
  transactions, B+-tree indexing, compression, the design advisor;
* :mod:`repro.storage` — flash device, SSD read path, Relational Storage;
* :mod:`repro.workloads` — synthetic wide tables, TPC-H lineitem, HTAP;
* :mod:`repro.serve` — the multi-tenant front door: admission control,
  deadlines, weighted-fair queueing, overload degradation;
* :mod:`repro.dist` — fault-domain sharded execution: scatter-gather
  coordination, per-shard WAL recovery, hedged retries, typed partial
  results;
* :mod:`repro.bench` — the harness regenerating every paper figure.

Quickstart::

    from repro import RelationalMemory
    cg = RelationalMemory().configure(table.frame, table.schema.geometry(["a", "b"]))
    totals = cg.column("a") + cg.column("b")
"""

from repro.core import (
    CostLedger,
    DataGeometry,
    EphemeralColumnGroup,
    FabricFilter,
    FabricPredicate,
    FieldSlice,
    RelationalFabric,
    RelationalMemory,
    Visibility,
    configure,
)
from repro.db import Catalog, Column, Table, TableSchema
from repro.db.engines import (
    ColumnStoreEngine,
    ExecutionResult,
    RelationalMemoryEngine,
    RowStoreEngine,
    all_engines,
)
from repro.db.mvcc import Transaction, TransactionManager, run_transaction
from repro.db.wal import (
    Checkpoint,
    Checkpointer,
    RecoveryReport,
    RecoveryResult,
    WalRecord,
    WalRecordType,
    WriteAheadLog,
    recover,
)
from repro.dist import (
    AggSpec,
    AggTerm,
    DistConfig,
    DistPlan,
    DistPredicate,
    DistResult,
    ShardCluster,
    ShardReplica,
    q1_plan,
    q6_plan,
)
from repro.faults import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.hw import PlatformConfig, ZYNQ_ULTRASCALE, default_platform
from repro.obs import MetricsRegistry, Span, Trace, Tracer
from repro.serve import (
    ExecOutcome,
    ServeConfig,
    ServeOracle,
    ServeReport,
    ServeScheduler,
    TenantConfig,
    WeightedFairQueue,
    throttle_backoff,
)

__version__ = "1.0.0"

__all__ = [
    "AggSpec",
    "AggTerm",
    "BreakerState",
    "Catalog",
    "Checkpoint",
    "Checkpointer",
    "CircuitBreaker",
    "Column",
    "ColumnStoreEngine",
    "CostLedger",
    "DataGeometry",
    "DistConfig",
    "DistPlan",
    "DistPredicate",
    "DistResult",
    "EphemeralColumnGroup",
    "ExecOutcome",
    "ExecutionResult",
    "FabricFilter",
    "FabricPredicate",
    "FaultInjector",
    "FaultPlan",
    "FieldSlice",
    "MetricsRegistry",
    "PlatformConfig",
    "RecoveryReport",
    "RecoveryResult",
    "RelationalFabric",
    "RelationalMemory",
    "RelationalMemoryEngine",
    "RetryPolicy",
    "RowStoreEngine",
    "ServeConfig",
    "ServeOracle",
    "ServeReport",
    "ServeScheduler",
    "ShardCluster",
    "ShardReplica",
    "Span",
    "Table",
    "TableSchema",
    "TenantConfig",
    "Trace",
    "Tracer",
    "Transaction",
    "TransactionManager",
    "Visibility",
    "WalRecord",
    "WalRecordType",
    "WeightedFairQueue",
    "WriteAheadLog",
    "ZYNQ_ULTRASCALE",
    "all_engines",
    "configure",
    "default_platform",
    "q1_plan",
    "q6_plan",
    "recover",
    "run_transaction",
    "throttle_backoff",
    "__version__",
]
