"""PMU-style collectors: read existing layer counters at sample time.

Every simulated layer already maintains counters as part of its model —
cache hit/miss/eviction state, DRAM bank activity, WAL device bytes,
MVCC statistics. These functions wrap that state into
:data:`~repro.obs.metrics.MetricsCollector` callables and register them
on a :class:`~repro.obs.metrics.MetricsRegistry`, so the hot paths are
never touched: like a hardware PMU, the cost of a metric is paid only
when a sample is read.

Each ``register_*`` helper takes optional ``**labels`` (e.g.
``engine="row"``) so several instances of the same layer can share one
registry without colliding.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.obs.metrics import MetricsRegistry, fmt_name


def _rate(hits: float, total: float) -> float:
    return hits / total if total else 0.0


# ----------------------------------------------------------------------
# hw: caches, prefetcher, DRAM banks.
# ----------------------------------------------------------------------
def register_hierarchy(
    registry: MetricsRegistry, hierarchy, **labels: Any
) -> None:
    """Cache occupancy/hit-rate/evictions per level, prefetcher stream
    utilization and accuracy, DRAM per-bank row-hit rate and load."""

    def collect() -> Dict[str, float]:
        out: Dict[str, float] = {}
        for level, cache in (("l1", hierarchy.l1), ("l2", hierarchy.l2)):
            s = cache.stats
            capacity = cache.config.num_lines
            out[fmt_name(f"hw_{level}_hits", **labels)] = s.hits
            out[fmt_name(f"hw_{level}_misses", **labels)] = s.misses
            out[fmt_name(f"hw_{level}_evictions", **labels)] = s.evictions
            out[fmt_name(f"hw_{level}_polluted_evictions", **labels)] = (
                s.polluted_evictions
            )
            out[fmt_name(f"hw_{level}_hit_rate", **labels)] = _rate(
                s.hits, s.hits + s.misses
            )
            out[fmt_name(f"hw_{level}_occupancy_lines", **labels)] = (
                cache.resident_lines
            )
            out[fmt_name(f"hw_{level}_occupancy_frac", **labels)] = _rate(
                cache.resident_lines, capacity
            )
        pf = hierarchy.prefetcher
        out[fmt_name("hw_prefetch_covered", **labels)] = pf.covered
        out[fmt_name("hw_prefetch_uncovered", **labels)] = pf.uncovered
        out[fmt_name("hw_prefetch_accuracy", **labels)] = _rate(
            pf.covered, pf.covered + pf.uncovered
        )
        out[fmt_name("hw_prefetch_active_streams", **labels)] = pf.active_streams
        out[fmt_name("hw_prefetch_stream_utilization", **labels)] = _rate(
            pf.active_streams, pf.config.max_streams
        )
        dram = hierarchy.dram
        out[fmt_name("hw_dram_row_hits", **labels)] = dram.stats.row_hits
        out[fmt_name("hw_dram_row_misses", **labels)] = dram.stats.row_misses
        out[fmt_name("hw_dram_row_hit_rate", **labels)] = _rate(
            dram.stats.row_hits, dram.stats.accesses
        )
        out[fmt_name("hw_dram_lines", **labels)] = dram.stats.lines_transferred
        mean_load = (
            sum(dram.bank_lines) / len(dram.bank_lines) if dram.bank_lines else 0.0
        )
        for bank in range(dram.config.banks):
            out[fmt_name("hw_dram_bank_row_hits", bank=bank, **labels)] = (
                dram.bank_row_hits[bank]
            )
            out[
                fmt_name("hw_dram_bank_row_hit_rate", bank=bank, **labels)
            ] = _rate(
                dram.bank_row_hits[bank],
                dram.bank_row_hits[bank] + dram.bank_row_misses[bank],
            )
            # "Queue depth" proxy for a closed-form model: demand lines
            # queued on this bank relative to a perfectly balanced load.
            out[fmt_name("hw_dram_bank_queue_depth", bank=bank, **labels)] = (
                _rate(dram.bank_lines[bank], mean_load) if mean_load else 0.0
            )
        return out

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# core: the RM engine model and ephemeral groups.
# ----------------------------------------------------------------------
def register_rm_engine(registry: MetricsRegistry, model, **labels: Any) -> None:
    """RM buffer residency, transform throughput, refill pressure."""

    def collect() -> Dict[str, float]:
        produce = model.total_produce_cycles
        return {
            fmt_name("rm_transforms", **labels): model.transforms,
            fmt_name("rm_out_bytes", **labels): model.total_out_bytes,
            fmt_name("rm_produce_cycles", **labels): produce,
            fmt_name("rm_refill_stall_cycles", **labels): (
                model.total_stall_cycles
            ),
            fmt_name("rm_refills", **labels): model.total_refills,
            fmt_name("rm_dram_bytes_touched", **labels): model.total_dram_bytes,
            # Bytes the fabric emits per produce cycle: the transform
            # throughput the paper's pipelining argument depends on.
            fmt_name("rm_transform_bytes_per_cycle", **labels): _rate(
                model.total_out_bytes, produce
            ),
            # How full the on-fabric buffer ran on the last transform
            # (1.0 == at least one refill was needed).
            fmt_name("rm_buffer_residency", **labels): min(
                1.0, _rate(model.last_out_bytes, model.rm.buffer_bytes)
            ),
        }

    registry.register_collector(collect)


def register_ephemeral(registry: MetricsRegistry, group, **labels: Any) -> None:
    """Refresh count of one ephemeral column group."""

    def collect() -> Dict[str, float]:
        return {fmt_name("fabric_refreshes", **labels): group.refreshes}

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# db: plan/code-fragment cache, MVCC and WAL.
# ----------------------------------------------------------------------
def register_codecache(registry: MetricsRegistry, cache, **labels: Any) -> None:
    """Code-fragment cache effectiveness: hit/miss/eviction counters,
    resident fragments, amortized compile cycles, and the hit rate the
    paper's code-generation argument (§III-B) turns on."""

    def collect() -> Dict[str, float]:
        s = cache.stats
        return {
            fmt_name("codecache_hits_total", **labels): s.hits,
            fmt_name("codecache_misses_total", **labels): s.misses,
            fmt_name("codecache_evictions_total", **labels): s.evictions,
            fmt_name("codecache_compile_cycles_total", **labels): (
                s.compile_cycles
            ),
            fmt_name("codecache_resident", **labels): cache.resident,
            fmt_name("codecache_capacity", **labels): cache.capacity,
            fmt_name("codecache_hit_rate", **labels): s.hit_rate,
        }

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# db: MVCC and WAL.
# ----------------------------------------------------------------------
def register_mvcc(registry: MetricsRegistry, manager, **labels: Any) -> None:
    """Active transactions, abort/retry rates, version churn."""

    def collect() -> Dict[str, float]:
        s = manager.stats
        return {
            fmt_name("mvcc_active_txns", **labels): manager.active_count,
            fmt_name("mvcc_begun", **labels): s.begun,
            fmt_name("mvcc_committed", **labels): s.committed,
            fmt_name("mvcc_aborted", **labels): s.aborted,
            fmt_name("mvcc_conflicts", **labels): s.conflicts,
            fmt_name("mvcc_retries", **labels): s.retries,
            fmt_name("mvcc_abort_rate", **labels): _rate(s.aborted, s.begun),
            fmt_name("mvcc_backoff_cycles", **labels): s.backoff_cycles,
            fmt_name("mvcc_versions_created", **labels): s.versions_created,
            fmt_name("mvcc_versions_vacuumed", **labels): s.versions_vacuumed,
            fmt_name("mvcc_clock", **labels): manager.now,
        }

    registry.register_collector(collect)


def register_version_chains(
    registry: MetricsRegistry, table, key_column: str, **labels: Any
) -> None:
    """Version-chain length distribution of ``table``, grouped by
    ``key_column`` (the logical row identity). Computed brute-force at
    sample time — O(n log n) per sample, zero cost on the write path."""

    def collect() -> Dict[str, float]:
        values = table.column_values(key_column)
        if len(values) == 0:
            return {
                fmt_name("mvcc_chain_len_p50", **labels): 0.0,
                fmt_name("mvcc_chain_len_p95", **labels): 0.0,
                fmt_name("mvcc_chain_len_p99", **labels): 0.0,
                fmt_name("mvcc_chain_len_max", **labels): 0.0,
                fmt_name("mvcc_chain_keys", **labels): 0.0,
            }
        _, counts = np.unique(values, return_counts=True)
        return {
            fmt_name("mvcc_chain_len_p50", **labels): float(
                np.percentile(counts, 50)
            ),
            fmt_name("mvcc_chain_len_p95", **labels): float(
                np.percentile(counts, 95)
            ),
            fmt_name("mvcc_chain_len_p99", **labels): float(
                np.percentile(counts, 99)
            ),
            fmt_name("mvcc_chain_len_max", **labels): float(counts.max()),
            fmt_name("mvcc_chain_keys", **labels): float(len(counts)),
        }

    registry.register_collector(collect)


def register_wal(registry: MetricsRegistry, wal, **labels: Any) -> None:
    """WAL durable bytes, log length, flush/corruption counters."""

    def collect() -> Dict[str, float]:
        s = wal.stats
        dev = wal.device
        return {
            fmt_name("wal_records", **labels): s.records,
            fmt_name("wal_bytes_appended", **labels): s.bytes_appended,
            fmt_name("wal_commits_logged", **labels): s.commits_logged,
            fmt_name("wal_aborts_logged", **labels): s.aborts_logged,
            fmt_name("wal_writes_logged", **labels): s.writes_logged,
            fmt_name("wal_flushes", **labels): s.flushes,
            fmt_name("wal_durable_bytes", **labels): dev.durable_bytes,
            fmt_name("wal_pending_bytes", **labels): dev.pending_bytes,
            fmt_name("wal_device_appends", **labels): dev.appends,
            fmt_name("wal_torn_appends", **labels): dev.torn_appends,
            fmt_name("wal_partial_flushes", **labels): dev.partial_flushes,
            fmt_name("wal_bitflips", **labels): dev.bitflips,
            fmt_name("wal_truncations", **labels): dev.erases,
        }

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# storage: flash devices and the tiered fabric.
# ----------------------------------------------------------------------
def register_flash(registry: MetricsRegistry, flash, **labels: Any) -> None:
    """NAND program/read counts and device busy time."""

    def collect() -> Dict[str, float]:
        return {
            fmt_name("flash_pages_read", **labels): flash.pages_read,
            fmt_name("flash_pages_programmed", **labels): flash.pages_written,
            fmt_name("flash_busy_us", **labels): flash.busy_us,
        }

    registry.register_collector(collect)


def register_tiered(registry: MetricsRegistry, fabric, **labels: Any) -> None:
    """Cold→warm promotions, warm→cold demotions, degraded runs."""

    def collect() -> Dict[str, float]:
        return {
            fmt_name("tiered_promotions", **labels): fabric.promotions,
            fmt_name("tiered_promoted_rows", **labels): fabric.promoted_rows,
            fmt_name("tiered_demotions", **labels): fabric.demotions,
            fmt_name("tiered_demoted_rows", **labels): fabric.demoted_rows,
            fmt_name("tiered_degraded_runs", **labels): fabric.degraded_runs,
        }

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# faults: injector and breakers.
# ----------------------------------------------------------------------
def register_fault_injector(
    registry: MetricsRegistry, injector, **labels: Any
) -> None:
    """Per-site check/fire counts plus the armed flag."""

    def collect() -> Dict[str, float]:
        out: Dict[str, float] = {
            fmt_name("faults_total_fired", **labels): injector.total_fired,
            fmt_name("faults_armed", **labels): float(injector.armed),
        }
        for site, n in injector.checks.items():
            out[fmt_name("faults_checks", site=site, **labels)] = n
        for site, n in injector.fired.items():
            out[fmt_name("faults_fired", site=site, **labels)] = n
        return out

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# serve: the multi-tenant front door.
# ----------------------------------------------------------------------
def register_serve(registry: MetricsRegistry, scheduler, **labels: Any) -> None:
    """Queue depths, admission/shed/throttle/deadline counters, in-flight
    counts, token balances, and the overload breaker state — one series
    per (tenant, lane) so interference is visible in the sampled output.

    Latency and time-in-queue histograms are registered by the scheduler
    itself (they are hot-path instruments, not PMU reads); this collector
    covers everything readable off the scheduler's existing state.
    """
    from repro.serve.request import LANES

    def collect() -> Dict[str, float]:
        out: Dict[str, float] = {}
        for tenant in scheduler.config.tenant_ids:
            for lane in LANES:
                depth = scheduler.queue.depth((lane, tenant))
                s = scheduler.stats.get((tenant, lane))
                out[fmt_name("serve_queue_depth", tenant=tenant, lane=lane,
                             **labels)] = float(depth)
                for counter in ("submitted", "admitted", "completed",
                                "degraded", "throttled", "shed", "expired"):
                    out[fmt_name(f"serve_{counter}", tenant=tenant,
                                 lane=lane, **labels)] = float(
                        getattr(s, counter) if s is not None else 0
                    )
            out[fmt_name("serve_running", tenant=tenant, **labels)] = float(
                scheduler.running_for(tenant)
            )
            out[fmt_name("serve_tokens", tenant=tenant, **labels)] = (
                scheduler.admission.bucket(tenant).tokens
            )
        out[fmt_name("serve_running_total", **labels)] = float(
            scheduler.running_count
        )
        out[fmt_name("serve_queued_cost_cycles", **labels)] = (
            scheduler.queued_cost
        )
        out[fmt_name("serve_degraded_mode", **labels)] = float(
            scheduler.degraded_mode
        )
        out[fmt_name("serve_degraded_mode_entries", **labels)] = float(
            scheduler.degraded_mode_entries
        )
        return out

    registry.register_collector(collect)


def register_breaker(registry: MetricsRegistry, breaker, **labels: Any) -> None:
    """Breaker state (0=closed, 1=half-open, 2=open) and trip count."""
    from repro.faults import BreakerState

    order = {
        BreakerState.CLOSED: 0.0,
        BreakerState.HALF_OPEN: 1.0,
        BreakerState.OPEN: 2.0,
    }

    def collect() -> Dict[str, float]:
        return {
            fmt_name("breaker_state", **labels): order[breaker.state],
            fmt_name("breaker_times_opened", **labels): breaker.times_opened,
        }

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# sql: the unified statement pipeline.
# ----------------------------------------------------------------------
def register_sql(registry: MetricsRegistry, session, **labels: Any) -> None:
    """Statement-mix and outcome telemetry of one SQL
    :class:`~repro.db.sql.pipeline.Session`.

    Monotone ``sql_*_total`` counters for statements by kind, errors and
    rows moved, plus the session's transaction view: commit/conflict
    totals read off the MVCC manager and an ``sql_txn_open`` gauge (0/1 —
    is an explicit transaction open right now).
    """

    def collect() -> Dict[str, float]:
        s = session.stats
        m = session.manager.stats
        return {
            fmt_name("sql_statements_total", **labels): float(s.statements),
            fmt_name("sql_selects_total", **labels): float(s.selects),
            fmt_name("sql_dml_total", **labels): float(
                s.inserts + s.updates + s.deletes
            ),
            fmt_name("sql_inserts_total", **labels): float(s.inserts),
            fmt_name("sql_updates_total", **labels): float(s.updates),
            fmt_name("sql_deletes_total", **labels): float(s.deletes),
            fmt_name("sql_ddl_total", **labels): float(s.ddl),
            fmt_name("sql_explains_total", **labels): float(s.explains),
            fmt_name("sql_errors_total", **labels): float(s.errors),
            fmt_name("sql_rows_returned_total", **labels): float(
                s.rows_returned
            ),
            fmt_name("sql_rows_written_total", **labels): float(
                s.rows_written
            ),
            fmt_name("sql_subqueries_folded_total", **labels): float(
                s.subqueries_folded
            ),
            fmt_name("sql_txn_commits_total", **labels): float(m.committed),
            fmt_name("sql_txn_conflicts_total", **labels): float(m.conflicts),
            fmt_name("sql_txn_open", **labels): float(session.in_transaction),
        }

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# obs: SLO monitor and the flight recorder.
# ----------------------------------------------------------------------
def register_slo(registry: MetricsRegistry, monitor, **labels: Any) -> None:
    """Burn rates and breach state of a :class:`~repro.obs.slo.SloMonitor`.

    One labeled series group per ``(tenant, objective)``: the fast/slow
    window burn rates, a 0/1 in-breach gauge, the monotone breach
    counter, and the event/bad totals the burn rates are computed from.
    """

    def collect() -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (tenant, objective), s in monitor.states.items():
            kw = dict(tenant=tenant, objective=objective, **labels)
            out[fmt_name("slo_burn_rate_fast", **kw)] = s.burn_fast
            out[fmt_name("slo_burn_rate_slow", **kw)] = s.burn_slow
            out[fmt_name("slo_in_breach", **kw)] = float(s.in_breach)
            out[fmt_name("slo_breaches_total", **kw)] = float(s.breaches_total)
            out[fmt_name("slo_events_total", **kw)] = float(s.events_total)
            out[fmt_name("slo_bad_total", **kw)] = float(s.bad_total)
        return out

    registry.register_collector(collect)


def register_journal(registry: MetricsRegistry, journal, **labels: Any) -> None:
    """Flight-recorder totals: monotone event counters (overall and per
    kind), the drop counter, and the current ring occupancy gauge."""

    def collect() -> Dict[str, float]:
        out: Dict[str, float] = {
            fmt_name("journal_events_total", **labels): float(
                journal.events_total
            ),
            fmt_name("journal_dropped_total", **labels): float(journal.dropped),
            fmt_name("journal_ring_occupancy", **labels): float(len(journal)),
        }
        for kind, n in journal.counts.items():
            out[fmt_name("journal_kind_total", kind=kind, **labels)] = float(n)
        return out

    registry.register_collector(collect)


# ----------------------------------------------------------------------
# dist: the scatter-gather shard cluster.
# ----------------------------------------------------------------------
def register_dist(registry: MetricsRegistry, cluster, **labels: Any) -> None:
    """Fault-handling telemetry of a :class:`~repro.dist.ShardCluster`.

    Monotone ``dist_*_total`` counters (queries, RPCs, timeouts, hedges,
    restarts, recoveries, stale fences, partial results, shipped rows,
    recovered/replicated bytes) plus point-in-time gauges: live worker
    count and the per-shard incarnation number — the restart history of
    each fault domain, one labeled series per shard.
    """

    def collect() -> Dict[str, float]:
        s = cluster.stats
        out: Dict[str, float] = {
            fmt_name("dist_queries_total", **labels): float(s.queries_total),
            fmt_name("dist_partial_results_total", **labels): float(
                s.partial_results_total
            ),
            fmt_name("dist_rpcs_total", **labels): float(s.rpcs_total),
            fmt_name("dist_timeouts_total", **labels): float(s.timeouts_total),
            fmt_name("dist_hedges_total", **labels): float(s.hedges_total),
            fmt_name("dist_hedge_wins_total", **labels): float(
                s.hedge_wins_total
            ),
            fmt_name("dist_restarts_total", **labels): float(s.restarts_total),
            fmt_name("dist_recoveries_total", **labels): float(
                s.recoveries_total
            ),
            fmt_name("dist_stale_fences_total", **labels): float(
                s.stale_fences_total
            ),
            fmt_name("dist_kills_total", **labels): float(s.kills_total),
            fmt_name("dist_rows_shipped_total", **labels): float(
                s.rows_shipped_total
            ),
            fmt_name("dist_recovered_bytes_total", **labels): float(
                s.recovered_bytes_total
            ),
            fmt_name("dist_replicated_bytes_total", **labels): float(
                s.replicated_bytes_total
            ),
            fmt_name("dist_workers_alive", **labels): float(
                cluster.workers_alive()
            ),
        }
        for i in range(len(cluster.sharded.shards)):
            out[fmt_name("dist_shard_incarnation", shard=str(i), **labels)] = (
                float(cluster.incarnation_of(i))
            )
        return out

    registry.register_collector(collect)
