"""PMU-style metrics over *simulated* time.

:mod:`repro.obs.span` answers "where did this query's cycles go"; this
module answers "how does the system evolve over a long run" — cache
occupancy, WAL length, MVCC version pressure, prefetcher accuracy — the
steady-state behaviour the paper's single-layout claims hinge on (§IV:
cache pollution and data movement over time, not single-query cost).

Three pieces:

* **Instruments** — :class:`Counter` (monotonic), :class:`Gauge`, and
  :class:`Histogram` (log-bucketed, with p50/p95/p99), created through a
  :class:`MetricsRegistry`. Hot layers increment instruments only at
  coarse boundaries (per query, per commit, per flush); fine-grained
  hardware activity is *not* re-counted here.
* **Collectors** — callables returning flat ``name -> value`` snapshots
  of counters the layers already maintain (cache stats, DRAM banks, WAL
  device bytes). Like a PMU read, a collector costs nothing until the
  moment a sample is taken. See :mod:`repro.obs.collectors`.
* **The simulated clock + Sampler** — every :class:`~repro.core.ledger.
  CostLedger` carrying a registry forwards each charge to
  :meth:`MetricsRegistry.advance`; the registry accumulates *simulated
  cycles* and an attached :class:`Sampler` snapshots every instrument
  and collector each ``interval_cycles`` of that clock into an in-memory
  :class:`MetricsTimeSeries`. No wall clock anywhere: the same seed
  produces the bit-identical series every run.

The disabled path mirrors ``NULL_SPAN``/``FaultInjector.armed``: call
sites store ``active_metrics(registry)`` (None unless enabled), so a run
without metrics pays one ``is None`` predicate per charge (regression
tested < 5% on a trace-mode Q6, like the tracer).

Exports: :meth:`MetricsRegistry.to_prometheus` (text exposition format)
and :meth:`MetricsTimeSeries.to_json` (``repro.metrics/v1``, validated
by ``scripts/check_trace_schema.py``).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError

#: A metrics collector: returns a flat ``name -> value`` snapshot.
MetricsCollector = Callable[[], Dict[str, float]]


def fmt_name(name: str, **labels: Any) -> str:
    """Canonical instrument name with Prometheus-style labels.

    >>> fmt_name("dram_bank_row_hits", bank=3)
    'dram_bank_row_hits{bank="3"}'

    Labels are sorted so the same logical series always maps to the same
    string key regardless of call-site keyword order.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_labels(name: str) -> Tuple[str, str]:
    """``'x{a="1"}'`` → ``('x', '{a="1"}')``; bare names get ``''``."""
    brace = name.find("{")
    if brace < 0:
        return name, ""
    return name[:brace], name[brace:]


def _sanitize(base: str) -> str:
    """Prometheus metric names allow ``[a-zA-Z0-9_:]`` only."""
    return "".join(c if c.isalnum() or c in "_:" else "_" for c in base)


class Counter:
    """A monotonically non-decreasing count (events, rows, bytes)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ExecutionError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can go up and down (occupancy, queue depth)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A log-bucketed distribution with exact count/sum/min/max.

    Bucket upper bounds grow geometrically from ``first_bound`` by
    ``base`` (default powers of two), extended lazily to cover the
    largest observation. Bounds are built by repeated multiplication —
    no floating-point ``log`` at bucket edges — so the same observations
    always land in the same buckets, in any order, on any platform.

    Percentiles interpolate linearly inside the containing bucket, so
    their worst-case relative error is one bucket width (a factor of
    ``base``); the brute-force-oracle unit tests pin exactly that bound.
    """

    __slots__ = ("name", "help", "base", "bounds", "counts", "count", "sum",
                 "min", "max")

    def __init__(
        self,
        name: str,
        help: str = "",
        base: float = 2.0,
        first_bound: float = 1.0,
    ):
        if base <= 1.0:
            raise ExecutionError(f"histogram base must be > 1, got {base}")
        self.name = name
        self.help = help
        self.base = base
        #: Upper bounds of the finite buckets; bucket ``i`` covers
        #: ``(bounds[i-1], bounds[i]]`` (the first covers ``[0, bounds[0]]``).
        self.bounds: List[float] = [float(first_bound)]
        self.counts: List[int] = [0]
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        if value < 0:
            raise ExecutionError(
                f"histogram {self.name!r} observed negative value {value}"
            )
        while value > self.bounds[-1]:
            self.bounds.append(self.bounds[-1] * self.base)
            self.counts.append(0)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), interpolated within its
        bucket and clamped to the exact observed [min, max]."""
        if not 0 <= q <= 100:
            raise ExecutionError(f"percentile {q} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= rank:
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i]
                frac = (rank - cum) / c
                est = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return max(self.min, min(self.max, est))
            cum += c
        return self.max  # pragma: no cover - unreachable (rank <= count)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsTimeSeries:
    """Columnar store of sampled snapshots on a regular simulated grid.

    ``ticks[i]`` is the scheduled sample time (cycles); ``series[name][i]``
    the instrument/collector value at that tick, or ``None`` for ticks
    before the series first appeared (a table created mid-run, say).
    """

    def __init__(self, interval_cycles: float):
        self.interval_cycles = float(interval_cycles)
        self.ticks: List[float] = []
        self.series: Dict[str, List[Optional[float]]] = {}

    def append(self, tick: float, snapshot: Dict[str, float]) -> None:
        n_prior = len(self.ticks)
        self.ticks.append(float(tick))
        for name, value in snapshot.items():
            column = self.series.get(name)
            if column is None:
                column = [None] * n_prior
                self.series[name] = column
            column.append(float(value))
        # Series absent from this snapshot (an unregistered collector)
        # stay rectangular with an explicit gap.
        for name, column in self.series.items():
            if len(column) < len(self.ticks):
                column.append(None)

    def __len__(self) -> int:
        return len(self.ticks)

    def to_json(self, indent: Optional[int] = None) -> str:
        doc = {
            "schema": "repro.metrics/v1",
            "interval_cycles": self.interval_cycles,
            "ticks": self.ticks,
            "series": self.series,
        }
        return json.dumps(doc, indent=indent, allow_nan=False)


class Sampler:
    """Snapshots a registry every ``interval_cycles`` of simulated time.

    Ticks land on the scheduled grid (``interval``, ``2*interval``, ...)
    regardless of where inside an interval the triggering charge fell, so
    two runs that accumulate the same total cycles through different
    charge sequences still sample at identical timestamps. A charge that
    jumps several intervals emits one sample per crossed grid point (the
    values repeat — the system genuinely didn't change in between).
    """

    def __init__(self, registry: "MetricsRegistry", interval_cycles: float):
        if interval_cycles <= 0:
            raise ExecutionError(
                f"sampling interval must be > 0 cycles, got {interval_cycles}"
            )
        self.registry = registry
        self.interval_cycles = float(interval_cycles)
        self.series = MetricsTimeSeries(interval_cycles)
        self._next_due = self.interval_cycles

    def maybe_sample(self, now_cycles: float) -> None:
        while now_cycles >= self._next_due:
            self.series.append(self._next_due, self.registry.collect())
            self._next_due += self.interval_cycles

    def sample_now(self) -> None:
        """Force one sample at the current clock (end-of-run flush)."""
        self.series.append(self.registry.cycles, self.registry.collect())
        self._next_due = (
            self.registry.cycles - (self.registry.cycles % self.interval_cycles)
            + self.interval_cycles
        )


class MetricsRegistry:
    """Owns instruments, collectors, and the simulated clock.

    One registry is shared by every layer that should land in the same
    time series (the engines, the transaction manager, the WAL). Layers
    self-register their collectors when handed a registry; ledgers
    carrying one forward every charge to :meth:`advance`, which drives
    the attached :class:`Sampler`.

    ``enabled=False`` makes the registry invisible: ``active_metrics``
    returns None and nothing is ever registered or advanced.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.cycles = 0.0
        self._instruments: Dict[str, Any] = {}
        self._collectors: List[MetricsCollector] = []
        self.sampler: Optional[Sampler] = None

    # ------------------------------------------------------------------
    # Instrument creation (get-or-create; type mismatch is a bug).
    # ------------------------------------------------------------------
    def _instrument(self, cls, name: str, help: str, **kw):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, help=help, **kw)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise ExecutionError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._instrument(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._instrument(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        base: float = 2.0,
        first_bound: float = 1.0,
    ) -> Histogram:
        return self._instrument(
            Histogram, name, help, base=base, first_bound=first_bound
        )

    def register_collector(self, fn: MetricsCollector) -> None:
        """Add a PMU-style reader, sampled (only) at snapshot time."""
        self._collectors.append(fn)

    # ------------------------------------------------------------------
    # The simulated clock.
    # ------------------------------------------------------------------
    def advance(self, cycles: float) -> None:
        """Move simulated time forward (called per ledger charge)."""
        self.cycles += cycles
        if self.sampler is not None:
            self.sampler.maybe_sample(self.cycles)

    def attach_sampler(self, interval_cycles: float) -> Sampler:
        """Start time-series sampling every ``interval_cycles``."""
        self.sampler = Sampler(self, interval_cycles)
        return self.sampler

    # ------------------------------------------------------------------
    # Snapshots and export.
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, float]:
        """One flat snapshot of everything: instruments + collectors.

        Histograms expand to ``_count``/``_sum``/``_p50``/``_p95``/
        ``_p99`` (labels, if any, stay attached to the base name).
        """
        out: Dict[str, float] = {"sim_cycles": self.cycles}
        for name, inst in self._instruments.items():
            if isinstance(inst, Histogram):
                base, labels = split_labels(name)
                out[f"{base}_count{labels}"] = float(inst.count)
                out[f"{base}_sum{labels}"] = inst.sum
                out[f"{base}_p50{labels}"] = inst.p50
                out[f"{base}_p95{labels}"] = inst.p95
                out[f"{base}_p99{labels}"] = inst.p99
            else:
                out[name] = inst.value
        for fn in self._collectors:
            out.update(fn())
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the current state.

        Counters get the ``_total`` suffix, histograms the full
        cumulative ``_bucket{le=...}`` form; collector outputs are
        exported as gauges (they snapshot externally-owned state).
        """
        lines: List[str] = []
        declared: set = set()

        def emit(name: str, kind: str, help: str, samples):
            base, labels = split_labels(name)
            base = _sanitize(base)
            if base not in declared:
                declared.add(base)
                if help:
                    lines.append(f"# HELP {base} {help}")
                lines.append(f"# TYPE {base} {kind}")
            for suffix, extra, value in samples:
                label_str = labels
                if extra:
                    inner = extra if not labels else labels[1:-1] + "," + extra
                    label_str = "{" + inner + "}"
                lines.append(f"{base}{suffix}{label_str} {value:g}")

        for name, inst in self._instruments.items():
            if isinstance(inst, Counter):
                base, labels = split_labels(name)
                total = base if base.endswith("_total") else base + "_total"
                emit(total + labels, "counter", inst.help,
                     [("", "", inst.value)])
            elif isinstance(inst, Gauge):
                emit(name, "gauge", inst.help, [("", "", inst.value)])
            else:
                samples = []
                cum = 0
                for bound, c in zip(inst.bounds, inst.counts):
                    cum += c
                    samples.append(("_bucket", f'le="{bound:g}"', cum))
                samples.append(("_bucket", 'le="+Inf"', inst.count))
                samples.append(("_sum", "", inst.sum))
                samples.append(("_count", "", inst.count))
                emit(name, "histogram", inst.help, samples)

        gauges: Dict[str, float] = {"sim_cycles": self.cycles}
        for fn in self._collectors:
            gauges.update(fn())
        for name, value in gauges.items():
            emit(name, "gauge", "", [("", "", value)])
        return "\n".join(lines) + "\n"


def active_metrics(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """``registry`` when it records, else None — what call sites store.

    The metrics twin of :func:`repro.obs.active`: a disabled registry
    costs exactly one ``is None`` check per ledger charge.
    """
    if registry is not None and registry.enabled:
        return registry
    return None
