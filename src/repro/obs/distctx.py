"""Cross-process trace propagation for the shard RPC pipe.

The coordinator's tracer cannot reach into a forked worker, so the span
tree a fragment produces over there would be invisible here — the
classic distributed-tracing gap. This module closes it with three
pieces, W3C-traceparent in spirit but pickle-friendly in form:

* :class:`TraceContext` — the request-scoped identity (trace id, parent
  span name, shard, incarnation) shipped *with* the ``exec`` message.
  Workers that receive one build a local :class:`~repro.obs.span.Tracer`
  and record their fragment under it.
* :func:`span_to_wire` / :func:`wire_to_span` — a JSON/pickle-safe
  nested-dict encoding of a completed span tree. Workers attach the wire
  form to their :class:`~repro.dist.plan.ShardPartial` reply.
* :func:`graft` — the coordinator-side splice: rebuild the worker's tree
  under the awaiting ``dist.shard_exec`` span.

**Bit-identity contract.** Grafted spans carry the worker's bucket
totals as *counters* and its subtree cycles as an explicit *duration* —
never as replayable ledger events. The coordinator already charges every
shard's data-proportional ``dist_*`` buckets through
:func:`~repro.dist.plan.merge_partials`; copying worker events into the
grafted tree would double-count them in :meth:`Trace.to_ledger` replay.
With events left empty, ``to_ledger()`` of a distributed trace is
structurally identical across 1/2/4/8 shards, and a hedged loser's
grafted tree *cannot* double-charge no matter how late it lands
(property-tested in ``tests/test_distctx.py``).

Timeline rendering still works: ``duration_cycles`` honours the explicit
duration, so Chrome/Perfetto export shows each worker's spans at full
width on its own process track (``remote_pid``/``remote_tid`` attrs, one
pid per shard, one tid per incarnation).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Dict, List, Optional

from repro.obs.span import Span, Tracer

__all__ = [
    "TraceContext",
    "new_trace_id",
    "span_to_wire",
    "wire_to_span",
    "graft",
    "graft_partial",
]

#: Process-local monotone source for trace ids (deterministic — the
#: simulator has no wall clock and wants reproducible ids).
_TRACE_IDS = count(1)


def new_trace_id(prefix: str = "t") -> str:
    """A process-locally unique, deterministic trace id."""
    return f"{prefix}{next(_TRACE_IDS):08x}"


@dataclass(frozen=True)
class TraceContext:
    """The request identity carried over the RPC pipe (picklable).

    ``parent`` names the coordinator span awaiting this shard (the graft
    point); ``shard``/``incarnation`` identify the fault domain so a
    restarted worker's replay spans are tagged with the incarnation that
    actually produced them.
    """

    trace_id: str
    parent: str = "dist.shard_exec"
    shard: int = 0
    incarnation: int = 0

    def child(self, shard: int, incarnation: int) -> "TraceContext":
        """The context one specific worker attempt executes under."""
        return TraceContext(
            trace_id=self.trace_id,
            parent=self.parent,
            shard=shard,
            incarnation=incarnation,
        )


# ----------------------------------------------------------------------
# Wire encoding: Span tree <-> nested plain dicts.
# ----------------------------------------------------------------------
def span_to_wire(span: Span) -> Dict[str, Any]:
    """Encode a completed span subtree as plain picklable dicts.

    Events collapse to per-bucket totals (``buckets``) plus the span's
    own timeline width — individual ``(seq, bucket, cycles)`` tuples are
    worker-tracer-local and must not leak into the coordinator's replay
    sequence (see the module docstring's bit-identity note).
    """
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "counters": dict(span.counters),
        "buckets": span.bucket_totals(subtree=False),
        "self_cycles": span.self_cycles,
        "duration_cycles": span.duration_cycles,
        "dram_bytes": span.self_dram_bytes,
        "children": [span_to_wire(c) for c in span.children],
    }


def wire_to_span(
    wire: Dict[str, Any],
    parent: Optional[Span] = None,
    **extra_attrs: Any,
) -> Span:
    """Rebuild a wire-encoded tree as event-free annotation spans.

    Bucket totals land in ``counters`` (prefixed ``bucket:``) so EXPLAIN
    ANALYZE and Chrome export can show where the remote cycles went,
    while :meth:`Trace.to_ledger` — which replays only ``events`` — sees
    nothing to double-charge.
    """
    span = Span(wire["name"], parent=parent, attrs=wire.get("attrs"))
    span.set_attrs(remote=True, **extra_attrs)
    for name, value in wire.get("counters", {}).items():
        span.add_counter(name, value)
    for bucket, cycles in wire.get("buckets", {}).items():
        span.add_counter(f"bucket:{bucket}", cycles)
    if wire.get("dram_bytes"):
        span.add_counter("dram_bytes", wire["dram_bytes"])
    for child_wire in wire.get("children", []):
        wire_to_span(child_wire, parent=span, **extra_attrs)
    span.set_duration(float(wire.get("duration_cycles", 0.0)))
    return span


def graft(
    parent: Span, wire: Dict[str, Any], **extra_attrs: Any
) -> Span:
    """Splice a worker's wire-encoded tree under a coordinator span.

    ``extra_attrs`` (``hedge_loser=True``, say) are stamped on every
    grafted span. Returns the grafted root.
    """
    return wire_to_span(wire, parent=parent, **extra_attrs)


def graft_partial(tracer: Optional[Tracer], spans: Optional[Dict[str, Any]],
                  **extra_attrs: Any) -> Optional[Span]:
    """Graft a reply's span batch under the tracer's current span.

    The convenience form the coordinator's await loop uses: a no-op when
    tracing is off, the reply carried no spans, or no span is open.
    """
    if tracer is None or not tracer.enabled or spans is None:
        return None
    current = tracer.current
    if current is None:
        return None
    return graft(current, spans, **extra_attrs)


def remote_total_cycles(span: Span) -> float:
    """Total remote cycles of a grafted subtree (from bucket counters)."""
    total = 0.0
    for s in span.walk():
        total += sum(
            v for k, v in s.counters.items() if k.startswith("bucket:")
        )
    return total
