"""The flight recorder: an always-on bounded ring of structured events.

Every layer that makes a *decision* — a fault fires, a breaker trips, a
WAL checkpoint truncates the log, a shard worker restarts, the admission
controller sheds a request, a hedge wins, an SLO burns through its
budget — records one :class:`JournalEvent` into a shared
:class:`FlightRecorder`. The ring is bounded (``deque(maxlen=...)``), so
an always-on recorder costs O(capacity) memory no matter how long the
run; monotone totals survive eviction so the ``journal_*`` metric
collectors stay honest counters.

The disabled fast path mirrors :data:`~repro.obs.span.NULL_SPAN` and
:attr:`~repro.faults.FaultInjector.armed`: call sites gate on
``journal is not None`` (one attribute read), or route through
:func:`active_journal` which folds a disabled recorder to ``None`` — so
an uninstrumented run pays only the predicate (regression-tested < 5%).

When a chaos invariant fails or a
:class:`~repro.errors.PartialResultError` escapes, the ring is dumped as
``journal/v1`` JSON (:meth:`FlightRecorder.dump`) — the black box you
read *after* the crash, instead of reproducing it under a debugger.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "FlightRecorder",
    "JournalEvent",
    "active_journal",
    "EV_FAULT_FIRED",
    "EV_BREAKER_OPEN",
    "EV_BREAKER_CLOSE",
    "EV_WAL_CHECKPOINT",
    "EV_WAL_RECOVERY",
    "EV_SHARD_RESTART",
    "EV_SHARD_KILL",
    "EV_SHARD_STALE",
    "EV_SHARD_TIMEOUT",
    "EV_HEDGE_WIN",
    "EV_PARTIAL_RESULT",
    "EV_ADMISSION",
    "EV_SQL_ERROR",
    "EV_SLO_BREACH",
    "EV_SLO_RECOVER",
]

#: The dump format version tag. Bump on breaking layout changes.
JOURNAL_SCHEMA = "journal/v1"

# ----------------------------------------------------------------------
# Event kinds, one constant per decision site. Free-form kinds are also
# accepted (the recorder is a notebook, not an enum), but the named ones
# are what the chaos harness and the schema checker know about.
# ----------------------------------------------------------------------
EV_FAULT_FIRED = "fault.fired"
EV_BREAKER_OPEN = "breaker.open"
EV_BREAKER_CLOSE = "breaker.close"
EV_WAL_CHECKPOINT = "wal.checkpoint"
EV_WAL_RECOVERY = "wal.recovery"
EV_SHARD_RESTART = "shard.restart"
EV_SHARD_KILL = "shard.kill"
EV_SHARD_STALE = "shard.stale_fence"
EV_SHARD_TIMEOUT = "shard.timeout"
EV_HEDGE_WIN = "shard.hedge_win"
EV_PARTIAL_RESULT = "shard.partial_result"
EV_ADMISSION = "serve.admission"
EV_SQL_ERROR = "sql.error"
EV_SLO_BREACH = "slo.breach"
EV_SLO_RECOVER = "slo.recover"


@dataclass(frozen=True)
class JournalEvent:
    """One recorded decision: what happened, when, and the facts."""

    #: Recorder-global sequence number (monotone, survives eviction).
    seq: int
    #: Simulated-cycle stamp (the recorder's clock at record time), or
    #: 0.0 when no clock is attached — ordering then rides on ``seq``.
    cycles: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "cycles": self.cycles,
            "kind": self.kind,
            "attrs": self.attrs,
        }


class FlightRecorder:
    """Bounded ring buffer of :class:`JournalEvent`.

    ``clock`` is an optional zero-argument callable returning the current
    simulated cycle count (a ledger's ``total_cycles``, a scheduler's
    ``clock``) — events are stamped with it at record time. ``enabled``
    flips the whole recorder to a no-op without detaching it anywhere,
    the same discipline as :class:`~repro.obs.span.Tracer`.
    """

    def __init__(
        self,
        capacity: int = 1024,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        auto_dump_path: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        #: When set, :meth:`auto_dump` writes here — the hook the chaos
        #: harness and the coordinator's partial-result escape use.
        self.auto_dump_path = auto_dump_path
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        #: Monotone totals — never reset, never evicted.
        self.events_total = 0
        self.counts: Dict[str, int] = {}
        #: Events pushed out of the ring by newer ones.
        self.dropped = 0
        #: Where the last dump landed (None until a dump happens).
        self.last_dump_path: Optional[str] = None

    def __len__(self) -> int:
        return len(self._ring)

    def record(
        self, kind: str, cycles: Optional[float] = None, **attrs: Any
    ) -> None:
        """Append one event (drops the oldest when the ring is full)."""
        if not self.enabled:
            return
        if cycles is None:
            cycles = float(self.clock()) if self.clock is not None else 0.0
        self._seq += 1
        self.events_total += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(JournalEvent(self._seq, float(cycles), kind, attrs))

    def events(self) -> List[JournalEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: int) -> List[JournalEvent]:
        return list(self._ring)[-n:]

    def clear(self) -> None:
        """Empty the ring. Monotone totals are *not* reset."""
        self._ring.clear()

    # ------------------------------------------------------------------
    # Dumping (the black-box read-out).
    # ------------------------------------------------------------------
    def to_dict(self, reason: str = "") -> Dict[str, Any]:
        return {
            "schema": JOURNAL_SCHEMA,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events_total": self.events_total,
            "reason": reason,
            "events": [e.to_dict() for e in self._ring],
        }

    def to_json(self, reason: str = "", indent: Optional[int] = 2) -> str:
        return json.dumps(
            self.to_dict(reason), indent=indent, default=_scrub, allow_nan=False
        )

    def dump(self, path: str, reason: str = "") -> str:
        """Write the ring as ``journal/v1`` JSON; returns ``path``."""
        with open(path, "w") as f:
            f.write(self.to_json(reason))
        self.last_dump_path = path
        return path

    def auto_dump(self, reason: str) -> Optional[str]:
        """Dump to :attr:`auto_dump_path` when one is configured.

        The black-box trigger: called when a chaos invariant fails or a
        :class:`~repro.errors.PartialResultError` escapes the
        coordinator, so the artifact lands even when nobody is watching.
        """
        if self.auto_dump_path is None:
            return None
        return self.dump(self.auto_dump_path, reason)


def _scrub(value: Any) -> str:
    """JSON fallback: attrs may carry exceptions, enums, key ranges."""
    return repr(value)


def active_journal(
    journal: Optional[FlightRecorder],
) -> Optional[FlightRecorder]:
    """``journal`` when it records, else None — what layers should carry.

    Mirrors :func:`repro.obs.span.active`: storing the folded value makes
    the hot-path gate a single ``is not None`` check.
    """
    if journal is not None and journal.enabled:
        return journal
    return None
