"""Service-level objectives: multi-window burn-rate monitoring.

An :class:`SloObjective` declares a per-tenant contract — "99% of
answered requests under 1M cycles", "99.9% of submitted requests
answered at all" — and :class:`SloMonitor` evaluates it online as the
serving front door resolves requests, using the multi-window
burn-rate method (Google SRE workbook): the *burn rate* is the fraction
of bad events divided by the error budget (``1 - target``), so a burn
of 1.0 spends the budget exactly at the sustainable pace and 14.4
exhausts a 30-day budget in 50 hours. A breach fires only when **both**
a fast window (is it happening *now*?) and a slow window (is it
*sustained*?) exceed their thresholds, which suppresses both blips and
stale alerts; it clears when the fast window cools (hysteresis — the
slow window's long memory never holds an alert open on its own).

Everything runs on simulated cycles: windows are cycle spans, events are
stamped with the serve clock, and the whole evaluation is deterministic.
Breaches land in the flight recorder
(:data:`~repro.obs.journal.EV_SLO_BREACH`) and in the ``slo_*`` metric
series (:func:`repro.obs.collectors.register_slo`).

:func:`windowed_burn_rates` is the offline twin: the same arithmetic
over a sampled :class:`~repro.obs.metrics.MetricsTimeSeries` pair of
cumulative counters, for charts and the schema checker's cross-checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.journal import EV_SLO_BREACH, EV_SLO_RECOVER, FlightRecorder

__all__ = [
    "SloObjective",
    "SloState",
    "SloMonitor",
    "windowed_burn_rates",
    "LATENCY",
    "AVAILABILITY",
]

#: The two objective kinds the monitor evaluates.
LATENCY = "latency"
AVAILABILITY = "availability"


@dataclass(frozen=True)
class SloObjective:
    """One tenant's declared objective, validated eagerly."""

    tenant: str
    #: ``"latency"`` (answered requests under the threshold) or
    #: ``"availability"`` (submitted requests answered at all).
    objective: str = LATENCY
    #: Good fraction promised, e.g. 0.99. The error budget is
    #: ``1 - target``.
    target: float = 0.99
    #: Latency objectives: answered slower than this is a bad event.
    latency_threshold_cycles: float = 1_000_000.0
    #: The "is it happening now" window (simulated cycles).
    fast_window_cycles: float = 2_000_000.0
    #: The "is it sustained" window (simulated cycles).
    slow_window_cycles: float = 16_000_000.0
    #: Burn-rate thresholds per window (SRE-workbook page-alert shape).
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.objective not in (LATENCY, AVAILABILITY):
            raise ConfigurationError(
                f"objective must be {LATENCY!r} or {AVAILABILITY!r}, "
                f"got {self.objective!r}"
            )
        if self.fast_window_cycles <= 0 or self.slow_window_cycles <= 0:
            raise ConfigurationError("SLO windows must be positive")
        if self.fast_window_cycles >= self.slow_window_cycles:
            raise ConfigurationError(
                f"fast window ({self.fast_window_cycles:g}) must be shorter "
                f"than the slow window ({self.slow_window_cycles:g})"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ConfigurationError("burn thresholds must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    @property
    def key(self) -> Tuple[str, str]:
        return (self.tenant, self.objective)


class SloState:
    """Online evaluation state of one objective."""

    __slots__ = (
        "objective",
        "window",
        "events_total",
        "bad_total",
        "breaches_total",
        "in_breach",
        "burn_fast",
        "burn_slow",
    )

    def __init__(self, objective: SloObjective):
        self.objective = objective
        #: ``(cycles, bad)`` events inside the slow window, oldest first.
        self.window: Deque[Tuple[float, bool]] = deque()
        self.events_total = 0
        self.bad_total = 0
        self.breaches_total = 0
        self.in_breach = False
        self.burn_fast = 0.0
        self.burn_slow = 0.0

    def observe(self, now: float, bad: bool) -> None:
        self.events_total += 1
        if bad:
            self.bad_total += 1
        self.window.append((now, bad))

    def evaluate(self, now: float) -> Tuple[bool, bool]:
        """Refresh burn rates; returns ``(entered, exited)`` transitions."""
        obj = self.objective
        horizon = now - obj.slow_window_cycles
        while self.window and self.window[0][0] < horizon:
            self.window.popleft()
        fast_horizon = now - obj.fast_window_cycles
        slow_n = slow_bad = fast_n = fast_bad = 0
        for t, bad in self.window:
            slow_n += 1
            slow_bad += bad
            if t >= fast_horizon:
                fast_n += 1
                fast_bad += bad
        budget = obj.error_budget
        self.burn_fast = (fast_bad / fast_n / budget) if fast_n else 0.0
        self.burn_slow = (slow_bad / slow_n / budget) if slow_n else 0.0
        entered = exited = False
        if not self.in_breach:
            if (
                self.burn_fast >= obj.fast_burn
                and self.burn_slow >= obj.slow_burn
            ):
                self.in_breach = True
                self.breaches_total += 1
                entered = True
        elif self.burn_fast < obj.fast_burn:
            self.in_breach = False
            exited = True
        return entered, exited


class SloMonitor:
    """Evaluates a set of objectives as the front door resolves work."""

    def __init__(
        self,
        objectives: List[SloObjective],
        journal: Optional[FlightRecorder] = None,
    ):
        self.states: Dict[Tuple[str, str], SloState] = {}
        for obj in objectives:
            if obj.key in self.states:
                raise ConfigurationError(
                    f"duplicate SLO objective {obj.key!r}"
                )
            self.states[obj.key] = SloState(obj)
        self.journal = journal

    @property
    def objectives(self) -> List[SloObjective]:
        return [s.objective for s in self.states.values()]

    def state(self, tenant: str, objective: str) -> Optional[SloState]:
        return self.states.get((tenant, objective))

    def in_breach(self, tenant: str, objective: str) -> bool:
        s = self.states.get((tenant, objective))
        return bool(s is not None and s.in_breach)

    @property
    def breaches_total(self) -> int:
        return sum(s.breaches_total for s in self.states.values())

    def observe(
        self,
        tenant: str,
        now_cycles: float,
        latency_cycles: float = 0.0,
        answered: bool = True,
    ) -> None:
        """Feed one resolved request into every matching objective.

        Latency objectives see only *answered* requests (an unanswered
        request has no latency); availability objectives see everything,
        bad iff unanswered.
        """
        for key, state in self.states.items():
            if key[0] != tenant:
                continue
            obj = state.objective
            if obj.objective == LATENCY:
                if not answered:
                    continue
                bad = latency_cycles > obj.latency_threshold_cycles
            else:
                bad = not answered
            state.observe(now_cycles, bad)
            entered, exited = state.evaluate(now_cycles)
            if self.journal is not None and (entered or exited):
                self.journal.record(
                    EV_SLO_BREACH if entered else EV_SLO_RECOVER,
                    cycles=now_cycles,
                    tenant=tenant,
                    objective=obj.objective,
                    burn_fast=round(state.burn_fast, 4),
                    burn_slow=round(state.burn_slow, 4),
                    target=obj.target,
                )


def windowed_burn_rates(
    series,
    bad_name: str,
    total_name: str,
    target: float,
    window_cycles: float,
) -> List[Optional[float]]:
    """Burn rates from a sampled pair of cumulative counters.

    For each tick, the bad fraction over the trailing ``window_cycles``
    is computed from the deltas of ``bad_name``/``total_name`` columns of
    a :class:`~repro.obs.metrics.MetricsTimeSeries`, then divided by the
    error budget. Ticks with no traffic in the window yield ``None``.
    """
    if not 0.0 < target < 1.0:
        raise ConfigurationError(
            f"SLO target must be in (0, 1), got {target}"
        )
    bad = series.series.get(bad_name)
    total = series.series.get(total_name)
    if bad is None or total is None:
        return [None] * len(series.ticks)
    budget = 1.0 - target
    out: List[Optional[float]] = []
    for i, tick in enumerate(series.ticks):
        if bad[i] is None or total[i] is None:
            out.append(None)
            continue
        # The youngest sample at or before the window start (0 counts
        # before the counter's first sample).
        base_bad = base_total = 0.0
        for j in range(i, -1, -1):
            if series.ticks[j] <= tick - window_cycles:
                base_bad = bad[j] if bad[j] is not None else 0.0
                base_total = total[j] if total[j] is not None else 0.0
                break
        d_total = total[i] - base_total
        if d_total <= 0:
            out.append(None)
            continue
        out.append((bad[i] - base_bad) / d_total / budget)
    return out
