"""Query traces: aggregation, rendering, and Chrome trace-event export.

A :class:`Trace` wraps one completed root :class:`~repro.obs.span.Span`
and gives it three faces:

* :meth:`Trace.to_ledger` — replay every charge event in global sequence
  order into a fresh :class:`~repro.core.ledger.CostLedger`. Because the
  replay visits events in exactly the order the original ledger was
  charged, the float fold order is identical and the resulting buckets,
  ``total_cycles`` and ``dram_bytes`` are bit-identical to the flat
  accounting (the bucket-compatibility invariant).
* :meth:`Trace.render` — an ``EXPLAIN ANALYZE``-style table: one row per
  span with subtree cycles, rows in/out, DRAM bytes, and L1/L2 hit rates
  where the span carried hardware counters.
* :meth:`Trace.to_chrome_json` — Chrome trace-event JSON ("X" complete
  events, 1 simulated microsecond per cycle) loadable in Perfetto or
  ``chrome://tracing``. Children are laid head-to-tail inside their
  parent so the timeline mirrors the cost tree.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.span import Span

#: Spans whose subtree is this fraction of the root or more get flagged
#: in the rendered plan, mirroring EXPLAIN ANALYZE's "actual time" focus.
_HOT_FRACTION = 0.5


class Trace:
    """One completed query/transaction trace rooted at ``root``."""

    def __init__(self, root: Span):
        self.root = root

    # ------------------------------------------------------------------
    # Bucket-compatible aggregation.
    # ------------------------------------------------------------------
    def to_ledger(self) -> "CostLedger":
        """Fold every leaf event back into a flat ledger.

        Events across the whole tree are replayed in the tracer's global
        sequence order — the same order the original ledger consumed them
        — so the result is bit-identical to the flat accounting, not just
        numerically close.
        """
        from repro.core.ledger import CostLedger

        charges: List[Tuple[int, str, float]] = []
        traffic: List[Tuple[int, float]] = []
        for span in self.root.walk():
            charges.extend(span.events)
            traffic.extend(span.traffic)
        ledger = CostLedger()
        for _, bucket, cycles in sorted(charges, key=lambda e: e[0]):
            ledger.charge(bucket, cycles)
        for _, nbytes in sorted(traffic, key=lambda e: e[0]):
            ledger.charge_traffic(nbytes)
        return ledger

    @property
    def total_cycles(self) -> float:
        return self.root.total_cycles

    @property
    def dram_bytes(self) -> float:
        return self.root.total_dram_bytes

    def find(self, name: str) -> Optional[Span]:
        return self.root.find(name)

    def find_all(self, name: str) -> List[Span]:
        return self.root.find_all(name)

    # ------------------------------------------------------------------
    # EXPLAIN ANALYZE rendering.
    # ------------------------------------------------------------------
    def render(self, counters: bool = True) -> str:
        """Render the span tree as an ``EXPLAIN ANALYZE``-style table."""
        rows: List[Tuple[str, str, str, str, str]] = []
        root_cycles = self.root.total_cycles
        for span in self.root.walk():
            label = "  " * span.depth + span.name
            detail = _describe(span)
            if detail:
                label += f" ({detail})"
            if (
                span is not self.root
                and root_cycles > 0
                and span.total_cycles >= _HOT_FRACTION * root_cycles
            ):
                label += " *"
            # Grafted remote spans (repro.obs.distctx) carry no ledger
            # events — their cycles live in the shipped duration, marked
            # "~" because they are the worker's accounting, not replayed
            # into this trace's ledger.
            if span.attrs.get("remote") and span.total_cycles == 0:
                shown = "~" + _fmt_cycles(span.duration_cycles)
            else:
                shown = _fmt_cycles(span.total_cycles)
            rows.append(
                (
                    label,
                    shown,
                    _fmt_rows(span),
                    _fmt_bytes(span.total_dram_bytes),
                    _fmt_hits(span) if counters else "",
                )
            )
        headers = ("operator", "cycles", "rows", "dram", "cache")
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(5)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for r in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
        lines.append(
            f"total: {self.root.total_cycles:,.0f} cycles, "
            f"{self.root.total_dram_bytes:,.0f} DRAM bytes"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome trace-event export.
    # ------------------------------------------------------------------
    def to_chrome_json(
        self, pid: int = 1, tid: int = 1, indent: Optional[int] = None
    ) -> str:
        """Serialize as Chrome trace-event JSON (Perfetto-loadable).

        Each span becomes one complete ("X") event. One ledger cycle maps
        to one trace microsecond; children are placed head-to-tail from
        their parent's start so nesting renders as stacked slices.

        Spans grafted from shard workers (``remote_pid``/``remote_tid``
        attrs, set by :mod:`repro.obs.distctx`) land on their own
        process/thread tracks — one pid per shard, one tid per worker
        incarnation — so a distributed statement renders as genuinely
        cross-process lanes, time-aligned with the coordinator's track.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": "repro.obs"},
            }
        ]
        seen_tracks = {(pid, tid)}

        def place(span: Span, start: float) -> None:
            span_pid = int(span.attrs.get("remote_pid", pid))
            span_tid = int(span.attrs.get("remote_tid", tid))
            if (span_pid, span_tid) not in seen_tracks:
                seen_tracks.add((span_pid, span_tid))
                shard = span.attrs.get("shard")
                inc = span.attrs.get("incarnation")
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": span_pid,
                        "tid": span_tid,
                        "args": {
                            "name": (
                                f"shard {shard}" if shard is not None
                                else f"remote pid {span_pid}"
                            )
                        },
                    }
                )
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": span_pid,
                        "tid": span_tid,
                        "args": {
                            "name": (
                                f"incarnation {inc}" if inc is not None
                                else f"tid {span_tid}"
                            )
                        },
                    }
                )
            args: Dict[str, Any] = {}
            if span.attrs:
                args.update(
                    {k: v for k, v in span.attrs.items() if _jsonable(v)}
                )
            buckets = span.bucket_totals(subtree=False)
            if buckets:
                args["buckets"] = buckets
            if span.counters:
                args["counters"] = span.counters
            if span.self_dram_bytes:
                args["dram_bytes"] = span.self_dram_bytes
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": start,
                    "dur": max(span.duration_cycles, 0.0),
                    "pid": span_pid,
                    "tid": span_tid,
                    "cat": span.attrs.get("layer", "sim"),
                    "args": args,
                }
            )
            cursor = start
            for child in span.children:
                place(child, cursor)
                cursor += child.duration_cycles

        place(self.root, 0.0)
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        return json.dumps(doc, indent=indent, sort_keys=False)


def _jsonable(v: Any) -> bool:
    return isinstance(v, (str, int, float, bool)) or v is None


def _describe(span: Span) -> str:
    parts = []
    for key in ("table", "column", "predicate", "mode", "engine"):
        if key in span.attrs:
            parts.append(f"{key}={span.attrs[key]}")
    return ", ".join(parts)


def _fmt_cycles(c: float) -> str:
    return f"{c:,.0f}"


def _fmt_rows(span: Span) -> str:
    rin = span.attrs.get("rows_in")
    rout = span.attrs.get("rows_out")
    if rin is None and rout is None:
        return ""
    if rin is None:
        return f"{rout}"
    if rout is None:
        return f"{rin}"
    return f"{rin}->{rout}"


def _fmt_bytes(b: float) -> str:
    if not b:
        return ""
    if b >= 1 << 20:
        return f"{b / (1 << 20):.1f} MiB"
    if b >= 1 << 10:
        return f"{b / (1 << 10):.1f} KiB"
    return f"{b:,.0f} B"


def _fmt_hits(span: Span) -> str:
    """L1/L2 hit rates from probe counters, when present."""
    out = []
    for level in ("l1", "l2"):
        hits = span.counters.get(f"{level}_hits")
        misses = span.counters.get(f"{level}_misses")
        if hits is None and misses is None:
            continue
        total = (hits or 0.0) + (misses or 0.0)
        if total <= 0:
            continue
        out.append(f"{level.upper()} {100.0 * (hits or 0.0) / total:.0f}%")
    return " ".join(out)
