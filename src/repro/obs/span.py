"""Spans and tracers: the observability spine of the simulator.

Every layer of the stack (engines, fabric, WAL, storage devices) opens a
:class:`Span` around each unit of work it prices. Cycle charges still
flow through :class:`repro.core.ledger.CostLedger` — the flat bucket
accounting is unchanged, bit for bit — but a ledger carrying a
:class:`Tracer` *also* records every charge as an event on the currently
open span. The resulting tree says not just *how many* cycles a query
cost but *which operator, which scan stage, which retry* spent them.

Design rules that keep the old numbers exact:

* The ledger's own dict accumulation is untouched; tracing is a second
  write, never a replacement. Disabled tracing is a single ``is None``
  check per charge.
* Every charge event carries a tracer-global sequence number. Replaying
  all leaf events of a trace in sequence order reproduces the flat
  ledger's float fold order — so aggregated trace totals are
  bit-identical to the buckets, not merely close (property-tested in
  ``tests/test_trace_equivalence.py``).
* A charge with no open span is recorded by the ledger only. Layers own
  their spans; foreign ledgers (a WAL ledger during a query, say) never
  leak events into a trace unless they carry the same tracer and a span
  is open.

The no-op path mirrors :class:`repro.faults.FaultInjector.armed`: callers
gate on :func:`maybe_span`, which returns a shared null context manager
when the tracer is absent or disabled, so an untraced run pays only the
predicate (regression-tested < 5% on a trace-mode Q6 scan).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError

#: A hardware-counter probe: returns a flat ``name -> value`` snapshot.
Probe = Callable[[], Dict[str, float]]


class Span:
    """One named, attributed node of a query trace.

    Spans are created through :meth:`Tracer.span` (a context manager) and
    form a tree via ``parent``/``children``. Three kinds of payload:

    * ``events`` — ledger charges ``(seq, bucket, cycles)`` recorded while
      this span was the innermost open one;
    * ``traffic`` — DRAM byte charges ``(seq, nbytes)``;
    * ``counters`` — free-form numeric counters (cache hits, flash pages,
      fabric refills) attached by the layer that owns the span;
    * ``attrs`` — descriptive attributes (operator name, table, rows).
    """

    __slots__ = (
        "name",
        "parent",
        "children",
        "attrs",
        "events",
        "traffic",
        "counters",
        "_probe_base",
        "_duration_override",
    )

    def __init__(
        self,
        name: str,
        parent: Optional["Span"] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.parent = parent
        self.children: List[Span] = []
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.events: List[Tuple[int, str, float]] = []
        self.traffic: List[Tuple[int, float]] = []
        self.counters: Dict[str, float] = {}
        self._probe_base: Optional[Dict[str, float]] = None
        self._duration_override: Optional[float] = None
        if parent is not None:
            parent.children.append(self)

    # ------------------------------------------------------------------
    # Mutators (no-ops on the null span).
    # ------------------------------------------------------------------
    def set_attrs(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def add_counter(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def add_counters(self, counters: Dict[str, float]) -> None:
        for name, value in counters.items():
            self.add_counter(name, value)

    def set_duration(self, cycles: float) -> None:
        """Pin this span's timeline width explicitly.

        Layers priced in device time rather than ledger cycles (flash
        reads, host links) use this so the Chrome timeline shows their
        real extent; by default a span is as wide as its subtree cycles.
        """
        self._duration_override = float(cycles)

    # ------------------------------------------------------------------
    # Aggregation.
    # ------------------------------------------------------------------
    @property
    def self_cycles(self) -> float:
        """Cycles charged directly to this span (children excluded)."""
        return sum(c for _, _, c in self.events)

    @property
    def total_cycles(self) -> float:
        """Cycles of this span's whole subtree."""
        return self.self_cycles + sum(c.total_cycles for c in self.children)

    @property
    def self_dram_bytes(self) -> float:
        return sum(b for _, b in self.traffic)

    @property
    def total_dram_bytes(self) -> float:
        return self.self_dram_bytes + sum(c.total_dram_bytes for c in self.children)

    @property
    def duration_cycles(self) -> float:
        """Timeline width: own events plus children's widths, or the
        explicit override if larger — a parent is always at least as wide
        as its children laid head-to-tail."""
        inner = self.self_cycles + sum(c.duration_cycles for c in self.children)
        if self._duration_override is not None:
            return max(self._duration_override, inner)
        return inner

    def bucket_totals(self, subtree: bool = True) -> Dict[str, float]:
        """Bucket → cycles, optionally folded over the whole subtree."""
        out: Dict[str, float] = {}
        for _, bucket, cycles in self.events:
            out[bucket] = out.get(bucket, 0.0) + cycles
        if subtree:
            for child in self.children:
                for bucket, cycles in child.bucket_totals().items():
                    out[bucket] = out.get(bucket, 0.0) + cycles
        return out

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order walk of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in DFS order, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [s for s in self.walk() if s.name == name]

    @property
    def depth(self) -> int:
        d, p = 0, self.parent
        while p is not None:
            d, p = d + 1, p.parent
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, cycles={self.total_cycles:.0f}, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Shared do-nothing span + context manager for the disabled path.

    One module-level instance (:data:`NULL_SPAN`) serves every call site:
    entering it allocates nothing, and every mutator is a no-op, so
    instrumented code reads identically whether tracing is on or off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_attrs(self, **attrs: Any) -> "_NullSpan":
        return self

    def add_counter(self, name: str, value: float) -> None:
        pass

    def add_counters(self, counters: Dict[str, float]) -> None:
        pass

    def set_duration(self, cycles: float) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens a :class:`Span` on a tracer's stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "_probe", "_span")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        probe: Optional[Probe],
    ):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._probe = probe
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs, self._probe)
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close(self._span, self._probe)
        return False


class Tracer:
    """Owns the span stack and the global charge sequence.

    One tracer is shared by every layer that should contribute to the
    same traces (an engine, its fabric, its ledgers). Spans opened while
    another is open nest beneath it; when the outermost span closes it is
    published as :attr:`last` (and the root handed to whoever opened it).

    ``enabled=False`` turns the tracer into a no-op without detaching it
    anywhere — :func:`maybe_span` and :class:`~repro.core.ledger.CostLedger`
    both honour the flag.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._stack: List[Span] = []
        self._seq = 0
        #: The most recently completed root span.
        self.last: Optional[Span] = None

    # ------------------------------------------------------------------
    # Span lifecycle.
    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, probe: Optional[Probe] = None, **attrs: Any):
        """Context manager opening a child of the current span.

        ``probe`` snapshots hardware counters at open and attaches the
        delta at close (cache hits, DRAM lines of an event-accurate run).
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, attrs, probe)

    def _open(self, name: str, attrs: Dict[str, Any], probe: Optional[Probe]) -> Span:
        span = Span(name, parent=self.current, attrs=attrs)
        if probe is not None:
            span._probe_base = dict(probe())
        self._stack.append(span)
        return span

    def _close(self, span: Optional[Span], probe: Optional[Probe]) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ExecutionError(
                f"span {span.name if span else '?'!r} closed out of order"
            )
        self._stack.pop()
        if probe is not None and span._probe_base is not None:
            for name, value in probe().items():
                delta = value - span._probe_base.get(name, 0)
                if delta:
                    span.add_counter(name, delta)
            span._probe_base = None
        if not self._stack:
            self.last = span

    # ------------------------------------------------------------------
    # Event recording (called by CostLedger; hot when tracing).
    # ------------------------------------------------------------------
    def record(self, bucket: str, cycles: float) -> None:
        """Attach one ledger charge to the innermost open span."""
        if not self._stack:
            return
        self._seq += 1
        self._stack[-1].events.append((self._seq, bucket, cycles))

    def record_traffic(self, nbytes: float) -> None:
        if not self._stack:
            return
        self._seq += 1
        self._stack[-1].traffic.append((self._seq, nbytes))

    def annotate(self, **counters: float) -> None:
        """Add counters to the innermost open span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].add_counters(counters)


def maybe_span(tracer: Optional[Tracer], name: str, probe: Optional[Probe] = None, **attrs: Any):
    """The universal call-site gate: a real span when ``tracer`` is an
    enabled :class:`Tracer`, the shared :data:`NULL_SPAN` otherwise."""
    if tracer is not None and tracer.enabled:
        return tracer.span(name, probe=probe, **attrs)
    return NULL_SPAN


def active(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """``tracer`` when it records, else None — what ledgers should carry."""
    if tracer is not None and tracer.enabled:
        return tracer
    return None
