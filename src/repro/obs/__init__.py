"""repro.obs — the span-based observability spine.

See :mod:`repro.obs.span` for the tracing model and
:mod:`repro.obs.trace` for rendering/export. Quick use::

    from repro.obs import Tracer

    tracer = Tracer()
    engines = all_engines(catalog, tracer=tracer)
    result = engines["rm"].execute(query)
    print(result.trace.render())              # EXPLAIN ANALYZE table
    open("trace.json", "w").write(result.trace.to_chrome_json())
"""

from repro.obs.span import NULL_SPAN, Probe, Span, Tracer, active, maybe_span
from repro.obs.trace import Trace

__all__ = [
    "NULL_SPAN",
    "Probe",
    "Span",
    "Trace",
    "Tracer",
    "active",
    "maybe_span",
]
