"""repro.obs — the span-based observability spine plus simulated-time
metrics.

See :mod:`repro.obs.span` for the tracing model, :mod:`repro.obs.trace`
for rendering/export, :mod:`repro.obs.metrics` for PMU-style counters/
gauges/histograms sampled on the simulated clock, and
:mod:`repro.obs.collectors` for the per-layer collector wiring. Quick
use::

    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer()
    engines = all_engines(catalog, tracer=tracer)
    result = engines["rm"].execute(query)
    print(result.trace.render())              # EXPLAIN ANALYZE table
    open("trace.json", "w").write(result.trace.to_chrome_json())

    metrics = MetricsRegistry()
    metrics.attach_sampler(interval_cycles=1_000_000)
    engines = all_engines(catalog, metrics=metrics)
    engines["row"].execute(query)
    print(metrics.to_prometheus())            # scrape-ready exposition
    open("metrics.json", "w").write(metrics.sampler.series.to_json())
"""

from repro.obs.distctx import (
    TraceContext,
    graft,
    graft_partial,
    new_trace_id,
    span_to_wire,
    wire_to_span,
)
from repro.obs.journal import FlightRecorder, JournalEvent, active_journal
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsTimeSeries,
    Sampler,
    active_metrics,
    fmt_name,
)
from repro.obs.slo import SloMonitor, SloObjective, windowed_burn_rates
from repro.obs.span import NULL_SPAN, Probe, Span, Tracer, active, maybe_span
from repro.obs.trace import Trace

__all__ = [
    "NULL_SPAN",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JournalEvent",
    "MetricsRegistry",
    "MetricsTimeSeries",
    "Probe",
    "Sampler",
    "SloMonitor",
    "SloObjective",
    "Span",
    "Trace",
    "TraceContext",
    "Tracer",
    "active",
    "active_journal",
    "active_metrics",
    "fmt_name",
    "graft",
    "graft_partial",
    "maybe_span",
    "new_trace_id",
    "span_to_wire",
    "wire_to_span",
    "windowed_burn_rates",
]
