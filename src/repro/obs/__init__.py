"""repro.obs — the span-based observability spine plus simulated-time
metrics.

See :mod:`repro.obs.span` for the tracing model, :mod:`repro.obs.trace`
for rendering/export, :mod:`repro.obs.metrics` for PMU-style counters/
gauges/histograms sampled on the simulated clock, and
:mod:`repro.obs.collectors` for the per-layer collector wiring. Quick
use::

    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer()
    engines = all_engines(catalog, tracer=tracer)
    result = engines["rm"].execute(query)
    print(result.trace.render())              # EXPLAIN ANALYZE table
    open("trace.json", "w").write(result.trace.to_chrome_json())

    metrics = MetricsRegistry()
    metrics.attach_sampler(interval_cycles=1_000_000)
    engines = all_engines(catalog, metrics=metrics)
    engines["row"].execute(query)
    print(metrics.to_prometheus())            # scrape-ready exposition
    open("metrics.json", "w").write(metrics.sampler.series.to_json())
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsTimeSeries,
    Sampler,
    active_metrics,
    fmt_name,
)
from repro.obs.span import NULL_SPAN, Probe, Span, Tracer, active, maybe_span
from repro.obs.trace import Trace

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsTimeSeries",
    "Probe",
    "Sampler",
    "Span",
    "Trace",
    "Tracer",
    "active",
    "active_metrics",
    "fmt_name",
    "maybe_span",
]
