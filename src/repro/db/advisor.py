"""Physical-design advisor: classical vertical partitioning vs the fabric.

Paper Section III-A: legacy systems use workload knowledge to pick
vertical partitions ("collocate columns that are frequently accessed
together"); the fabric makes the whole decision moot because any column
group is available on the fly.

This module makes the comparison executable:

* :func:`advise_partitions` runs a classical affinity-driven greedy
  partitioner (attribute-affinity matrix + merge-while-it-helps), the
  textbook approach;
* :func:`fabric_cost` prices the same workload under ephemeral column
  groups (no partitions, no design step);
* :class:`AdvisorReport` carries both, so the benches can show where
  static partitioning lands between the row layout and the fabric.

Costs are bytes-moved per workload execution — the currency vertical
partitioning actually optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.db.schema import TableSchema


@dataclass(frozen=True)
class WorkloadQuery:
    """One query for design purposes: the columns it touches, how often."""

    columns: Tuple[str, ...]
    frequency: float = 1.0


def affinity_matrix(
    schema: TableSchema, workload: Sequence[WorkloadQuery]
) -> Dict[Tuple[str, str], float]:
    """Pairwise co-access frequency of columns (the classic AA matrix)."""
    out: Dict[Tuple[str, str], float] = {}
    for query in workload:
        for a, b in combinations(sorted(set(query.columns)), 2):
            out[(a, b)] = out.get((a, b), 0.0) + query.frequency
    return out


def partition_cost(
    schema: TableSchema,
    partitions: Sequence[FrozenSet[str]],
    workload: Sequence[WorkloadQuery],
    nrows: int,
) -> float:
    """Bytes moved by the workload under a given static partitioning.

    A query reads every partition containing at least one column it needs
    — in full, because the partition is the stored unit. Queries touching
    multiple partitions pay a per-row stitch surcharge (tuple
    reconstruction across fragments), the classical penalty that keeps
    partitionings from going fully columnar.
    """
    width = {c.name: c.dtype.width for c in schema.user_columns}
    part_width = {p: sum(width[c] for c in p) for p in partitions}
    total = 0.0
    for query in workload:
        needed = set(query.columns)
        touched = [p for p in partitions if p & needed]
        bytes_read = sum(part_width[p] for p in touched) * nrows
        stitch = 8 * nrows * max(0, len(touched) - 1)  # row-id joins
        total += query.frequency * (bytes_read + stitch)
    return total


def fabric_cost(
    schema: TableSchema, workload: Sequence[WorkloadQuery], nrows: int
) -> float:
    """Bytes moved with ephemeral column groups: exactly what each query
    references, no reconstruction, no design decision."""
    width = {c.name: c.dtype.width for c in schema.user_columns}
    return sum(
        q.frequency * nrows * sum(width[c] for c in set(q.columns))
        for q in workload
    )


@dataclass
class AdvisorReport:
    """Outcome of the physical-design comparison."""

    partitions: List[FrozenSet[str]]
    partitioned_cost: float
    row_layout_cost: float
    column_layout_cost: float
    fabric_cost: float
    steps: List[str] = field(default_factory=list)

    @property
    def fabric_speedup_vs_best_static(self) -> float:
        best = min(self.partitioned_cost, self.row_layout_cost, self.column_layout_cost)
        return best / self.fabric_cost if self.fabric_cost else float("inf")

    def summary(self) -> str:
        parts = ", ".join(
            "{" + ",".join(sorted(p)) + "}" for p in self.partitions
        )
        return (
            f"best static partitioning: {parts}\n"
            f"  bytes/workload: partitioned={self.partitioned_cost:.3g} "
            f"row={self.row_layout_cost:.3g} "
            f"column={self.column_layout_cost:.3g} fabric={self.fabric_cost:.3g}\n"
            f"  fabric vs best static: {self.fabric_speedup_vs_best_static:.2f}x"
        )


def advise_partitions(
    schema: TableSchema,
    workload: Sequence[WorkloadQuery],
    nrows: int,
) -> AdvisorReport:
    """Greedy agglomerative vertical partitioner.

    Start from one partition per column; repeatedly merge the pair of
    partitions with the highest affinity whose merge does not increase
    the workload cost; stop when no merge helps. This is the textbook
    hill-climbing simplification of bond-energy-style algorithms — good
    enough to show what a static design can and cannot achieve.
    """
    columns = [c.name for c in schema.user_columns]
    partitions: List[FrozenSet[str]] = [frozenset({c}) for c in columns]
    affinity = affinity_matrix(schema, workload)
    steps: List[str] = []

    def pair_affinity(p: FrozenSet[str], q: FrozenSet[str]) -> float:
        return sum(
            affinity.get((min(a, b), max(a, b)), 0.0) for a in p for b in q
        )

    current = partition_cost(schema, partitions, workload, nrows)
    improved = True
    while improved and len(partitions) > 1:
        improved = False
        candidates = sorted(
            combinations(range(len(partitions)), 2),
            key=lambda ij: -pair_affinity(partitions[ij[0]], partitions[ij[1]]),
        )
        for i, j in candidates:
            merged = partitions[i] | partitions[j]
            trial = [p for k, p in enumerate(partitions) if k not in (i, j)]
            trial.append(merged)
            cost = partition_cost(schema, trial, workload, nrows)
            if cost <= current:
                steps.append(
                    f"merge {sorted(partitions[i])} + {sorted(partitions[j])} "
                    f"-> cost {cost:.3g}"
                )
                partitions = trial
                current = cost
                improved = True
                break

    row_cost = partition_cost(
        schema, [frozenset(columns)], workload, nrows
    )
    col_cost = partition_cost(
        schema, [frozenset({c}) for c in columns], workload, nrows
    )
    return AdvisorReport(
        partitions=partitions,
        partitioned_cost=current,
        row_layout_cost=row_cost,
        column_layout_cost=col_cost,
        fabric_cost=fabric_cost(schema, workload, nrows),
        steps=steps,
    )
