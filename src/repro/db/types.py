"""Relational type system with exact byte-level layouts.

Every type knows its width and (for scalars) its numpy dtype, so a table
schema can compute the byte geometry the fabric is programmed with.
DECIMAL is a scaled int64 (exact, like the fixed-point decimals TPC-H
needs); DATE is days since 1970-01-01 in an int32.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.errors import SchemaError

_EPOCH = datetime.date(1970, 1, 1)


@dataclass(frozen=True)
class DataType:
    """A fixed-width column type.

    ``np_dtype`` is None for opaque byte payloads (CHAR); scalar types
    carry a little-endian numpy dtype string matching ``width``.
    """

    name: str
    width: int
    np_dtype: Optional[str]
    #: Decimal scale (digits after the point) for DECIMAL types, else 0.
    scale: int = 0

    def __post_init__(self):
        if self.width <= 0:
            raise SchemaError(f"type {self.name}: non-positive width")
        if self.np_dtype is not None and np.dtype(self.np_dtype).itemsize != self.width:
            raise SchemaError(
                f"type {self.name}: dtype {self.np_dtype} width mismatch"
            )

    @property
    def is_numeric(self) -> bool:
        return self.np_dtype is not None

    # ------------------------------------------------------------------
    # Python value ↔ stored representation.
    # ------------------------------------------------------------------
    def encode(self, value: Any) -> Any:
        """Python value → raw stored value (int/float/bytes)."""
        if self.name.startswith("DECIMAL"):
            return int(round(float(value) * 10**self.scale))
        if self.name == "DATE":
            if isinstance(value, datetime.date):
                return (value - _EPOCH).days
            return int(value)
        if self.np_dtype is None:
            data = value.encode() if isinstance(value, str) else bytes(value)
            if len(data) > self.width:
                raise SchemaError(
                    f"CHAR({self.width}) value too long ({len(data)} bytes)"
                )
            return data.ljust(self.width, b"\x00")
        return value

    def decode(self, raw: Any) -> Any:
        """Raw stored value → Python value."""
        if self.name.startswith("DECIMAL"):
            return int(raw) / 10**self.scale
        if self.name == "DATE":
            return _EPOCH + datetime.timedelta(days=int(raw))
        if self.np_dtype is None:
            data = bytes(raw)
            return data.rstrip(b"\x00").decode(errors="replace")
        if isinstance(raw, (np.integer,)):
            return int(raw)
        if isinstance(raw, (np.floating,)):
            return float(raw)
        return raw

    def decode_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized decode for numeric types (DECIMAL → float array)."""
        if self.name.startswith("DECIMAL"):
            return values / 10**self.scale
        return values


INT8 = DataType("INT8", 1, "<i1")
INT16 = DataType("INT16", 2, "<i2")
INT32 = DataType("INT32", 4, "<i4")
INT64 = DataType("INT64", 8, "<i8")
FLOAT32 = DataType("FLOAT32", 4, "<f4")
FLOAT64 = DataType("FLOAT64", 8, "<f8")
DATE = DataType("DATE", 4, "<i4")
BOOL = DataType("BOOL", 1, "<i1")
TIMESTAMP = DataType("TIMESTAMP", 8, "<i8")


def DECIMAL(scale: int = 2) -> DataType:
    """Exact fixed-point decimal stored as a scaled int64."""
    return DataType(f"DECIMAL({scale})", 8, "<i8", scale=scale)


def CHAR(n: int) -> DataType:
    """Fixed-width byte string of ``n`` bytes, NUL padded."""
    return DataType(f"CHAR({n})", n, None)


def parse_type(text: str) -> DataType:
    """Parse a type name as written in DDL (``INT64``, ``CHAR(12)`` ...)."""
    text = text.strip().upper()
    simple = {
        t.name: t
        for t in (INT8, INT16, INT32, INT64, FLOAT32, FLOAT64, DATE, BOOL, TIMESTAMP)
    }
    if text in simple:
        return simple[text]
    if text.startswith("CHAR(") and text.endswith(")"):
        return CHAR(int(text[5:-1]))
    if text.startswith("DECIMAL(") and text.endswith(")"):
        return DECIMAL(int(text[8:-1]))
    if text == "DECIMAL":
        return DECIMAL()
    raise SchemaError(f"unknown type {text!r}")
