"""LZ77-family compression over the raw column bytes.

NOT fabric-compatible (§III-D: the LZ family "require[s] fully
decompressing your data before you can access separate columns"): back-
references reach arbitrarily far back, so nothing short of a full decode
recovers a row range. A genuine (small-window) LZ77 with greedy matching
— the point is faithful *behaviour*, not competitive speed.
"""

from __future__ import annotations

import struct
from typing import Dict, List

import numpy as np

from repro.db.compression.base import Codec, CompressedColumn, as_int_array
from repro.errors import CompressionError

_MIN_MATCH = 4
#: Longest encodable match: the control byte stores length - _MIN_MATCH
#: in 7 bits.
_MAX_MATCH = 127 + _MIN_MATCH
_WINDOW = 1 << 16


class Lz77Codec(Codec):
    """Byte-oriented LZ77: literal runs and (distance, length) matches.

    Token format: control byte ``n``; ``n < 128`` → ``n+1`` literal bytes
    follow; ``n >= 128`` → match of length ``n - 128 + _MIN_MATCH`` at a
    little-endian uint16 distance that follows.
    """

    name = "lz77"
    fabric_compatible = False

    def encode(self, values: np.ndarray) -> CompressedColumn:
        values = as_int_array(values)
        data = values.astype("<i8").tobytes()
        out = bytearray()
        table: Dict[bytes, List[int]] = {}
        i = 0
        literals = bytearray()

        def flush_literals():
            nonlocal literals
            pos = 0
            while pos < len(literals):
                run = literals[pos : pos + 128]
                out.append(len(run) - 1)
                out.extend(run)
                pos += len(run)
            literals = bytearray()

        n = len(data)
        while i < n:
            best_len = 0
            best_dist = 0
            if i + _MIN_MATCH <= n:
                key = data[i : i + _MIN_MATCH]
                for j in table.get(key, ()):  # newest candidates last
                    if i - j > _WINDOW - 1:
                        continue
                    length = _MIN_MATCH
                    while (
                        length < _MAX_MATCH
                        and i + length < n
                        and data[j + length] == data[i + length]
                    ):
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = i - j
            if best_len >= _MIN_MATCH:
                flush_literals()
                out.append(128 + best_len - _MIN_MATCH)
                out.extend(struct.pack("<H", best_dist))
                end = i + best_len
                while i < end:
                    if i + _MIN_MATCH <= n:
                        table.setdefault(data[i : i + _MIN_MATCH], []).append(i)
                    i += 1
            else:
                literals.append(data[i])
                if i + _MIN_MATCH <= n:
                    table.setdefault(data[i : i + _MIN_MATCH], []).append(i)
                i += 1
        flush_literals()
        return CompressedColumn(
            codec=self.name, payload=bytes(out), n_values=len(values)
        )

    def decode(self, column: CompressedColumn) -> np.ndarray:
        self._check(column)
        data = column.payload
        out = bytearray()
        i = 0
        while i < len(data):
            control = data[i]
            i += 1
            if control < 128:
                count = control + 1
                out.extend(data[i : i + count])
                i += count
            else:
                length = control - 128 + _MIN_MATCH
                (dist,) = struct.unpack_from("<H", data, i)
                i += 2
                if dist == 0 or dist > len(out):
                    raise CompressionError("corrupt LZ77 stream: bad distance")
                for _ in range(length):  # may self-overlap, byte at a time
                    out.append(out[-dist])
        expected = column.n_values * 8
        if len(out) != expected:
            raise CompressionError(
                f"corrupt LZ77 stream: {len(out)} bytes, expected {expected}"
            )
        return np.frombuffer(bytes(out), dtype="<i8").astype(np.int64)
