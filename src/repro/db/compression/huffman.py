"""Canonical Huffman coding over the byte representation of a column.

Blocked like the delta codec so row ranges decode independently
(fabric-compatible per §III-D — the paper groups Huffman with dictionary
and delta as "easily supported"). Each block carries its own code-length
table; codes are canonical so the table is just 256 lengths.
"""

from __future__ import annotations

import heapq
import struct
from typing import Dict, List, Tuple

import numpy as np

from repro.db.compression.base import Codec, CompressedColumn, as_int_array
from repro.errors import CompressionError


def _code_lengths(freqs: Dict[int, int]) -> Dict[int, int]:
    """Huffman code length per symbol (package-merge-free: plain tree)."""
    if len(freqs) == 1:
        return {next(iter(freqs)): 1}
    heap: List[Tuple[int, int, object]] = []
    for i, (sym, f) in enumerate(sorted(freqs.items())):
        heap.append((f, i, sym))
    heapq.heapify(heap)
    counter = len(heap)
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        heapq.heappush(heap, (fa + fb, counter, (a, b)))
        counter += 1
    lengths: Dict[int, int] = {}

    def walk(node, depth):
        if isinstance(node, tuple):
            walk(node[0], depth + 1)
            walk(node[1], depth + 1)
        else:
            lengths[node] = max(1, depth)

    walk(heap[0][2], 0)
    return lengths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Symbol → (code, length), canonical order (length, then symbol)."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = ordered[0][1]
    for sym, length in ordered:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


class _BitWriter:
    def __init__(self):
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, code: int, length: int) -> None:
        self._acc = (self._acc << length) | code
        self._nbits += length
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def finish(self) -> bytes:
        if self._nbits:
            self._out.append((self._acc << (8 - self._nbits)) & 0xFF)
        return bytes(self._out)


class _BitReader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bit(self) -> int:
        if self._nbits == 0:
            self._acc = self._data[self._pos]
            self._pos += 1
            self._nbits = 8
        self._nbits -= 1
        return (self._acc >> self._nbits) & 1


class HuffmanCodec(Codec):
    """Blocked canonical Huffman over little-endian int64 bytes."""

    name = "huffman"
    fabric_compatible = True

    _HEADER = struct.Struct("<IH")  # body byte length, value count

    def __init__(self, block_size: int = 4096):
        if not 1 <= block_size <= 65535:
            raise CompressionError("block size must be in [1, 65535]")
        self.block_size = block_size

    def encode(self, values: np.ndarray) -> CompressedColumn:
        values = as_int_array(values)
        chunks: List[bytes] = []
        offsets: List[int] = []
        cursor = 0
        for start in range(0, len(values), self.block_size):
            block = values[start : start + self.block_size]
            raw = block.astype("<i8").tobytes()
            freqs: Dict[int, int] = {}
            for byte in raw:
                freqs[byte] = freqs.get(byte, 0) + 1
            lengths = _code_lengths(freqs)
            codes = _canonical_codes(lengths)
            writer = _BitWriter()
            for byte in raw:
                code, length = codes[byte]
                writer.write(code, length)
            body = writer.finish()
            table = bytes(lengths.get(sym, 0) for sym in range(256))
            chunk = self._HEADER.pack(len(body), len(block)) + table + body
            offsets.append(cursor)
            chunks.append(chunk)
            cursor += len(chunk)
        return CompressedColumn(
            codec=self.name,
            payload=b"".join(chunks),
            meta={"block_size": self.block_size, "block_offsets": offsets},
            n_values=len(values),
        )

    def _decode_block(self, payload: bytes, offset: int) -> np.ndarray:
        body_len, count = self._HEADER.unpack_from(payload, offset)
        table_start = offset + self._HEADER.size
        lengths = {
            sym: payload[table_start + sym]
            for sym in range(256)
            if payload[table_start + sym]
        }
        codes = _canonical_codes(lengths)
        # code → symbol at each length for canonical decoding.
        by_code = {(c, l): sym for sym, (c, l) in codes.items()}
        body = payload[table_start + 256 : table_start + 256 + body_len]
        reader = _BitReader(body)
        out = bytearray()
        needed = count * 8
        code = 0
        length = 0
        while len(out) < needed:
            code = (code << 1) | reader.read_bit()
            length += 1
            sym = by_code.get((code, length))
            if sym is not None:
                out.append(sym)
                code = 0
                length = 0
        return np.frombuffer(bytes(out), dtype="<i8").astype(np.int64)

    def decode(self, column: CompressedColumn) -> np.ndarray:
        self._check(column)
        blocks = [
            self._decode_block(column.payload, off)
            for off in column.meta["block_offsets"]
        ]
        if not blocks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(blocks)

    def decode_range(self, column: CompressedColumn, start: int, stop: int) -> np.ndarray:
        self._check(column)
        bs = column.meta["block_size"]
        offsets = column.meta["block_offsets"]
        first, last = start // bs, max(start, stop - 1) // bs
        parts = [
            self._decode_block(column.payload, offsets[b])
            for b in range(first, min(last, len(offsets) - 1) + 1)
        ]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        joined = np.concatenate(parts)
        lo = start - first * bs
        return joined[lo : lo + (stop - start)]
