"""Dictionary encoding: values → fixed-width codes into a sorted domain.

Fabric-compatible: the code array is fixed-width, so any row range
decodes by slicing codes and looking them up — no neighbouring data
needed (§III-D). Order-preserving (the dictionary is sorted), so range
predicates can run directly on codes.
"""

from __future__ import annotations

import numpy as np

from repro.db.compression.base import Codec, CompressedColumn, as_int_array
from repro.errors import CompressionError


def _code_dtype(domain_size: int) -> str:
    if domain_size <= 1 << 8:
        return "<u1"
    if domain_size <= 1 << 16:
        return "<u2"
    if domain_size <= 1 << 32:
        return "<u4"
    return "<u8"


class DictionaryCodec(Codec):
    name = "dictionary"
    fabric_compatible = True

    def encode(self, values: np.ndarray) -> CompressedColumn:
        values = as_int_array(values)
        domain, codes = np.unique(values, return_inverse=True)
        dtype = _code_dtype(len(domain))
        payload = codes.astype(dtype).tobytes()
        return CompressedColumn(
            codec=self.name,
            payload=payload,
            meta={
                "domain": domain.tobytes(),
                "domain_size": int(len(domain)),
                "code_dtype": dtype,
            },
            n_values=len(values),
        )

    def _domain(self, column: CompressedColumn) -> np.ndarray:
        return np.frombuffer(column.meta["domain"], dtype=np.int64)

    def decode(self, column: CompressedColumn) -> np.ndarray:
        self._check(column)
        codes = np.frombuffer(column.payload, dtype=column.meta["code_dtype"])
        return self._domain(column)[codes]

    def decode_range(self, column: CompressedColumn, start: int, stop: int) -> np.ndarray:
        self._check(column)
        width = np.dtype(column.meta["code_dtype"]).itemsize
        chunk = column.payload[start * width : stop * width]
        codes = np.frombuffer(chunk, dtype=column.meta["code_dtype"])
        return self._domain(column)[codes]

    def encode_predicate_constant(self, column: CompressedColumn, value: int) -> int:
        """Map a predicate constant into code space (order-preserving), so
        comparisons can run on codes without decoding."""
        domain = self._domain(column)
        idx = int(np.searchsorted(domain, value))
        if idx < len(domain) and domain[idx] == value:
            return idx
        raise CompressionError(f"value {value} not in dictionary domain")
