"""Compression codec interface and fabric-compatibility contract.

Paper Section III-D sorts compression schemes by whether they work under
on-the-fly vertical partitioning:

* delta, dictionary and Huffman coding "are easily supported ... they can
  be used in row-oriented data, and hence they can benefit any groups of
  columns requested by ephemeral columns" — each column's bytes decode
  independently of its neighbours;
* the run-length family "cannot be used out of the box" — decoding is
  positionally data-dependent;
* the LZ family is not a natural fit because "they require fully
  decompressing your data before you can access separate columns".

Every codec here declares :attr:`Codec.fabric_compatible` accordingly,
and the property is *tested*, not asserted: the suite checks that
compatible codecs can decode a row range without touching the rest of
the payload (see ``tests/test_compression.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import CompressionError


@dataclass
class CompressedColumn:
    """An encoded column: opaque payload plus codec metadata."""

    codec: str
    payload: bytes
    meta: Dict[str, Any] = field(default_factory=dict)
    n_values: int = 0

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def ratio(self, raw_bytes: int) -> float:
        """Compression ratio (raw / compressed); > 1 means it shrank."""
        return raw_bytes / self.nbytes if self.nbytes else float("inf")


class Codec(ABC):
    """One compression scheme for a column of int64 values."""

    name: str = "abstract"
    #: True when an arbitrary value range decodes without touching the
    #: rest of the payload — the property the fabric needs (§III-D).
    fabric_compatible: bool = False

    @abstractmethod
    def encode(self, values: np.ndarray) -> CompressedColumn:
        """Compress a 1-D integer array."""

    @abstractmethod
    def decode(self, column: CompressedColumn) -> np.ndarray:
        """Recover the full value array."""

    def decode_range(self, column: CompressedColumn, start: int, stop: int) -> np.ndarray:
        """Decode values ``[start, stop)``.

        Fabric-compatible codecs override this with an implementation
        whose work is proportional to ``stop - start``; the default falls
        back to a full decode (what an incompatible codec forces).
        """
        return self.decode(column)[start:stop]

    def _check(self, column: CompressedColumn) -> None:
        if column.codec != self.name:
            raise CompressionError(
                f"payload was encoded by {column.codec!r}, not {self.name!r}"
            )


def as_int_array(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise CompressionError(f"codecs take 1-D arrays, got shape {arr.shape}")
    if arr.dtype.kind not in "iu":
        raise CompressionError(f"codecs take integer arrays, got {arr.dtype}")
    return arr.astype(np.int64, copy=False)
