"""Run-length encoding: (value, run length) pairs.

NOT fabric-compatible out of the box (§III-D: "the compression schemes
under the run-length encoding family cannot be used out of the box"):
the position of row *i* in the payload depends on every preceding run,
so an arbitrary row range forces a scan from the start — exactly what
:meth:`decode_range` does here, and what the compatibility test verifies
is expensive.
"""

from __future__ import annotations

import numpy as np

from repro.db.compression.base import Codec, CompressedColumn, as_int_array


class RleCodec(Codec):
    name = "rle"
    fabric_compatible = False

    def encode(self, values: np.ndarray) -> CompressedColumn:
        values = as_int_array(values)
        if len(values) == 0:
            return CompressedColumn(codec=self.name, payload=b"", n_values=0)
        change = np.flatnonzero(np.diff(values)) + 1
        starts = np.concatenate(([0], change))
        lengths = np.diff(np.concatenate((starts, [len(values)])))
        runs = np.empty((len(starts), 2), dtype=np.int64)
        runs[:, 0] = values[starts]
        runs[:, 1] = lengths
        return CompressedColumn(
            codec=self.name, payload=runs.tobytes(), n_values=len(values)
        )

    def _runs(self, column: CompressedColumn) -> np.ndarray:
        return np.frombuffer(column.payload, dtype=np.int64).reshape(-1, 2)

    def decode(self, column: CompressedColumn) -> np.ndarray:
        self._check(column)
        if not column.payload:
            return np.zeros(0, dtype=np.int64)
        runs = self._runs(column)
        return np.repeat(runs[:, 0], runs[:, 1])

    # decode_range deliberately inherits the full-decode fallback: RLE has
    # no positional index, which is the §III-D incompatibility.

    def run_count(self, column: CompressedColumn) -> int:
        return 0 if not column.payload else len(self._runs(column))
