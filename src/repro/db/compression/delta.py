"""Delta encoding with fixed-size, independently decodable blocks.

Each block of ``block_size`` values stores the first value, then the
successive differences re-based on the block's minimum difference
(frame-of-reference over deltas) at the narrowest fixed width that fits.
Sorted or slowly-varying columns compress well; any integer data round-
trips.

Fabric-compatible (§III-D): a row range maps to whole blocks and each
block decodes independently — work proportional to the range, not the
column.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from repro.db.compression.base import Codec, CompressedColumn, as_int_array
from repro.errors import CompressionError

_WIDTHS = ((1, "<u1"), (2, "<u2"), (4, "<u4"), (8, "<u8"))
_DTYPE_OF = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}


def _width_for(span: int) -> int:
    for width, _ in _WIDTHS:
        if span < 1 << (8 * width):
            return width
    raise CompressionError(f"value span {span} too large")  # pragma: no cover


class DeltaCodec(Codec):
    """Block-wise delta + frame-of-reference encoding."""

    name = "delta"
    fabric_compatible = True

    #: Per-block header: int64 first value, int64 min diff, uint8 offset
    #: width, uint16 count.
    _HEADER = struct.Struct("<qqBH")

    def __init__(self, block_size: int = 4096):
        if not 1 <= block_size <= 65535:
            raise CompressionError("block size must be in [1, 65535]")
        self.block_size = block_size

    def encode(self, values: np.ndarray) -> CompressedColumn:
        values = as_int_array(values)
        chunks: List[bytes] = []
        offsets: List[int] = []  # payload offset of each block
        cursor = 0
        for start in range(0, len(values), self.block_size):
            block = values[start : start + self.block_size]
            first = int(block[0]) if len(block) else 0
            diffs = np.diff(block, prepend=block[:1]) if len(block) else block
            diff_min = int(diffs.min()) if len(block) else 0
            span = int(diffs.max()) - diff_min if len(block) else 0
            width = _width_for(span)
            body = (diffs - diff_min).astype(_DTYPE_OF[width]).tobytes()
            chunk = self._HEADER.pack(first, diff_min, width, len(block)) + body
            offsets.append(cursor)
            chunks.append(chunk)
            cursor += len(chunk)
        return CompressedColumn(
            codec=self.name,
            payload=b"".join(chunks),
            meta={"block_size": self.block_size, "block_offsets": offsets},
            n_values=len(values),
        )

    def _decode_block(self, payload: bytes, offset: int) -> np.ndarray:
        first, diff_min, width, count = self._HEADER.unpack_from(payload, offset)
        body_start = offset + self._HEADER.size
        raw = payload[body_start : body_start + count * width]
        diffs = np.frombuffer(raw, dtype=_DTYPE_OF[width]).astype(np.int64) + diff_min
        if len(diffs) == 0:
            return diffs
        out = np.cumsum(diffs)
        # diffs[0] was stored as 0 relative to itself; anchor on `first`.
        return out - out[0] + first

    def decode(self, column: CompressedColumn) -> np.ndarray:
        self._check(column)
        blocks = [
            self._decode_block(column.payload, off)
            for off in column.meta["block_offsets"]
        ]
        if not blocks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(blocks)

    def decode_range(self, column: CompressedColumn, start: int, stop: int) -> np.ndarray:
        self._check(column)
        bs = column.meta["block_size"]
        offsets = column.meta["block_offsets"]
        first, last = start // bs, max(start, stop - 1) // bs
        parts = [
            self._decode_block(column.payload, offsets[b])
            for b in range(first, min(last, len(offsets) - 1) + 1)
        ]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        joined = np.concatenate(parts)
        lo = start - first * bs
        return joined[lo : lo + (stop - start)]
