"""Column compression codecs with fabric-compatibility contracts (§III-D)."""

from typing import Dict

import numpy as np

from repro.db.compression.base import Codec, CompressedColumn, as_int_array
from repro.db.compression.delta import DeltaCodec
from repro.db.compression.dictionary import DictionaryCodec
from repro.db.compression.huffman import HuffmanCodec
from repro.db.compression.lz import Lz77Codec
from repro.db.compression.rle import RleCodec

__all__ = [
    "Codec",
    "CompressedColumn",
    "DeltaCodec",
    "DictionaryCodec",
    "HuffmanCodec",
    "Lz77Codec",
    "RleCodec",
    "all_codecs",
    "as_int_array",
    "best_codec",
    "decode",
]


def all_codecs() -> Dict[str, Codec]:
    """Fresh instances of every codec, keyed by name."""
    codecs = (DictionaryCodec(), DeltaCodec(), RleCodec(), HuffmanCodec(), Lz77Codec())
    return {c.name: c for c in codecs}


def best_codec(values: np.ndarray, fabric_only: bool = False) -> Codec:
    """Pick the codec with the best compression ratio for ``values``.

    With ``fabric_only`` the choice is restricted to schemes that support
    scattered column-group access — the constraint a fabric-based system
    lives under (§III-D).
    """
    values = as_int_array(values)
    raw = values.nbytes
    best = None
    best_ratio = -1.0
    for codec in all_codecs().values():
        if fabric_only and not codec.fabric_compatible:
            continue
        ratio = codec.encode(values).ratio(raw)
        if ratio > best_ratio:
            best, best_ratio = codec, ratio
    return best


def decode(column: CompressedColumn) -> np.ndarray:
    """Decode with whichever codec produced ``column``."""
    return all_codecs()[column.codec].decode(column)
